// Copyright 2026 The dpcube Authors.
//
// Rank-revealing factorizations: Householder QR with column pivoting and
// one-sided Jacobi SVD, plus the pseudo-inverse built on the latter.
// These power the rank-deficient recovery path (Section 3.2 of the paper
// defers rank(S) < N to the generalized inverse treatment of Li et al.;
// recovery/gls_recovery.h uses PseudoInverse to implement it exactly).
// Jacobi SVD is chosen over bidiagonalization for its simplicity and its
// high relative accuracy on the small/medium dense matrices this library
// manipulates (recovery matrices, Fourier-space normal equations).

#ifndef DPCUBE_LINALG_SVD_H_
#define DPCUBE_LINALG_SVD_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace dpcube {
namespace linalg {

/// Householder QR with column pivoting: A * P = Q * R, A of size m x n with
/// m >= n. The factorization is rank-revealing: |R_11| >= |R_22| >= ... and
/// the numerical rank is the number of diagonal entries of R above
/// tol * |R_11|.
class QrDecomposition {
 public:
  /// Factors an m x n matrix with m >= n. Fails with InvalidArgument on a
  /// wide or empty input.
  static Result<QrDecomposition> Compute(const Matrix& a);

  /// Numerical rank: diagonal entries of R with magnitude above
  /// tol * max-diagonal count toward the rank.
  std::size_t Rank(double tol = 1e-10) const;

  /// Minimum-residual solution of A x = b restricted to the leading
  /// Rank(tol) pivot columns (remaining components zero) — the "basic"
  /// least-squares solution. b.size() must equal rows().
  Result<Vector> Solve(const Vector& b, double tol = 1e-10) const;

  /// The upper-triangular factor R (n x n).
  Matrix R() const;

  /// Applies Q^T to a vector of length rows() (in place on a copy).
  Vector ApplyQTranspose(Vector v) const;

  /// Column permutation: factorization column j of R corresponds to
  /// original column permutation()[j] of A.
  const std::vector<std::size_t>& permutation() const { return perm_; }

  std::size_t rows() const { return qr_.rows(); }
  std::size_t cols() const { return qr_.cols(); }

 private:
  QrDecomposition(Matrix qr, Vector beta, std::vector<std::size_t> perm)
      : qr_(std::move(qr)), beta_(std::move(beta)), perm_(std::move(perm)) {}

  Matrix qr_;    // R on/above the diagonal, Householder vectors below.
  Vector beta_;  // Householder scalars (2 / v^T v), one per reflection.
  std::vector<std::size_t> perm_;
};

/// Thin singular value decomposition A = U * diag(sigma) * V^T computed by
/// one-sided Jacobi rotations. For an m x n input, U is m x k, V is n x k
/// with k = min(m, n), and sigma is non-negative and sorted descending.
class SvdDecomposition {
 public:
  /// Factors any non-empty matrix. Fails with NumericalError only if the
  /// Jacobi sweeps do not converge (pathological; bounded at 60 sweeps).
  static Result<SvdDecomposition> Compute(const Matrix& a);

  const Matrix& U() const { return u_; }
  const Matrix& V() const { return v_; }
  const Vector& singular_values() const { return sigma_; }

  /// Numerical rank: singular values above tol * sigma_max.
  std::size_t Rank(double tol = 1e-10) const;

  /// Moore-Penrose pseudo-inverse A^+ = V * diag(1/sigma_i) * U^T with
  /// singular values below tol * sigma_max treated as zero.
  Matrix PseudoInverse(double tol = 1e-10) const;

  /// sigma_max / sigma_min over the singular values above tol * sigma_max
  /// (infinity for the zero matrix).
  double ConditionNumber(double tol = 1e-10) const;

 private:
  SvdDecomposition(Matrix u, Vector sigma, Matrix v)
      : u_(std::move(u)), sigma_(std::move(sigma)), v_(std::move(v)) {}

  Matrix u_;
  Vector sigma_;
  Matrix v_;
};

/// Convenience: A^+ via Jacobi SVD.
Result<Matrix> PseudoInverse(const Matrix& a, double tol = 1e-10);

/// Convenience: singular values of A, sorted descending.
Result<Vector> SingularValues(const Matrix& a);

}  // namespace linalg
}  // namespace dpcube

#endif  // DPCUBE_LINALG_SVD_H_
