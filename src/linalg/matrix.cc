// Copyright 2026 The dpcube Authors.

#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dpcube {
namespace linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(0) {
  if (rows_ == 0) return;
  cols_ = rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    assert(row.size() == cols_ && "ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Diagonal(const Vector& diag) {
  Matrix m(diag.size(), diag.size());
  for (std::size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

Matrix Matrix::Constant(std::size_t rows, std::size_t cols, double value) {
  Matrix m(rows, cols);
  std::fill(m.data_.begin(), m.data_.end(), value);
  return m;
}

Vector Matrix::Row(std::size_t r) const {
  assert(r < rows_);
  return Vector(RowData(r), RowData(r) + cols_);
}

Vector Matrix::Col(std::size_t c) const {
  assert(c < cols_);
  Vector out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::SetRow(std::size_t r, const Vector& v) {
  assert(v.size() == cols_);
  std::copy(v.begin(), v.end(), RowData(r));
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* src = RowData(r);
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = src[c];
  }
  return out;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  // i-k-j loop order for row-major cache friendliness.
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* a_row = RowData(i);
    double* out_row = out.RowData(i);
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a_ik = a_row[k];
      if (a_ik == 0.0) continue;
      const double* b_row = other.RowData(k);
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out_row[j] += a_ik * b_row[j];
      }
    }
  }
  return out;
}

Vector Matrix::MultiplyVec(const Vector& v) const {
  assert(v.size() == cols_);
  Vector out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = RowData(r);
    double sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) sum += row[c] * v[c];
    out[r] = sum;
  }
  return out;
}

Vector Matrix::TransposeMultiplyVec(const Vector& v) const {
  assert(v.size() == rows_);
  Vector out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = RowData(r);
    const double vr = v[r];
    if (vr == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) out[c] += row[c] * vr;
  }
  return out;
}

Matrix Matrix::Add(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Matrix Matrix::Subtract(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix Matrix::Scale(double factor) const {
  Matrix out = *this;
  for (double& x : out.data_) x *= factor;
  return out;
}

void Matrix::ScaleRow(std::size_t r, double factor) {
  double* row = RowData(r);
  for (std::size_t c = 0; c < cols_; ++c) row[c] *= factor;
}

double Matrix::MaxAbs() const {
  double best = 0.0;
  for (double x : data_) best = std::max(best, std::fabs(x));
  return best;
}

double Matrix::FrobeniusNorm() const {
  double ss = 0.0;
  for (double x : data_) ss += x * x;
  return std::sqrt(ss);
}

double Matrix::MaxColumnL1() const {
  double best = 0.0;
  for (std::size_t c = 0; c < cols_; ++c) {
    double sum = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) sum += std::fabs((*this)(r, c));
    best = std::max(best, sum);
  }
  return best;
}

double Matrix::MaxColumnL2() const {
  double best = 0.0;
  for (std::size_t c = 0; c < cols_; ++c) {
    double ss = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) {
      const double x = (*this)(r, c);
      ss += x * x;
    }
    best = std::max(best, ss);
  }
  return std::sqrt(best);
}

bool Matrix::ApproxEquals(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

std::string Matrix::ToString() const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " [\n";
  for (std::size_t r = 0; r < rows_; ++r) {
    os << "  ";
    for (std::size_t c = 0; c < cols_; ++c) {
      os << (*this)(r, c) << (c + 1 < cols_ ? " " : "");
    }
    os << "\n";
  }
  os << "]";
  return os.str();
}

double Dot(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double Norm2(const Vector& v) { return std::sqrt(Dot(v, v)); }

double Norm1(const Vector& v) {
  double sum = 0.0;
  for (double x : v) sum += std::fabs(x);
  return sum;
}

double NormInf(const Vector& v) {
  double best = 0.0;
  for (double x : v) best = std::max(best, std::fabs(x));
  return best;
}

Vector AddVec(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  Vector out(a);
  for (std::size_t i = 0; i < b.size(); ++i) out[i] += b[i];
  return out;
}

Vector SubVec(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  Vector out(a);
  for (std::size_t i = 0; i < b.size(); ++i) out[i] -= b[i];
  return out;
}

Vector ScaleVec(const Vector& v, double factor) {
  Vector out(v);
  for (double& x : out) x *= factor;
  return out;
}

bool ApproxEqualsVec(const Vector& a, const Vector& b, double tol) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace linalg
}  // namespace dpcube
