// Copyright 2026 The dpcube Authors.
//
// Dense row-major matrix and vector types. The library deliberately ships
// its own small linear-algebra kernel instead of depending on an external
// BLAS: the matrices arising in the paper's pipeline (recovery matrices,
// Fourier-space normal equations, LP tableaus) are dense and small-to-medium,
// and a self-contained kernel keeps the build dependency-free.

#ifndef DPCUBE_LINALG_MATRIX_H_
#define DPCUBE_LINALG_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/status.h"

namespace dpcube {
namespace linalg {

/// Dense vector of doubles.
using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// rows x cols matrix, zero-initialised.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Constructs from nested initializer lists; all rows must have equal size.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Identity matrix of size n.
  static Matrix Identity(std::size_t n);

  /// Diagonal matrix from a vector.
  static Matrix Diagonal(const Vector& diag);

  /// Matrix filled with a constant.
  static Matrix Constant(std::size_t rows, std::size_t cols, double value);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Pointer to the start of row r (contiguous, cols() entries).
  double* RowData(std::size_t r) {
    assert(r < rows_);
    return data_.data() + r * cols_;
  }
  const double* RowData(std::size_t r) const {
    assert(r < rows_);
    return data_.data() + r * cols_;
  }

  /// Copies row r into a Vector.
  Vector Row(std::size_t r) const;
  /// Copies column c into a Vector.
  Vector Col(std::size_t c) const;
  /// Overwrites row r with v (v.size() == cols()).
  void SetRow(std::size_t r, const Vector& v);

  Matrix Transpose() const;

  /// Matrix product this * other; dimensions must agree.
  Matrix Multiply(const Matrix& other) const;

  /// Matrix-vector product this * v; v.size() == cols().
  Vector MultiplyVec(const Vector& v) const;

  /// Transposed matrix-vector product this^T * v; v.size() == rows().
  Vector TransposeMultiplyVec(const Vector& v) const;

  /// Elementwise sum / difference; dimensions must agree.
  Matrix Add(const Matrix& other) const;
  Matrix Subtract(const Matrix& other) const;

  /// Elementwise scale.
  Matrix Scale(double factor) const;

  /// Scales row r in place by factor.
  void ScaleRow(std::size_t r, double factor);

  /// Maximum absolute entry (0 for empty).
  double MaxAbs() const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Maximum column L1 norm: max_j sum_i |A_ij|. This is exactly the
  /// L1-sensitivity bound used for strategy matrices (Section 2).
  double MaxColumnL1() const;

  /// Maximum column L2 norm: max_j sqrt(sum_i A_ij^2) (L2-sensitivity).
  double MaxColumnL2() const;

  /// True if all entries of both matrices are within tol of each other.
  bool ApproxEquals(const Matrix& other, double tol) const;

  /// Human-readable rendering (for diagnostics and tests).
  std::string ToString() const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

// ---- Free vector helpers ---------------------------------------------------

/// Dot product; sizes must agree.
double Dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double Norm2(const Vector& v);

/// L1 norm.
double Norm1(const Vector& v);

/// Max-abs (L-infinity) norm.
double NormInf(const Vector& v);

/// a + b elementwise.
Vector AddVec(const Vector& a, const Vector& b);

/// a - b elementwise.
Vector SubVec(const Vector& a, const Vector& b);

/// v * factor elementwise.
Vector ScaleVec(const Vector& v, double factor);

/// True if all entries within tol.
bool ApproxEqualsVec(const Vector& a, const Vector& b, double tol);

}  // namespace linalg
}  // namespace dpcube

#endif  // DPCUBE_LINALG_MATRIX_H_
