// Copyright 2026 The dpcube Authors.

#include "linalg/least_squares.h"

#include <cmath>

#include "linalg/decompositions.h"
#include "linalg/svd.h"

namespace dpcube {
namespace linalg {
namespace {

// A^T diag(w) A and A^T diag(w) b in one pass over the rows of A.
void WeightedNormalEquations(const Matrix& a, const Vector* b,
                             const Vector& weights, Matrix* ata, Vector* atb) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  *ata = Matrix(n, n);
  if (atb != nullptr) atb->assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    const double w = weights.empty() ? 1.0 : weights[r];
    const double* row = a.RowData(r);
    for (std::size_t i = 0; i < n; ++i) {
      const double wri = w * row[i];
      if (wri == 0.0) continue;
      for (std::size_t j = i; j < n; ++j) {
        (*ata)(i, j) += wri * row[j];
      }
      if (atb != nullptr) (*atb)[i] += wri * (*b)[r];
    }
  }
  // Mirror the upper triangle.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) (*ata)(j, i) = (*ata)(i, j);
  }
}

Result<Vector> SolveNormal(const Matrix& ata, const Vector& atb) {
  // Prefer Cholesky (the normal matrix is symmetric PSD); fall back to LU
  // with a tiny ridge if it is borderline definite.
  Result<CholeskyDecomposition> chol = CholeskyDecomposition::Compute(ata);
  if (chol.ok()) return chol.value().Solve(atb);
  Matrix ridged = ata;
  const double ridge = 1e-10 * std::max(ata.MaxAbs(), 1.0);
  for (std::size_t i = 0; i < ridged.rows(); ++i) ridged(i, i) += ridge;
  DPCUBE_ASSIGN_OR_RETURN(LuDecomposition lu, LuDecomposition::Compute(ridged));
  return lu.Solve(atb);
}

}  // namespace

Result<Vector> OrdinaryLeastSquares(const Matrix& a, const Vector& b) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("OLS: A rows must match b size");
  }
  Matrix ata;
  Vector atb;
  WeightedNormalEquations(a, &b, /*weights=*/{}, &ata, &atb);
  return SolveNormal(ata, atb);
}

Result<Vector> GeneralizedLeastSquares(const Matrix& a, const Vector& b,
                                       const Vector& variances) {
  if (a.rows() != b.size() || a.rows() != variances.size()) {
    return Status::InvalidArgument("GLS: dimension mismatch");
  }
  Vector weights(variances.size());
  for (std::size_t i = 0; i < variances.size(); ++i) {
    if (!(variances[i] > 0.0)) {
      return Status::InvalidArgument("GLS: variances must be positive");
    }
    weights[i] = 1.0 / variances[i];
  }
  Matrix ata;
  Vector atb;
  WeightedNormalEquations(a, &b, weights, &ata, &atb);
  return SolveNormal(ata, atb);
}

Result<Matrix> GlsEstimatorMatrix(const Matrix& a, const Vector& variances) {
  if (a.rows() != variances.size()) {
    return Status::InvalidArgument("GlsEstimatorMatrix: dimension mismatch");
  }
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  Vector weights(m);
  for (std::size_t i = 0; i < m; ++i) {
    if (!(variances[i] > 0.0)) {
      return Status::InvalidArgument(
          "GlsEstimatorMatrix: variances must be positive");
    }
    weights[i] = 1.0 / variances[i];
  }
  Matrix ata;
  WeightedNormalEquations(a, /*b=*/nullptr, weights, &ata, /*atb=*/nullptr);
  DPCUBE_ASSIGN_OR_RETURN(Matrix inv, Inverse(ata));
  // G = inv * A^T * diag(w): build A^T diag(w) then multiply.
  Matrix atw(n, m);
  for (std::size_t r = 0; r < m; ++r) {
    const double* row = a.RowData(r);
    for (std::size_t i = 0; i < n; ++i) atw(i, r) = row[i] * weights[r];
  }
  return inv.Multiply(atw);
}

Result<Matrix> RightPseudoInverse(const Matrix& a) {
  // A^+ = A^T (A A^T)^{-1}; requires full row rank.
  const Matrix aat = a.Multiply(a.Transpose());
  DPCUBE_ASSIGN_OR_RETURN(Matrix inv, Inverse(aat));
  return a.Transpose().Multiply(inv);
}

Result<Matrix> LeftPseudoInverse(const Matrix& a) {
  const Matrix ata = a.Transpose().Multiply(a);
  DPCUBE_ASSIGN_OR_RETURN(Matrix inv, Inverse(ata));
  return inv.Multiply(a.Transpose());
}

Result<Matrix> GlsEstimatorMatrixAnyRank(const Matrix& a,
                                         const Vector& variances,
                                         double tol) {
  if (a.rows() != variances.size()) {
    return Status::InvalidArgument(
        "GlsEstimatorMatrixAnyRank: dimension mismatch");
  }
  const std::size_t m = a.rows();
  // B = Sigma^{-1/2} A: scale row i by 1/sqrt(var_i).
  Matrix b = a;
  Vector inv_sqrt(m);
  for (std::size_t i = 0; i < m; ++i) {
    if (!(variances[i] > 0.0)) {
      return Status::InvalidArgument(
          "GlsEstimatorMatrixAnyRank: variances must be positive");
    }
    inv_sqrt[i] = 1.0 / std::sqrt(variances[i]);
    b.ScaleRow(i, inv_sqrt[i]);
  }
  DPCUBE_ASSIGN_OR_RETURN(Matrix bpinv, PseudoInverse(b, tol));
  // G = B^+ Sigma^{-1/2}: scale column i of B^+ by 1/sqrt(var_i).
  for (std::size_t j = 0; j < bpinv.rows(); ++j) {
    double* row = bpinv.RowData(j);
    for (std::size_t i = 0; i < m; ++i) row[i] *= inv_sqrt[i];
  }
  return bpinv;
}

}  // namespace linalg
}  // namespace dpcube
