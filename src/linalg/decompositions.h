// Copyright 2026 The dpcube Authors.
//
// Matrix factorizations and linear solvers: LU with partial pivoting,
// Cholesky, triangular solves, inverse, determinant sign/rank probes.
// All fallible entry points return Result/Status (singularity is a
// recoverable condition reported to the caller, never an abort).

#ifndef DPCUBE_LINALG_DECOMPOSITIONS_H_
#define DPCUBE_LINALG_DECOMPOSITIONS_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace dpcube {
namespace linalg {

/// LU factorization with partial pivoting: P*A = L*U, packed storage.
class LuDecomposition {
 public:
  /// Factors a square matrix. Fails with NumericalError if (numerically)
  /// singular.
  static Result<LuDecomposition> Compute(const Matrix& a);

  /// Solves A x = b for one right-hand side.
  Vector Solve(const Vector& b) const;

  /// Solves A X = B column-by-column.
  Matrix SolveMatrix(const Matrix& b) const;

  /// A^{-1} (solve against the identity).
  Matrix Inverse() const;

  /// det(A), including pivot sign.
  double Determinant() const;

  std::size_t size() const { return lu_.rows(); }

 private:
  LuDecomposition(Matrix lu, std::vector<std::size_t> perm, int sign)
      : lu_(std::move(lu)), perm_(std::move(perm)), sign_(sign) {}

  Matrix lu_;                       // L (unit diag, below) and U (on/above).
  std::vector<std::size_t> perm_;   // Row permutation.
  int sign_;                        // Permutation sign for the determinant.
};

/// Cholesky factorization A = L * L^T for symmetric positive definite A.
class CholeskyDecomposition {
 public:
  /// Factors an SPD matrix; fails with NumericalError if A is not
  /// (numerically) positive definite. Only the lower triangle of `a` is read.
  static Result<CholeskyDecomposition> Compute(const Matrix& a);

  /// Solves A x = b.
  Vector Solve(const Vector& b) const;

  /// Solves A X = B.
  Matrix SolveMatrix(const Matrix& b) const;

  /// The lower-triangular factor L.
  const Matrix& lower() const { return l_; }

 private:
  explicit CholeskyDecomposition(Matrix l) : l_(std::move(l)) {}
  Matrix l_;
};

/// Solves the square system A x = b via LU (convenience wrapper).
Result<Vector> SolveLinearSystem(const Matrix& a, const Vector& b);

/// Inverse of a square matrix via LU.
Result<Matrix> Inverse(const Matrix& a);

/// Numerical rank via Gaussian elimination with partial pivoting on a copy;
/// entries below `tol` (relative to the max pivot) are treated as zero.
std::size_t NumericalRank(Matrix a, double tol = 1e-9);

}  // namespace linalg
}  // namespace dpcube

#endif  // DPCUBE_LINALG_DECOMPOSITIONS_H_
