// Copyright 2026 The dpcube Authors.

#include "linalg/sparse_matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dpcube {
namespace linalg {

Vector SparseMatrix::MultiplyVec(const Vector& x) const {
  assert(x.size() == cols_);
  Vector out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      sum += values_[k] * x[col_indices_[k]];
    }
    out[r] = sum;
  }
  return out;
}

Vector SparseMatrix::TransposeMultiplyVec(const Vector& x) const {
  assert(x.size() == rows_);
  Vector out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      out[col_indices_[k]] += values_[k] * xr;
    }
  }
  return out;
}

double SparseMatrix::MaxColumnL1() const {
  Vector sums(cols_, 0.0);
  for (std::size_t k = 0; k < values_.size(); ++k) {
    sums[col_indices_[k]] += std::fabs(values_[k]);
  }
  double best = 0.0;
  for (double s : sums) best = std::max(best, s);
  return best;
}

double SparseMatrix::MaxColumnL2() const {
  Vector sums(cols_, 0.0);
  for (std::size_t k = 0; k < values_.size(); ++k) {
    sums[col_indices_[k]] += values_[k] * values_[k];
  }
  double best = 0.0;
  for (double s : sums) best = std::max(best, s);
  return std::sqrt(best);
}

Vector SparseMatrix::WeightedColumnAbsSums(const Vector& row_weights) const {
  assert(row_weights.size() == rows_);
  Vector out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double w = row_weights[r];
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      out[col_indices_[k]] += std::fabs(values_[k]) * w;
    }
  }
  return out;
}

Matrix SparseMatrix::ToDense() const {
  Matrix out(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      out(r, col_indices_[k]) = values_[k];
    }
  }
  return out;
}

SparseMatrix SparseMatrix::FromDense(const Matrix& dense) {
  SparseMatrixBuilder builder(dense.rows(), dense.cols());
  for (std::size_t r = 0; r < dense.rows(); ++r) {
    for (std::size_t c = 0; c < dense.cols(); ++c) {
      builder.Add(c, dense(r, c));
    }
    builder.FinishRow();
  }
  return std::move(builder.Build()).value();
}

SparseMatrixBuilder::SparseMatrixBuilder(std::size_t rows, std::size_t cols) {
  m_.rows_ = rows;
  m_.cols_ = cols;
  m_.row_offsets_.reserve(rows + 1);
  m_.row_offsets_.push_back(0);
}

void SparseMatrixBuilder::Add(std::size_t col, double value) {
  assert(current_row_ < m_.rows_);
  assert(col < m_.cols_);
  if (value == 0.0) return;
  m_.col_indices_.push_back(col);
  m_.values_.push_back(value);
}

void SparseMatrixBuilder::FinishRow() {
  assert(current_row_ < m_.rows_);
  ++current_row_;
  m_.row_offsets_.push_back(m_.col_indices_.size());
}

Result<SparseMatrix> SparseMatrixBuilder::Build() {
  if (current_row_ != m_.rows_) {
    return Status::FailedPrecondition(
        "SparseMatrixBuilder: not all rows finished");
  }
  return std::move(m_);
}

}  // namespace linalg
}  // namespace dpcube
