// Copyright 2026 The dpcube Authors.
//
// Compressed sparse row (CSR) matrices. Strategy and query matrices over
// contingency-table domains are extremely sparse (marginal rows touch
// N / 2^k cells; hierarchy rows touch an interval), and the sensitivity
// computations of Section 2 only need column norms — CSR keeps both
// O(nnz) instead of O(rows * cols).

#ifndef DPCUBE_LINALG_SPARSE_MATRIX_H_
#define DPCUBE_LINALG_SPARSE_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace dpcube {
namespace linalg {

/// Immutable CSR matrix built through SparseMatrixBuilder.
class SparseMatrix {
 public:
  SparseMatrix() : rows_(0), cols_(0) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  /// y = A x.
  Vector MultiplyVec(const Vector& x) const;

  /// y = A^T x.
  Vector TransposeMultiplyVec(const Vector& x) const;

  /// max_j sum_i |A_ij| — the L1 column-norm bound of Section 2.
  double MaxColumnL1() const;

  /// max_j sqrt(sum_i A_ij^2).
  double MaxColumnL2() const;

  /// Per-column weighted absolute sums: out_j = sum_i |A_ij| w_i. With
  /// w = row budgets this is the per-column privacy load of Prop. 3.1(i).
  Vector WeightedColumnAbsSums(const Vector& row_weights) const;

  /// Dense materialisation (tests / small matrices).
  Matrix ToDense() const;

  /// Builds from a dense matrix, dropping zeros.
  static SparseMatrix FromDense(const Matrix& dense);

  /// Entries of row r as (col, value) pairs.
  struct Entry {
    std::size_t col;
    double value;
  };
  std::size_t RowNnz(std::size_t r) const {
    return row_offsets_[r + 1] - row_offsets_[r];
  }
  Entry RowEntry(std::size_t r, std::size_t k) const {
    const std::size_t at = row_offsets_[r] + k;
    return Entry{col_indices_[at], values_[at]};
  }

 private:
  friend class SparseMatrixBuilder;
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::size_t> row_offsets_;  // Size rows + 1.
  std::vector<std::size_t> col_indices_;  // Size nnz.
  std::vector<double> values_;            // Size nnz.
};

/// Row-by-row builder; rows must be appended in order.
class SparseMatrixBuilder {
 public:
  SparseMatrixBuilder(std::size_t rows, std::size_t cols);

  /// Appends an entry to the current row; columns need not be sorted.
  /// Zero values are dropped.
  void Add(std::size_t col, double value);

  /// Finishes the current row and starts the next.
  void FinishRow();

  /// Validates the shape (all rows finished) and returns the matrix.
  Result<SparseMatrix> Build();

 private:
  SparseMatrix m_;
  std::size_t current_row_ = 0;
};

}  // namespace linalg
}  // namespace dpcube

#endif  // DPCUBE_LINALG_SPARSE_MATRIX_H_
