// Copyright 2026 The dpcube Authors.

#include "linalg/svd.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

namespace dpcube {
namespace linalg {

namespace {

// Squared Euclidean norm of rows [from, rows) of column c.
double TrailingColumnNormSq(const Matrix& a, std::size_t c, std::size_t from) {
  double s = 0.0;
  for (std::size_t r = from; r < a.rows(); ++r) s += a(r, c) * a(r, c);
  return s;
}

}  // namespace

// ---- QrDecomposition --------------------------------------------------------

Result<QrDecomposition> QrDecomposition::Compute(const Matrix& a) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (m == 0 || n == 0) {
    return Status::InvalidArgument("QR of an empty matrix");
  }
  if (m < n) {
    return Status::InvalidArgument("QR requires rows >= cols; transpose first");
  }
  Matrix qr = a;
  Vector beta(n, 0.0);
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);

  // Running squared column norms for pivot selection, downdated per step.
  Vector col_norms(n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    col_norms[c] = TrailingColumnNormSq(qr, c, 0);
  }

  for (std::size_t k = 0; k < n; ++k) {
    // Pivot: bring the column with the largest remaining norm to position k.
    std::size_t pivot = k;
    double best = col_norms[k];
    for (std::size_t c = k + 1; c < n; ++c) {
      if (col_norms[c] > best) {
        best = col_norms[c];
        pivot = c;
      }
    }
    if (pivot != k) {
      for (std::size_t r = 0; r < m; ++r) {
        std::swap(qr(r, k), qr(r, pivot));
      }
      std::swap(col_norms[k], col_norms[pivot]);
      std::swap(perm[k], perm[pivot]);
    }
    // Recompute the pivot norm exactly (downdating loses accuracy).
    const double norm_sq = TrailingColumnNormSq(qr, k, k);
    const double norm = std::sqrt(norm_sq);
    if (norm == 0.0) {
      beta[k] = 0.0;  // Column already zero below row k; no reflection.
      continue;
    }
    // Householder vector v = x + sign(x_0) * ||x|| * e_0, stored below the
    // diagonal with implicit v_0; R_kk = -sign(x_0) * ||x||.
    const double x0 = qr(k, k);
    const double alpha = (x0 >= 0.0) ? -norm : norm;
    const double v0 = x0 - alpha;
    double vtv = v0 * v0;
    for (std::size_t r = k + 1; r < m; ++r) vtv += qr(r, k) * qr(r, k);
    if (vtv == 0.0) {
      beta[k] = 0.0;
      qr(k, k) = alpha;
      continue;
    }
    beta[k] = 2.0 / vtv;
    // Apply the reflection H = I - beta v v^T to the trailing columns.
    for (std::size_t c = k + 1; c < n; ++c) {
      double dot = v0 * qr(k, c);
      for (std::size_t r = k + 1; r < m; ++r) dot += qr(r, k) * qr(r, c);
      const double scale = beta[k] * dot;
      qr(k, c) -= scale * v0;
      for (std::size_t r = k + 1; r < m; ++r) qr(r, c) -= scale * qr(r, k);
    }
    qr(k, k) = alpha;
    // Store v below the diagonal scaled so the implicit head is v0
    // (we keep the raw tail entries; v0 is recovered from beta and alpha
    // would be ambiguous, so store the tail as-is and remember v0 in a
    // dedicated slot: tail entries are already in place, and v0 is
    // recomputed in ApplyQTranspose from the stored normalisation).
    // To keep things simple we normalise v by v0 so the implicit head is 1.
    for (std::size_t r = k + 1; r < m; ++r) qr(r, k) /= v0;
    beta[k] *= v0 * v0;  // beta adjusts for the rescaling of v.
    // Downdate remaining column norms.
    for (std::size_t c = k + 1; c < n; ++c) {
      col_norms[c] -= qr(k, c) * qr(k, c);
      if (col_norms[c] < 0.0) col_norms[c] = 0.0;
    }
  }
  return QrDecomposition(std::move(qr), std::move(beta), std::move(perm));
}

std::size_t QrDecomposition::Rank(double tol) const {
  const std::size_t n = qr_.cols();
  double max_diag = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    max_diag = std::max(max_diag, std::fabs(qr_(k, k)));
  }
  if (max_diag == 0.0) return 0;
  std::size_t rank = 0;
  for (std::size_t k = 0; k < n; ++k) {
    if (std::fabs(qr_(k, k)) > tol * max_diag) {
      ++rank;
    } else {
      break;  // Pivoting makes the diagonal non-increasing in magnitude.
    }
  }
  return rank;
}

Vector QrDecomposition::ApplyQTranspose(Vector v) const {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  for (std::size_t k = 0; k < n; ++k) {
    if (beta_[k] == 0.0) continue;
    double dot = v[k];  // Implicit v_head = 1.
    for (std::size_t r = k + 1; r < m; ++r) dot += qr_(r, k) * v[r];
    const double scale = beta_[k] * dot;
    v[k] -= scale;
    for (std::size_t r = k + 1; r < m; ++r) v[r] -= scale * qr_(r, k);
  }
  return v;
}

Matrix QrDecomposition::R() const {
  const std::size_t n = qr_.cols();
  Matrix r(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) r(i, j) = qr_(i, j);
  }
  return r;
}

Result<Vector> QrDecomposition::Solve(const Vector& b, double tol) const {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  if (b.size() != m) {
    return Status::InvalidArgument("QR Solve: rhs size mismatch");
  }
  const std::size_t rank = Rank(tol);
  Vector qtb = ApplyQTranspose(b);
  // Back-substitute on the leading rank x rank block of R.
  Vector y(n, 0.0);
  for (std::size_t ii = rank; ii-- > 0;) {
    double s = qtb[ii];
    for (std::size_t j = ii + 1; j < rank; ++j) s -= qr_(ii, j) * y[j];
    y[ii] = s / qr_(ii, ii);
  }
  // Undo the column permutation.
  Vector x(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) x[perm_[j]] = y[j];
  return x;
}

// ---- SvdDecomposition -------------------------------------------------------

Result<SvdDecomposition> SvdDecomposition::Compute(const Matrix& a) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("SVD of an empty matrix");
  }
  // One-sided Jacobi wants tall input; handle wide matrices by transposing
  // and swapping the roles of U and V at the end.
  const bool transposed = a.rows() < a.cols();
  Matrix w = transposed ? a.Transpose() : a;
  const std::size_t m = w.rows();
  const std::size_t n = w.cols();
  Matrix v = Matrix::Identity(n);

  const double kEps = std::numeric_limits<double>::epsilon();
  constexpr int kMaxSweeps = 60;
  bool converged = false;
  for (int sweep = 0; sweep < kMaxSweeps && !converged; ++sweep) {
    converged = true;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double app = 0.0, aqq = 0.0, apq = 0.0;
        for (std::size_t r = 0; r < m; ++r) {
          app += w(r, p) * w(r, p);
          aqq += w(r, q) * w(r, q);
          apq += w(r, p) * w(r, q);
        }
        if (std::fabs(apq) <= 10.0 * kEps * std::sqrt(app * aqq) ||
            apq == 0.0) {
          continue;
        }
        converged = false;
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0.0)
                             ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                             : 1.0 / (tau - std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (std::size_t r = 0; r < m; ++r) {
          const double wp = w(r, p);
          const double wq = w(r, q);
          w(r, p) = c * wp - s * wq;
          w(r, q) = s * wp + c * wq;
        }
        for (std::size_t r = 0; r < n; ++r) {
          const double vp = v(r, p);
          const double vq = v(r, q);
          v(r, p) = c * vp - s * vq;
          v(r, q) = s * vp + c * vq;
        }
      }
    }
  }
  if (!converged) {
    return Status::NumericalError("Jacobi SVD did not converge in 60 sweeps");
  }
  // Column norms are the singular values; normalised columns form U.
  Vector sigma(n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    sigma[c] = std::sqrt(TrailingColumnNormSq(w, c, 0));
  }
  // Sort descending, permuting U and V columns alongside.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&sigma](std::size_t x, std::size_t y) {
    return sigma[x] > sigma[y];
  });
  Matrix u_sorted(m, n);
  Matrix v_sorted(n, n);
  Vector sigma_sorted(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t src = order[j];
    sigma_sorted[j] = sigma[src];
    const double inv = sigma[src] > 0.0 ? 1.0 / sigma[src] : 0.0;
    for (std::size_t r = 0; r < m; ++r) u_sorted(r, j) = w(r, src) * inv;
    for (std::size_t r = 0; r < n; ++r) v_sorted(r, j) = v(r, src);
  }
  if (transposed) {
    // A^T = U Sigma V^T  =>  A = V Sigma U^T.
    return SvdDecomposition(std::move(v_sorted), std::move(sigma_sorted),
                            std::move(u_sorted));
  }
  return SvdDecomposition(std::move(u_sorted), std::move(sigma_sorted),
                          std::move(v_sorted));
}

std::size_t SvdDecomposition::Rank(double tol) const {
  if (sigma_.empty() || sigma_[0] == 0.0) return 0;
  const double cutoff = tol * sigma_[0];
  std::size_t rank = 0;
  for (double s : sigma_) {
    if (s > cutoff) ++rank;
  }
  return rank;
}

Matrix SvdDecomposition::PseudoInverse(double tol) const {
  const std::size_t rank = Rank(tol);
  // A^+ = V diag(1/sigma) U^T, restricted to the top `rank` triples.
  Matrix pinv(v_.rows(), u_.rows());
  for (std::size_t k = 0; k < rank; ++k) {
    const double inv = 1.0 / sigma_[k];
    for (std::size_t i = 0; i < v_.rows(); ++i) {
      const double vik = v_(i, k) * inv;
      if (vik == 0.0) continue;
      for (std::size_t j = 0; j < u_.rows(); ++j) {
        pinv(i, j) += vik * u_(j, k);
      }
    }
  }
  return pinv;
}

double SvdDecomposition::ConditionNumber(double tol) const {
  const std::size_t rank = Rank(tol);
  if (rank == 0) return std::numeric_limits<double>::infinity();
  return sigma_[0] / sigma_[rank - 1];
}

// ---- Free functions ---------------------------------------------------------

Result<Matrix> PseudoInverse(const Matrix& a, double tol) {
  DPCUBE_ASSIGN_OR_RETURN(SvdDecomposition svd, SvdDecomposition::Compute(a));
  return svd.PseudoInverse(tol);
}

Result<Vector> SingularValues(const Matrix& a) {
  DPCUBE_ASSIGN_OR_RETURN(SvdDecomposition svd, SvdDecomposition::Compute(a));
  return svd.singular_values();
}

}  // namespace linalg
}  // namespace dpcube
