// Copyright 2026 The dpcube Authors.

#include "linalg/decompositions.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace dpcube {
namespace linalg {

Result<LuDecomposition> LuDecomposition::Compute(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("LU requires a square matrix");
  }
  const std::size_t n = a.rows();
  Matrix lu = a;
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  int sign = 1;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest |entry| in column k at/below row k.
    std::size_t pivot = k;
    double best = std::fabs(lu(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double cand = std::fabs(lu(i, k));
      if (cand > best) {
        best = cand;
        pivot = i;
      }
    }
    if (best < 1e-12) {
      return Status::NumericalError("LU: matrix is numerically singular");
    }
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu(k, c), lu(pivot, c));
      std::swap(perm[k], perm[pivot]);
      sign = -sign;
    }
    const double diag = lu(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double factor = lu(i, k) / diag;
      lu(i, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) lu(i, c) -= factor * lu(k, c);
    }
  }
  return LuDecomposition(std::move(lu), std::move(perm), sign);
}

Vector LuDecomposition::Solve(const Vector& b) const {
  const std::size_t n = size();
  assert(b.size() == n);
  Vector x(n);
  // Apply permutation, then forward-substitute through L (unit diagonal).
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) sum -= lu_(i, j) * x[j];
    x[i] = sum;
  }
  // Back-substitute through U.
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) sum -= lu_(ii, j) * x[j];
    x[ii] = sum / lu_(ii, ii);
  }
  return x;
}

Matrix LuDecomposition::SolveMatrix(const Matrix& b) const {
  assert(b.rows() == size());
  Matrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    Vector col = Solve(b.Col(c));
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = col[r];
  }
  return x;
}

Matrix LuDecomposition::Inverse() const {
  return SolveMatrix(Matrix::Identity(size()));
}

double LuDecomposition::Determinant() const {
  double det = static_cast<double>(sign_);
  for (std::size_t i = 0; i < size(); ++i) det *= lu_(i, i);
  return det;
}

Result<CholeskyDecomposition> CholeskyDecomposition::Compute(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status::NumericalError(
          "Cholesky: matrix is not numerically positive definite");
    }
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      l(i, j) = sum / ljj;
    }
  }
  return CholeskyDecomposition(std::move(l));
}

Vector CholeskyDecomposition::Solve(const Vector& b) const {
  const std::size_t n = l_.rows();
  assert(b.size() == n);
  Vector y(n);
  // Forward solve L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t j = 0; j < i; ++j) sum -= l_(i, j) * y[j];
    y[i] = sum / l_(i, i);
  }
  // Back solve L^T x = y.
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) sum -= l_(j, ii) * x[j];
    x[ii] = sum / l_(ii, ii);
  }
  return x;
}

Matrix CholeskyDecomposition::SolveMatrix(const Matrix& b) const {
  assert(b.rows() == l_.rows());
  Matrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    Vector col = Solve(b.Col(c));
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = col[r];
  }
  return x;
}

Result<Vector> SolveLinearSystem(const Matrix& a, const Vector& b) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("SolveLinearSystem: dimension mismatch");
  }
  DPCUBE_ASSIGN_OR_RETURN(LuDecomposition lu, LuDecomposition::Compute(a));
  return lu.Solve(b);
}

Result<Matrix> Inverse(const Matrix& a) {
  DPCUBE_ASSIGN_OR_RETURN(LuDecomposition lu, LuDecomposition::Compute(a));
  return lu.Inverse();
}

std::size_t NumericalRank(Matrix a, double tol) {
  const std::size_t rows = a.rows();
  const std::size_t cols = a.cols();
  std::size_t rank = 0;
  std::size_t row = 0;
  const double scale = std::max(a.MaxAbs(), 1.0);
  for (std::size_t col = 0; col < cols && row < rows; ++col) {
    std::size_t pivot = row;
    double best = std::fabs(a(row, col));
    for (std::size_t i = row + 1; i < rows; ++i) {
      const double cand = std::fabs(a(i, col));
      if (cand > best) {
        best = cand;
        pivot = i;
      }
    }
    if (best <= tol * scale) continue;
    if (pivot != row) {
      for (std::size_t c = 0; c < cols; ++c) std::swap(a(row, c), a(pivot, c));
    }
    const double diag = a(row, col);
    for (std::size_t i = row + 1; i < rows; ++i) {
      const double factor = a(i, col) / diag;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < cols; ++c) a(i, c) -= factor * a(row, c);
    }
    ++rank;
    ++row;
  }
  return rank;
}

}  // namespace linalg
}  // namespace dpcube
