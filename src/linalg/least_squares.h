// Copyright 2026 The dpcube Authors.
//
// Ordinary and generalized (weighted) least squares. The generalized form
// with a diagonal noise covariance is the workhorse of the paper's Step 3
// (Section 3.2): given z = S x + nu with Cov(nu) = diag(2/eps_i^2), the
// minimum-variance linear unbiased estimate is
//   x_hat = (S^T Sigma^{-1} S)^{-1} S^T Sigma^{-1} z .

#ifndef DPCUBE_LINALG_LEAST_SQUARES_H_
#define DPCUBE_LINALG_LEAST_SQUARES_H_

#include "common/status.h"
#include "linalg/matrix.h"

namespace dpcube {
namespace linalg {

/// Solves min_x ||A x - b||_2 via the normal equations (A full column rank).
/// Fails with NumericalError if A^T A is not invertible.
Result<Vector> OrdinaryLeastSquares(const Matrix& a, const Vector& b);

/// Solves the generalized least squares problem for diagonal covariance:
/// min_x (A x - b)^T diag(1/var) (A x - b), i.e. weights w_i = 1 / var_i.
/// `variances` must be strictly positive, one per row of A.
Result<Vector> GeneralizedLeastSquares(const Matrix& a, const Vector& b,
                                       const Vector& variances);

/// The GLS estimator matrix G = (A^T W A)^{-1} A^T W with W = diag(1/var):
/// x_hat = G b for any right-hand side. This is the matrix the paper
/// composes with Q to obtain the optimal recovery R = Q G (equation (7)).
Result<Matrix> GlsEstimatorMatrix(const Matrix& a, const Vector& variances);

/// Moore–Penrose pseudo-inverse for a full-row-rank matrix:
/// A^+ = A^T (A A^T)^{-1}. Used to exhibit a consistent witness x_c with
/// Q x_c = y when Q has independent rows (Section 3.3).
Result<Matrix> RightPseudoInverse(const Matrix& a);

/// Pseudo-inverse for a full-column-rank matrix: A^+ = (A^T A)^{-1} A^T.
Result<Matrix> LeftPseudoInverse(const Matrix& a);

/// GLS estimator matrix without the full-column-rank requirement: with
/// B = Sigma^{-1/2} A, returns G = B^+ Sigma^{-1/2} via the Jacobi-SVD
/// pseudo-inverse, so x_hat = G b is the minimum-norm generalized
/// least-squares estimate. For full-column-rank A this coincides with
/// GlsEstimatorMatrix; for rank(A) < cols the estimate is unbiased only
/// for targets in A's row space (the condition Section 3.2 of the paper
/// inherits from Li et al. for rank-deficient strategies). Singular values
/// below tol * sigma_max are truncated.
Result<Matrix> GlsEstimatorMatrixAnyRank(const Matrix& a,
                                         const Vector& variances,
                                         double tol = 1e-10);

}  // namespace linalg
}  // namespace dpcube

#endif  // DPCUBE_LINALG_LEAST_SQUARES_H_
