// Copyright 2026 The dpcube Authors.

#include "strategy/fourier_strategy.h"

#include <chrono>
#include <cmath>

#include "common/thread_pool.h"
#include "dp/mechanisms.h"

namespace dpcube {
namespace strategy {

FourierStrategy::FourierStrategy(marginal::Workload workload,
                                 linalg::Vector query_weights)
    : workload_(std::move(workload)), index_(workload_) {
  const auto start = std::chrono::steady_clock::now();
  // FourierBudgetWeights is the construction-time scoring loop; it fans
  // out per coefficient on the shared pool (bit-identically to the
  // sequential scatter — see fourier_index.cc).
  const linalg::Vector b =
      marginal::FourierBudgetWeights(workload_, index_, query_weights);
  const double column_norm = std::pow(2.0, -0.5 * workload_.d());
  // Trivial per-slot writes: the 4k grain keeps small supports inline.
  groups_.assign(index_.size(), budget::GroupSummary{});
  ThreadPool::Shared().ParallelFor(0, index_.size(), 4096, [&](std::size_t i) {
    budget::GroupSummary g;
    g.column_norm = column_norm;
    g.weight_sum = b[i];
    g.num_rows = 1;
    groups_[i] = g;
  });
  construction_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
}

Result<Release> FourierStrategy::Run(const data::SparseCounts& data,
                                     const linalg::Vector& group_budgets,
                                     const dp::PrivacyParams& params,
                                     Rng* rng) const {
  if (group_budgets.size() != groups_.size()) {
    return Status::InvalidArgument("FourierStrategy: budget count mismatch");
  }
  DPCUBE_RETURN_NOT_OK(params.Validate());

  for (const double eta : group_budgets) {
    if (!(eta > 0.0)) {
      return Status::InvalidArgument("group budgets must be positive");
    }
  }

  // Measure every needed coefficient once. Each coefficient scans the
  // occupied cells independently, so the fan-out is embarrassingly
  // parallel; coefficient i samples its noise from child stream i of one
  // master draw (the Rng::Stream seed-derivation rule), which keeps the
  // release bit-identical for every thread count.
  ThreadPool& pool = ThreadPool::Shared();
  const std::uint64_t noise_base = rng->NextUint64();
  linalg::Vector noisy(index_.size());
  linalg::Vector coeff_variance(index_.size());
  pool.ParallelFor(0, index_.size(), 1, [&](std::size_t i) {
    Rng child = Rng::Stream(noise_base, i);
    noisy[i] = data.FourierCoefficient(index_.mask(i)) +
               dp::SampleNoise(group_budgets[i], params, &child);
    coeff_variance[i] = dp::MeasurementVariance(group_budgets[i], params);
  });

  Release release;
  release.consistent = true;
  const int d = workload_.d();
  const std::size_t num_marginals = workload_.num_marginals();
  release.cell_variances.assign(num_marginals, 0.0);
  // 1-cell placeholders; every slot is move-assigned by its worker
  // before the join returns.
  release.marginals.assign(num_marginals, marginal::MarginalTable(0, 0));
  pool.ParallelFor(0, num_marginals, 1, [&](std::size_t i) {
    const bits::Mask alpha = workload_.mask(i);
    const int k = bits::Popcount(alpha);
    release.marginals[i] = marginal::MarginalFromFourier(
        alpha, d,
        [&](bits::Mask beta) { return noisy[index_.IndexOf(beta)]; });
    // Var(cell) = 2^{d - 2k} * sum_{beta ⪯ alpha} Var(coefficient beta).
    double var_sum = 0.0;
    for (bits::SubmaskIterator it(alpha); !it.done(); it.Next()) {
      var_sum += coeff_variance[index_.IndexOf(it.mask())];
    }
    release.cell_variances[i] = std::pow(2.0, d - 2 * k) * var_sum;
  });
  return release;
}

Result<linalg::Matrix> FourierStrategy::DenseStrategyMatrix() const {
  const int d = workload_.d();
  if (d > 14) {
    return Status::InvalidArgument("domain too large to materialise F");
  }
  const std::uint64_t n = std::uint64_t{1} << d;
  const double scale = std::pow(2.0, -0.5 * d);
  linalg::Matrix s(index_.size(), n);
  for (std::size_t i = 0; i < index_.size(); ++i) {
    const bits::Mask beta = index_.mask(i);
    for (std::uint64_t cell = 0; cell < n; ++cell) {
      s(i, cell) = bits::FourierSign(beta, cell) * scale;
    }
  }
  return s;
}

Result<int> FourierStrategy::RowGroupOfDenseRow(std::size_t row) const {
  if (row >= index_.size()) return Status::OutOfRange("row out of range");
  return static_cast<int>(row);
}


Result<linalg::Vector> FourierStrategy::PredictCellVariances(
    const linalg::Vector& group_budgets,
    const dp::PrivacyParams& params) const {
  if (group_budgets.size() != groups_.size()) {
    return Status::InvalidArgument("FourierStrategy: budget count mismatch");
  }
  DPCUBE_RETURN_NOT_OK(params.Validate());
  for (double eta : group_budgets) {
    if (!(eta > 0.0)) {
      return Status::InvalidArgument("group budgets must be positive");
    }
  }
  linalg::Vector out;
  out.reserve(workload_.num_marginals());
  const int d = workload_.d();
  for (std::size_t i = 0; i < workload_.num_marginals(); ++i) {
    const bits::Mask alpha = workload_.mask(i);
    const int k = bits::Popcount(alpha);
    double var_sum = 0.0;
    for (bits::SubmaskIterator it(alpha); !it.done(); it.Next()) {
      var_sum += dp::MeasurementVariance(
          group_budgets[index_.IndexOf(it.mask())], params);
    }
    out.push_back(std::pow(2.0, d - 2 * k) * var_sum);
  }
  return out;
}

}  // namespace strategy
}  // namespace dpcube
