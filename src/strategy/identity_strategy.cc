// Copyright 2026 The dpcube Authors.

#include "strategy/identity_strategy.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>

#include "common/thread_pool.h"
#include "dp/mechanisms.h"

namespace dpcube {
namespace strategy {

IdentityStrategy::IdentityStrategy(marginal::Workload workload,
                                   linalg::Vector query_weights)
    : workload_(std::move(workload)) {
  assert(query_weights.empty() ||
         query_weights.size() == workload_.num_marginals());
  const auto start = std::chrono::steady_clock::now();
  // One group covering all N rows. Recovery R = Q: base cell j is used by
  // exactly one cell of every workload marginal with coefficient 1, so
  // b_j = 2 * sum_i a_i and s_1 = 2 * (sum_i a_i) * N.
  //
  // Unit weights sum to the (integer) marginal count exactly; weighted
  // workloads reduce over fixed-size blocks merged in block order, so the
  // sum is a pure function of the weights, never of the thread count.
  double weight_total = 0.0;
  const std::size_t num_marginals = workload_.num_marginals();
  if (query_weights.empty()) {
    weight_total = static_cast<double>(num_marginals);
  } else {
    weight_total = ThreadPool::Shared().ParallelSumBlocks(
        0, num_marginals, 1024, [&](std::size_t lo, std::size_t hi) {
          double sum = 0.0;
          for (std::size_t i = lo; i < hi; ++i) sum += query_weights[i];
          return sum;
        });
  }
  budget::GroupSummary g;
  g.column_norm = 1.0;
  const double n = std::pow(2.0, workload_.d());
  g.weight_sum = 2.0 * weight_total * n;
  g.num_rows = std::uint64_t{1} << workload_.d();
  groups_ = {g};
  construction_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
}

Result<Release> IdentityStrategy::Run(const data::SparseCounts& data,
                                      const linalg::Vector& group_budgets,
                                      const dp::PrivacyParams& params,
                                      Rng* rng) const {
  if (group_budgets.size() != 1) {
    return Status::InvalidArgument("IdentityStrategy expects 1 group budget");
  }
  DPCUBE_RETURN_NOT_OK(params.Validate());
  const double eta = group_budgets[0];
  if (!(eta > 0.0)) {
    return Status::InvalidArgument("group budget must be positive");
  }
  // Per-cuboid fan-out: marginal i derives and perturbs independently
  // using child noise stream i of one master draw (Rng::Stream rule), so
  // the release is bit-identical for every thread count.
  const std::uint64_t noise_base = rng->NextUint64();
  const std::size_t num_marginals = workload_.num_marginals();
  Release release;
  release.consistent = false;
  release.cell_variances.assign(num_marginals, 0.0);
  // 1-cell placeholders; every slot is move-assigned by its worker
  // before the join returns.
  release.marginals.assign(num_marginals, marginal::MarginalTable(0, 0));
  ThreadPool::Shared().ParallelFor(0, num_marginals, 1, [&](std::size_t i) {
    const bits::Mask alpha = workload_.mask(i);
    Rng child = Rng::Stream(noise_base, i);
    marginal::MarginalTable table = marginal::ComputeMarginal(data, alpha);
    const std::uint64_t base_cells_per_output =
        std::uint64_t{1} << (workload_.d() - bits::Popcount(alpha));
    for (std::size_t g = 0; g < table.num_cells(); ++g) {
      table.value(g) +=
          dp::SampleNoiseSum(base_cells_per_output, eta, params, &child);
    }
    release.cell_variances[i] = static_cast<double>(base_cells_per_output) *
                                dp::MeasurementVariance(eta, params);
    release.marginals[i] = std::move(table);
  });
  return release;
}

Result<linalg::Matrix> IdentityStrategy::DenseStrategyMatrix() const {
  if (workload_.d() > 14) {
    return Status::InvalidArgument("domain too large to materialise I");
  }
  return linalg::Matrix::Identity(std::size_t{1} << workload_.d());
}

Result<int> IdentityStrategy::RowGroupOfDenseRow(std::size_t row) const {
  (void)row;
  return 0;
}


Result<linalg::Vector> IdentityStrategy::PredictCellVariances(
    const linalg::Vector& group_budgets,
    const dp::PrivacyParams& params) const {
  if (group_budgets.size() != 1 || !(group_budgets[0] > 0.0)) {
    return Status::InvalidArgument("IdentityStrategy: bad group budgets");
  }
  DPCUBE_RETURN_NOT_OK(params.Validate());
  linalg::Vector out;
  out.reserve(workload_.num_marginals());
  for (std::size_t i = 0; i < workload_.num_marginals(); ++i) {
    const std::uint64_t base_cells =
        std::uint64_t{1} << (workload_.d() - bits::Popcount(workload_.mask(i)));
    out.push_back(static_cast<double>(base_cells) *
                  dp::MeasurementVariance(group_budgets[0], params));
  }
  return out;
}

}  // namespace strategy
}  // namespace dpcube
