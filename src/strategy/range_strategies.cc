// Copyright 2026 The dpcube Authors.

#include "strategy/range_strategies.h"

#include <cassert>
#include <cmath>

#include "dp/mechanisms.h"
#include "transform/walsh_hadamard.h"

namespace dpcube {
namespace strategy {

// ---- Hierarchy --------------------------------------------------------------

HierarchyRangeStrategy::HierarchyRangeStrategy(std::size_t domain_size,
                                               std::vector<RangeQuery> queries)
    : tree_(domain_size), queries_(std::move(queries)) {
  decompositions_.reserve(queries_.size());
  // b_node = 2 * (number of queries whose decomposition uses the node).
  std::vector<double> node_weight(tree_.num_nodes(), 0.0);
  for (const RangeQuery& q : queries_) {
    decompositions_.push_back(tree_.DecomposeRange(q.lo, q.hi));
    for (std::size_t node : decompositions_.back()) {
      node_weight[node] += 2.0;
    }
  }
  groups_.assign(tree_.depth(), budget::GroupSummary{});
  for (int level = 0; level < tree_.depth(); ++level) {
    groups_[level].column_norm = 1.0;
  }
  for (std::size_t node = 0; node < tree_.num_nodes(); ++node) {
    budget::GroupSummary& g = groups_[tree_.LevelOfNode(node)];
    g.weight_sum += node_weight[node];
    ++g.num_rows;
  }
}

Result<RangeRelease> HierarchyRangeStrategy::Run(
    const std::vector<double>& x, const linalg::Vector& group_budgets,
    const dp::PrivacyParams& params, Rng* rng) const {
  if (x.size() != tree_.domain_size()) {
    return Status::InvalidArgument("Hierarchy: data size mismatch");
  }
  if (group_budgets.size() != groups_.size()) {
    return Status::InvalidArgument("Hierarchy: budget count mismatch");
  }
  DPCUBE_RETURN_NOT_OK(params.Validate());
  std::vector<double> sums = tree_.NodeSums(x);
  std::vector<double> node_variance(sums.size());
  for (std::size_t node = 0; node < sums.size(); ++node) {
    const double eta = group_budgets[tree_.LevelOfNode(node)];
    if (!(eta > 0.0)) {
      return Status::InvalidArgument("budgets must be positive");
    }
    sums[node] += dp::SampleNoise(eta, params, rng);
    node_variance[node] = dp::MeasurementVariance(eta, params);
  }
  RangeRelease release;
  release.answers.reserve(queries_.size());
  release.variances.reserve(queries_.size());
  for (std::size_t q = 0; q < queries_.size(); ++q) {
    double answer = 0.0;
    double variance = 0.0;
    for (std::size_t node : decompositions_[q]) {
      answer += sums[node];
      variance += node_variance[node];
    }
    release.answers.push_back(answer);
    release.variances.push_back(variance);
  }
  return release;
}

Result<linalg::Matrix> HierarchyRangeStrategy::DenseStrategyMatrix() const {
  if (tree_.domain_size() > 4096) {
    return Status::InvalidArgument("domain too large to materialise");
  }
  return tree_.StrategyMatrix();
}

// ---- Wavelet ----------------------------------------------------------------

WaveletRangeStrategy::WaveletRangeStrategy(std::size_t domain_size,
                                           std::vector<RangeQuery> queries)
    : n_(domain_size),
      log2_n_(transform::Log2OfPowerOfTwo(domain_size)),
      queries_(std::move(queries)),
      query_wavelet_(queries_.size(), domain_size) {
  // Haar-transform each query indicator; q . x = <Haar(q), Haar(x)>.
  std::vector<double> indicator(n_);
  for (std::size_t q = 0; q < queries_.size(); ++q) {
    indicator.assign(n_, 0.0);
    for (std::size_t j = queries_[q].lo; j < queries_[q].hi; ++j) {
      indicator[j] = 1.0;
    }
    transform::HaarForward(&indicator);
    query_wavelet_.SetRow(q, indicator);
  }
  // b_coef = 2 * sum_q Haar(q)_coef^2; groups are wavelet levels.
  groups_.assign(log2_n_ + 1, budget::GroupSummary{});
  for (int level = 0; level <= log2_n_; ++level) {
    groups_[level].column_norm =
        transform::HaarLevelMagnitude(level, log2_n_);
  }
  for (std::size_t coef = 0; coef < n_; ++coef) {
    double b = 0.0;
    for (std::size_t q = 0; q < queries_.size(); ++q) {
      const double w = query_wavelet_(q, coef);
      b += 2.0 * w * w;
    }
    budget::GroupSummary& g =
        groups_[transform::HaarLevelOfIndex(coef, n_)];
    g.weight_sum += b;
    ++g.num_rows;
  }
}

Result<RangeRelease> WaveletRangeStrategy::Run(
    const std::vector<double>& x, const linalg::Vector& group_budgets,
    const dp::PrivacyParams& params, Rng* rng) const {
  if (x.size() != n_) {
    return Status::InvalidArgument("Wavelet: data size mismatch");
  }
  if (group_budgets.size() != groups_.size()) {
    return Status::InvalidArgument("Wavelet: budget count mismatch");
  }
  DPCUBE_RETURN_NOT_OK(params.Validate());
  std::vector<double> coeffs = x;
  transform::HaarForward(&coeffs);
  std::vector<double> coef_variance(n_);
  for (std::size_t coef = 0; coef < n_; ++coef) {
    const double eta =
        group_budgets[transform::HaarLevelOfIndex(coef, n_)];
    if (!(eta > 0.0)) {
      return Status::InvalidArgument("budgets must be positive");
    }
    coeffs[coef] += dp::SampleNoise(eta, params, rng);
    coef_variance[coef] = dp::MeasurementVariance(eta, params);
  }
  RangeRelease release;
  release.answers.reserve(queries_.size());
  release.variances.reserve(queries_.size());
  for (std::size_t q = 0; q < queries_.size(); ++q) {
    double answer = 0.0;
    double variance = 0.0;
    const double* w = query_wavelet_.RowData(q);
    for (std::size_t coef = 0; coef < n_; ++coef) {
      answer += w[coef] * coeffs[coef];
      variance += w[coef] * w[coef] * coef_variance[coef];
    }
    release.answers.push_back(answer);
    release.variances.push_back(variance);
  }
  return release;
}

Result<linalg::Matrix> WaveletRangeStrategy::DenseStrategyMatrix() const {
  if (n_ > 4096) {
    return Status::InvalidArgument("domain too large to materialise");
  }
  return transform::HaarMatrix(log2_n_);
}

// ---- Base counts ------------------------------------------------------------

BaseCountRangeStrategy::BaseCountRangeStrategy(std::size_t domain_size,
                                               std::vector<RangeQuery> queries)
    : n_(domain_size), queries_(std::move(queries)) {
  budget::GroupSummary g;
  g.column_norm = 1.0;
  g.num_rows = n_;
  // b_cell = 2 * (number of queries containing the cell).
  for (const RangeQuery& q : queries_) {
    g.weight_sum += 2.0 * static_cast<double>(q.hi - q.lo);
  }
  groups_ = {g};
}

Result<RangeRelease> BaseCountRangeStrategy::Run(
    const std::vector<double>& x, const linalg::Vector& group_budgets,
    const dp::PrivacyParams& params, Rng* rng) const {
  if (x.size() != n_) {
    return Status::InvalidArgument("Base: data size mismatch");
  }
  if (group_budgets.size() != 1) {
    return Status::InvalidArgument("Base: expects one group budget");
  }
  DPCUBE_RETURN_NOT_OK(params.Validate());
  const double eta = group_budgets[0];
  if (!(eta > 0.0)) {
    return Status::InvalidArgument("budgets must be positive");
  }
  std::vector<double> noisy = x;
  for (double& v : noisy) v += dp::SampleNoise(eta, params, rng);
  const double cell_variance = dp::MeasurementVariance(eta, params);
  RangeRelease release;
  release.answers.reserve(queries_.size());
  release.variances.reserve(queries_.size());
  for (const RangeQuery& q : queries_) {
    double answer = 0.0;
    for (std::size_t j = q.lo; j < q.hi; ++j) answer += noisy[j];
    release.answers.push_back(answer);
    release.variances.push_back(cell_variance *
                                static_cast<double>(q.hi - q.lo));
  }
  return release;
}

Result<linalg::Matrix> BaseCountRangeStrategy::DenseStrategyMatrix() const {
  if (n_ > 4096) {
    return Status::InvalidArgument("domain too large to materialise");
  }
  return linalg::Matrix::Identity(n_);
}

// ---- Workload helpers -------------------------------------------------------

std::vector<RangeQuery> AllPrefixRanges(std::size_t n) {
  std::vector<RangeQuery> out;
  out.reserve(n);
  for (std::size_t hi = 1; hi <= n; ++hi) out.push_back(RangeQuery{0, hi});
  return out;
}

std::vector<RangeQuery> RandomRanges(std::size_t n, std::size_t count,
                                     Rng* rng) {
  std::vector<RangeQuery> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t a = rng->NextBounded(n);
    std::size_t b = rng->NextBounded(n) + 1;
    if (a > b) std::swap(a, b);
    if (a == b) b = std::min(n, b + 1);
    out.push_back(RangeQuery{a, b});
  }
  return out;
}

}  // namespace strategy
}  // namespace dpcube
