// Copyright 2026 The dpcube Authors.
//
// 2-D tensor-Haar wavelet strategy for rectangle-count queries over an
// n x n grid — the "higher dimensional wavelets" case of Section 3.1,
// where the grouping number (g + 1)^2 grows with the square of the depth
// rather than linearly. Together with QuadtreeStrategy this lets the
// range-strategy ablation compare hierarchical vs wavelet decompositions
// in 2-D under both uniform and optimal budgets.

#ifndef DPCUBE_STRATEGY_TENSOR_WAVELET_STRATEGY_H_
#define DPCUBE_STRATEGY_TENSOR_WAVELET_STRATEGY_H_

#include <string>
#include <vector>

#include "budget/grouping.h"
#include "common/rng.h"
#include "common/status.h"
#include "dp/privacy.h"
#include "linalg/matrix.h"
#include "strategy/quadtree_strategy.h"

namespace dpcube {
namespace strategy {

/// Measures all n^2 tensor-Haar coefficients of the grid; each rectangle
/// query is recovered as the inner product of its transformed indicator
/// with the noisy coefficients (orthonormality). Budget groups are the
/// per-axis level pairs of transform/tensor_haar.h.
class TensorWaveletStrategy {
 public:
  /// Grid side must be a power of two. Transforms every query indicator
  /// up front (O(n^2) each).
  TensorWaveletStrategy(std::size_t grid_side,
                        std::vector<RectangleQuery> queries);

  const std::string& name() const { return name_; }
  std::size_t grid_side() const { return n_; }

  /// (g + 1)^2 groups for side 2^g.
  const std::vector<budget::GroupSummary>& groups() const { return groups_; }

  /// Measures the coefficients over the row-major grid (size n*n) with
  /// per-group budgets and recovers the query answers.
  Result<QuadtreeRelease> Run(const std::vector<double>& grid,
                              const linalg::Vector& group_budgets,
                              const dp::PrivacyParams& params,
                              Rng* rng) const;

  /// Dense (n^2 x n^2) strategy matrix in coefficient layout (tests).
  Result<linalg::Matrix> DenseStrategyMatrix() const;

  /// Group index of dense-matrix row (= coefficient flat index).
  int GroupOfCoefficient(std::size_t index) const;

 private:
  std::string name_ = "TWave";
  std::size_t n_;
  std::vector<int> log2_dims_;  // {g, g}.
  std::vector<RectangleQuery> queries_;
  linalg::Matrix query_coeffs_;  // Per query: transformed indicator.
  std::vector<budget::GroupSummary> groups_;
};

}  // namespace strategy
}  // namespace dpcube

#endif  // DPCUBE_STRATEGY_TENSOR_WAVELET_STRATEGY_H_
