// Copyright 2026 The dpcube Authors.

#include "strategy/cluster_strategy.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <limits>
#include <set>
#include <utility>

#include "common/thread_pool.h"
#include "dp/mechanisms.h"
#include "marginal/query_matrix.h"

namespace dpcube {
namespace strategy {

ClusterStrategy::ClusterStrategy(marginal::Workload workload,
                                 linalg::Vector query_weights)
    : workload_(std::move(workload)) {
  assert(query_weights.empty() ||
         query_weights.size() == workload_.num_marginals());
  const auto start = std::chrono::steady_clock::now();
  RunClustering();
  // Group summaries: one group per materialised marginal.
  std::vector<double> assigned_weight(materialized_.size(), 0.0);
  for (std::size_t q = 0; q < cover_of_.size(); ++q) {
    assigned_weight[cover_of_[q]] +=
        query_weights.empty() ? 1.0 : query_weights[q];
  }
  groups_.reserve(materialized_.size());
  for (std::size_t m = 0; m < materialized_.size(); ++m) {
    budget::GroupSummary g;
    g.column_norm = 1.0;
    g.num_rows = std::uint64_t{1} << bits::Popcount(materialized_[m]);
    // Each cell of the centroid feeds exactly one cell of every assigned
    // query: b_cell = 2 * sum of assigned query weights.
    g.weight_sum = 2.0 * assigned_weight[m] *
                   static_cast<double>(g.num_rows);
    groups_.push_back(g);
  }
  construction_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
}

void ClusterStrategy::AssignCovers(const std::vector<bits::Mask>& centroids,
                                   std::vector<std::size_t>* cover_of) const {
  cover_of->assign(workload_.num_marginals(), 0);
  for (std::size_t q = 0; q < workload_.num_marginals(); ++q) {
    const bits::Mask alpha = workload_.mask(q);
    std::size_t best = centroids.size();
    int best_width = std::numeric_limits<int>::max();
    for (std::size_t m = 0; m < centroids.size(); ++m) {
      if (!bits::IsSubset(alpha, centroids[m])) continue;
      const int width = bits::Popcount(centroids[m]);
      if (width < best_width) {
        best_width = width;
        best = m;
      }
    }
    // Every query is dominated by at least one centroid by construction.
    (*cover_of)[q] = best;
  }
}

double ClusterStrategy::PredictedCost(
    const std::vector<bits::Mask>& centroids,
    const std::vector<std::size_t>& cover_of) const {
  // Uniform-budget epsilon-DP cost model: with |M| unit-column-norm groups,
  // each row budget is eps' / |M|, so a query covered by beta accumulates
  // per-cell variance 2^{||beta|| - ||alpha||} * 2 (|M| / eps')^2 over its
  // 2^{||alpha||} cells. Dropping constants: |M|^2 * sum_q 2^{||cover(q)||}.
  double spread = 0.0;
  for (std::size_t q = 0; q < cover_of.size(); ++q) {
    spread += std::pow(2.0, bits::Popcount(centroids[cover_of[q]]));
  }
  const double m = static_cast<double>(centroids.size());
  return m * m * spread;
}

double ClusterStrategy::EvaluateMerge(
    const std::vector<bits::Mask>& centroids, std::size_t i, std::size_t j,
    std::vector<bits::Mask>* candidate_out,
    std::vector<std::size_t>* cover_out) const {
  std::set<bits::Mask> merged_set(centroids.begin(), centroids.end());
  merged_set.erase(centroids[i]);
  merged_set.erase(centroids[j]);
  merged_set.insert(centroids[i] | centroids[j]);
  std::vector<bits::Mask> candidate(merged_set.begin(), merged_set.end());
  std::vector<std::size_t> candidate_cover;
  AssignCovers(candidate, &candidate_cover);
  // Drop centroids no query uses (a merge can strand them).
  std::vector<bool> used(candidate.size(), false);
  for (std::size_t c : candidate_cover) used[c] = true;
  std::vector<bits::Mask> pruned;
  for (std::size_t m = 0; m < candidate.size(); ++m) {
    if (used[m]) pruned.push_back(candidate[m]);
  }
  if (pruned.size() != candidate.size()) {
    AssignCovers(pruned, &candidate_cover);
    candidate = std::move(pruned);
  }
  const double cost = PredictedCost(candidate, candidate_cover);
  if (candidate_out != nullptr) *candidate_out = std::move(candidate);
  if (cover_out != nullptr) *cover_out = std::move(candidate_cover);
  return cost;
}

void ClusterStrategy::RunClustering() {
  // Start from the distinct query masks.
  std::set<bits::Mask> unique(workload_.masks().begin(),
                              workload_.masks().end());
  std::vector<bits::Mask> centroids(unique.begin(), unique.end());
  std::vector<std::size_t> cover_of;
  AssignCovers(centroids, &cover_of);
  double cost = PredictedCost(centroids, cover_of);

  // Greedy descent; each round evaluates every pair merge in parallel.
  // Candidate costs vary wildly (pruning changes |M|, cover search is
  // O(Q * |M|)), which is exactly the heterogeneous profile the
  // work-stealing schedule exists for. Each pair writes only its own
  // cost slot; the winner is the argmin in pair-enumeration order
  // (i outer, j inner) with ties to the lowest pair index — the same
  // merge the sequential scan's strict `<` would have kept — so the
  // clustering is bit-identical for every thread count and schedule.
  ThreadPool& pool = ThreadPool::Shared();
  bool improved = true;
  while (improved && centroids.size() > 1) {
    improved = false;
    const std::size_t k = centroids.size();
    const std::size_t num_pairs = k * (k - 1) / 2;
    // pair_first[i] = flat index of pair (i, i+1); pairs of a given i are
    // contiguous, matching the sequential enumeration order.
    std::vector<std::size_t> pair_first(k, 0);
    for (std::size_t i = 1; i < k; ++i) {
      pair_first[i] = pair_first[i - 1] + (k - i);  // k-1-(i-1) pairs at i-1.
    }
    auto pair_of = [&](std::size_t p) {
      const std::size_t i =
          static_cast<std::size_t>(
              std::upper_bound(pair_first.begin(), pair_first.end(), p) -
              pair_first.begin()) -
          1;
      return std::pair<std::size_t, std::size_t>(i, i + 1 + (p - pair_first[i]));
    };
    std::vector<double> pair_cost(num_pairs, 0.0);
    pool.ParallelFor(
        0, num_pairs, 1,
        [&](std::size_t p) {
          const auto [i, j] = pair_of(p);
          pair_cost[p] = EvaluateMerge(centroids, i, j, nullptr, nullptr);
        },
        ThreadPool::Schedule::kWorkStealing);
    std::size_t best_pair = num_pairs;
    double best_cost = cost;
    for (std::size_t p = 0; p < num_pairs; ++p) {
      if (pair_cost[p] < best_cost) {
        best_cost = pair_cost[p];
        best_pair = p;
      }
    }
    if (best_pair != num_pairs) {
      const auto [i, j] = pair_of(best_pair);
      std::vector<bits::Mask> best_centroids;
      std::vector<std::size_t> best_cover;
      EvaluateMerge(centroids, i, j, &best_centroids, &best_cover);
      centroids = std::move(best_centroids);
      cover_of = std::move(best_cover);
      cost = best_cost;
      improved = true;
    }
  }
  materialized_ = std::move(centroids);
  cover_of_ = std::move(cover_of);
}

Result<Release> ClusterStrategy::Run(const data::SparseCounts& data,
                                     const linalg::Vector& group_budgets,
                                     const dp::PrivacyParams& params,
                                     Rng* rng) const {
  if (group_budgets.size() != materialized_.size()) {
    return Status::InvalidArgument("ClusterStrategy: budget count mismatch");
  }
  DPCUBE_RETURN_NOT_OK(params.Validate());

  for (const double eta : group_budgets) {
    if (!(eta > 0.0)) {
      return Status::InvalidArgument("group budgets must be positive");
    }
  }

  // Measure the centroid marginals: per-centroid fan-out, centroid m
  // drawing its noise from child stream m of one master draw (Rng::Stream
  // rule), so the release is bit-identical for every thread count.
  ThreadPool& pool = ThreadPool::Shared();
  const std::uint64_t noise_base = rng->NextUint64();
  // 1-cell placeholders; every slot is move-assigned by its worker
  // before the join returns.
  std::vector<marginal::MarginalTable> noisy(materialized_.size(),
                                             marginal::MarginalTable(0, 0));
  pool.ParallelFor(0, materialized_.size(), 1, [&](std::size_t m) {
    Rng child = Rng::Stream(noise_base, m);
    marginal::MarginalTable table =
        marginal::ComputeMarginal(data, materialized_[m]);
    for (std::size_t g = 0; g < table.num_cells(); ++g) {
      table.value(g) += dp::SampleNoise(group_budgets[m], params, &child);
    }
    noisy[m] = std::move(table);
  });

  // Aggregate each query marginal from its cover (pure post-processing of
  // the noisy centroids; queries are independent of each other).
  const std::size_t num_queries = workload_.num_marginals();
  Release release;
  release.consistent = false;
  release.cell_variances.assign(num_queries, 0.0);
  release.marginals.assign(num_queries, marginal::MarginalTable(0, 0));
  pool.ParallelFor(0, num_queries, 1, [&](std::size_t q) {
    const bits::Mask alpha = workload_.mask(q);
    const marginal::MarginalTable& cover = noisy[cover_of_[q]];
    marginal::MarginalTable out(alpha, workload_.d());
    for (std::size_t g = 0; g < cover.num_cells(); ++g) {
      const bits::Mask cell = cover.GlobalCell(g);
      out.value(bits::CompressFromMask(cell, alpha)) += cover.value(g);
    }
    const int spread = bits::Popcount(materialized_[cover_of_[q]]) -
                       bits::Popcount(alpha);
    release.cell_variances[q] =
        std::pow(2.0, spread) *
        dp::MeasurementVariance(group_budgets[cover_of_[q]], params);
    release.marginals[q] = std::move(out);
  });
  return release;
}

Result<linalg::Matrix> ClusterStrategy::DenseStrategyMatrix() const {
  if (workload_.d() > 14) {
    return Status::InvalidArgument("domain too large to materialise C");
  }
  marginal::Workload strategy_workload(workload_.d(), materialized_);
  return marginal::BuildQueryMatrix(strategy_workload);
}

Result<int> ClusterStrategy::RowGroupOfDenseRow(std::size_t row) const {
  marginal::Workload strategy_workload(workload_.d(), materialized_);
  marginal::RowLayout layout(strategy_workload);
  if (row >= layout.total_rows()) {
    return Status::OutOfRange("dense row out of range");
  }
  return static_cast<int>(layout.Locate(row).first);
}


Result<linalg::Vector> ClusterStrategy::PredictCellVariances(
    const linalg::Vector& group_budgets,
    const dp::PrivacyParams& params) const {
  if (group_budgets.size() != materialized_.size()) {
    return Status::InvalidArgument("ClusterStrategy: budget count mismatch");
  }
  DPCUBE_RETURN_NOT_OK(params.Validate());
  for (double eta : group_budgets) {
    if (!(eta > 0.0)) {
      return Status::InvalidArgument("group budgets must be positive");
    }
  }
  linalg::Vector out;
  out.reserve(workload_.num_marginals());
  for (std::size_t q = 0; q < workload_.num_marginals(); ++q) {
    const int spread = bits::Popcount(materialized_[cover_of_[q]]) -
                       bits::Popcount(workload_.mask(q));
    out.push_back(
        std::pow(2.0, spread) *
        dp::MeasurementVariance(group_budgets[cover_of_[q]], params));
  }
  return out;
}

}  // namespace strategy
}  // namespace dpcube
