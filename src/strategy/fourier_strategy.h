// Copyright 2026 The dpcube Authors.
//
// Strategy F: measure the Fourier (Hadamard) coefficients the workload
// needs — the approach of Barak et al. (PODS 2007), Section 4 of the
// paper. Each coefficient beta in F = union_i {beta ⪯ alpha_i} is one
// strategy row f^beta with all entries of magnitude 2^{-d/2}; every row is
// its own budget group (the Fourier matrix is dense, so no two rows are
// support-disjoint). The non-uniform F+ variant realises Lemma 4.2's
// asymptotic improvement by giving coefficients used by many / low-order
// marginals more budget.
//
// The default recovery reconstructs each marginal from its coefficients
// (Theorem 4.1(2)); the output is consistent by construction, with the
// witness x_c being the inverse transform of the noisy coefficient vector.

#ifndef DPCUBE_STRATEGY_FOURIER_STRATEGY_H_
#define DPCUBE_STRATEGY_FOURIER_STRATEGY_H_

#include <string>
#include <vector>

#include "marginal/fourier_index.h"
#include "strategy/marginal_strategy.h"

namespace dpcube {
namespace strategy {

class FourierStrategy : public MarginalStrategy {
 public:
  /// `query_weights`: per-marginal importance a >= 0 in the objective
  /// a^T Var(y) (empty = all ones); shapes the coefficient budgets.
  explicit FourierStrategy(marginal::Workload workload,
                           linalg::Vector query_weights = {});

  const std::string& name() const override { return name_; }
  const marginal::Workload& workload() const override { return workload_; }
  const std::vector<budget::GroupSummary>& groups() const override {
    return groups_;
  }

  Result<Release> Run(const data::SparseCounts& data,
                      const linalg::Vector& group_budgets,
                      const dp::PrivacyParams& params,
                      Rng* rng) const override;

  Result<linalg::Vector> PredictCellVariances(
      const linalg::Vector& group_budgets,
      const dp::PrivacyParams& params) const override;

  Result<linalg::Matrix> DenseStrategyMatrix() const override;
  Result<int> RowGroupOfDenseRow(std::size_t row) const override;

  const marginal::FourierIndex& fourier_index() const { return index_; }

 private:
  std::string name_ = "F";
  marginal::Workload workload_;
  marginal::FourierIndex index_;
  std::vector<budget::GroupSummary> groups_;
};

}  // namespace strategy
}  // namespace dpcube

#endif  // DPCUBE_STRATEGY_FOURIER_STRATEGY_H_
