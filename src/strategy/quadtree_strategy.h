// Copyright 2026 The dpcube Authors.
//
// 2-D quadtree strategy for rectangle-count queries over an n x n grid —
// the multi-dimensional hierarchical decomposition of Cormode et al.
// (ICDE 2012, "Differentially private spatial decompositions"), which the
// paper cites as the one prior method with (non-optimal) non-uniform
// budgets. Nodes at the same depth cover disjoint squares with
// coefficient 1, so levels form budget groups (Definition 3.1) and the
// paper's closed-form optimal budgets apply directly — an upgrade over
// the heuristic geometric budgets of the original.

#ifndef DPCUBE_STRATEGY_QUADTREE_STRATEGY_H_
#define DPCUBE_STRATEGY_QUADTREE_STRATEGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "budget/grouping.h"
#include "common/rng.h"
#include "common/status.h"
#include "dp/privacy.h"
#include "linalg/matrix.h"

namespace dpcube {
namespace strategy {

/// Half-open rectangle count query over the grid:
/// sum of cells with row in [row_lo, row_hi) and col in [col_lo, col_hi).
struct RectangleQuery {
  std::size_t row_lo = 0, row_hi = 0;
  std::size_t col_lo = 0, col_hi = 0;
};

/// Noisy answers plus predicted variances, in query order.
struct QuadtreeRelease {
  linalg::Vector answers;
  linalg::Vector variances;
};

class QuadtreeStrategy {
 public:
  /// Grid side must be a power of two. Decomposes every query up front.
  QuadtreeStrategy(std::size_t grid_side,
                   std::vector<RectangleQuery> queries);

  const std::string& name() const { return name_; }
  std::size_t grid_side() const { return n_; }
  int depth() const { return levels_; }  ///< Levels, log2(n) + 1.

  /// Total quadtree nodes: (4^{levels} - 1) / 3.
  std::size_t num_nodes() const { return num_nodes_; }

  /// One budget group per level (C = 1); weights reflect the workload.
  const std::vector<budget::GroupSummary>& groups() const { return groups_; }

  /// Node ids (level-order) covering the rectangle exactly and disjointly.
  std::vector<std::size_t> DecomposeRectangle(const RectangleQuery& q) const;

  /// Level of node id.
  int LevelOfNode(std::size_t node) const;

  /// Measures all node sums over the row-major grid (size n*n) with the
  /// per-level budgets and recovers the query answers.
  Result<QuadtreeRelease> Run(const std::vector<double>& grid,
                              const linalg::Vector& group_budgets,
                              const dp::PrivacyParams& params,
                              Rng* rng) const;

  /// Dense (num_nodes x n^2) strategy matrix (small grids, tests).
  Result<linalg::Matrix> DenseStrategyMatrix() const;

 private:
  struct NodeRegion {
    std::size_t row_lo, row_hi, col_lo, col_hi;
  };
  NodeRegion RegionOfNode(std::size_t node) const;
  std::size_t FirstNodeOfLevel(int level) const;

  std::string name_ = "Quad";
  std::size_t n_;
  int levels_;
  std::size_t num_nodes_;
  std::vector<RectangleQuery> queries_;
  std::vector<std::vector<std::size_t>> decompositions_;
  std::vector<budget::GroupSummary> groups_;
};

/// Random rectangles for benches/tests.
std::vector<RectangleQuery> RandomRectangles(std::size_t n, std::size_t count,
                                             Rng* rng);

}  // namespace strategy
}  // namespace dpcube

#endif  // DPCUBE_STRATEGY_QUADTREE_STRATEGY_H_
