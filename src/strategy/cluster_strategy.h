// Copyright 2026 The dpcube Authors.
//
// Strategy C: the greedy marginal-clustering baseline of Ding et al.
// (SIGMOD 2011, "Differentially private data cubes: optimizing noise
// sources and consistency"), reproduced per DESIGN.md's substitution note
// (the original implementation is closed source).
//
// The idea: instead of measuring every requested marginal, materialise a
// smaller set M of "centroid" marginals such that every query marginal is
// dominated by (computable from) some member of M. Fewer measured
// marginals means more budget per measurement; coarser centroids mean more
// cells aggregated per query cell and hence more accumulated noise. The
// clustering searches this trade-off bottom-up: starting from M = the
// distinct query masks, it repeatedly applies the pair-merge
// (beta_1, beta_2) -> beta_1 OR beta_2 that most reduces the predicted
// total variance under uniform budgets,
//     cost(M) ∝ |M|^2 * sum_q 2^{||cover(q)||}          (epsilon-DP)
// and stops at a local optimum. Queries are always assigned to their
// lowest-dimensional cover in M. This matches the published algorithm's
// bottom-up greedy structure and cost profile (accurate on low-order
// workloads, cost growing quickly with dimensionality).
//
// Budget groups: one per materialised marginal (C_r = 1). Default
// recovery aggregates each query's cells from its cover, so
// b_cell = 2 * (#queries assigned to the cover) uniformly within a group
// — consistent with Definition 3.2, making the grouped optimum exact.

#ifndef DPCUBE_STRATEGY_CLUSTER_STRATEGY_H_
#define DPCUBE_STRATEGY_CLUSTER_STRATEGY_H_

#include <string>
#include <vector>

#include "strategy/marginal_strategy.h"

namespace dpcube {
namespace strategy {

class ClusterStrategy : public MarginalStrategy {
 public:
  /// Runs the greedy clustering over the workload's marginals.
  /// `query_weights`: per-marginal importance a >= 0 (empty = all ones);
  /// weights shape the budget allocation across the materialised
  /// centroids. The clustering cost model itself stays unweighted, as in
  /// Ding et al.
  explicit ClusterStrategy(marginal::Workload workload,
                           linalg::Vector query_weights = {});

  const std::string& name() const override { return name_; }
  const marginal::Workload& workload() const override { return workload_; }
  const std::vector<budget::GroupSummary>& groups() const override {
    return groups_;
  }

  Result<Release> Run(const data::SparseCounts& data,
                      const linalg::Vector& group_budgets,
                      const dp::PrivacyParams& params,
                      Rng* rng) const override;

  Result<linalg::Vector> PredictCellVariances(
      const linalg::Vector& group_budgets,
      const dp::PrivacyParams& params) const override;

  Result<linalg::Matrix> DenseStrategyMatrix() const override;
  Result<int> RowGroupOfDenseRow(std::size_t row) const override;

  /// The materialised ("centroid") marginal masks chosen by clustering.
  const std::vector<bits::Mask>& materialized() const { return materialized_; }

  /// cover_of(i) = index into materialized() that answers query marginal i.
  const std::vector<std::size_t>& cover_of() const { return cover_of_; }

 private:
  void AssignCovers(const std::vector<bits::Mask>& centroids,
                    std::vector<std::size_t>* cover_of) const;
  double PredictedCost(const std::vector<bits::Mask>& centroids,
                       const std::vector<std::size_t>& cover_of) const;
  /// Cost of merging centroids i and j (pruning stranded centroids), as
  /// one independent unit of the parallel candidate scan. When non-null,
  /// `candidate_out`/`cover_out` receive the pruned centroid set and its
  /// cover assignment (used to rebuild the winning merge).
  double EvaluateMerge(const std::vector<bits::Mask>& centroids,
                       std::size_t i, std::size_t j,
                       std::vector<bits::Mask>* candidate_out,
                       std::vector<std::size_t>* cover_out) const;
  void RunClustering();

  std::string name_ = "C";
  marginal::Workload workload_;
  std::vector<bits::Mask> materialized_;
  std::vector<std::size_t> cover_of_;
  std::vector<budget::GroupSummary> groups_;
};

}  // namespace strategy
}  // namespace dpcube

#endif  // DPCUBE_STRATEGY_CLUSTER_STRATEGY_H_
