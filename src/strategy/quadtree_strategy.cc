// Copyright 2026 The dpcube Authors.

#include "strategy/quadtree_strategy.h"

#include <cassert>

#include "dp/mechanisms.h"
#include "transform/walsh_hadamard.h"

namespace dpcube {
namespace strategy {

QuadtreeStrategy::QuadtreeStrategy(std::size_t grid_side,
                                   std::vector<RectangleQuery> queries)
    : n_(grid_side), queries_(std::move(queries)) {
  assert(transform::IsPowerOfTwo(n_));
  levels_ = transform::Log2OfPowerOfTwo(n_) + 1;
  // Level l has 4^l nodes; total (4^levels - 1) / 3.
  num_nodes_ = ((std::size_t{1} << (2 * levels_)) - 1) / 3;

  std::vector<double> node_weight(num_nodes_, 0.0);
  decompositions_.reserve(queries_.size());
  for (const RectangleQuery& q : queries_) {
    decompositions_.push_back(DecomposeRectangle(q));
    for (std::size_t node : decompositions_.back()) {
      node_weight[node] += 2.0;
    }
  }
  groups_.assign(levels_, budget::GroupSummary{});
  for (int level = 0; level < levels_; ++level) {
    groups_[level].column_norm = 1.0;
  }
  for (std::size_t node = 0; node < num_nodes_; ++node) {
    budget::GroupSummary& g = groups_[LevelOfNode(node)];
    g.weight_sum += node_weight[node];
    ++g.num_rows;
  }
}

std::size_t QuadtreeStrategy::FirstNodeOfLevel(int level) const {
  // Sum of 4^j for j < level = (4^level - 1) / 3.
  return ((std::size_t{1} << (2 * level)) - 1) / 3;
}

int QuadtreeStrategy::LevelOfNode(std::size_t node) const {
  assert(node < num_nodes_);
  int level = 0;
  while (FirstNodeOfLevel(level + 1) <= node) ++level;
  return level;
}

QuadtreeStrategy::NodeRegion QuadtreeStrategy::RegionOfNode(
    std::size_t node) const {
  const int level = LevelOfNode(node);
  const std::size_t index = node - FirstNodeOfLevel(level);
  const std::size_t per_side = std::size_t{1} << level;
  const std::size_t width = n_ / per_side;
  const std::size_t row = index / per_side;
  const std::size_t col = index % per_side;
  return NodeRegion{row * width, (row + 1) * width, col * width,
                    (col + 1) * width};
}

std::vector<std::size_t> QuadtreeStrategy::DecomposeRectangle(
    const RectangleQuery& q) const {
  assert(q.row_lo <= q.row_hi && q.row_hi <= n_);
  assert(q.col_lo <= q.col_hi && q.col_hi <= n_);
  std::vector<std::size_t> out;
  if (q.row_lo == q.row_hi || q.col_lo == q.col_hi) return out;
  std::vector<std::size_t> stack = {0};
  while (!stack.empty()) {
    const std::size_t node = stack.back();
    stack.pop_back();
    const NodeRegion r = RegionOfNode(node);
    if (r.row_hi <= q.row_lo || r.row_lo >= q.row_hi ||
        r.col_hi <= q.col_lo || r.col_lo >= q.col_hi) {
      continue;  // Disjoint.
    }
    if (q.row_lo <= r.row_lo && r.row_hi <= q.row_hi &&
        q.col_lo <= r.col_lo && r.col_hi <= q.col_hi) {
      out.push_back(node);  // Fully contained.
      continue;
    }
    const int level = LevelOfNode(node);
    if (level + 1 >= levels_) continue;  // Leaf partially overlapping: none.
    // Children at level + 1 within the node's quadrant.
    const std::size_t index = node - FirstNodeOfLevel(level);
    const std::size_t per_side = std::size_t{1} << level;
    const std::size_t row = index / per_side;
    const std::size_t col = index % per_side;
    const std::size_t child_per_side = per_side * 2;
    const std::size_t child_base = FirstNodeOfLevel(level + 1);
    for (std::size_t dr = 0; dr < 2; ++dr) {
      for (std::size_t dc = 0; dc < 2; ++dc) {
        stack.push_back(child_base + (2 * row + dr) * child_per_side +
                        (2 * col + dc));
      }
    }
  }
  return out;
}

Result<QuadtreeRelease> QuadtreeStrategy::Run(
    const std::vector<double>& grid, const linalg::Vector& group_budgets,
    const dp::PrivacyParams& params, Rng* rng) const {
  if (grid.size() != n_ * n_) {
    return Status::InvalidArgument("Quadtree: grid size mismatch");
  }
  if (group_budgets.size() != groups_.size()) {
    return Status::InvalidArgument("Quadtree: budget count mismatch");
  }
  DPCUBE_RETURN_NOT_OK(params.Validate());

  // Node sums, bottom-up: leaves are the cells; parents sum 4 children.
  std::vector<double> sums(num_nodes_, 0.0);
  const std::size_t leaf_base = FirstNodeOfLevel(levels_ - 1);
  for (std::size_t row = 0; row < n_; ++row) {
    for (std::size_t col = 0; col < n_; ++col) {
      sums[leaf_base + row * n_ + col] = grid[row * n_ + col];
    }
  }
  for (int level = levels_ - 2; level >= 0; --level) {
    const std::size_t base = FirstNodeOfLevel(level);
    const std::size_t per_side = std::size_t{1} << level;
    const std::size_t child_base = FirstNodeOfLevel(level + 1);
    const std::size_t child_per_side = per_side * 2;
    for (std::size_t row = 0; row < per_side; ++row) {
      for (std::size_t col = 0; col < per_side; ++col) {
        double total = 0.0;
        for (std::size_t dr = 0; dr < 2; ++dr) {
          for (std::size_t dc = 0; dc < 2; ++dc) {
            total += sums[child_base + (2 * row + dr) * child_per_side +
                          (2 * col + dc)];
          }
        }
        sums[base + row * per_side + col] = total;
      }
    }
  }

  std::vector<double> node_variance(num_nodes_);
  for (std::size_t node = 0; node < num_nodes_; ++node) {
    const double eta = group_budgets[LevelOfNode(node)];
    if (!(eta > 0.0)) {
      return Status::InvalidArgument("budgets must be positive");
    }
    sums[node] += dp::SampleNoise(eta, params, rng);
    node_variance[node] = dp::MeasurementVariance(eta, params);
  }

  QuadtreeRelease release;
  release.answers.reserve(queries_.size());
  release.variances.reserve(queries_.size());
  for (std::size_t q = 0; q < queries_.size(); ++q) {
    double answer = 0.0;
    double variance = 0.0;
    for (std::size_t node : decompositions_[q]) {
      answer += sums[node];
      variance += node_variance[node];
    }
    release.answers.push_back(answer);
    release.variances.push_back(variance);
  }
  return release;
}

Result<linalg::Matrix> QuadtreeStrategy::DenseStrategyMatrix() const {
  if (n_ > 64) {
    return Status::InvalidArgument("grid too large to materialise");
  }
  linalg::Matrix s(num_nodes_, n_ * n_);
  for (std::size_t node = 0; node < num_nodes_; ++node) {
    const NodeRegion r = RegionOfNode(node);
    for (std::size_t row = r.row_lo; row < r.row_hi; ++row) {
      for (std::size_t col = r.col_lo; col < r.col_hi; ++col) {
        s(node, row * n_ + col) = 1.0;
      }
    }
  }
  return s;
}

std::vector<RectangleQuery> RandomRectangles(std::size_t n, std::size_t count,
                                             Rng* rng) {
  std::vector<RectangleQuery> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    RectangleQuery q;
    q.row_lo = rng->NextBounded(n);
    q.row_hi = q.row_lo + 1 + rng->NextBounded(n - q.row_lo);
    q.col_lo = rng->NextBounded(n);
    q.col_hi = q.col_lo + 1 + rng->NextBounded(n - q.col_lo);
    out.push_back(q);
  }
  return out;
}

}  // namespace strategy
}  // namespace dpcube
