// Copyright 2026 The dpcube Authors.
//
// Sparse random projections ("sketches", Cormode et al. ICDT 2012) — the
// last strategy family the paper lists as groupable: t independent random
// partitions of the domain into buckets with +/-1 signs. All rows of one
// repetition have disjoint support and magnitude 1, so the grouping number
// is t (Section 3.1). Point estimates are recovered count-sketch style by
// the median over repetitions; the recovery is non-linear, so this
// strategy demonstrates grouping + budgeting rather than GLS recovery.

#ifndef DPCUBE_STRATEGY_SKETCH_STRATEGY_H_
#define DPCUBE_STRATEGY_SKETCH_STRATEGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "budget/grouping.h"
#include "common/rng.h"
#include "common/status.h"
#include "data/contingency_table.h"
#include "dp/privacy.h"
#include "linalg/matrix.h"

namespace dpcube {
namespace strategy {

class SketchStrategy {
 public:
  /// t repetitions of a random partition of the 2^d domain into `buckets`
  /// buckets with random signs, seeded deterministically from `seed`.
  SketchStrategy(int d, std::size_t buckets, std::size_t repetitions,
                 std::uint64_t seed);

  const std::string& name() const { return name_; }
  int d() const { return d_; }
  std::size_t buckets() const { return buckets_; }
  std::size_t repetitions() const { return repetitions_; }

  /// One group per repetition, C_r = 1; weight_sum = 2 * (bucket usage by
  /// the point-query recovery) = 2 * buckets per repetition.
  const std::vector<budget::GroupSummary>& groups() const { return groups_; }

  /// Bucket index and sign of a cell in repetition `rep` (hash-derived,
  /// deterministic).
  std::size_t BucketOf(std::size_t rep, bits::Mask cell) const;
  double SignOf(std::size_t rep, bits::Mask cell) const;

  /// Measures all t * buckets sketch counters over the data with the given
  /// per-repetition budgets, then returns point estimates for the
  /// requested cells (median over repetitions of sign * bucket value).
  Result<linalg::Vector> EstimatePoints(const data::SparseCounts& data,
                                        const std::vector<bits::Mask>& cells,
                                        const linalg::Vector& group_budgets,
                                        const dp::PrivacyParams& params,
                                        Rng* rng) const;

  /// Dense (t * buckets) x 2^d strategy matrix for small d (tests).
  Result<linalg::Matrix> DenseStrategyMatrix() const;

  /// Group (repetition) of dense-matrix row i.
  int RowGroupOfDenseRow(std::size_t row) const {
    return static_cast<int>(row / buckets_);
  }

 private:
  std::string name_ = "Sketch";
  int d_;
  std::size_t buckets_;
  std::size_t repetitions_;
  std::uint64_t seed_;
  std::vector<budget::GroupSummary> groups_;
};

}  // namespace strategy
}  // namespace dpcube

#endif  // DPCUBE_STRATEGY_SKETCH_STRATEGY_H_
