// Copyright 2026 The dpcube Authors.
//
// The strategy abstraction for marginal workloads. A strategy knows its
// grouping summary (what the budget optimizer needs), and can execute the
// measurement + default recovery given per-group budgets, producing noisy
// workload marginals. This deliberately avoids materialising the m x N
// strategy matrix: the Adult-scale domain has N = 2^23 columns, and every
// strategy here admits an implicit evaluation that touches only the
// occupied cells of the contingency table. A dense materialisation is
// still available for small domains (tests, worked examples).

#ifndef DPCUBE_STRATEGY_MARGINAL_STRATEGY_H_
#define DPCUBE_STRATEGY_MARGINAL_STRATEGY_H_

#include <string>
#include <vector>

#include "budget/grouping.h"
#include "common/rng.h"
#include "common/status.h"
#include "data/contingency_table.h"
#include "dp/privacy.h"
#include "linalg/matrix.h"
#include "marginal/marginal_table.h"
#include "marginal/workload.h"

namespace dpcube {
namespace strategy {

/// A private release produced by one strategy execution.
struct Release {
  /// Noisy workload marginals, in workload order.
  std::vector<marginal::MarginalTable> marginals;
  /// Per-marginal cell variance (every cell of marginal i has variance
  /// cell_variances[i] under this strategy's default recovery).
  linalg::Vector cell_variances;
  /// True iff the output is already consistent (Definition 2.3), in which
  /// case the engine skips the consistency projection.
  bool consistent = false;
};

/// Interface implemented by the paper's strategies (I, Q, F, C).
class MarginalStrategy {
 public:
  virtual ~MarginalStrategy() = default;

  /// Short display name ("I", "Q", "F", "C").
  virtual const std::string& name() const = 0;

  virtual const marginal::Workload& workload() const = 0;

  /// Group summaries (column norm C_r and recovery weight sum s_r under the
  /// strategy's default recovery with unit query weights a = 1). One entry
  /// per budget group; the privacy constraint is sum_r C_r eta_r <= eps'.
  virtual const std::vector<budget::GroupSummary>& groups() const = 0;

  /// Executes measurement and default recovery. `group_budgets` has one
  /// entry per group (every row in group r uses eta_r).
  virtual Result<Release> Run(const data::SparseCounts& data,
                              const linalg::Vector& group_budgets,
                              const dp::PrivacyParams& params,
                              Rng* rng) const = 0;

  /// Predicts the per-marginal cell variance this strategy's default
  /// recovery would produce under the given budgets — the same numbers
  /// Run() reports, but without touching any data. Lets a data owner
  /// dry-run accuracy before spending budget (engine/variance_report.h).
  virtual Result<linalg::Vector> PredictCellVariances(
      const linalg::Vector& group_budgets,
      const dp::PrivacyParams& params) const = 0;

  /// Dense strategy matrix over the 2^d domain (small d only; tests).
  /// Row order must match the grouping exposed by RowGroupOfDenseRow.
  virtual Result<linalg::Matrix> DenseStrategyMatrix() const {
    return Status::Unimplemented("no dense materialisation for strategy '" +
                                 name() + "'");
  }

  /// Group index of dense-matrix row i (only meaningful alongside
  /// DenseStrategyMatrix).
  virtual Result<int> RowGroupOfDenseRow(std::size_t row) const {
    (void)row;
    return Status::Unimplemented("no dense materialisation");
  }

  /// Wall-clock seconds the constructor spent building the strategy
  /// (clustering search, Fourier support scoring, group summaries).
  /// Construction runs on the shared pool, so this is the number the
  /// construction-scaling benches track; engine::ReleaseWorkload copies
  /// it into PhaseTimings for per-phase attribution.
  double construction_seconds() const { return construction_seconds_; }

 protected:
  double construction_seconds_ = 0.0;  // Set once at the end of each ctor.
};

}  // namespace strategy
}  // namespace dpcube

#endif  // DPCUBE_STRATEGY_MARGINAL_STRATEGY_H_
