// Copyright 2026 The dpcube Authors.
//
// Strategy I: noisy base counts (S = I, R = Q). Every contingency-table
// cell is measured once; marginals aggregate the noisy cells. A single
// budget group (g = 1, C_1 = 1), for which the optimal allocation is
// always uniform, as the paper notes.
//
// Scale note: a marginal cell aggregates 2^{d-k} independent noisy base
// cells. Rather than materialising 2^d noise draws, each output cell's
// noise is sampled as the SUM of 2^{d-k} i.i.d. draws (exactly for small
// counts, via the CLT normal approximation above dp::SampleNoiseSum's
// threshold). Within a marginal this matches the exact distribution; the
// correlation of noise ACROSS marginals that share base cells is not
// simulated, which leaves per-marginal error statistics (what the paper
// reports) unchanged. See DESIGN.md.

#ifndef DPCUBE_STRATEGY_IDENTITY_STRATEGY_H_
#define DPCUBE_STRATEGY_IDENTITY_STRATEGY_H_

#include <string>
#include <vector>

#include "strategy/marginal_strategy.h"

namespace dpcube {
namespace strategy {

class IdentityStrategy : public MarginalStrategy {
 public:
  /// `query_weights` is the paper's per-query weighting a >= 0 in the
  /// objective a^T Var(y), one entry per workload marginal (applied to
  /// all of that marginal's cells); empty means all-ones. Weights shape
  /// the budget optimisation only — measurement is unaffected.
  explicit IdentityStrategy(marginal::Workload workload,
                            linalg::Vector query_weights = {});

  const std::string& name() const override { return name_; }
  const marginal::Workload& workload() const override { return workload_; }
  const std::vector<budget::GroupSummary>& groups() const override {
    return groups_;
  }

  Result<Release> Run(const data::SparseCounts& data,
                      const linalg::Vector& group_budgets,
                      const dp::PrivacyParams& params,
                      Rng* rng) const override;

  Result<linalg::Vector> PredictCellVariances(
      const linalg::Vector& group_budgets,
      const dp::PrivacyParams& params) const override;

  Result<linalg::Matrix> DenseStrategyMatrix() const override;
  Result<int> RowGroupOfDenseRow(std::size_t row) const override;

 private:
  std::string name_ = "I";
  marginal::Workload workload_;
  std::vector<budget::GroupSummary> groups_;
};

}  // namespace strategy
}  // namespace dpcube

#endif  // DPCUBE_STRATEGY_IDENTITY_STRATEGY_H_
