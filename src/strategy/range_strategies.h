// Copyright 2026 The dpcube Authors.
//
// Strategies for 1-D range-query workloads over a linearised domain —
// the other strategy families Section 3.1 shows to be groupable:
//   * the dyadic hierarchy of Hay et al. (one group per tree level),
//   * the Haar wavelet of Xiao et al. (one group per wavelet level),
//   * noisy base counts as the baseline (one group).
// The ablation bench A3 exercises these with uniform vs optimal budgets.

#ifndef DPCUBE_STRATEGY_RANGE_STRATEGIES_H_
#define DPCUBE_STRATEGY_RANGE_STRATEGIES_H_

#include <string>
#include <vector>

#include "budget/grouping.h"
#include "common/rng.h"
#include "common/status.h"
#include "dp/privacy.h"
#include "linalg/matrix.h"
#include "transform/haar_wavelet.h"
#include "transform/hierarchy.h"

namespace dpcube {
namespace strategy {

/// Half-open interval count query: sum of x[lo..hi).
struct RangeQuery {
  std::size_t lo = 0;
  std::size_t hi = 0;
};

/// Noisy answers plus their predicted variances, in query order.
struct RangeRelease {
  linalg::Vector answers;
  linalg::Vector variances;
};

/// Common interface for range strategies.
class RangeStrategy {
 public:
  virtual ~RangeStrategy() = default;
  virtual const std::string& name() const = 0;
  /// One summary per budget group (weights already reflect the workload).
  virtual const std::vector<budget::GroupSummary>& groups() const = 0;
  /// Measures and recovers the workload answers over the data vector x.
  virtual Result<RangeRelease> Run(const std::vector<double>& x,
                                   const linalg::Vector& group_budgets,
                                   const dp::PrivacyParams& params,
                                   Rng* rng) const = 0;
  /// Dense strategy matrix (for tests / sensitivity checks).
  virtual Result<linalg::Matrix> DenseStrategyMatrix() const = 0;
};

/// Dyadic-tree strategy: measures every tree node; a query is recovered
/// from its greedy dyadic decomposition (<= 2 nodes per level).
class HierarchyRangeStrategy : public RangeStrategy {
 public:
  HierarchyRangeStrategy(std::size_t domain_size,
                         std::vector<RangeQuery> queries);

  const std::string& name() const override { return name_; }
  const std::vector<budget::GroupSummary>& groups() const override {
    return groups_;
  }
  Result<RangeRelease> Run(const std::vector<double>& x,
                           const linalg::Vector& group_budgets,
                           const dp::PrivacyParams& params,
                           Rng* rng) const override;
  Result<linalg::Matrix> DenseStrategyMatrix() const override;

 private:
  std::string name_ = "Hier";
  transform::DyadicHierarchy tree_;
  std::vector<RangeQuery> queries_;
  std::vector<std::vector<std::size_t>> decompositions_;
  std::vector<budget::GroupSummary> groups_;
};

/// Haar-wavelet strategy: measures all N orthonormal wavelet coefficients;
/// a query q is recovered as <Haar(q), noisy coefficients>.
class WaveletRangeStrategy : public RangeStrategy {
 public:
  WaveletRangeStrategy(std::size_t domain_size,
                       std::vector<RangeQuery> queries);

  const std::string& name() const override { return name_; }
  const std::vector<budget::GroupSummary>& groups() const override {
    return groups_;
  }
  Result<RangeRelease> Run(const std::vector<double>& x,
                           const linalg::Vector& group_budgets,
                           const dp::PrivacyParams& params,
                           Rng* rng) const override;
  Result<linalg::Matrix> DenseStrategyMatrix() const override;

 private:
  std::size_t n_;
  int log2_n_;
  std::string name_ = "Wave";
  std::vector<RangeQuery> queries_;
  linalg::Matrix query_wavelet_;  // Per query: Haar transform of indicator.
  std::vector<budget::GroupSummary> groups_;
};

/// Baseline: noisy base counts aggregated per range (single group).
class BaseCountRangeStrategy : public RangeStrategy {
 public:
  BaseCountRangeStrategy(std::size_t domain_size,
                         std::vector<RangeQuery> queries);

  const std::string& name() const override { return name_; }
  const std::vector<budget::GroupSummary>& groups() const override {
    return groups_;
  }
  Result<RangeRelease> Run(const std::vector<double>& x,
                           const linalg::Vector& group_budgets,
                           const dp::PrivacyParams& params,
                           Rng* rng) const override;
  Result<linalg::Matrix> DenseStrategyMatrix() const override;

 private:
  std::size_t n_;
  std::string name_ = "Base";
  std::vector<RangeQuery> queries_;
  std::vector<budget::GroupSummary> groups_;
};

/// Workload helpers for benches/tests.
std::vector<RangeQuery> AllPrefixRanges(std::size_t n);
std::vector<RangeQuery> RandomRanges(std::size_t n, std::size_t count,
                                     Rng* rng);

}  // namespace strategy
}  // namespace dpcube

#endif  // DPCUBE_STRATEGY_RANGE_STRATEGIES_H_
