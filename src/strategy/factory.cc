// Copyright 2026 The dpcube Authors.

#include "strategy/factory.h"

#include "strategy/cluster_strategy.h"
#include "strategy/fourier_strategy.h"
#include "strategy/identity_strategy.h"
#include "strategy/query_strategy.h"

namespace dpcube {
namespace strategy {

Result<MethodInstance> MakeMethod(const std::string& method,
                                  const marginal::Workload& workload,
                                  const linalg::Vector& query_weights) {
  if (method.empty()) {
    return Status::InvalidArgument("empty method name");
  }
  std::string base = method;
  bool optimal = false;
  if (base.back() == '+') {
    optimal = true;
    base.pop_back();
  }
  MethodInstance instance;
  instance.label = method;
  instance.budget_mode = optimal ? budget::BudgetMode::kOptimal
                                 : budget::BudgetMode::kUniform;
  if (base == "I") {
    if (optimal) {
      // The optimal allocation for a single group is uniform; "I+" is
      // accepted but identical to "I".
      instance.budget_mode = budget::BudgetMode::kUniform;
    }
    instance.strategy =
        std::make_unique<IdentityStrategy>(workload, query_weights);
  } else if (base == "Q") {
    instance.strategy =
        std::make_unique<QueryStrategy>(workload, query_weights);
  } else if (base == "F") {
    instance.strategy =
        std::make_unique<FourierStrategy>(workload, query_weights);
  } else if (base == "C") {
    instance.strategy =
        std::make_unique<ClusterStrategy>(workload, query_weights);
  } else {
    return Status::InvalidArgument("unknown method '" + method +
                                   "' (expected I, Q[+], F[+] or C[+])");
  }
  return instance;
}

const std::vector<std::string>& PaperMethodNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "F", "F+", "C", "C+", "Q", "Q+", "I"};
  return *names;
}

}  // namespace strategy
}  // namespace dpcube
