// Copyright 2026 The dpcube Authors.

#include "strategy/query_strategy.h"

#include <cassert>
#include <chrono>

#include "common/thread_pool.h"
#include "dp/mechanisms.h"
#include "marginal/query_matrix.h"

namespace dpcube {
namespace strategy {

QueryStrategy::QueryStrategy(marginal::Workload workload,
                             linalg::Vector query_weights)
    : workload_(std::move(workload)) {
  assert(query_weights.empty() ||
         query_weights.size() == workload_.num_marginals());
  const auto start = std::chrono::steady_clock::now();
  // Per-marginal scoring writes only its own pre-sized slot, so the
  // fan-out is schedule- and thread-count-invariant. The body is a few
  // ns of arithmetic, so the grain keeps everything below ~4k marginals
  // inline (single chunk) and forks only for genuinely large workloads.
  const std::size_t num_marginals = workload_.num_marginals();
  groups_.assign(num_marginals, budget::GroupSummary{});
  ThreadPool::Shared().ParallelFor(0, num_marginals, 4096, [&](std::size_t i) {
    budget::GroupSummary g;
    g.column_norm = 1.0;
    g.num_rows = std::uint64_t{1} << bits::Popcount(workload_.mask(i));
    // R = I: b_row = 2 a_i for each of the marginal's cells.
    const double a = query_weights.empty() ? 1.0 : query_weights[i];
    g.weight_sum = 2.0 * a * static_cast<double>(g.num_rows);
    groups_[i] = g;
  });
  construction_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
}

Result<Release> QueryStrategy::Run(const data::SparseCounts& data,
                                   const linalg::Vector& group_budgets,
                                   const dp::PrivacyParams& params,
                                   Rng* rng) const {
  if (group_budgets.size() != groups_.size()) {
    return Status::InvalidArgument("QueryStrategy: budget count mismatch");
  }
  DPCUBE_RETURN_NOT_OK(params.Validate());
  for (const double eta : group_budgets) {
    if (!(eta > 0.0)) {
      return Status::InvalidArgument("group budgets must be positive");
    }
  }
  // Per-cuboid fan-out with one child noise stream per marginal
  // (Rng::Stream rule): bit-identical for every thread count.
  const std::uint64_t noise_base = rng->NextUint64();
  const std::size_t num_marginals = workload_.num_marginals();
  Release release;
  release.consistent = false;
  release.cell_variances.assign(num_marginals, 0.0);
  // 1-cell placeholders; every slot is move-assigned by its worker
  // before the join returns.
  release.marginals.assign(num_marginals, marginal::MarginalTable(0, 0));
  ThreadPool::Shared().ParallelFor(0, num_marginals, 1, [&](std::size_t i) {
    const double eta = group_budgets[i];
    Rng child = Rng::Stream(noise_base, i);
    marginal::MarginalTable table =
        marginal::ComputeMarginal(data, workload_.mask(i));
    for (std::size_t g = 0; g < table.num_cells(); ++g) {
      table.value(g) += dp::SampleNoise(eta, params, &child);
    }
    release.cell_variances[i] = dp::MeasurementVariance(eta, params);
    release.marginals[i] = std::move(table);
  });
  return release;
}

Result<linalg::Matrix> QueryStrategy::DenseStrategyMatrix() const {
  if (workload_.d() > 14) {
    return Status::InvalidArgument("domain too large to materialise Q");
  }
  return marginal::BuildQueryMatrix(workload_);
}

Result<int> QueryStrategy::RowGroupOfDenseRow(std::size_t row) const {
  marginal::RowLayout layout(workload_);
  if (row >= layout.total_rows()) {
    return Status::OutOfRange("dense row out of range");
  }
  return static_cast<int>(layout.Locate(row).first);
}


Result<linalg::Vector> QueryStrategy::PredictCellVariances(
    const linalg::Vector& group_budgets,
    const dp::PrivacyParams& params) const {
  if (group_budgets.size() != groups_.size()) {
    return Status::InvalidArgument("QueryStrategy: budget count mismatch");
  }
  DPCUBE_RETURN_NOT_OK(params.Validate());
  linalg::Vector out;
  out.reserve(groups_.size());
  for (double eta : group_budgets) {
    if (!(eta > 0.0)) {
      return Status::InvalidArgument("group budgets must be positive");
    }
    out.push_back(dp::MeasurementVariance(eta, params));
  }
  return out;
}

}  // namespace strategy
}  // namespace dpcube
