// Copyright 2026 The dpcube Authors.

#include "strategy/sketch_strategy.h"

#include <algorithm>
#include <cmath>

#include "dp/mechanisms.h"

namespace dpcube {
namespace strategy {
namespace {

// SplitMix64-style mix for per-(rep, cell) hashing.
std::uint64_t Mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

SketchStrategy::SketchStrategy(int d, std::size_t buckets,
                               std::size_t repetitions, std::uint64_t seed)
    : d_(d), buckets_(buckets), repetitions_(repetitions), seed_(seed) {
  groups_.reserve(repetitions_);
  for (std::size_t rep = 0; rep < repetitions_; ++rep) {
    budget::GroupSummary g;
    g.column_norm = 1.0;
    g.num_rows = buckets_;
    // Each point estimate reads one bucket per repetition with coefficient
    // +-1: under a full point-query workload b_bucket = 2 * cells hashed to
    // the bucket; summed over the repetition that is 2 * 2^d.
    g.weight_sum = 2.0 * std::pow(2.0, d_);
    groups_.push_back(g);
  }
}

std::size_t SketchStrategy::BucketOf(std::size_t rep, bits::Mask cell) const {
  return Mix(seed_ ^ (rep * 0x9e3779b97f4a7c15ULL) ^ cell) % buckets_;
}

double SketchStrategy::SignOf(std::size_t rep, bits::Mask cell) const {
  return (Mix(seed_ ^ 0xda3e39cb94b95bdbULL ^ (rep * 0xd1b54a32d192ed03ULL) ^
              cell) &
          1)
             ? 1.0
             : -1.0;
}

Result<linalg::Vector> SketchStrategy::EstimatePoints(
    const data::SparseCounts& data, const std::vector<bits::Mask>& cells,
    const linalg::Vector& group_budgets, const dp::PrivacyParams& params,
    Rng* rng) const {
  if (group_budgets.size() != repetitions_) {
    return Status::InvalidArgument("SketchStrategy: budget count mismatch");
  }
  DPCUBE_RETURN_NOT_OK(params.Validate());
  if (data.d() != d_) {
    return Status::InvalidArgument("SketchStrategy: dimension mismatch");
  }

  // Build all noisy counters.
  std::vector<double> counters(repetitions_ * buckets_, 0.0);
  for (std::size_t rep = 0; rep < repetitions_; ++rep) {
    for (const auto& entry : data.entries()) {
      counters[rep * buckets_ + BucketOf(rep, entry.cell)] +=
          SignOf(rep, entry.cell) * entry.count;
    }
    const double eta = group_budgets[rep];
    if (!(eta > 0.0)) {
      return Status::InvalidArgument("budgets must be positive");
    }
    for (std::size_t b = 0; b < buckets_; ++b) {
      counters[rep * buckets_ + b] += dp::SampleNoise(eta, params, rng);
    }
  }

  // Median-of-repetitions point estimates.
  linalg::Vector out(cells.size());
  std::vector<double> estimates(repetitions_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    for (std::size_t rep = 0; rep < repetitions_; ++rep) {
      estimates[rep] = SignOf(rep, cells[i]) *
                       counters[rep * buckets_ + BucketOf(rep, cells[i])];
    }
    std::nth_element(estimates.begin(),
                     estimates.begin() + repetitions_ / 2, estimates.end());
    out[i] = estimates[repetitions_ / 2];
  }
  return out;
}

Result<linalg::Matrix> SketchStrategy::DenseStrategyMatrix() const {
  if (d_ > 14) {
    return Status::InvalidArgument("domain too large to materialise sketch");
  }
  const std::uint64_t n = std::uint64_t{1} << d_;
  linalg::Matrix s(repetitions_ * buckets_, n);
  for (std::size_t rep = 0; rep < repetitions_; ++rep) {
    for (std::uint64_t cell = 0; cell < n; ++cell) {
      s(rep * buckets_ + BucketOf(rep, cell), cell) = SignOf(rep, cell);
    }
  }
  return s;
}

}  // namespace strategy
}  // namespace dpcube
