// Copyright 2026 The dpcube Authors.

#include "strategy/tensor_wavelet_strategy.h"

#include <cassert>
#include <utility>

#include "dp/mechanisms.h"
#include "transform/tensor_haar.h"

namespace dpcube {
namespace strategy {

namespace {

int Log2OfPowerOfTwo(std::size_t n) {
  int g = 0;
  while ((std::size_t{1} << g) < n) ++g;
  assert((std::size_t{1} << g) == n && "grid side must be a power of two");
  return g;
}

}  // namespace

TensorWaveletStrategy::TensorWaveletStrategy(
    std::size_t grid_side, std::vector<RectangleQuery> queries)
    : n_(grid_side), queries_(std::move(queries)) {
  const int g = Log2OfPowerOfTwo(n_);
  log2_dims_ = {g, g};
  const std::size_t cells = n_ * n_;

  // Transform every query's indicator: row q holds the coefficients
  // recovering query q from the measured coefficient vector.
  query_coeffs_ = linalg::Matrix(queries_.size(), cells);
  std::vector<double> indicator(cells);
  for (std::size_t q = 0; q < queries_.size(); ++q) {
    const RectangleQuery& rect = queries_[q];
    indicator.assign(cells, 0.0);
    for (std::size_t r = rect.row_lo; r < rect.row_hi; ++r) {
      for (std::size_t c = rect.col_lo; c < rect.col_hi; ++c) {
        indicator[r * n_ + c] = 1.0;
      }
    }
    transform::TensorHaarForward(&indicator, log2_dims_);
    query_coeffs_.SetRow(q, indicator);
  }

  // Group summaries: b_i = 2 sum_q coeff_{q,i}^2.
  const int num_groups = transform::TensorHaarNumGroups(log2_dims_);
  groups_.assign(num_groups, budget::GroupSummary{});
  for (int r = 0; r < num_groups; ++r) {
    groups_[r].column_norm = transform::TensorHaarGroupMagnitude(r, log2_dims_);
  }
  for (std::size_t i = 0; i < cells; ++i) {
    const int group = transform::TensorHaarGroupOfIndex(i, log2_dims_);
    double b = 0.0;
    for (std::size_t q = 0; q < queries_.size(); ++q) {
      const double w = query_coeffs_(q, i);
      b += w * w;
    }
    groups_[group].weight_sum += 2.0 * b;
    groups_[group].num_rows += 1;
  }
}

int TensorWaveletStrategy::GroupOfCoefficient(std::size_t index) const {
  return transform::TensorHaarGroupOfIndex(index, log2_dims_);
}

Result<QuadtreeRelease> TensorWaveletStrategy::Run(
    const std::vector<double>& grid, const linalg::Vector& group_budgets,
    const dp::PrivacyParams& params, Rng* rng) const {
  const std::size_t cells = n_ * n_;
  if (grid.size() != cells) {
    return Status::InvalidArgument("tensor wavelet: grid size mismatch");
  }
  if (group_budgets.size() != groups_.size()) {
    return Status::InvalidArgument("tensor wavelet: one budget per group");
  }
  DPCUBE_RETURN_NOT_OK(params.Validate());

  // Measure: transform, then per-coefficient noise at its group budget.
  std::vector<double> coeffs = grid;
  transform::TensorHaarForward(&coeffs, log2_dims_);
  linalg::Vector coeff_vars(cells, 0.0);
  for (std::size_t i = 0; i < cells; ++i) {
    const int group = transform::TensorHaarGroupOfIndex(i, log2_dims_);
    const double eps_i = group_budgets[group];
    if (!(eps_i > 0.0)) {
      return Status::InvalidArgument("tensor wavelet: budgets must be > 0");
    }
    coeffs[i] += dp::SampleNoise(eps_i, params, rng);
    coeff_vars[i] = dp::MeasurementVariance(eps_i, params);
  }

  // Recover each rectangle from its transformed indicator.
  QuadtreeRelease out;
  out.answers.assign(queries_.size(), 0.0);
  out.variances.assign(queries_.size(), 0.0);
  for (std::size_t q = 0; q < queries_.size(); ++q) {
    const double* w = query_coeffs_.RowData(q);
    double answer = 0.0;
    double variance = 0.0;
    for (std::size_t i = 0; i < cells; ++i) {
      answer += w[i] * coeffs[i];
      variance += w[i] * w[i] * coeff_vars[i];
    }
    out.answers[q] = answer;
    out.variances[q] = variance;
  }
  return out;
}

Result<linalg::Matrix> TensorWaveletStrategy::DenseStrategyMatrix() const {
  if (n_ > 64) {
    return Status::InvalidArgument(
        "tensor wavelet: dense materialisation limited to side <= 64");
  }
  return transform::TensorHaarMatrix(log2_dims_);
}

}  // namespace strategy
}  // namespace dpcube
