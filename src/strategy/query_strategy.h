// Copyright 2026 The dpcube Authors.
//
// Strategy Q: measure each workload marginal directly (S = Q, R = I), the
// approach of Dwork (ICALP 2006) applied per marginal. One budget group
// per marginal (C_r = 1): a tuple lands in exactly one cell of every
// marginal, so the grouping property holds with the rows of each marginal
// forming a group. The paper's Q+ variant is this strategy under
// budget::OptimalGroupBudgets, which favours marginals with fewer cells.

#ifndef DPCUBE_STRATEGY_QUERY_STRATEGY_H_
#define DPCUBE_STRATEGY_QUERY_STRATEGY_H_

#include <string>
#include <vector>

#include "strategy/marginal_strategy.h"

namespace dpcube {
namespace strategy {

class QueryStrategy : public MarginalStrategy {
 public:
  /// `query_weights`: per-marginal importance a >= 0 in the objective
  /// a^T Var(y) (empty = all ones). Weighted budgeting gives important
  /// marginals larger budgets; measurement itself is unaffected.
  explicit QueryStrategy(marginal::Workload workload,
                         linalg::Vector query_weights = {});

  const std::string& name() const override { return name_; }
  const marginal::Workload& workload() const override { return workload_; }
  const std::vector<budget::GroupSummary>& groups() const override {
    return groups_;
  }

  Result<Release> Run(const data::SparseCounts& data,
                      const linalg::Vector& group_budgets,
                      const dp::PrivacyParams& params,
                      Rng* rng) const override;

  Result<linalg::Vector> PredictCellVariances(
      const linalg::Vector& group_budgets,
      const dp::PrivacyParams& params) const override;

  Result<linalg::Matrix> DenseStrategyMatrix() const override;
  Result<int> RowGroupOfDenseRow(std::size_t row) const override;

 private:
  std::string name_ = "Q";
  marginal::Workload workload_;
  std::vector<budget::GroupSummary> groups_;
};

}  // namespace strategy
}  // namespace dpcube

#endif  // DPCUBE_STRATEGY_QUERY_STRATEGY_H_
