// Copyright 2026 The dpcube Authors.
//
// Name-based construction of the paper's evaluated methods. A method
// string is a strategy letter from Section 5 — "I", "Q", "F", "C" —
// optionally followed by "+" for optimal non-uniform budgets (the
// paper's S+ notation). Used by tools, benches and examples.

#ifndef DPCUBE_STRATEGY_FACTORY_H_
#define DPCUBE_STRATEGY_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "budget/grouped_budget.h"
#include "common/status.h"
#include "strategy/marginal_strategy.h"

namespace dpcube {
namespace strategy {

/// A parsed method: the strategy instance plus the budget mode.
struct MethodInstance {
  std::string label;
  std::unique_ptr<MarginalStrategy> strategy;
  budget::BudgetMode budget_mode = budget::BudgetMode::kUniform;
};

/// Builds the strategy named by `method` ("F+", "C", "Q+", "I", ...) over
/// the workload. `query_weights` (empty = all ones) is forwarded to the
/// strategy's budgeting. Fails on unknown names. Note: "C"/"C+" runs the
/// clustering search, which can take a while on large workloads.
Result<MethodInstance> MakeMethod(const std::string& method,
                                  const marginal::Workload& workload,
                                  const linalg::Vector& query_weights = {});

/// The seven method names of the paper's experimental study, in plot
/// order: F, F+, C, C+, Q, Q+, I.
const std::vector<std::string>& PaperMethodNames();

}  // namespace strategy
}  // namespace dpcube

#endif  // DPCUBE_STRATEGY_FACTORY_H_
