// Copyright 2026 The dpcube Authors.
//
// The typed mutation record — the single vocabulary every durable state
// change speaks. The serving tier has exactly four mutating verbs:
//
//   kLoadRelease   — a release CSV was loaded under a name;
//   kUnloadRelease — a release was removed;
//   kQuotaCharge   — the admission controller charged (or denied) a
//                    query against a release's lifetime quota;
//   kQuotaConfig   — the quota configuration the server runs under
//                    (recorded so a replayed ledger is interpreted
//                    against the limits that produced it).
//
// Each mutation encodes to a self-delimiting binary payload (the same
// little-endian, bounds-check-before-allocate idioms as
// service/wire_codec) which the WAL layer wraps in a CRC-guarded
// record. Decode rejects unknown kinds, truncated buffers, and
// trailing bytes, so replay can never misinterpret a corrupt payload
// that happened to pass the CRC.

#ifndef DPCUBE_SERVICE_MUTATION_H_
#define DPCUBE_SERVICE_MUTATION_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace dpcube {
namespace service {

enum class MutationKind : std::uint8_t {
  kLoadRelease = 1,
  kUnloadRelease = 2,
  kQuotaCharge = 3,
  kQuotaConfig = 4,
};

/// "load_release", "unload_release", ... ("unknown" for invalid values).
const char* MutationKindName(MutationKind kind);

/// One state change. Which fields are meaningful depends on `kind`;
/// the factories below construct each verb with exactly its fields.
struct Mutation {
  MutationKind kind = MutationKind::kLoadRelease;

  std::string name;  ///< Release name (load/unload/charge).
  std::string path;  ///< Source CSV path (load only).

  // kQuotaCharge: exactly one of the three counters is 1.
  std::uint32_t charged = 0;
  std::uint32_t denied_lifetime = 0;
  std::uint32_t denied_rate = 0;

  // kQuotaConfig.
  std::uint64_t lifetime_limit = 0;
  std::uint64_t rate_limit = 0;
  std::uint32_t rate_window_seconds = 0;

  static Mutation LoadRelease(std::string name, std::string path);
  static Mutation UnloadRelease(std::string name);
  static Mutation QuotaCharge(std::string name, std::uint32_t charged,
                              std::uint32_t denied_lifetime,
                              std::uint32_t denied_rate);
  static Mutation QuotaConfig(std::uint64_t lifetime_limit,
                              std::uint64_t rate_limit,
                              std::uint32_t rate_window_seconds);
};

/// Serializes `mutation` to its binary payload.
std::string EncodeMutation(const Mutation& mutation);

/// Parses a payload produced by EncodeMutation. InvalidArgument on
/// unknown kind, truncation, oversized strings, or trailing bytes.
Status DecodeMutation(std::string_view payload, Mutation* out);

}  // namespace service
}  // namespace dpcube

#endif  // DPCUBE_SERVICE_MUTATION_H_
