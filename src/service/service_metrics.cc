// Copyright 2026 The dpcube Authors.

#include "service/service_metrics.h"

#include <string>

namespace dpcube {
namespace service {

const char* VerbName(RequestKind kind) {
  switch (kind) {
    case RequestKind::kInvalid:
      return "invalid";
    case RequestKind::kHello:
      return "hello";
    case RequestKind::kLoad:
      return "load";
    case RequestKind::kUnload:
      return "unload";
    case RequestKind::kList:
      return "list";
    case RequestKind::kQuery:
      return "query";
    case RequestKind::kBatch:
      return "batch";
    case RequestKind::kCacheStats:
      return "stats";
    case RequestKind::kServerStats:
      return "server_stats";
    case RequestKind::kQuit:
      return "quit";
  }
  return "invalid";
}

std::shared_ptr<const SessionMetrics> SessionMetrics::Create(
    metrics::Registry* registry) {
  auto table = std::make_shared<SessionMetrics>();
  for (int k = 0; k < kKinds; ++k) {
    const std::string labels =
        std::string("verb=\"") + VerbName(static_cast<RequestKind>(k)) + "\"";
    table->requests[static_cast<std::size_t>(k)] = registry->GetCounter(
        "dpcube_requests_total", labels,
        "Requests processed by sessions, by protocol verb.");
    table->latency[static_cast<std::size_t>(k)] = registry->GetHistogram(
        "dpcube_request_latency_microseconds", labels,
        "Per-verb request handling latency on the session thread.");
  }
  for (int c = 1; c < kCodes; ++c) {
    const std::string labels =
        std::string("code=\"") +
        ErrorCodeName(static_cast<ErrorCode>(c)) + "\"";
    table->errors[static_cast<std::size_t>(c)] = registry->GetCounter(
        "dpcube_errors_total", labels,
        "Error responses emitted, by structured error code.");
  }
  return table;
}

}  // namespace service
}  // namespace dpcube
