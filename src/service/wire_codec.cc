// Copyright 2026 The dpcube Authors.

#include "service/wire_codec.h"

#include <cstdio>
#include <cstring>
#include <sstream>

namespace dpcube {
namespace service {

namespace {

void AppendU32(std::string* out, std::uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

void AppendU64(std::string* out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void AppendF64(std::string* out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

std::uint32_t ReadU32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t ReadU64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

double ReadF64(const unsigned char* p) {
  const std::uint64_t bits = ReadU64(p);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

std::string EncodeBinaryRecord(const Response& response) {
  const bool has_values = response.has_query && response.query.status.ok();
  std::uint8_t flags = 0;
  std::uint64_t mask = 0;
  double variance = 0.0;
  const std::vector<double>* values = nullptr;
  std::string message;
  ErrorCode code = response.code;
  if (has_values) {
    flags |= kRecordFlagHasValues;
    if (response.query.cache_hit) flags |= kRecordFlagCacheHit;
    mask = response.query.beta;
    variance = response.query.variance;
    values = &response.query.values;
  } else if (response.has_query) {
    // A typed query answer whose status is an error: code byte + the
    // status text (the "ERR " prefix is implied by the code).
    code = ToErrorCode(response.query.status);
    message = response.query.status.ToString();
  } else if (response.code != ErrorCode::kOk) {
    message = response.message;
  } else {
    // Successful non-query response: carry the full v1 line.
    message = FormatResponseLine(response);
  }

  std::string record;
  const std::size_t n = values != nullptr ? values->size() : 0;
  record.reserve(kBinaryRecordHeaderBytes + 8 * n + message.size());
  record.push_back(static_cast<char>(kBinaryRecordMagic));
  record.push_back(static_cast<char>(code));
  record.push_back(static_cast<char>(flags));
  record.push_back('\0');  // reserved
  AppendU32(&record, static_cast<std::uint32_t>(message.size()));
  AppendU64(&record, mask);
  AppendF64(&record, variance);
  AppendU32(&record, static_cast<std::uint32_t>(n));
  if (values != nullptr) {
    for (const double v : *values) AppendF64(&record, v);
  }
  record += message;
  return record;
}

void EncodeResponse(const Response& response, Codec codec,
                    std::ostream& out) {
  if (codec == Codec::kBinary) {
    const std::string record = EncodeBinaryRecord(response);
    out.write(record.data(), static_cast<std::streamsize>(record.size()));
  } else {
    out << FormatResponseLine(response) << "\n";
  }
}

std::string EncodeResponseToString(const Response& response, Codec codec) {
  if (codec == Codec::kBinary) return EncodeBinaryRecord(response);
  return FormatResponseLine(response) + "\n";
}

DecodeRecordResult DecodeBinaryRecord(std::string_view data,
                                      WireRecord* record,
                                      std::size_t* consumed,
                                      std::string* error) {
  if (data.empty()) return DecodeRecordResult::kNeedMore;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(data.data());
  if (p[0] != kBinaryRecordMagic) {
    if (error != nullptr) {
      char hex[8];
      std::snprintf(hex, sizeof(hex), "0x%02x", p[0]);
      *error = std::string("bad record magic ") + hex;
    }
    return DecodeRecordResult::kError;
  }
  if (data.size() < kBinaryRecordHeaderBytes) {
    return DecodeRecordResult::kNeedMore;
  }
  const std::uint8_t code_byte = p[1];
  if (code_byte > static_cast<std::uint8_t>(ErrorCode::kInternal)) {
    if (error != nullptr) {
      *error = "bad record code " + std::to_string(code_byte);
    }
    return DecodeRecordResult::kError;
  }
  const std::uint8_t flags = p[2];
  const std::uint64_t message_len = ReadU32(p + 4);
  const std::uint64_t value_count = ReadU32(p + 24);
  // Bounds first, allocation after: the claimed sizes are attacker-
  // controlled, but they can never exceed the enclosing frame payload,
  // which the FrameDecoder already capped.
  const std::uint64_t need =
      kBinaryRecordHeaderBytes + 8 * value_count + message_len;
  if (data.size() < need) return DecodeRecordResult::kNeedMore;

  record->code = static_cast<ErrorCode>(code_byte);
  record->cache_hit = (flags & kRecordFlagCacheHit) != 0;
  record->has_values = (flags & kRecordFlagHasValues) != 0;
  record->mask = ReadU64(p + 8);
  record->variance = ReadF64(p + 16);
  record->values.clear();
  record->values.reserve(value_count);
  const unsigned char* cursor = p + kBinaryRecordHeaderBytes;
  for (std::uint64_t i = 0; i < value_count; ++i, cursor += 8) {
    record->values.push_back(ReadF64(cursor));
  }
  record->message.assign(reinterpret_cast<const char*>(cursor),
                         message_len);
  *consumed = static_cast<std::size_t>(need);
  return DecodeRecordResult::kRecord;
}

Result<std::vector<WireRecord>> DecodeRecordStream(
    std::string_view payload) {
  std::vector<WireRecord> records;
  std::size_t offset = 0;
  while (offset < payload.size()) {
    WireRecord record;
    std::size_t consumed = 0;
    std::string error;
    switch (DecodeBinaryRecord(payload.substr(offset), &record, &consumed,
                               &error)) {
      case DecodeRecordResult::kRecord:
        records.push_back(std::move(record));
        offset += consumed;
        break;
      case DecodeRecordResult::kNeedMore:
        return Status::InvalidArgument(
            "truncated binary record at payload offset " +
            std::to_string(offset));
      case DecodeRecordResult::kError:
        return Status::InvalidArgument("binary record stream: " + error);
    }
  }
  return records;
}

std::string FormatWireRecord(const WireRecord& record) {
  if (record.has_values) {
    QueryResponse query;
    query.beta = record.mask;
    query.variance = record.variance;
    query.cache_hit = record.cache_hit;
    query.values = record.values;
    return FormatResponse(query);
  }
  if (record.code == ErrorCode::kBusy) return "BUSY " + record.message;
  if (record.code != ErrorCode::kOk) return "ERR " + record.message;
  return record.message;
}

}  // namespace service
}  // namespace dpcube
