// Copyright 2026 The dpcube Authors.

#include "service/serve_config.h"

#include <set>

#include "service/request.h"

namespace dpcube {
namespace service {

namespace {

// The serve layer cannot include net/framing.h (service must stay
// net-free), so the frame ceiling is restated here; a static_assert in
// net/socket_listener.cc pins it to net::kMaxFramePayload.
constexpr std::size_t kMaxFrameCeiling = std::size_t{1} << 24;

Status BadFlag(const char* flag, const std::string& value,
               const char* want) {
  std::string msg = std::string("bad --") + flag + " '" + value + "'";
  if (want != nullptr && want[0] != '\0') {
    msg += std::string(" (want ") + want + ")";
  }
  return Status::InvalidArgument(msg);
}

}  // namespace

Result<ServeConfig> ParseServeConfig(
    const std::map<std::string, std::string>& flags) {
  static const std::set<std::string> kKnown = {
      "threads",  // Global, consumed by the CLI before dispatch.
      "cache-cells", "release", "name", "state-dir", "snapshot-every",
      "listen", "max-conns", "max-inflight", "max-queue", "drain-ms",
      "net-threads", "query-quota", "query-rate-limit", "http-listen",
      "http-token", "access-log", "slow-query-ms", "trace-ring",
      "max-frame"};
  for (const auto& [flag, value] : flags) {
    (void)value;
    if (kKnown.count(flag) == 0) {
      return Status::InvalidArgument("unknown serve flag --" + flag);
    }
  }

  ServeConfig config;

  const auto cache_it = flags.find("cache-cells");
  if (cache_it != flags.end() &&
      !ParseSize(cache_it->second, &config.cache_cells)) {
    return BadFlag("cache-cells", cache_it->second, "");
  }
  const auto release_it = flags.find("release");
  if (release_it != flags.end()) config.release_path = release_it->second;
  const auto name_it = flags.find("name");
  if (name_it != flags.end()) {
    if (config.release_path.empty()) {
      return Status::InvalidArgument("--name requires --release");
    }
    config.release_name = name_it->second;
  }

  const auto state_it = flags.find("state-dir");
  if (state_it != flags.end()) {
    if (state_it->second.empty()) {
      return Status::InvalidArgument("--state-dir must not be empty");
    }
    config.state_dir = state_it->second;
  }
  const auto snap_it = flags.find("snapshot-every");
  if (snap_it != flags.end()) {
    if (config.state_dir.empty()) {
      return Status::InvalidArgument("--snapshot-every requires --state-dir");
    }
    std::size_t every = 0;
    if (!ParseSize(snap_it->second, &every) || every == 0 ||
        every > 1000000000) {
      return BadFlag("snapshot-every", snap_it->second, "1..1000000000");
    }
    config.snapshot_every = every;
  }

  const auto listen_it = flags.find("listen");
  if (listen_it != flags.end()) config.listen_address = listen_it->second;
  if (!config.network()) {
    // Every remaining flag only means something on the TCP path; a
    // user passing one without --listen almost certainly expected a
    // network server, so refuse rather than silently ignore.
    static const char* kNetworkOnly[] = {
        "max-conns", "max-inflight", "max-queue", "drain-ms",
        "net-threads", "query-quota", "query-rate-limit", "http-listen",
        "http-token", "access-log", "slow-query-ms", "trace-ring",
        "max-frame"};
    for (const char* flag : kNetworkOnly) {
      if (flags.count(flag) != 0) {
        return Status::InvalidArgument(std::string("--") + flag +
                                       " requires --listen");
      }
    }
    return config;
  }

  const struct {
    const char* flag;
    int* target;
  } caps[] = {{"max-conns", &config.max_connections},
              {"max-inflight", &config.max_inflight},
              {"max-queue", &config.max_queue_depth},
              {"drain-ms", &config.drain_timeout_ms},
              {"net-threads", &config.net_threads}};
  for (const auto& cap : caps) {
    const auto it = flags.find(cap.flag);
    if (it == flags.end()) continue;
    std::size_t value = 0;
    if (!ParseSize(it->second, &value) || value == 0 || value > 1000000000) {
      return BadFlag(cap.flag, it->second, "1..1000000000");
    }
    *cap.target = static_cast<int>(value);
  }

  const auto quota_it = flags.find("query-quota");
  if (quota_it != flags.end()) {
    std::size_t quota = 0;
    if (!ParseSize(quota_it->second, &quota) || quota == 0) {
      return BadFlag("query-quota", quota_it->second, "a positive count");
    }
    config.query_quota = quota;
  }
  const auto rate_it = flags.find("query-rate-limit");
  if (rate_it != flags.end()) {
    // "N" or "N/WINDOW" with an optional trailing 's' on the window
    // ("100/60s" = 100 queries per trailing 60 seconds).
    std::string limit_text = rate_it->second;
    std::string window_text;
    const std::size_t slash = limit_text.find('/');
    if (slash != std::string::npos) {
      window_text = limit_text.substr(slash + 1);
      limit_text.resize(slash);
      if (!window_text.empty() && window_text.back() == 's') {
        window_text.pop_back();
      }
    }
    std::size_t limit = 0;
    std::size_t window = 60;
    if (!ParseSize(limit_text, &limit) || limit == 0 ||
        (!window_text.empty() &&
         (!ParseSize(window_text, &window) || window == 0 ||
          window > 3600))) {
      return BadFlag("query-rate-limit", rate_it->second,
                     "N or N/WINDOWs, window 1..3600 seconds");
    }
    config.query_rate_limit = limit;
    config.query_rate_window_seconds = static_cast<int>(window);
  }

  const auto http_it = flags.find("http-listen");
  if (http_it != flags.end()) config.http_listen_address = http_it->second;
  const auto token_it = flags.find("http-token");
  if (token_it != flags.end()) {
    if (config.http_listen_address.empty()) {
      return Status::InvalidArgument("--http-token requires --http-listen");
    }
    config.http_token = token_it->second;
  }
  const auto access_it = flags.find("access-log");
  if (access_it != flags.end()) config.access_log_path = access_it->second;
  const auto slow_it = flags.find("slow-query-ms");
  if (slow_it != flags.end()) {
    std::size_t slow_ms = 0;
    if (!ParseSize(slow_it->second, &slow_ms) || slow_ms == 0 ||
        slow_ms > 3600000) {
      return BadFlag("slow-query-ms", slow_it->second, "1..3600000");
    }
    config.slow_query_ms = static_cast<int>(slow_ms);
  }
  const auto ring_it = flags.find("trace-ring");
  if (ring_it != flags.end()) {
    std::size_t ring = 0;
    if (!ParseSize(ring_it->second, &ring) || ring > 1000000) {
      return BadFlag("trace-ring", ring_it->second, "0..1000000");
    }
    config.trace_ring_capacity = ring;
  }
  const auto frame_it = flags.find("max-frame");
  if (frame_it != flags.end()) {
    std::size_t max_frame = 0;
    if (!ParseSize(frame_it->second, &max_frame) || max_frame < 64 ||
        max_frame > kMaxFrameCeiling) {
      return BadFlag("max-frame", frame_it->second, "64..16777216");
    }
    config.max_frame_payload = max_frame;
  }

  return config;
}

}  // namespace service
}  // namespace dpcube
