// Copyright 2026 The dpcube Authors.
//
// The durable state machine behind `serve --state-dir DIR`. Every
// mutation of serving state — release load/unload, lifetime quota
// charge or denial, quota-config change — is expressed as one typed
// Mutation record (service/mutation.h), appended to a CRC-guarded,
// fsync'd changelog (common/wal.h) BEFORE being applied to the
// in-memory structures. Periodic snapshots bound replay time and let
// old changelog segments be truncated away.
//
// Directory layout (`LSN` rendered as a zero-padded 20-digit decimal so
// lexicographic order is numeric order):
//
//   state/
//     snapshot.00000000000000000042   <- state as of LSN 42 (CRC'd)
//     changelog.00000000000000000043  <- records with LSN >= 43
//
// Snapshot/rotation lifecycle (SnapshotNow): encode the full state at
// LSN S -> AtomicWriteFile snapshot.S (write-temp + fsync + rename +
// dir fsync) -> open changelog.(S+1) for subsequent appends -> fsync
// the directory -> unlink changelog segments whose base LSN <= S. A
// crash between any two steps is safe: boot always loads the newest
// CRC-valid snapshot and replays only records with LSN > S, so a stale
// segment that escaped truncation merely replays records the snapshot
// already covers (each is skipped by the LSN watermark).
//
// Recovery (Open): load the newest CRC-valid snapshot (a corrupt one
// falls back to the next older), then replay remaining changelog
// segments in LSN order. A torn tail on the NEWEST segment — the bytes
// a crash mid-append leaves — is truncated and boot continues; invalid
// bytes anywhere else are mid-chain corruption and boot fails loudly.
//
// Threading: Apply is safe from any thread. Quota charges serialize
// only the append + ledger bump under one mutex and fsync OUTSIDE it
// via the changelog's group commit, so concurrent charges coalesce into
// ~1 fsync. Loads run the expensive cube fit outside every lock. Reads
// (query serving) never touch this class — the store's lock-free
// shared_ptr snapshots are unchanged.

#ifndef DPCUBE_SERVICE_DURABLE_STATE_H_
#define DPCUBE_SERVICE_DURABLE_STATE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/log.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/sync.h"
#include "common/wal.h"
#include "service/mutation.h"
#include "service/query_service.h"
#include "service/release_store.h"

namespace dpcube {
namespace service {

struct DurableOptions {
  std::string dir;  ///< State directory (created if missing).
  /// Snapshot + rotate after this many appended records.
  std::uint64_t snapshot_every = 1024;
  // The quota configuration the server runs under, recorded into the
  // log (kQuotaConfig) whenever it differs from the restored one.
  std::uint64_t lifetime_quota = 0;
  std::uint64_t rate_limit = 0;
  int rate_window_seconds = 60;
};

/// What boot-time recovery saw (surfaced in /statusz and logs).
struct ReplaySummary {
  std::uint64_t snapshot_lsn = 0;   ///< 0 = booted without a snapshot.
  std::uint64_t records = 0;        ///< Changelog records replayed.
  std::uint64_t torn_bytes = 0;     ///< Truncated torn-tail bytes.
  std::uint64_t skipped_releases = 0;  ///< Releases whose CSV failed to load.
  std::uint64_t last_lsn = 0;       ///< Highest LSN restored.
  double seconds = 0.0;             ///< Wall-clock spent in recovery.
};

class DurableState {
 public:
  /// Recovers from `options.dir` (creating it on first boot): loads the
  /// newest valid snapshot, replays the changelog into `store` /
  /// `service`, truncates a torn tail, and opens the log for appending.
  /// Fails on mid-chain corruption rather than serving partial state.
  static Result<std::shared_ptr<DurableState>> Open(
      const DurableOptions& options, std::shared_ptr<ReleaseStore> store,
      std::shared_ptr<const QueryService> service);

  /// The single mutating entry point: logs `mutation` durably, then
  /// applies it in memory. For kLoadRelease the expensive cube fit runs
  /// first (outside all locks) so a failed load never reaches the log;
  /// for kQuotaCharge the ledger bump and append share one short
  /// critical section and the fsync group-commits outside it. An error
  /// means the mutation is NOT durable and was NOT applied (callers
  /// must fail the triggering operation — a charge that cannot be
  /// logged must deny the query).
  Status Apply(const Mutation& mutation);

  /// Forces a snapshot + changelog rotation now (also runs
  /// automatically every `snapshot_every` records).
  Status SnapshotNow();

  // Recovery + monitoring surface.
  const ReplaySummary& replay_summary() const { return replay_; }
  std::uint64_t last_lsn() const;
  std::uint64_t snapshot_count() const;
  std::uint64_t quota_denied() const;
  std::uint64_t rate_denied() const;
  /// name -> lifetime charges, sorted by name (the durable ledger).
  std::vector<std::pair<std::string, std::uint64_t>> QuotaLedger() const;
  /// name -> source CSV path for every restored/loaded release.
  std::vector<std::pair<std::string, std::string>> ReleasePaths() const;

  /// Registers the dpcube_wal_* families (appended records, fsync
  /// latency, snapshot count/age, replay duration, last LSN).
  void RegisterMetrics(metrics::Registry* registry);

  /// The "durability:" block appended to /statusz — deliberately stable
  /// and byte-exact across a crash + replay (CI diffs it).
  std::string FormatStatusz() const;

 private:
  DurableState(DurableOptions options, std::shared_ptr<ReleaseStore> store,
               std::shared_ptr<const QueryService> service);

  // Boot-time recovery runs under mu_ for the whole sequence (Open takes
  // the lock once); there is no concurrency yet, but one discipline
  // keeps the analysis airtight.
  Status Recover() REQUIRES(mu_);
  Status ApplyReplayed(const Mutation& mutation) REQUIRES(mu_);
  Status LoadSnapshot(const std::string& path) REQUIRES(mu_);
  std::string EncodeSnapshotLocked(std::uint64_t last_lsn) const
      REQUIRES(mu_);

  Status ApplyLoad(const Mutation& mutation);
  Status ApplyUnload(const Mutation& mutation);
  Status ApplyCharge(const Mutation& mutation);
  Status ApplyConfig(const Mutation& mutation);

  /// Appends to the live changelog under mu_ and snapshots/rotates if
  /// due. Returns the record's LSN via *lsn and the changelog it landed
  /// in via *log (so the caller can Sync outside mu_ even if a
  /// concurrent rotation swaps changelog_).
  Status AppendLocked(const Mutation& mutation, std::uint64_t* lsn,
                      std::shared_ptr<wal::Changelog>* log) REQUIRES(mu_);
  Status SnapshotLocked() REQUIRES(mu_);

  const DurableOptions options_;
  const std::shared_ptr<ReleaseStore> store_;
  const std::shared_ptr<const QueryService> service_;
  logging::Logger log_;  ///< stderr diagnostics (boot, replay, warnings).

  /// Serializes load/unload so their multi-step sequences (fit ->
  /// append -> insert) do not interleave; never held during the fit's
  /// expensive linear algebra... the fit runs before acquiring it.
  /// Ordered before mu_ (ApplyLoad/ApplyUnload take load_mu_ -> mu_).
  sync::Mutex load_mu_ ACQUIRED_BEFORE(mu_);

  mutable sync::Mutex mu_;
  std::shared_ptr<wal::Changelog> changelog_ GUARDED_BY(mu_);
  /// First LSN in the live segment.
  std::uint64_t changelog_base_lsn_ GUARDED_BY(mu_) = 1;
  std::uint64_t records_since_snapshot_ GUARDED_BY(mu_) = 0;
  /// LSN the newest snapshot covers.
  std::uint64_t snapshot_lsn_ GUARDED_BY(mu_) = 0;
  std::uint64_t snapshots_taken_ GUARDED_BY(mu_) = 0;
  /// For the age gauge.
  double last_snapshot_walltime_ GUARDED_BY(mu_) = 0.0;
  /// Loaded release -> CSV path.
  std::map<std::string, std::string> paths_ GUARDED_BY(mu_);
  /// Lifetime quota charges.
  std::map<std::string, std::uint64_t> ledger_ GUARDED_BY(mu_);
  std::uint64_t quota_denied_ GUARDED_BY(mu_) = 0;
  std::uint64_t rate_denied_ GUARDED_BY(mu_) = 0;
  std::uint64_t lifetime_quota_ GUARDED_BY(mu_) = 0;
  std::uint64_t rate_limit_ GUARDED_BY(mu_) = 0;
  std::uint32_t rate_window_seconds_ GUARDED_BY(mu_) = 60;

  ReplaySummary replay_;
  std::shared_ptr<metrics::LatencyHistogram> fsync_hist_;
  std::atomic<std::uint64_t> appended_records_{0};
};

}  // namespace service
}  // namespace dpcube

#endif  // DPCUBE_SERVICE_DURABLE_STATE_H_
