// Copyright 2026 The dpcube Authors.

#include "service/serve_protocol.h"

#include <chrono>
#include <istream>
#include <ostream>
#include <set>
#include <utility>

namespace dpcube {
namespace service {

ServeSession::ServeSession(std::shared_ptr<ReleaseStore> store,
                           std::shared_ptr<MarginalCache> cache,
                           std::shared_ptr<const QueryService> service,
                           const BatchExecutor* executor)
    : store_(std::move(store)),
      cache_(std::move(cache)),
      service_(std::move(service)),
      executor_(executor) {}

void ServeSession::Run(std::istream& in, std::ostream& out) {
  ProcessStream(in, out, /*flush_each=*/true);
}

bool ServeSession::ProcessStream(std::istream& in, std::ostream& out,
                                 bool flush_each,
                                 trace::RequestTrace* frame_trace) {
  active_trace_ = frame_trace;
  std::string line;
  while (std::getline(in, line)) {
    const std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) continue;
    const Request request = ParseRequestLine(line, tokens);
    const bool timed = metrics_ != nullptr || active_trace_ != nullptr;
    const auto started = timed ? std::chrono::steady_clock::now()
                               : std::chrono::steady_clock::time_point();
    if (active_trace_) {
      // The frame's identity is its first request; a pipelined frame
      // keeps the first line's verb/release (and adds their spans up).
      if (active_trace_->verb.empty()) {
        active_trace_->verb = VerbName(request.kind);
      }
      if (active_trace_->release.empty() &&
          request.kind == RequestKind::kQuery) {
        active_trace_->release = request.query.release;
      }
    }
    const std::uint64_t encode_before =
        active_trace_ ? active_trace_->span(trace::Span::kEncode) : 0;
    bool quit = false;
    if (request.kind == RequestKind::kBatch) {
      HandleBatch(request, in, out);
    } else if (request.kind == RequestKind::kHello) {
      HandleHello(request, out);
    } else {
      Emit(ExecuteRequest(request), out);
      quit = request.kind == RequestKind::kQuit;
    }
    if (timed) {
      const double seconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - started)
                                 .count();
      if (metrics_) {
        metrics_->request_count(request.kind)->Increment();
        metrics_->request_latency(request.kind)->Record(seconds);
      }
      if (active_trace_) {
        // Compute is the line's wall-clock minus whatever Emit spent
        // encoding, so the two spans partition the session's work.
        const std::uint64_t line_micros =
            static_cast<std::uint64_t>(seconds * 1e6);
        const std::uint64_t encode_micros =
            active_trace_->span(trace::Span::kEncode) - encode_before;
        active_trace_->span_micros[static_cast<std::size_t>(
            trace::Span::kCompute)] +=
            line_micros > encode_micros ? line_micros - encode_micros : 0;
      }
    }
    if (quit) {
      out.flush();
      active_trace_ = nullptr;
      return false;
    }
    if (flush_each) out.flush();
  }
  active_trace_ = nullptr;
  return true;
}

void ServeSession::Emit(const Response& response, std::ostream& out) {
  if (metrics_ && response.code != ErrorCode::kOk) {
    metrics_->error_count(response.code)->Increment();
  }
  if (active_trace_ == nullptr) {
    EncodeResponse(response, codec(), out);
    return;
  }
  // The frame's outcome is its first non-kOk response (or "Ok", filled
  // in by the connection when the trace finalises with none recorded).
  if (response.code != ErrorCode::kOk && active_trace_->outcome.empty()) {
    active_trace_->outcome = ErrorCodeName(response.code);
  }
  const auto started = std::chrono::steady_clock::now();
  EncodeResponse(response, codec(), out);
  active_trace_->span_micros[static_cast<std::size_t>(
      trace::Span::kEncode)] +=
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - started)
              .count());
}

void ServeSession::HandleHello(const Request& request, std::ostream& out) {
  // The ack leaves in the codec in effect BEFORE the switch, so a
  // client reading the stream under the old codec can always parse it;
  // every later response (including this frame's subsequent lines) uses
  // the negotiated one.
  Response ack;
  ack.request = RequestKind::kHello;
  ack.version = request.version;
  ack.codec = request.codec;
  EncodeResponse(ack, codec(), out);
  codec_.store(request.codec, std::memory_order_release);
}

bool ServeSession::CheckQuota(const Query& query, Response* denied) const {
  if (!quota_gate_) return true;
  std::string denial;
  if (quota_gate_(query.release, &denial)) return true;
  *denied = Response::Error(ErrorCode::kQuotaExceeded,
                            "QuotaExceeded: " + denial);
  denied->request = RequestKind::kQuery;
  return false;
}

Status ServeSession::ApplyMutation(const Mutation& mutation) {
  if (mutation_handler_) return mutation_handler_(mutation);
  // Volatile path: apply straight to the in-memory structures.
  switch (mutation.kind) {
    case MutationKind::kLoadRelease:
      return store_->LoadFromFile(mutation.name, mutation.path);
    case MutationKind::kUnloadRelease:
      return service_->RemoveRelease(mutation.name);
    default:
      return Status::Unimplemented(
          std::string("mutation '") + MutationKindName(mutation.kind) +
          "' needs a durable handler");
  }
}

Response ServeSession::ExecuteRequest(const Request& request) {
  Response response;
  response.request = request.kind;
  switch (request.kind) {
    case RequestKind::kQuit:
      return response;
    case RequestKind::kLoad: {
      const Status st =
          ApplyMutation(Mutation::LoadRelease(request.name, request.path));
      if (!st.ok()) {
        return Response::Error(ToErrorCode(st), st.ToString());
      }
      if (release_loaded_hook_) release_loaded_hook_(request.name);
      response.name = request.name;
      return response;
    }
    case RequestKind::kUnload: {
      const Status st = ApplyMutation(Mutation::UnloadRelease(request.name));
      if (!st.ok()) {
        return Response::Error(ToErrorCode(st), st.ToString());
      }
      response.name = request.name;
      return response;
    }
    case RequestKind::kList:
      response.releases = store_->List();
      return response;
    case RequestKind::kQuery: {
      Response denied;
      if (!CheckQuota(request.query, &denied)) return denied;
      if (!trace_metrics_) {
        return Response::FromQuery(service_->Answer(request.query));
      }
      const auto started = std::chrono::steady_clock::now();
      Response answered = Response::FromQuery(service_->Answer(request.query));
      // Unknown releases never mint per-release series: the name came
      // off the wire and only the cardinality cap would bound it.
      if (answered.code != ErrorCode::kNotFound) {
        const trace::ServingTraceMetrics::PerRelease series =
            trace_metrics_->Release(request.query.release);
        series.queries->Increment();
        series.latency->Record(std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - started)
                                   .count());
      }
      return answered;
    }
    case RequestKind::kServerStats:
      if (server_stats_handler_) {
        response.message = server_stats_handler_();
        return response;
      }
      // Without a handler the verb is unknown, exactly as in v1.
      return Response::Error(ErrorCode::kBadRequest,
                             "unknown request '" + request.raw + "'");
    case RequestKind::kCacheStats:
      response.cache = cache_->stats();
      response.store_releases = store_->size();
      return response;
    case RequestKind::kInvalid:
    default:
      return Response::Error(request.error_code, request.error);
  }
}

void ServeSession::HandleBatch(const Request& request, std::istream& in,
                               std::ostream& out) {
  const std::size_t n = request.batch_count;
  std::vector<Query> batch;
  std::string batch_error;
  // Consume ALL n lines even after a bad one: stopping early would leave
  // the rest to be re-read as top-level commands and desync every later
  // request/response pair of a scripted client.
  for (std::size_t i = 0; i < n; ++i) {
    std::string sub_line;
    if (!std::getline(in, sub_line)) {
      batch_error = "unexpected EOF inside batch";
      break;
    }
    if (!batch_error.empty()) continue;
    const std::vector<std::string> sub_tokens = Tokenize(sub_line);
    if (sub_tokens.size() < 2 || sub_tokens[0] != "query") {
      batch_error = "batch lines must be query requests";
      continue;
    }
    Query q;
    if (!ParseServeQuery(
            std::vector<std::string>(sub_tokens.begin() + 1,
                                     sub_tokens.end()),
            &q, &batch_error)) {
      continue;
    }
    batch.push_back(std::move(q));
  }
  if (!batch_error.empty()) {
    Emit(Response::Error(ErrorCode::kBadRequest, std::move(batch_error)),
         out);
    return;
  }
  // Quota-denied sub-queries answer kQuotaExceeded in their ordinal
  // position; only the admitted remainder reaches the executor.
  std::vector<Response> responses(batch.size());
  std::vector<std::size_t> admitted;
  std::vector<Query> admitted_queries;
  admitted.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (CheckQuota(batch[i], &responses[i])) {
      admitted.push_back(i);
      admitted_queries.push_back(batch[i]);
    }
  }
  const bool want_timing =
      active_trace_ != nullptr || trace_metrics_ != nullptr;
  BatchTiming timing;
  const std::vector<QueryResponse> answers =
      admitted_queries.empty()
          ? std::vector<QueryResponse>{}
          : executor_->ExecuteBatch(admitted_queries,
                                    want_timing ? &timing : nullptr);
  // Releases that answered NotFound must not mint per-release series:
  // the names came off the wire.
  std::set<std::string> missing;
  for (std::size_t j = 0; j < admitted.size(); ++j) {
    responses[admitted[j]] = Response::FromQuery(answers[j]);
    if (responses[admitted[j]].code == ErrorCode::kNotFound) {
      missing.insert(admitted_queries[j].release);
    }
  }
  if (active_trace_) {
    active_trace_->batch_queries += static_cast<std::uint32_t>(batch.size());
    if (timing.max_group_micros > active_trace_->batch_max_group_micros) {
      active_trace_->batch_max_group_micros = timing.max_group_micros;
    }
    if (active_trace_->release.empty() && !batch.empty()) {
      active_trace_->release = batch.front().release;
    }
  }
  if (trace_metrics_) {
    for (const BatchGroupTiming& group : timing.groups) {
      if (missing.count(group.release) != 0) continue;
      const trace::ServingTraceMetrics::PerRelease series =
          trace_metrics_->Release(group.release);
      series.queries->Increment(group.queries);
      series.latency->Record(static_cast<double>(group.micros) * 1e-6);
    }
  }
  for (const Response& response : responses) {
    Emit(response, out);
  }
}

}  // namespace service
}  // namespace dpcube
