// Copyright 2026 The dpcube Authors.

#include "service/serve_protocol.h"

#include <cstdio>
#include <exception>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace dpcube {
namespace service {

bool ParseSize(const std::string& text, std::size_t* out) {
  if (text.empty() || text[0] == '-' || text[0] == '+') return false;
  const bool hex = text.rfind("0x", 0) == 0 || text.rfind("0X", 0) == 0;
  try {
    std::size_t pos = 0;
    *out = std::stoull(hex ? text.substr(2) : text, &pos, hex ? 16 : 10);
    return pos == (hex ? text.size() - 2 : text.size()) &&
           !(hex && text.size() == 2);
  } catch (const std::exception&) {
    return false;
  }
}

std::vector<std::string> Tokenize(const std::string& line) {
  std::stringstream ss(line);
  std::vector<std::string> tokens;
  std::string token;
  while (ss >> token) tokens.push_back(token);
  return tokens;
}

bool ParseServeQuery(const std::vector<std::string>& tokens, Query* q,
                     std::string* error) {
  if (tokens.size() < 3) {
    *error = "query NAME marginal|cell|range MASK [CELL | LO HI]";
    return false;
  }
  q->release = tokens[0];
  const std::string& kind = tokens[1];
  std::size_t beta = 0;
  if (!ParseSize(tokens[2], &beta)) {
    *error = "bad mask '" + tokens[2] + "'";
    return false;
  }
  q->beta = beta;
  if (kind == "marginal" && tokens.size() == 3) {
    q->kind = QueryKind::kMarginal;
  } else if (kind == "cell" && tokens.size() == 4) {
    q->kind = QueryKind::kCell;
    if (!ParseSize(tokens[3], &q->cell_lo)) {
      *error = "bad cell '" + tokens[3] + "'";
      return false;
    }
  } else if (kind == "range" && tokens.size() == 5) {
    q->kind = QueryKind::kRange;
    if (!ParseSize(tokens[3], &q->cell_lo) ||
        !ParseSize(tokens[4], &q->cell_hi)) {
      *error = "bad range bounds";
      return false;
    }
  } else {
    *error = "unknown query form '" + kind + "'";
    return false;
  }
  return true;
}

std::string FormatResponse(const QueryResponse& response) {
  if (!response.status.ok()) {
    return "ERR " + response.status.ToString();
  }
  char head[96];
  std::snprintf(head, sizeof(head),
                "OK query mask=0x%llx var=%.6g hit=%d n=%zu values",
                static_cast<unsigned long long>(response.beta),
                response.variance, response.cache_hit ? 1 : 0,
                response.values.size());
  std::string line(head);
  char field[32];
  for (const double v : response.values) {
    std::snprintf(field, sizeof(field), " %.17g", v);
    line += field;
  }
  return line;
}

ServeSession::ServeSession(std::shared_ptr<ReleaseStore> store,
                           std::shared_ptr<MarginalCache> cache,
                           std::shared_ptr<const QueryService> service,
                           const BatchExecutor* executor)
    : store_(std::move(store)),
      cache_(std::move(cache)),
      service_(std::move(service)),
      executor_(executor) {}

void ServeSession::Run(std::istream& in, std::ostream& out) {
  ProcessStream(in, out, /*flush_each=*/true);
}

bool ServeSession::ProcessStream(std::istream& in, std::ostream& out,
                                 bool flush_each) {
  std::string line;
  while (std::getline(in, line)) {
    const std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) continue;
    if (tokens[0] == "batch" && tokens.size() == 2) {
      HandleBatch(tokens, in, out);
    } else if (!HandleLine(line, tokens, out)) {
      out.flush();
      return false;
    }
    if (flush_each) out.flush();
  }
  return true;
}

bool ServeSession::HandleLine(const std::string& line,
                              const std::vector<std::string>& tokens,
                              std::ostream& out) {
  const std::string& command = tokens[0];

  if (command == "quit" || command == "exit") {
    out << "OK bye\n";
    return false;
  } else if (command == "load" && tokens.size() == 3) {
    const Status st = store_->LoadFromFile(tokens[1], tokens[2]);
    if (st.ok()) {
      out << "OK loaded " << tokens[1] << "\n";
    } else {
      out << "ERR " << st.ToString() << "\n";
    }
  } else if (command == "unload" && tokens.size() == 2) {
    const Status st = service_->RemoveRelease(tokens[1]);
    if (st.ok()) {
      out << "OK unloaded " << tokens[1] << "\n";
    } else {
      out << "ERR " << st.ToString() << "\n";
    }
  } else if (command == "list" && tokens.size() == 1) {
    const auto infos = store_->List();
    out << "OK releases n=" << infos.size();
    for (const auto& info : infos) {
      out << " " << info.name << ":d=" << info.d
          << ":marginals=" << info.num_marginals
          << ":cells=" << info.total_cells;
    }
    out << "\n";
  } else if (command == "query") {
    Query q;
    std::string error;
    if (!ParseServeQuery(
            std::vector<std::string>(tokens.begin() + 1, tokens.end()), &q,
            &error)) {
      out << "ERR " << error << "\n";
    } else {
      out << FormatResponse(service_->Answer(q)) << "\n";
    }
  } else if (command == "STATS" && tokens.size() == 1 &&
             server_stats_handler_) {
    out << server_stats_handler_() << "\n";
  } else if (command == "stats" && tokens.size() == 1) {
    const CacheStats s = cache_->stats();
    out << "OK stats hits=" << s.hits << " misses=" << s.misses
        << " evictions=" << s.evictions << " entries=" << s.entries
        << " cells=" << s.cells << " capacity=" << s.capacity_cells
        << " releases=" << store_->size() << "\n";
  } else {
    out << "ERR unknown request '" << line << "'\n";
  }
  return true;
}

void ServeSession::HandleBatch(const std::vector<std::string>& tokens,
                               std::istream& in, std::ostream& out) {
  // Zero would emit zero response lines and stall a scripted client
  // waiting for one; an unbounded count (or "-1" wrapping to 2^64-1)
  // would swallow the rest of stdin.
  constexpr std::size_t kMaxBatch = 100000;
  std::size_t n = 0;
  if (!ParseSize(tokens[1], &n) || n == 0 || n > kMaxBatch) {
    out << "ERR batch expects a count in 1.." << kMaxBatch << "\n";
    return;
  }
  std::vector<Query> batch;
  std::string batch_error;
  // Consume ALL n lines even after a bad one: stopping early would leave
  // the rest to be re-read as top-level commands and desync every later
  // request/response pair of a scripted client.
  for (std::size_t i = 0; i < n; ++i) {
    std::string request;
    if (!std::getline(in, request)) {
      batch_error = "unexpected EOF inside batch";
      break;
    }
    if (!batch_error.empty()) continue;
    const std::vector<std::string> rtokens = Tokenize(request);
    if (rtokens.size() < 2 || rtokens[0] != "query") {
      batch_error = "batch lines must be query requests";
      continue;
    }
    Query q;
    if (!ParseServeQuery(
            std::vector<std::string>(rtokens.begin() + 1, rtokens.end()), &q,
            &batch_error)) {
      continue;
    }
    batch.push_back(std::move(q));
  }
  if (!batch_error.empty()) {
    out << "ERR " << batch_error << "\n";
  } else {
    for (const auto& response : executor_->ExecuteBatch(batch)) {
      out << FormatResponse(response) << "\n";
    }
  }
}

}  // namespace service
}  // namespace dpcube
