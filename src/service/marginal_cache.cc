// Copyright 2026 The dpcube Authors.

#include "service/marginal_cache.h"

namespace dpcube {
namespace service {

std::shared_ptr<const CachedMarginal> MarginalCache::Get(
    const std::string& release, bits::Mask beta, std::uint64_t epoch) {
  sync::MutexLock lock(&mu_);
  auto it = index_.find(Key{release, beta});
  if (it == index_.end() || it->second->epoch != epoch) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->value;
}

void MarginalCache::Put(const std::string& release, bits::Mask beta,
                        std::shared_ptr<const CachedMarginal> value,
                        std::uint64_t epoch) {
  if (value == nullptr) return;
  const std::size_t size = value->table.num_cells();
  if (size > capacity_cells_) return;
  sync::MutexLock lock(&mu_);
  const Key key{release, beta};
  auto it = index_.find(key);
  if (it != index_.end()) {
    cells_ -= it->second->value->table.num_cells();
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(Entry{key, epoch, std::move(value)});
  index_.emplace(key, lru_.begin());
  cells_ += size;
  EvictToCapacityLocked();
}

void MarginalCache::EvictToCapacityLocked() {
  while (cells_ > capacity_cells_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    cells_ -= victim.value->table.num_cells();
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

void MarginalCache::EraseRelease(const std::string& release) {
  sync::MutexLock lock(&mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.first == release) {
      cells_ -= it->value->table.num_cells();
      index_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void MarginalCache::Clear() {
  sync::MutexLock lock(&mu_);
  lru_.clear();
  index_.clear();
  cells_ = 0;
}

CacheStats MarginalCache::stats() const {
  sync::MutexLock lock(&mu_);
  CacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = index_.size();
  s.cells = cells_;
  s.capacity_cells = capacity_cells_;
  return s;
}

}  // namespace service
}  // namespace dpcube
