// Copyright 2026 The dpcube Authors.

#include "service/durable_state.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

namespace dpcube {
namespace service {

namespace {

constexpr std::uint32_t kSnapshotMagic = 0xD75AC0DEu;
constexpr std::uint32_t kSnapshotVersion = 1;
// A snapshot row count can never legitimately exceed the admission
// ledger bound; anything larger is corruption that slipped past the CRC.
constexpr std::uint32_t kMaxSnapshotRows = 1 << 20;

std::string LsnFileName(const char* prefix, std::uint64_t lsn) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s.%020llu", prefix,
                static_cast<unsigned long long>(lsn));
  return buf;
}

/// Parses "<prefix>.<20-digit LSN>"; rejects anything else (including
/// the ".tmp" intermediates AtomicWriteFile leaves after a crash).
bool ParseLsnFileName(const std::string& name, const char* prefix,
                      std::uint64_t* lsn) {
  const std::string head = std::string(prefix) + ".";
  if (name.size() != head.size() + 20 || name.compare(0, head.size(), head)) {
    return false;
  }
  std::uint64_t value = 0;
  for (std::size_t i = head.size(); i < name.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *lsn = value;
  return true;
}

void PutU16(std::string* out, std::uint16_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
}

void PutU32(std::string* out, std::uint32_t v) {
  PutU16(out, static_cast<std::uint16_t>(v & 0xFFFF));
  PutU16(out, static_cast<std::uint16_t>(v >> 16));
}

void PutU64(std::string* out, std::uint64_t v) {
  PutU32(out, static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<std::uint32_t>(v >> 32));
}

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}
  bool ReadU16(std::uint16_t* v) {
    if (data_.size() - pos_ < 2) return false;
    const unsigned char* p =
        reinterpret_cast<const unsigned char*>(data_.data()) + pos_;
    *v = static_cast<std::uint16_t>(p[0] | (p[1] << 8));
    pos_ += 2;
    return true;
  }
  bool ReadU32(std::uint32_t* v) {
    std::uint16_t lo, hi;
    if (!ReadU16(&lo) || !ReadU16(&hi)) return false;
    *v = static_cast<std::uint32_t>(lo) |
         (static_cast<std::uint32_t>(hi) << 16);
    return true;
  }
  bool ReadU64(std::uint64_t* v) {
    std::uint32_t lo, hi;
    if (!ReadU32(&lo) || !ReadU32(&hi)) return false;
    *v = static_cast<std::uint64_t>(lo) |
         (static_cast<std::uint64_t>(hi) << 32);
    return true;
  }
  bool ReadString(std::size_t len, std::string* v) {
    if (data_.size() - pos_ < len) return false;
    v->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }
  bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

double NowWallSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

DurableState::DurableState(DurableOptions options,
                           std::shared_ptr<ReleaseStore> store,
                           std::shared_ptr<const QueryService> service)
    : options_(std::move(options)),
      store_(std::move(store)),
      service_(std::move(service)),
      log_(stderr, logging::Logger::Format::kHuman),
      fsync_hist_(std::make_shared<metrics::LatencyHistogram>()) {}

Result<std::shared_ptr<DurableState>> DurableState::Open(
    const DurableOptions& options, std::shared_ptr<ReleaseStore> store,
    std::shared_ptr<const QueryService> service) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("durable state dir must be non-empty");
  }
  if (store == nullptr || service == nullptr) {
    return Status::InvalidArgument("durable state needs a store and service");
  }
  auto state = std::shared_ptr<DurableState>(
      new DurableState(options, std::move(store), std::move(service)));
  // Boot is single-threaded, but recovery writes mu_-guarded state, so
  // the whole sequence runs under the lock to keep one discipline.
  bool config_changed;
  {
    sync::MutexLock boot_lock(&state->mu_);
    DPCUBE_RETURN_NOT_OK(state->Recover());
    // Record the configured quota limits whenever they differ from the
    // restored ones, so a replayed ledger always knows the limits it
    // was charged under.
    config_changed =
        state->lifetime_quota_ != options.lifetime_quota ||
        state->rate_limit_ != options.rate_limit ||
        state->rate_window_seconds_ !=
            static_cast<std::uint32_t>(options.rate_window_seconds);
  }
  if (config_changed) {
    DPCUBE_RETURN_NOT_OK(state->Apply(Mutation::QuotaConfig(
        options.lifetime_quota, options.rate_limit,
        static_cast<std::uint32_t>(options.rate_window_seconds))));
  }
  return state;
}

Status DurableState::Recover() {
  const auto start = std::chrono::steady_clock::now();
  DPCUBE_RETURN_NOT_OK(wal::MakeDirs(options_.dir));

  auto entries = wal::ListDir(options_.dir);
  if (!entries.ok()) return entries.status();
  std::vector<std::uint64_t> snapshot_lsns;
  std::vector<std::uint64_t> segment_lsns;
  for (const std::string& name : *entries) {
    std::uint64_t lsn = 0;
    if (ParseLsnFileName(name, "snapshot", &lsn)) snapshot_lsns.push_back(lsn);
    if (ParseLsnFileName(name, "changelog", &lsn)) segment_lsns.push_back(lsn);
  }
  std::sort(snapshot_lsns.rbegin(), snapshot_lsns.rend());
  std::sort(segment_lsns.begin(), segment_lsns.end());

  // Newest CRC-valid snapshot wins; a corrupt one falls back to the
  // next older (the changelog still covers the gap, since segments are
  // only truncated once the covering snapshot is durable).
  for (std::uint64_t lsn : snapshot_lsns) {
    const std::string path = options_.dir + "/" + LsnFileName("snapshot", lsn);
    const Status st = LoadSnapshot(path);
    if (st.ok()) {
      snapshot_lsn_ = lsn;
      replay_.snapshot_lsn = lsn;
      break;
    }
    log_.Warn("wal: skipping snapshot: " + st.ToString());
  }

  // Replay the changelog segments in LSN order, skipping records the
  // snapshot already covers. Only the NEWEST segment may end in garbage
  // (a torn final append); anywhere else is mid-chain corruption.
  std::uint64_t last_lsn = snapshot_lsn_;
  Status decode_error = Status::OK();
  for (std::size_t i = 0; i < segment_lsns.size(); ++i) {
    const std::string path =
        options_.dir + "/" + LsnFileName("changelog", segment_lsns[i]);
    auto replayed = wal::ReplayChangelog(
        path, [&](std::uint64_t lsn, std::string_view payload) {
          if (!decode_error.ok() || lsn <= snapshot_lsn_) return;
          Mutation mutation;
          const Status st = DecodeMutation(payload, &mutation);
          if (!st.ok()) {
            decode_error = Status::Internal(
                "undecodable record at lsn " + std::to_string(lsn) + " in '" +
                path + "': " + st.message());
            return;
          }
          ApplyReplayed(mutation);
          replay_.records += 1;
          if (lsn > last_lsn) last_lsn = lsn;
        });
    if (!replayed.ok()) return replayed.status();
    if (!decode_error.ok()) return decode_error;
    if (replayed->valid_bytes != replayed->file_bytes) {
      const std::uint64_t torn = replayed->file_bytes - replayed->valid_bytes;
      if (i + 1 != segment_lsns.size()) {
        return Status::Internal(
            "changelog '" + path + "' has " + std::to_string(torn) +
            " invalid bytes mid-chain; refusing to serve partial state");
      }
      DPCUBE_RETURN_NOT_OK(wal::TruncateFile(path, replayed->valid_bytes));
      replay_.torn_bytes = torn;
      log_.Warn("wal: truncated torn tail",
                {logging::Field("path", path),
                 logging::Field::Num("bytes", torn)});
    }
  }
  replay_.last_lsn = last_lsn;
  records_since_snapshot_ = replay_.records;

  // Materialize the restored releases (fit runs here, at boot, not per
  // replayed record — a load+unload pair in the log costs nothing). A
  // release whose CSV vanished is skipped with a warning: the quota
  // ledger still remembers it, so its budget stays spent.
  for (auto it = paths_.begin(); it != paths_.end();) {
    auto stored = ReleaseStore::CreateFromFile(it->first, it->second);
    Status st = stored.ok() ? store_->Insert(std::move(stored).value())
                            : stored.status();
    if (!st.ok()) {
      log_.Warn("wal: dropping unloadable release",
                {logging::Field("release", it->first),
                 logging::Field("path", it->second),
                 logging::Field("error", st.ToString())});
      replay_.skipped_releases += 1;
      it = paths_.erase(it);
    } else {
      ++it;
    }
  }

  // Open the live segment for appending: the newest existing one, or a
  // fresh changelog.(last+1) on first boot / after a fully-truncated
  // rotation crash.
  const std::uint64_t next_lsn = last_lsn + 1;
  std::string live_path;
  if (!segment_lsns.empty()) {
    changelog_base_lsn_ = segment_lsns.back();
    live_path =
        options_.dir + "/" + LsnFileName("changelog", changelog_base_lsn_);
  } else {
    changelog_base_lsn_ = next_lsn;
    live_path =
        options_.dir + "/" + LsnFileName("changelog", changelog_base_lsn_);
  }
  auto log = wal::Changelog::Open(live_path, next_lsn, fsync_hist_);
  if (!log.ok()) return log.status();
  changelog_ = std::move(log).value();
  DPCUBE_RETURN_NOT_OK(wal::FsyncDir(options_.dir));

  replay_.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (replay_.snapshot_lsn > 0 || replay_.records > 0) {
    log_.Info("wal: recovered",
              {logging::Field("dir", options_.dir),
               logging::Field::Num("snapshot_lsn", replay_.snapshot_lsn),
               logging::Field::Num("records", replay_.records),
               logging::Field::Num("torn_bytes", replay_.torn_bytes),
               logging::Field::Num("releases", paths_.size()),
               logging::Field::Raw("seconds",
                                   std::to_string(replay_.seconds))});
  }
  return Status::OK();
}

Status DurableState::ApplyReplayed(const Mutation& mutation) {
  // Replay applies only the bookkeeping; releases materialize once,
  // after the log is fully consumed.
  switch (mutation.kind) {
    case MutationKind::kLoadRelease:
      paths_[mutation.name] = mutation.path;
      break;
    case MutationKind::kUnloadRelease:
      paths_.erase(mutation.name);
      break;
    case MutationKind::kQuotaCharge:
      if (mutation.charged > 0) ledger_[mutation.name] += mutation.charged;
      quota_denied_ += mutation.denied_lifetime;
      rate_denied_ += mutation.denied_rate;
      break;
    case MutationKind::kQuotaConfig:
      lifetime_quota_ = mutation.lifetime_limit;
      rate_limit_ = mutation.rate_limit;
      rate_window_seconds_ = mutation.rate_window_seconds;
      break;
  }
  return Status::OK();
}

Status DurableState::LoadSnapshot(const std::string& path) {
  auto contents = wal::ReadFile(path);
  if (!contents.ok()) return contents.status();
  const std::string& data = *contents;
  if (data.size() < 4) return Status::Internal("snapshot too small");
  const std::string_view body(data.data(), data.size() - 4);
  Reader crc_reader(std::string_view(data).substr(data.size() - 4));
  std::uint32_t stored_crc = 0;
  crc_reader.ReadU32(&stored_crc);
  if (wal::Crc32(body) != stored_crc) {
    return Status::Internal("snapshot CRC mismatch");
  }

  Reader reader(body);
  std::uint32_t magic = 0, version = 0;
  std::uint64_t last_lsn = 0;
  std::uint64_t lifetime_limit = 0, rate_limit = 0;
  std::uint32_t window = 0;
  std::uint64_t quota_denied = 0, rate_denied = 0;
  std::uint32_t n_releases = 0;
  if (!reader.ReadU32(&magic) || magic != kSnapshotMagic) {
    return Status::Internal("bad snapshot magic");
  }
  if (!reader.ReadU32(&version) || version != kSnapshotVersion) {
    return Status::Internal("unsupported snapshot version");
  }
  if (!reader.ReadU64(&last_lsn) || !reader.ReadU64(&lifetime_limit) ||
      !reader.ReadU64(&rate_limit) || !reader.ReadU32(&window) ||
      !reader.ReadU64(&quota_denied) || !reader.ReadU64(&rate_denied) ||
      !reader.ReadU32(&n_releases) || n_releases > kMaxSnapshotRows) {
    return Status::Internal("snapshot header truncated");
  }
  std::map<std::string, std::string> paths;
  for (std::uint32_t i = 0; i < n_releases; ++i) {
    std::uint16_t name_len = 0;
    std::uint32_t path_len = 0;
    std::string name, csv_path;
    if (!reader.ReadU16(&name_len) || !reader.ReadString(name_len, &name) ||
        !reader.ReadU32(&path_len) || path_len > kMaxSnapshotRows ||
        !reader.ReadString(path_len, &csv_path)) {
      return Status::Internal("snapshot release row truncated");
    }
    paths.emplace(std::move(name), std::move(csv_path));
  }
  std::uint32_t n_ledger = 0;
  if (!reader.ReadU32(&n_ledger) || n_ledger > kMaxSnapshotRows) {
    return Status::Internal("snapshot ledger count truncated");
  }
  std::map<std::string, std::uint64_t> ledger;
  for (std::uint32_t i = 0; i < n_ledger; ++i) {
    std::uint16_t name_len = 0;
    std::string name;
    std::uint64_t lifetime = 0;
    if (!reader.ReadU16(&name_len) || !reader.ReadString(name_len, &name) ||
        !reader.ReadU64(&lifetime)) {
      return Status::Internal("snapshot ledger row truncated");
    }
    ledger.emplace(std::move(name), lifetime);
  }
  if (!reader.exhausted()) {
    return Status::Internal("snapshot has trailing bytes");
  }

  paths_ = std::move(paths);
  ledger_ = std::move(ledger);
  lifetime_quota_ = lifetime_limit;
  rate_limit_ = rate_limit;
  rate_window_seconds_ = window;
  quota_denied_ = quota_denied;
  rate_denied_ = rate_denied;
  (void)last_lsn;  // The file name is authoritative for the LSN.
  return Status::OK();
}

std::string DurableState::EncodeSnapshotLocked(std::uint64_t last_lsn) const {
  std::string out;
  PutU32(&out, kSnapshotMagic);
  PutU32(&out, kSnapshotVersion);
  PutU64(&out, last_lsn);
  PutU64(&out, lifetime_quota_);
  PutU64(&out, rate_limit_);
  PutU32(&out, rate_window_seconds_);
  PutU64(&out, quota_denied_);
  PutU64(&out, rate_denied_);
  PutU32(&out, static_cast<std::uint32_t>(paths_.size()));
  for (const auto& [name, path] : paths_) {
    PutU16(&out, static_cast<std::uint16_t>(name.size()));
    out.append(name);
    PutU32(&out, static_cast<std::uint32_t>(path.size()));
    out.append(path);
  }
  PutU32(&out, static_cast<std::uint32_t>(ledger_.size()));
  for (const auto& [name, lifetime] : ledger_) {
    PutU16(&out, static_cast<std::uint16_t>(name.size()));
    out.append(name);
    PutU64(&out, lifetime);
  }
  PutU32(&out, wal::Crc32(out));
  return out;
}

Status DurableState::Apply(const Mutation& mutation) {
  switch (mutation.kind) {
    case MutationKind::kLoadRelease: return ApplyLoad(mutation);
    case MutationKind::kUnloadRelease: return ApplyUnload(mutation);
    case MutationKind::kQuotaCharge: return ApplyCharge(mutation);
    case MutationKind::kQuotaConfig: return ApplyConfig(mutation);
  }
  return Status::InvalidArgument("unknown mutation kind");
}

Status DurableState::AppendLocked(const Mutation& mutation,
                                  std::uint64_t* lsn,
                                  std::shared_ptr<wal::Changelog>* log) {
  auto appended = changelog_->Append(EncodeMutation(mutation));
  if (!appended.ok()) return appended.status();
  *lsn = appended.value();
  *log = changelog_;
  appended_records_.fetch_add(1, std::memory_order_relaxed);
  records_since_snapshot_ += 1;
  return Status::OK();
}

Status DurableState::ApplyLoad(const Mutation& mutation) {
  // load_mu_ serializes the whole check-fit-log-insert sequence; the
  // expensive cube fit runs before mu_ so charges never stall behind it.
  sync::MutexLock load_lock(&load_mu_);
  if (store_->Get(mutation.name).ok()) {
    return Status::FailedPrecondition("release '" + mutation.name +
                                      "' already loaded");
  }
  auto stored = ReleaseStore::CreateFromFile(mutation.name, mutation.path);
  if (!stored.ok()) return stored.status();

  std::uint64_t lsn = 0;
  std::shared_ptr<wal::Changelog> log;
  {
    sync::MutexLock lock(&mu_);
    DPCUBE_RETURN_NOT_OK(AppendLocked(mutation, &lsn, &log));
    paths_[mutation.name] = mutation.path;
    if (records_since_snapshot_ >= options_.snapshot_every) {
      const Status st = SnapshotLocked();
      if (!st.ok()) log_.Warn("wal: snapshot failed: " + st.ToString());
    }
  }
  Status synced = log->Sync(lsn);
  if (!synced.ok()) {
    sync::MutexLock lock(&mu_);
    paths_.erase(mutation.name);
    return synced;
  }
  return store_->Insert(std::move(stored).value());
}

Status DurableState::ApplyUnload(const Mutation& mutation) {
  sync::MutexLock load_lock(&load_mu_);
  if (!store_->Get(mutation.name).ok()) {
    return Status::NotFound("release '" + mutation.name + "' not loaded");
  }
  std::uint64_t lsn = 0;
  std::shared_ptr<wal::Changelog> log;
  {
    sync::MutexLock lock(&mu_);
    DPCUBE_RETURN_NOT_OK(AppendLocked(mutation, &lsn, &log));
    paths_.erase(mutation.name);
    // The quota ledger deliberately survives an unload: re-loading the
    // same name must not refresh a spent privacy budget.
    if (records_since_snapshot_ >= options_.snapshot_every) {
      const Status st = SnapshotLocked();
      if (!st.ok()) log_.Warn("wal: snapshot failed: " + st.ToString());
    }
  }
  DPCUBE_RETURN_NOT_OK(log->Sync(lsn));
  return service_->RemoveRelease(mutation.name);
}

Status DurableState::ApplyCharge(const Mutation& mutation) {
  std::uint64_t lsn = 0;
  std::shared_ptr<wal::Changelog> log;
  {
    sync::MutexLock lock(&mu_);
    DPCUBE_RETURN_NOT_OK(AppendLocked(mutation, &lsn, &log));
    if (mutation.charged > 0) ledger_[mutation.name] += mutation.charged;
    quota_denied_ += mutation.denied_lifetime;
    rate_denied_ += mutation.denied_rate;
    if (records_since_snapshot_ >= options_.snapshot_every) {
      const Status st = SnapshotLocked();
      if (!st.ok()) log_.Warn("wal: snapshot failed: " + st.ToString());
    }
  }
  // Group commit happens out here: concurrent charges coalesce onto one
  // leader fsync instead of serializing N syncs behind mu_.
  return log->Sync(lsn);
}

Status DurableState::ApplyConfig(const Mutation& mutation) {
  std::uint64_t lsn = 0;
  std::shared_ptr<wal::Changelog> log;
  {
    sync::MutexLock lock(&mu_);
    DPCUBE_RETURN_NOT_OK(AppendLocked(mutation, &lsn, &log));
    lifetime_quota_ = mutation.lifetime_limit;
    rate_limit_ = mutation.rate_limit;
    rate_window_seconds_ = mutation.rate_window_seconds;
  }
  return log->Sync(lsn);
}

Status DurableState::SnapshotNow() {
  sync::MutexLock lock(&mu_);
  return SnapshotLocked();
}

Status DurableState::SnapshotLocked() {
  const std::uint64_t last = changelog_->next_lsn() - 1;
  const std::string snapshot_path =
      options_.dir + "/" + LsnFileName("snapshot", last);
  DPCUBE_RETURN_NOT_OK(
      wal::AtomicWriteFile(snapshot_path, EncodeSnapshotLocked(last)));

  // The snapshot is durable; rotate appends into a fresh segment. From
  // here on, every failure is log-and-continue: the old segment merely
  // replays records the snapshot already covers (each skipped by LSN).
  const std::uint64_t new_base = last + 1;
  const std::string new_path =
      options_.dir + "/" + LsnFileName("changelog", new_base);
  auto log = wal::Changelog::Open(new_path, new_base, fsync_hist_);
  if (!log.ok()) return log.status();
  const std::uint64_t old_base = changelog_base_lsn_;
  changelog_ = std::move(log).value();
  changelog_base_lsn_ = new_base;
  Status st = wal::FsyncDir(options_.dir);
  if (!st.ok()) log_.Warn("wal: dir fsync after rotation: " + st.ToString());

  // Truncate history: segments now fully covered by the snapshot, and
  // all but the previous snapshot (one older generation is kept as
  // recovery insurance against disk-level corruption of the newest).
  auto entries = wal::ListDir(options_.dir);
  if (entries.ok()) {
    std::vector<std::uint64_t> old_snapshots;
    for (const std::string& name : *entries) {
      std::uint64_t lsn = 0;
      if (ParseLsnFileName(name, "changelog", &lsn) && lsn <= last &&
          lsn != new_base) {
        std::string victim = options_.dir + "/" + name;
        if (::unlink(victim.c_str()) != 0) {
          log_.Warn("wal: unlink failed for " + victim);
        }
      }
      if (ParseLsnFileName(name, "snapshot", &lsn) && lsn < last) {
        old_snapshots.push_back(lsn);
      }
    }
    std::sort(old_snapshots.rbegin(), old_snapshots.rend());
    for (std::size_t i = 1; i < old_snapshots.size(); ++i) {
      std::string victim =
          options_.dir + "/" + LsnFileName("snapshot", old_snapshots[i]);
      if (::unlink(victim.c_str()) != 0) {
        log_.Warn("wal: unlink failed for " + victim);
      }
    }
    st = wal::FsyncDir(options_.dir);
    if (!st.ok()) log_.Warn("wal: dir fsync after truncation: " + st.ToString());
  }
  (void)old_base;

  snapshot_lsn_ = last;
  snapshots_taken_ += 1;
  records_since_snapshot_ = 0;
  last_snapshot_walltime_ = NowWallSeconds();
  return Status::OK();
}

std::uint64_t DurableState::last_lsn() const {
  sync::MutexLock lock(&mu_);
  return changelog_->next_lsn() - 1;
}

std::uint64_t DurableState::snapshot_count() const {
  sync::MutexLock lock(&mu_);
  return snapshots_taken_;
}

std::uint64_t DurableState::quota_denied() const {
  sync::MutexLock lock(&mu_);
  return quota_denied_;
}

std::uint64_t DurableState::rate_denied() const {
  sync::MutexLock lock(&mu_);
  return rate_denied_;
}

std::vector<std::pair<std::string, std::uint64_t>> DurableState::QuotaLedger()
    const {
  sync::MutexLock lock(&mu_);
  return {ledger_.begin(), ledger_.end()};
}

std::vector<std::pair<std::string, std::string>> DurableState::ReleasePaths()
    const {
  sync::MutexLock lock(&mu_);
  return {paths_.begin(), paths_.end()};
}

void DurableState::RegisterMetrics(metrics::Registry* registry) {
  // The serving stack keeps the DurableState alive (via ServeContext)
  // for at least as long as the listener-owned registry, so capturing
  // `this` in the callbacks is safe.
  registry->RegisterCallbackCounter(
      "dpcube_wal_appended_records_total", "",
      "Mutation records appended to the durable changelog.", [this] {
        return static_cast<double>(
            appended_records_.load(std::memory_order_relaxed));
      });
  registry->RegisterExternalHistogram(
      "dpcube_wal_fsync_latency_microseconds", "",
      "Changelog fsync (group commit) wall-clock.", fsync_hist_);
  registry->RegisterCallbackCounter(
      "dpcube_wal_snapshots_total", "",
      "Durable state snapshots taken (including boot-time rotations).",
      [this] { return static_cast<double>(snapshot_count()); });
  registry->RegisterGauge(
      "dpcube_wal_snapshot_age_seconds", "",
      "Seconds since the newest durable snapshot (0 before the first).",
      [this] {
        sync::MutexLock lock(&mu_);
        if (last_snapshot_walltime_ == 0.0) return 0.0;
        return NowWallSeconds() - last_snapshot_walltime_;
      });
  registry->RegisterGauge(
      "dpcube_wal_replay_duration_seconds", "",
      "Wall-clock the last boot spent recovering state.",
      [this] { return replay_.seconds; });
  registry->RegisterGauge(
      "dpcube_wal_replay_records", "",
      "Changelog records replayed by the last boot.",
      [this] { return static_cast<double>(replay_.records); });
  registry->RegisterGauge("dpcube_wal_last_lsn", "",
                          "Highest log sequence number appended.", [this] {
                            return static_cast<double>(last_lsn());
                          });
}

std::string DurableState::FormatStatusz() const {
  sync::MutexLock lock(&mu_);
  // The "durability:" block holds only fields that are byte-identical
  // across a kill -9 + replay (CI diffs it); volatile recovery details
  // go under "recovery:", which always renders LAST so scrapers can use
  // it as an end delimiter.
  std::string out = "durability:\n";
  out += "  state_dir: " + options_.dir + "\n";
  out += "  last_lsn: " + std::to_string(changelog_->next_lsn() - 1) + "\n";
  out += "  lifetime_quota: " + std::to_string(lifetime_quota_) + "\n";
  out += "  rate_limit: " + std::to_string(rate_limit_) + "/" +
         std::to_string(rate_window_seconds_) + "s\n";
  out += "  quota_denied: " + std::to_string(quota_denied_) + "\n";
  out += "  rate_denied: " + std::to_string(rate_denied_) + "\n";
  out += "  ledger:\n";
  for (const auto& [name, lifetime] : ledger_) {
    out += "    " + name + " lifetime=" + std::to_string(lifetime) + "\n";
  }
  out += "recovery:\n";
  out += "  snapshot_lsn: " + std::to_string(replay_.snapshot_lsn) + "\n";
  out += "  replayed_records: " + std::to_string(replay_.records) + "\n";
  out += "  torn_bytes: " + std::to_string(replay_.torn_bytes) + "\n";
  out += "  snapshots_taken: " + std::to_string(snapshots_taken_) + "\n";
  char seconds[32];
  std::snprintf(seconds, sizeof(seconds), "%.6f", replay_.seconds);
  out += "  replay_seconds: " + std::string(seconds) + "\n";
  return out;
}

}  // namespace service
}  // namespace dpcube
