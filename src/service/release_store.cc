// Copyright 2026 The dpcube Authors.

#include "service/release_store.h"

#include <atomic>
#include <chrono>
#include <utility>

#include "engine/release_io.h"

namespace dpcube {
namespace service {

namespace {
std::uint64_t NextEpoch() {
  static std::atomic<std::uint64_t> counter{0};
  return ++counter;
}
}  // namespace

Result<std::shared_ptr<const StoredRelease>> StoredRelease::Create(
    std::string name, marginal::Workload workload,
    std::vector<marginal::MarginalTable> marginals,
    linalg::Vector cell_variances, const engine::PhaseTimings* build_timings) {
  if (name.empty()) {
    return Status::InvalidArgument("release name must be non-empty");
  }
  if (marginals.size() != workload.num_marginals()) {
    return Status::InvalidArgument(
        "marginal count does not match the workload");
  }
  if (cell_variances.empty()) {
    cell_variances.assign(workload.num_marginals(), 1.0);
  }
  const auto fit_start = std::chrono::steady_clock::now();
  auto cube = recovery::DerivedCube::Fit(workload, marginals, cell_variances);
  const double fit_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    fit_start)
          .count();
  if (!cube.ok()) return cube.status();
  auto stored = std::shared_ptr<StoredRelease>(
      new StoredRelease(std::move(name), std::move(workload),
                        std::move(marginals), std::move(cube).value()));
  stored->epoch_ = NextEpoch();
  stored->fit_seconds_ = fit_seconds;
  if (build_timings != nullptr) {
    stored->build_timings_ = *build_timings;
  } else {
    // No archived pipeline timings: the load-time fit is the only build
    // work this process performed for the release.
    stored->build_timings_.consistency_seconds = fit_seconds;
    stored->build_timings_.total_seconds = fit_seconds;
  }
  return std::shared_ptr<const StoredRelease>(std::move(stored));
}

ReleaseInfo StoredRelease::Info() const {
  ReleaseInfo info;
  info.name = name_;
  info.d = workload_.d();
  info.num_marginals = workload_.num_marginals();
  info.total_cells = workload_.TotalCells();
  return info;
}

Status ReleaseStore::Add(const std::string& name, marginal::Workload workload,
                         std::vector<marginal::MarginalTable> marginals,
                         linalg::Vector cell_variances,
                         const engine::PhaseTimings* build_timings) {
  {
    // Reject taken names before the (expensive) coefficient fit. A
    // concurrent Add can still win the name in between, so the insert
    // below re-checks under the same lock.
    sync::MutexLock lock(&mu_);
    if (releases_.count(name) > 0) {
      return Status::FailedPrecondition("release '" + name +
                                        "' already loaded");
    }
  }
  auto stored = StoredRelease::Create(name, std::move(workload),
                                      std::move(marginals),
                                      std::move(cell_variances),
                                      build_timings);
  if (!stored.ok()) return stored.status();
  sync::MutexLock lock(&mu_);
  if (releases_.count(name) > 0) {
    return Status::FailedPrecondition("release '" + name +
                                      "' already loaded");
  }
  releases_.emplace(name, std::move(stored).value());
  return Status::OK();
}

Status ReleaseStore::LoadFromFile(const std::string& name,
                                  const std::string& path,
                                  linalg::Vector cell_variances) {
  {
    sync::MutexLock lock(&mu_);
    if (releases_.count(name) > 0) {
      return Status::FailedPrecondition("release '" + name +
                                        "' already loaded");
    }
  }
  auto stored = CreateFromFile(name, path, std::move(cell_variances));
  if (!stored.ok()) return stored.status();
  return Insert(std::move(stored).value());
}

Result<std::shared_ptr<const StoredRelease>> ReleaseStore::CreateFromFile(
    const std::string& name, const std::string& path,
    linalg::Vector cell_variances) {
  auto loaded = engine::ReadReleaseCsv(path);
  if (!loaded.ok()) return loaded.status();
  // Prefer the variances archived in the file (written by the release
  // mechanism) unless the caller overrides them.
  if (cell_variances.empty()) {
    cell_variances = std::move(loaded.value().cell_variances);
  }
  return StoredRelease::Create(
      name, std::move(loaded.value().workload),
      std::move(loaded.value().marginals), std::move(cell_variances),
      loaded.value().has_build_timings ? &loaded.value().build_timings
                                       : nullptr);
}

Status ReleaseStore::Insert(std::shared_ptr<const StoredRelease> release) {
  if (release == nullptr) {
    return Status::InvalidArgument("null release");
  }
  const std::string name = release->name();
  sync::MutexLock lock(&mu_);
  if (releases_.count(name) > 0) {
    return Status::FailedPrecondition("release '" + name +
                                      "' already loaded");
  }
  releases_.emplace(name, std::move(release));
  return Status::OK();
}

Status ReleaseStore::Remove(const std::string& name) {
  sync::MutexLock lock(&mu_);
  if (releases_.erase(name) == 0) {
    return Status::NotFound("release '" + name + "' not loaded");
  }
  return Status::OK();
}

Result<std::shared_ptr<const StoredRelease>> ReleaseStore::Get(
    const std::string& name) const {
  sync::MutexLock lock(&mu_);
  auto it = releases_.find(name);
  if (it == releases_.end()) {
    return Status::NotFound("release '" + name + "' not loaded");
  }
  return it->second;
}

std::vector<ReleaseInfo> ReleaseStore::List() const {
  sync::MutexLock lock(&mu_);
  std::vector<ReleaseInfo> out;
  out.reserve(releases_.size());
  for (const auto& [name, release] : releases_) out.push_back(release->Info());
  return out;
}

std::size_t ReleaseStore::size() const {
  sync::MutexLock lock(&mu_);
  return releases_.size();
}

}  // namespace service
}  // namespace dpcube
