// Copyright 2026 The dpcube Authors.
//
// LRU cache of derived marginals, keyed by (release name, attribute-subset
// mask). Serving traffic is dominated by repeated and overlapping
// sub-marginal queries; deriving a marginal walks the coefficient index
// and runs a Walsh-Hadamard transform, whereas a cache hit is a hash
// lookup. Capacity is budgeted in CELLS (not entries) so one giant
// marginal cannot masquerade as cheap, mirroring byte-budgeted block
// caches in storage engines. Thread-safe; entries are immutable
// shared_ptrs, so a hit stays valid after eviction.

#ifndef DPCUBE_SERVICE_MARGINAL_CACHE_H_
#define DPCUBE_SERVICE_MARGINAL_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/bits.h"
#include "common/sync.h"
#include "marginal/marginal_table.h"

namespace dpcube {
namespace service {

/// A derived marginal plus its predicted per-cell noise variance.
struct CachedMarginal {
  marginal::MarginalTable table;
  double cell_variance = 0.0;
};

/// Counters exposed for monitoring and benches.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t cells = 0;           ///< Cells currently resident.
  std::size_t capacity_cells = 0;  ///< Configured budget.
};

class MarginalCache {
 public:
  /// `capacity_cells` bounds the total resident cells; 0 disables caching
  /// (every Get misses, every Put is dropped).
  explicit MarginalCache(std::size_t capacity_cells = std::size_t{1} << 20)
      : capacity_cells_(capacity_cells) {}

  /// The cached marginal for (release, beta), or nullptr on miss.
  /// A hit moves the entry to most-recently-used. `epoch` must match the
  /// epoch the entry was stored under (StoredRelease::epoch()): an entry
  /// derived from a previous incarnation of a re-used release name is a
  /// miss, never a stale hit.
  std::shared_ptr<const CachedMarginal> Get(const std::string& release,
                                            bits::Mask beta,
                                            std::uint64_t epoch = 0);

  /// Inserts (replacing any existing entry), then evicts least-recently-
  /// used entries until within capacity. Entries larger than the whole
  /// budget are not admitted.
  void Put(const std::string& release, bits::Mask beta,
           std::shared_ptr<const CachedMarginal> value,
           std::uint64_t epoch = 0);

  /// Drops every entry belonging to `release` (called on store Remove).
  void EraseRelease(const std::string& release);

  void Clear();

  CacheStats stats() const;

 private:
  using Key = std::pair<std::string, bits::Mask>;
  struct KeyHash {
    std::size_t operator()(const Key& key) const {
      const std::size_t h = std::hash<std::string>{}(key.first);
      // splitmix-style mix of the mask into the string hash.
      std::uint64_t x = key.second + 0x9e3779b97f4a7c15ULL;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      return h ^ static_cast<std::size_t>(x ^ (x >> 31));
    }
  };
  struct Entry {
    Key key;
    std::uint64_t epoch;
    std::shared_ptr<const CachedMarginal> value;
  };

  /// Evicts from the LRU tail until cells_ <= capacity.
  void EvictToCapacityLocked() REQUIRES(mu_);

  const std::size_t capacity_cells_;
  mutable sync::Mutex mu_;
  std::list<Entry> lru_ GUARDED_BY(mu_);  ///< Front = most recent.
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_
      GUARDED_BY(mu_);
  std::size_t cells_ GUARDED_BY(mu_) = 0;
  std::uint64_t hits_ GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ GUARDED_BY(mu_) = 0;
  std::uint64_t evictions_ GUARDED_BY(mu_) = 0;
};

}  // namespace service
}  // namespace dpcube

#endif  // DPCUBE_SERVICE_MARGINAL_CACHE_H_
