// Copyright 2026 The dpcube Authors.
//
// Per-verb serving telemetry: the resolved metric pointers a
// ServeSession bumps on its hot path. Resolution (name -> pointer)
// happens ONCE, at server startup, against the listener's registry;
// every session then shares the same immutable pointer table, so a
// request costs two relaxed atomic adds and one histogram record — no
// lock, no map lookup, no string.

#ifndef DPCUBE_SERVICE_SERVICE_METRICS_H_
#define DPCUBE_SERVICE_SERVICE_METRICS_H_

#include <array>
#include <memory>

#include "common/metrics.h"
#include "service/request.h"

namespace dpcube {
namespace service {

/// Stable lowercase verb label for a request kind ("load", "query",
/// "batch", ... — "invalid" for unparseable lines), used both as the
/// Prometheus `verb` label and as the STATS verb's key names.
const char* VerbName(RequestKind kind);

/// The pointer table. All pointers refer to registry-owned objects and
/// stay valid as long as the registry; sessions hold the table through
/// a shared_ptr<const SessionMetrics> so ownership is explicit.
struct SessionMetrics {
  static constexpr int kKinds = 10;   // RequestKind::kInvalid..kQuit.
  static constexpr int kCodes = 6;    // ErrorCode::kOk..kInternal.

  std::array<metrics::Counter*, kKinds> requests{};
  std::array<metrics::LatencyHistogram*, kKinds> latency{};
  std::array<metrics::Counter*, kCodes> errors{};

  metrics::Counter* request_count(RequestKind kind) const {
    return requests[static_cast<std::size_t>(kind)];
  }
  metrics::LatencyHistogram* request_latency(RequestKind kind) const {
    return latency[static_cast<std::size_t>(kind)];
  }
  metrics::Counter* error_count(ErrorCode code) const {
    return errors[static_cast<std::size_t>(code)];
  }

  /// Resolves the table against `registry`: dpcube_requests_total{verb=},
  /// dpcube_request_latency_microseconds{verb=}, and
  /// dpcube_errors_total{code=} (kOk excluded — only failures count as
  /// errors; errors[0] stays null and callers branch on the code).
  static std::shared_ptr<const SessionMetrics> Create(
      metrics::Registry* registry);
};

}  // namespace service
}  // namespace dpcube

#endif  // DPCUBE_SERVICE_SERVICE_METRICS_H_
