// Copyright 2026 The dpcube Authors.
//
// In-memory store of named private releases for online serving. Each
// stored release pairs the archived marginals with a DerivedCube fitted
// once at load time, so arbitrary covered sub-marginals can be answered
// by post-processing at zero additional privacy cost. The store is
// thread-safe and hands out shared_ptr snapshots, so queries in flight
// keep a release alive across a concurrent Remove/replace.

#ifndef DPCUBE_SERVICE_RELEASE_STORE_H_
#define DPCUBE_SERVICE_RELEASE_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "engine/metrics.h"
#include "marginal/marginal_table.h"
#include "marginal/workload.h"
#include "recovery/derive.h"

namespace dpcube {
namespace service {

/// Summary row returned by ReleaseStore::List.
struct ReleaseInfo {
  std::string name;
  int d = 0;
  std::size_t num_marginals = 0;
  std::uint64_t total_cells = 0;
};

/// One loaded release: the workload, its marginals, and the fitted
/// coefficient cube. Immutable after construction.
class StoredRelease {
 public:
  /// Fits the DerivedCube from the marginals. `cell_variances` gives the
  /// per-marginal released-cell noise variance (one entry per marginal);
  /// empty means uniform weight 1.0, which yields the plain L2
  /// consistency fit and variance predictions in units of one released
  /// cell's variance.
  /// `build_timings`, when provided (archives written with the
  /// build-seconds header), records the original pipeline's per-phase
  /// wall-clock; without it the load-time fit measured here stands in
  /// (consistency and total phases only).
  static Result<std::shared_ptr<const StoredRelease>> Create(
      std::string name, marginal::Workload workload,
      std::vector<marginal::MarginalTable> marginals,
      linalg::Vector cell_variances = {},
      const engine::PhaseTimings* build_timings = nullptr);

  const std::string& name() const { return name_; }

  /// Process-unique id of this loaded instance. Two releases loaded
  /// under the same name (remove + re-add) get different epochs, letting
  /// caches reject entries derived from a previous incarnation.
  std::uint64_t epoch() const { return epoch_; }

  const marginal::Workload& workload() const { return workload_; }
  const std::vector<marginal::MarginalTable>& marginals() const {
    return marginals_;
  }
  const recovery::DerivedCube& cube() const { return cube_; }
  int d() const { return workload_.d(); }

  /// True iff the release determines the marginal over `beta`.
  bool Covers(bits::Mask beta) const { return cube_.CanDerive(beta); }

  /// Per-phase build wall-clock: the archived pipeline timings when the
  /// release CSV carried them, otherwise the load-time consistency fit
  /// measured by Create (exported as
  /// dpcube_release_build_seconds{phase=,release=}).
  const engine::PhaseTimings& build_timings() const { return build_timings_; }
  /// The load-time DerivedCube fit, always measured here.
  double fit_seconds() const { return fit_seconds_; }

  ReleaseInfo Info() const;

 private:
  StoredRelease(std::string name, marginal::Workload workload,
                std::vector<marginal::MarginalTable> marginals,
                recovery::DerivedCube cube)
      : name_(std::move(name)),
        workload_(std::move(workload)),
        marginals_(std::move(marginals)),
        cube_(std::move(cube)) {}

  std::string name_;
  std::uint64_t epoch_ = 0;
  marginal::Workload workload_;
  std::vector<marginal::MarginalTable> marginals_;
  recovery::DerivedCube cube_;
  engine::PhaseTimings build_timings_;
  double fit_seconds_ = 0.0;
};

/// Thread-safe name -> release map.
class ReleaseStore {
 public:
  /// Registers in-memory marginals under `name`. Fails with
  /// FailedPrecondition if the name is already taken.
  Status Add(const std::string& name, marginal::Workload workload,
             std::vector<marginal::MarginalTable> marginals,
             linalg::Vector cell_variances = {},
             const engine::PhaseTimings* build_timings = nullptr);

  /// Loads a release archived by engine::WriteReleaseCsv. When the
  /// archive carries per-marginal cell variances, those are used unless
  /// `cell_variances` overrides them; with neither, variances default to
  /// uniform 1.0 (see StoredRelease::Create).
  Status LoadFromFile(const std::string& name, const std::string& path,
                      linalg::Vector cell_variances = {});

  /// Reads + fits `path` as LoadFromFile does, but returns the release
  /// without inserting it — the durable-state layer runs the expensive
  /// fit outside its lock, logs the mutation, then publishes via
  /// Insert.
  static Result<std::shared_ptr<const StoredRelease>> CreateFromFile(
      const std::string& name, const std::string& path,
      linalg::Vector cell_variances = {});

  /// Publishes an already-constructed release under its own name.
  /// FailedPrecondition if the name is taken.
  Status Insert(std::shared_ptr<const StoredRelease> release);

  Status Remove(const std::string& name);

  /// The release named `name`, or NotFound.
  Result<std::shared_ptr<const StoredRelease>> Get(
      const std::string& name) const;

  /// Summaries of all stored releases, in name order.
  std::vector<ReleaseInfo> List() const;

  std::size_t size() const;

 private:
  mutable sync::Mutex mu_;
  std::map<std::string, std::shared_ptr<const StoredRelease>> releases_
      GUARDED_BY(mu_);
};

}  // namespace service
}  // namespace dpcube

#endif  // DPCUBE_SERVICE_RELEASE_STORE_H_
