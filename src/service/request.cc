// Copyright 2026 The dpcube Authors.

#include "service/request.h"

#include <cstdio>
#include <exception>
#include <sstream>
#include <stdexcept>

namespace dpcube {
namespace service {

const char* CodecName(Codec codec) {
  switch (codec) {
    case Codec::kText: return "text";
    case Codec::kBinary: return "binary";
  }
  return "unknown";
}

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "Ok";
    case ErrorCode::kBadRequest: return "BadRequest";
    case ErrorCode::kNotFound: return "NotFound";
    case ErrorCode::kBusy: return "Busy";
    case ErrorCode::kQuotaExceeded: return "QuotaExceeded";
    case ErrorCode::kInternal: return "Internal";
  }
  return "Unknown";
}

ErrorCode ToErrorCode(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return ErrorCode::kOk;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return ErrorCode::kBadRequest;
    case StatusCode::kNotFound:
      return ErrorCode::kNotFound;
    case StatusCode::kUnavailable:
      return ErrorCode::kBusy;
    case StatusCode::kResourceExhausted:
      return ErrorCode::kQuotaExceeded;
    default:
      return ErrorCode::kInternal;
  }
}

Status ToStatus(ErrorCode code, std::string message) {
  switch (code) {
    case ErrorCode::kOk:
      return Status::OK();
    case ErrorCode::kBadRequest:
      return Status::InvalidArgument(std::move(message));
    case ErrorCode::kNotFound:
      return Status::NotFound(std::move(message));
    case ErrorCode::kBusy:
      return Status::Unavailable(std::move(message));
    case ErrorCode::kQuotaExceeded:
      return Status::ResourceExhausted(std::move(message));
    case ErrorCode::kInternal:
      return Status::Internal(std::move(message));
  }
  return Status::Internal(std::move(message));
}

bool ParseSize(const std::string& text, std::size_t* out) {
  if (text.empty() || text[0] == '-' || text[0] == '+') return false;
  const bool hex = text.rfind("0x", 0) == 0 || text.rfind("0X", 0) == 0;
  try {
    std::size_t pos = 0;
    *out = std::stoull(hex ? text.substr(2) : text, &pos, hex ? 16 : 10);
    if (pos != (hex ? text.size() - 2 : text.size()) ||
        (hex && text.size() == 2)) {
      return false;
    }
    // Uniform hostile-magnitude cap for BOTH bases: stoull alone accepts
    // anything below 2^64, and a count that close to SIZE_MAX overflows
    // the first `n + 1` or `2 * n` a consumer computes.
    return *out <= SIZE_MAX / 2;
  } catch (const std::exception&) {
    return false;
  }
}

std::vector<std::string> Tokenize(const std::string& line) {
  std::stringstream ss(line);
  std::vector<std::string> tokens;
  std::string token;
  while (ss >> token) tokens.push_back(token);
  return tokens;
}

bool ParseServeQuery(const std::vector<std::string>& tokens, Query* q,
                     std::string* error) {
  if (tokens.size() < 3) {
    *error = "query NAME marginal|cell|range MASK [CELL | LO HI]";
    return false;
  }
  q->release = tokens[0];
  const std::string& kind = tokens[1];
  std::size_t beta = 0;
  if (!ParseSize(tokens[2], &beta)) {
    *error = "bad mask '" + tokens[2] + "'";
    return false;
  }
  q->beta = beta;
  if (kind == "marginal" && tokens.size() == 3) {
    q->kind = QueryKind::kMarginal;
  } else if (kind == "cell" && tokens.size() == 4) {
    q->kind = QueryKind::kCell;
    if (!ParseSize(tokens[3], &q->cell_lo)) {
      *error = "bad cell '" + tokens[3] + "'";
      return false;
    }
  } else if (kind == "range" && tokens.size() == 5) {
    q->kind = QueryKind::kRange;
    if (!ParseSize(tokens[3], &q->cell_lo) ||
        !ParseSize(tokens[4], &q->cell_hi)) {
      *error = "bad range bounds";
      return false;
    }
  } else {
    *error = "unknown query form '" + kind + "'";
    return false;
  }
  return true;
}

namespace {

Request Invalid(std::string raw, ErrorCode code, std::string error) {
  Request request;
  request.kind = RequestKind::kInvalid;
  request.raw = std::move(raw);
  request.error_code = code;
  request.error = std::move(error);
  return request;
}

Request ParseHello(const std::string& line,
                   const std::vector<std::string>& tokens) {
  if (tokens.size() < 2 || tokens.size() > 3) {
    return Invalid(line, ErrorCode::kBadRequest,
                   "HELLO expects 'HELLO v1|v2 [text|binary]'");
  }
  Request request;
  request.kind = RequestKind::kHello;
  request.raw = line;
  if (tokens[1] == "v1") {
    request.version = kProtocolVersionV1;
  } else if (tokens[1] == "v2") {
    request.version = kProtocolVersionV2;
  } else {
    return Invalid(line, ErrorCode::kBadRequest,
                   "unsupported protocol version '" + tokens[1] + "'");
  }
  if (tokens.size() == 3) {
    if (tokens[2] == "text") {
      request.codec = Codec::kText;
    } else if (tokens[2] == "binary") {
      request.codec = Codec::kBinary;
    } else {
      return Invalid(line, ErrorCode::kBadRequest,
                     "unknown codec '" + tokens[2] + "'");
    }
  }
  if (request.version == kProtocolVersionV1 &&
      request.codec == Codec::kBinary) {
    return Invalid(line, ErrorCode::kBadRequest,
                   "protocol v1 has no binary codec");
  }
  return request;
}

}  // namespace

Request ParseRequestLine(const std::string& line,
                         const std::vector<std::string>& tokens) {
  Request request;
  request.raw = line;
  const std::string& command = tokens[0];

  // Dispatch mirrors the v1 HandleLine/ProcessStream pair exactly: a
  // verb with the wrong arity falls through to the unknown-request
  // error, "quit"/"exit" match regardless of arity, and only
  // "batch <one token>" is a batch header.
  if (command == "quit" || command == "exit") {
    request.kind = RequestKind::kQuit;
    return request;
  }
  if (command == "HELLO") {
    return ParseHello(line, tokens);
  }
  if (command == "load" && tokens.size() == 3) {
    request.kind = RequestKind::kLoad;
    request.name = tokens[1];
    request.path = tokens[2];
    return request;
  }
  if (command == "unload" && tokens.size() == 2) {
    request.kind = RequestKind::kUnload;
    request.name = tokens[1];
    return request;
  }
  if (command == "list" && tokens.size() == 1) {
    request.kind = RequestKind::kList;
    return request;
  }
  if (command == "query") {
    std::string error;
    if (!ParseServeQuery(
            std::vector<std::string>(tokens.begin() + 1, tokens.end()),
            &request.query, &error)) {
      return Invalid(line, ErrorCode::kBadRequest, std::move(error));
    }
    request.kind = RequestKind::kQuery;
    return request;
  }
  if (command == "batch" && tokens.size() == 2) {
    // Zero would emit zero response lines and stall a scripted client
    // waiting for one; an unbounded count (or "-1" wrapping) would
    // swallow the rest of the stream.
    std::size_t n = 0;
    if (!ParseSize(tokens[1], &n) || n == 0 || n > kMaxBatch) {
      return Invalid(line, ErrorCode::kBadRequest,
                     "batch expects a count in 1.." +
                         std::to_string(kMaxBatch));
    }
    request.kind = RequestKind::kBatch;
    request.batch_count = n;
    return request;
  }
  if (command == "STATS" && tokens.size() == 1) {
    request.kind = RequestKind::kServerStats;
    return request;
  }
  if (command == "stats" && tokens.size() == 1) {
    request.kind = RequestKind::kCacheStats;
    return request;
  }
  return Invalid(line, ErrorCode::kBadRequest,
                 "unknown request '" + line + "'");
}

std::string FormatResponse(const QueryResponse& response) {
  if (!response.status.ok()) {
    return "ERR " + response.status.ToString();
  }
  char head[96];
  std::snprintf(head, sizeof(head),
                "OK query mask=0x%llx var=%.6g hit=%d n=%zu values",
                static_cast<unsigned long long>(response.beta),
                response.variance, response.cache_hit ? 1 : 0,
                response.values.size());
  std::string line(head);
  char field[32];
  for (const double v : response.values) {
    std::snprintf(field, sizeof(field), " %.17g", v);
    line += field;
  }
  return line;
}

std::string FormatResponseLine(const Response& response) {
  if (response.has_query) return FormatResponse(response.query);
  if (response.code == ErrorCode::kBusy) return "BUSY " + response.message;
  if (response.code != ErrorCode::kOk) return "ERR " + response.message;
  switch (response.request) {
    case RequestKind::kHello: {
      std::string line = "OK HELLO v";
      line += std::to_string(response.version);
      line += " codec=";
      line += CodecName(response.codec);
      return line;
    }
    case RequestKind::kLoad:
      return "OK loaded " + response.name;
    case RequestKind::kUnload:
      return "OK unloaded " + response.name;
    case RequestKind::kList: {
      std::ostringstream out;
      out << "OK releases n=" << response.releases.size();
      for (const auto& info : response.releases) {
        out << " " << info.name << ":d=" << info.d
            << ":marginals=" << info.num_marginals
            << ":cells=" << info.total_cells;
      }
      return out.str();
    }
    case RequestKind::kCacheStats: {
      const CacheStats& s = response.cache;
      std::ostringstream out;
      out << "OK stats hits=" << s.hits << " misses=" << s.misses
          << " evictions=" << s.evictions << " entries=" << s.entries
          << " cells=" << s.cells << " capacity=" << s.capacity_cells
          << " releases=" << response.store_releases;
      return out.str();
    }
    case RequestKind::kServerStats:
      return response.message;  // The handler returns a full line.
    case RequestKind::kQuit:
      return "OK bye";
    default:
      return "OK " + response.message;
  }
}

}  // namespace service
}  // namespace dpcube
