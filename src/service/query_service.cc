// Copyright 2026 The dpcube Authors.

#include "service/query_service.h"

#include <cmath>
#include <utility>

namespace dpcube {
namespace service {
namespace {

/// Exact variance of sum_{c in [lo, hi]} cell_c of the derived marginal
/// over beta. Each cell is 2^{d/2 - k} * sum_{eta ⪯ beta}
/// (-1)^{<gamma_c, eta>} theta_eta, so the range sum is a linear
/// functional of the (independent) fitted coefficients with weight
/// w_eta = sum_c (-1)^{<gamma_c, eta>}:
///   Var = 2^{d - 2k} * sum_{eta ⪯ beta} w_eta^2 Var(theta_eta).
Result<double> RangeSumVariance(const recovery::DerivedCube& cube,
                                bits::Mask beta, std::size_t lo,
                                std::size_t hi) {
  const int k = bits::Popcount(beta);
  double sum = 0.0;
  for (bits::SubmaskIterator it(beta); !it.done(); it.Next()) {
    double weight = 0.0;
    for (std::size_t c = lo; c <= hi; ++c) {
      weight += bits::FourierSign(bits::ExpandIntoMask(c, beta), it.mask());
    }
    DPCUBE_ASSIGN_OR_RETURN(const double var,
                            cube.CoefficientVariance(it.mask()));
    sum += weight * weight * var;
  }
  return std::ldexp(sum, cube.d() - 2 * k);
}

}  // namespace

Result<std::shared_ptr<const CachedMarginal>> QueryService::DeriveFromStored(
    const StoredRelease& stored, bits::Mask beta, bool* cache_hit) const {
  // Keyed by (name, beta) but guarded by the release's epoch: an entry
  // installed by a query racing a remove + re-add of the name is never
  // served to the other incarnation — a mismatch reads as a miss and
  // the re-derivation overwrites it.
  if (auto cached = cache_->Get(stored.name(), beta, stored.epoch())) {
    if (cache_hit != nullptr) *cache_hit = true;
    return cached;
  }
  if (cache_hit != nullptr) *cache_hit = false;
  DPCUBE_ASSIGN_OR_RETURN(marginal::MarginalTable table,
                          stored.cube().Derive(beta));
  DPCUBE_ASSIGN_OR_RETURN(const double cell_variance,
                          stored.cube().DerivedCellVariance(beta));
  auto entry = std::make_shared<const CachedMarginal>(
      CachedMarginal{std::move(table), cell_variance});
  cache_->Put(stored.name(), beta, entry, stored.epoch());
  return entry;
}

Result<std::shared_ptr<const CachedMarginal>> QueryService::DeriveMarginal(
    const std::string& release, bits::Mask beta, bool* cache_hit) const {
  DPCUBE_ASSIGN_OR_RETURN(std::shared_ptr<const StoredRelease> stored,
                          store_->Get(release));
  return DeriveFromStored(*stored, beta, cache_hit);
}

Status QueryService::RemoveRelease(const std::string& name) const {
  const Status st = store_->Remove(name);
  // Drop cached tables even if the store had no such release, so a
  // half-completed earlier removal cannot leave stale entries behind.
  cache_->EraseRelease(name);
  return st;
}

QueryResponse QueryService::Answer(const Query& query) const {
  QueryResponse response;
  response.beta = query.beta;
  // One store lookup per answer; everything below (table, variances,
  // range cube) comes from this snapshot, so a concurrent remove/re-add
  // of the name cannot mix releases within one response.
  auto stored = store_->Get(query.release);
  if (!stored.ok()) {
    response.status = stored.status();
    return response;
  }
  const StoredRelease& stored_release = *stored.value();
  auto derived =
      DeriveFromStored(stored_release, query.beta, &response.cache_hit);
  if (!derived.ok()) {
    response.status = derived.status();
    return response;
  }
  const CachedMarginal& cached = *derived.value();
  const std::size_t num_cells = cached.table.num_cells();
  switch (query.kind) {
    case QueryKind::kMarginal:
      response.values = cached.table.values();
      response.variance = cached.cell_variance;
      break;
    case QueryKind::kCell: {
      if (query.cell_lo >= num_cells) {
        response.status = Status::OutOfRange(
            "cell " + std::to_string(query.cell_lo) + " out of range (" +
            std::to_string(num_cells) + " cells)");
        return response;
      }
      response.values.push_back(cached.table.value(query.cell_lo));
      response.variance = cached.cell_variance;
      break;
    }
    case QueryKind::kRange: {
      if (query.cell_lo > query.cell_hi || query.cell_hi >= num_cells) {
        response.status = Status::OutOfRange(
            "range [" + std::to_string(query.cell_lo) + ", " +
            std::to_string(query.cell_hi) + "] invalid for " +
            std::to_string(num_cells) + " cells");
        return response;
      }
      double sum = 0.0;
      for (std::size_t c = query.cell_lo; c <= query.cell_hi; ++c) {
        sum += cached.table.value(c);
      }
      response.values.push_back(sum);
      // Recomputed per request: O((hi - lo + 1) * 2^k) sign flips. Cheap
      // next to a derivation for the small ranges serving traffic asks
      // for; memoise per (release, beta, lo, hi) if profiles disagree.
      auto variance = RangeSumVariance(stored_release.cube(), query.beta,
                                       query.cell_lo, query.cell_hi);
      if (!variance.ok()) {
        response.status = variance.status();
        return response;
      }
      response.variance = variance.value();
      break;
    }
  }
  return response;
}

}  // namespace service
}  // namespace dpcube
