// Copyright 2026 The dpcube Authors.
//
// ServeConfig — the single source of truth for `dpcube serve`. The
// ~15 serve flags used to be parsed piecemeal inside RunServe, each
// with its own error handling and silent interactions (an --http-token
// with no --http-listen simply did nothing). ParseServeConfig gathers
// them into one struct, validated in one place, with every bad
// combination rejected loudly BEFORE any socket is bound or state
// directory touched. net::ServerOptions, the HTTP endpoint, and the
// durable-state layer are all constructed from this one struct
// (net::ServerOptionsFromConfig), so a flag can never reach one
// subsystem but miss another.

#ifndef DPCUBE_SERVICE_SERVE_CONFIG_H_
#define DPCUBE_SERVICE_SERVE_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"

namespace dpcube {
namespace service {

struct ServeConfig {
  // Shared by stdin and network mode.
  std::size_t cache_cells = std::size_t{1} << 20;
  std::string release_path;            ///< --release (optional preload).
  std::string release_name = "default";  ///< --name (requires --release).

  // Durable state (both modes).
  std::string state_dir;               ///< --state-dir (empty = volatile).
  std::uint64_t snapshot_every = 1024; ///< --snapshot-every (records).

  // Network mode (--listen present).
  std::string listen_address;
  int max_connections = 64;
  int max_inflight = 8;
  int max_queue_depth = 256;
  int drain_timeout_ms = 10000;
  int net_threads = 0;  ///< 0 = auto (min(4, hardware)).
  std::uint64_t query_quota = 0;       ///< --query-quota (0 = unmetered).
  std::uint64_t query_rate_limit = 0;  ///< --query-rate-limit N[/WINDOWs].
  int query_rate_window_seconds = 60;
  std::string http_listen_address;
  std::string http_token;
  std::string access_log_path;
  int slow_query_ms = 0;
  std::size_t trace_ring_capacity = 256;
  std::size_t max_frame_payload = std::size_t{1} << 20;

  bool network() const { return !listen_address.empty(); }
  bool durable() const { return !state_dir.empty(); }
};

/// Parses and cross-validates the serve flag map (as produced by the
/// CLI's ParseFlags). Rejects unknown serve flags, out-of-range values,
/// and incoherent combinations — network-only flags without --listen,
/// --http-token without --http-listen, --name without --release,
/// --snapshot-every without --state-dir — so misconfiguration fails
/// before any side effect. The global --threads flag is handled by the
/// CLI before dispatch and ignored here.
Result<ServeConfig> ParseServeConfig(
    const std::map<std::string, std::string>& flags);

}  // namespace service
}  // namespace dpcube

#endif  // DPCUBE_SERVICE_SERVE_CONFIG_H_
