// Copyright 2026 The dpcube Authors.
//
// Concurrent batch execution of independent queries over a fixed thread
// pool. Queries are grouped by (release, marginal mask) before dispatch:
// each group becomes one task that derives (or cache-fetches) the shared
// parent marginal once and answers every query in the group from it, so
// a batch of N point queries against the same marginal costs one
// derivation, not N. Groups run concurrently across the pool; response
// order matches request order.

#ifndef DPCUBE_SERVICE_BATCH_EXECUTOR_H_
#define DPCUBE_SERVICE_BATCH_EXECUTOR_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "service/query_service.h"

namespace dpcube {
namespace service {

class BatchExecutor {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1) bound to `service`.
  BatchExecutor(std::shared_ptr<const QueryService> service, int num_threads);

  /// Drains the queue and joins the workers.
  ~BatchExecutor();

  BatchExecutor(const BatchExecutor&) = delete;
  BatchExecutor& operator=(const BatchExecutor&) = delete;

  /// Answers all queries; `result[i]` corresponds to `queries[i]`.
  /// Blocks until the whole batch is done. Thread-safe: concurrent
  /// batches interleave over the shared pool.
  std::vector<QueryResponse> ExecuteBatch(
      const std::vector<Query>& queries) const;

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();
  void Submit(std::function<void()> task) const;

  std::shared_ptr<const QueryService> service_;

  mutable std::mutex mu_;
  mutable std::condition_variable work_available_;
  mutable std::deque<std::function<void()>> tasks_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace service
}  // namespace dpcube

#endif  // DPCUBE_SERVICE_BATCH_EXECUTOR_H_
