// Copyright 2026 The dpcube Authors.
//
// Concurrent batch execution of independent queries over a thread pool.
// Queries are grouped by (release, marginal mask) before dispatch: each
// group becomes one task that derives (or cache-fetches) the shared
// parent marginal once and answers every query in the group from it, so
// a batch of N point queries against the same marginal costs one
// derivation, not N. Groups run concurrently across the pool; response
// order matches request order.
//
// The executor does not own threads itself: it runs on a ThreadPool —
// normally ThreadPool::Shared(), the same pool the release pipeline's
// ParallelFor hot paths use, so one --threads flag governs the whole
// process. A private pool constructor remains for tests that need an
// isolated thread count.

#ifndef DPCUBE_SERVICE_BATCH_EXECUTOR_H_
#define DPCUBE_SERVICE_BATCH_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "service/query_service.h"

namespace dpcube {
namespace service {

/// Wall-clock of one batch group (all queries sharing a parent
/// marginal), measured on the worker that answered it. Each entry is
/// written by exactly one worker into its own pre-sized vector slot and
/// only read after the batch's join barrier, so the timing costs no
/// synchronisation beyond the barrier the batch already pays.
struct BatchGroupTiming {
  std::string release;
  std::size_t queries = 0;       ///< Sub-queries answered by the group.
  std::uint64_t micros = 0;      ///< Group wall-clock on its worker.
};

struct BatchTiming {
  std::vector<BatchGroupTiming> groups;
  std::uint64_t max_group_micros = 0;  ///< Slowest group (critical path).
};

class BatchExecutor {
 public:
  /// Executor bound to `service`, running batches on `pool` (not owned;
  /// must outlive the executor).
  BatchExecutor(std::shared_ptr<const QueryService> service,
                ThreadPool* pool);

  /// Convenience: executor with a private pool of `num_threads` total
  /// threads (clamped to >= 1).
  BatchExecutor(std::shared_ptr<const QueryService> service, int num_threads);

  BatchExecutor(const BatchExecutor&) = delete;
  BatchExecutor& operator=(const BatchExecutor&) = delete;

  /// Answers all queries; `result[i]` corresponds to `queries[i]`.
  /// Blocks until the whole batch is done; the calling thread joins the
  /// pool's workers in answering groups. Thread-safe: concurrent batches
  /// interleave over the shared pool. When `timing` is non-null it is
  /// filled (after the join) with per-group wall-clock spans for the
  /// request-tracing spine.
  std::vector<QueryResponse> ExecuteBatch(const std::vector<Query>& queries,
                                          BatchTiming* timing = nullptr) const;

  int num_threads() const { return pool_->parallelism(); }

 private:
  std::shared_ptr<const QueryService> service_;
  std::unique_ptr<ThreadPool> owned_pool_;  // Only for the int ctor.
  ThreadPool* pool_;
};

}  // namespace service
}  // namespace dpcube

#endif  // DPCUBE_SERVICE_BATCH_EXECUTOR_H_
