// Copyright 2026 The dpcube Authors.
//
// Concurrent batch execution of independent queries over a thread pool.
// Queries are grouped by (release, marginal mask) before dispatch: each
// group becomes one task that derives (or cache-fetches) the shared
// parent marginal once and answers every query in the group from it, so
// a batch of N point queries against the same marginal costs one
// derivation, not N. Groups run concurrently across the pool; response
// order matches request order.
//
// The executor does not own threads itself: it runs on a ThreadPool —
// normally ThreadPool::Shared(), the same pool the release pipeline's
// ParallelFor hot paths use, so one --threads flag governs the whole
// process. A private pool constructor remains for tests that need an
// isolated thread count.

#ifndef DPCUBE_SERVICE_BATCH_EXECUTOR_H_
#define DPCUBE_SERVICE_BATCH_EXECUTOR_H_

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "service/query_service.h"

namespace dpcube {
namespace service {

class BatchExecutor {
 public:
  /// Executor bound to `service`, running batches on `pool` (not owned;
  /// must outlive the executor).
  BatchExecutor(std::shared_ptr<const QueryService> service,
                ThreadPool* pool);

  /// Convenience: executor with a private pool of `num_threads` total
  /// threads (clamped to >= 1).
  BatchExecutor(std::shared_ptr<const QueryService> service, int num_threads);

  BatchExecutor(const BatchExecutor&) = delete;
  BatchExecutor& operator=(const BatchExecutor&) = delete;

  /// Answers all queries; `result[i]` corresponds to `queries[i]`.
  /// Blocks until the whole batch is done; the calling thread joins the
  /// pool's workers in answering groups. Thread-safe: concurrent batches
  /// interleave over the shared pool.
  std::vector<QueryResponse> ExecuteBatch(
      const std::vector<Query>& queries) const;

  int num_threads() const { return pool_->parallelism(); }

 private:
  std::shared_ptr<const QueryService> service_;
  std::unique_ptr<ThreadPool> owned_pool_;  // Only for the int ctor.
  ThreadPool* pool_;
};

}  // namespace service
}  // namespace dpcube

#endif  // DPCUBE_SERVICE_BATCH_EXECUTOR_H_
