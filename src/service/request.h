// Copyright 2026 The dpcube Authors.
//
// The typed request/response surface of the serve protocol (protocol
// v2). Requests arrive as text lines in both protocol versions; this
// header gives every line a typed representation (Request) and every
// answer a typed one (Response) with a structured error code, so the
// session, the network connection, and the client library can operate
// on variants instead of string glue. How a Response reaches the wire
// is the codec's concern (service/wire_codec.h): the text codec
// reproduces the v1 lines byte for byte, the v2 binary codec packs
// value arrays as little-endian doubles.
//
// Protocol versions:
//   v1 — the original line protocol. No handshake; responses are text.
//   v2 — negotiated with "HELLO v2 [text|binary]". Requests stay text
//        lines; responses use the negotiated codec. "HELLO v1" (or
//        "HELLO v2 text") switches back to text, so a conversation can
//        change codecs at any request boundary. The HELLO ack itself is
//        encoded in the codec in effect BEFORE the switch, so the
//        client can always read it.

#ifndef DPCUBE_SERVICE_REQUEST_H_
#define DPCUBE_SERVICE_REQUEST_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "service/marginal_cache.h"
#include "service/query_service.h"
#include "service/release_store.h"

namespace dpcube {
namespace service {

inline constexpr int kProtocolVersionV1 = 1;
inline constexpr int kProtocolVersionV2 = 2;

/// Largest "batch N" count a session accepts (shared by v1 and v2).
inline constexpr std::size_t kMaxBatch = 100000;

/// Response encodings a v2 session can negotiate.
enum class Codec : std::uint8_t {
  kText = 1,    ///< v1-identical newline-terminated lines.
  kBinary = 2,  ///< Length-prefixed binary records (wire_codec.h).
};
const char* CodecName(Codec codec);

/// Structured error codes carried by every Response. The text codec
/// renders them into the v1 "ERR ..."/"BUSY ..." prefixes; the binary
/// codec carries the code byte itself.
enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kBadRequest = 1,     ///< Malformed verb, arity, numeral, or handshake.
  kNotFound = 2,       ///< Unknown release / underivable marginal.
  kBusy = 3,           ///< Shed by admission control.
  kQuotaExceeded = 4,  ///< Per-release query quota exhausted.
  kInternal = 5,       ///< Everything else (I/O, numerical, ...).
};
const char* ErrorCodeName(ErrorCode code);

/// Maps a library Status onto the wire's error taxonomy. This is the
/// ONE Status -> ErrorCode conversion in the codebase (serve_protocol
/// and wire_codec both route through it). The wire taxonomy is coarser
/// than StatusCode, so several codes fold into each arm; ToStatus picks
/// one canonical preimage per ErrorCode, and ToErrorCode(ToStatus(e))
/// == e for every e (the round trip the tests pin down).
ErrorCode ToErrorCode(const Status& status);

/// Lifts a wire error back into a Status carrying `message` — the
/// canonical inverse of ToErrorCode (used by clients and by replay
/// paths that must reconstruct a Status from a logged code).
Status ToStatus(ErrorCode code, std::string message);

enum class RequestKind {
  kInvalid = 0,  ///< Unparseable; `error` holds the v1 message.
  kHello,        ///< HELLO v1|v2 [text|binary]
  kLoad,         ///< load NAME PATH
  kUnload,       ///< unload NAME
  kList,         ///< list
  kQuery,        ///< query NAME marginal|cell|range MASK [...]
  kBatch,        ///< batch N (+ N query sub-lines from the stream)
  kCacheStats,   ///< stats
  kServerStats,  ///< STATS
  kQuit,         ///< quit | exit
};

/// One parsed request line. Which fields are meaningful depends on
/// `kind`; everything else keeps its default.
struct Request {
  RequestKind kind = RequestKind::kInvalid;
  std::string raw;  ///< The original line (echoed by unknown-request).

  // kHello
  int version = kProtocolVersionV1;
  Codec codec = Codec::kText;

  // kLoad / kUnload
  std::string name;
  std::string path;  ///< kLoad only.

  // kQuery
  Query query;

  // kBatch
  std::size_t batch_count = 0;

  // kInvalid
  ErrorCode error_code = ErrorCode::kOk;
  std::string error;  ///< v1 error text without the "ERR " prefix.
};

/// One typed answer. `code` is kOk for successes; for failures `message`
/// holds the v1 error text without its "ERR "/"BUSY " prefix (the codec
/// re-attaches it). Query answers keep the full QueryResponse so the
/// text codec can reproduce the v1 line bit for bit and the binary
/// codec can pack the raw values.
struct Response {
  RequestKind request = RequestKind::kInvalid;
  ErrorCode code = ErrorCode::kOk;
  std::string message;

  // kQuery (has_query distinguishes a typed query answer — possibly an
  // error inside query.status — from a pre-query refusal such as a
  // quota denial, which uses the plain code/message error path).
  bool has_query = false;
  QueryResponse query;

  // kHello
  int version = kProtocolVersionV1;
  Codec codec = Codec::kText;

  // kList
  std::vector<ReleaseInfo> releases;

  // kCacheStats
  CacheStats cache;
  std::size_t store_releases = 0;

  // kLoad / kUnload
  std::string name;

  static Response Error(ErrorCode error_code, std::string text) {
    Response response;
    response.code = error_code;
    response.message = std::move(text);
    return response;
  }
  /// A shed request's reply; `reason` is the admission controller's text
  /// without the "BUSY " prefix.
  static Response Busy(std::string reason) {
    return Error(ErrorCode::kBusy, std::move(reason));
  }
  static Response FromQuery(QueryResponse query_response) {
    Response response;
    response.request = RequestKind::kQuery;
    response.code = ToErrorCode(query_response.status);
    response.has_query = true;
    response.query = std::move(query_response);
    return response;
  }
};

/// Strict non-negative integer parse, decimal or 0x-hex ONLY (no octal:
/// "010" means ten); rejects empty input, negatives, trailing garbage,
/// and — uniformly across both bases — values above SIZE_MAX/2, so a
/// hostile count can never be doubled or rounded up into an overflow by
/// downstream arithmetic.
bool ParseSize(const std::string& text, std::size_t* out);

/// Splits a request line on whitespace (every dispatch layer shares
/// this, so they all parse identically).
std::vector<std::string> Tokenize(const std::string& line);

/// Parses "NAME kind MASK [args]" tokens (after the "query" verb) into
/// q. On failure returns false and fills `error`.
bool ParseServeQuery(const std::vector<std::string>& tokens, Query* q,
                     std::string* error);

/// Parses one request line into its typed form. Never fails outright:
/// unparseable input yields kind kInvalid with error_code/error filled
/// with exactly the v1 diagnosis ("unknown request '<line>'", "bad mask
/// '...'", ...). `tokens` must be Tokenize(line) and non-empty.
Request ParseRequestLine(const std::string& line,
                         const std::vector<std::string>& tokens);

/// Formats a query response as the v1 protocol's single line (no
/// trailing newline). Exported on its own because the CLI prints local
/// query answers through the same formatter.
std::string FormatResponse(const QueryResponse& response);

/// Renders a typed Response as its v1 text line, byte-identical to what
/// the pre-v2 server emitted (no trailing newline).
std::string FormatResponseLine(const Response& response);

}  // namespace service
}  // namespace dpcube

#endif  // DPCUBE_SERVICE_REQUEST_H_
