// Copyright 2026 The dpcube Authors.
//
// The `dpcube serve` session: one conversation over a request/response
// stream pair, factored out of the CLI so the request loop can be driven
// in-process (stream in, stream out) by tests — in particular the seeded
// fuzz harness in tests/service/serve_protocol_fuzz_test.cc.
//
// Requests are text lines in every protocol version (one response per
// request line):
//   HELLO v1|v2 [text|binary]  negotiate protocol version and response
//                             codec (v2; see service/request.h)
//   load NAME PATH            load a release CSV under NAME
//   unload NAME               drop a release (and its cached tables)
//   list                      enumerate loaded releases
//   query NAME marginal MASK  full derived marginal over MASK
//   query NAME cell MASK C    one cell of that marginal
//   query NAME range MASK L H sum of local cells [L, H]
//   batch N                   read next N query lines, run them
//                             concurrently on the executor
//   stats                     cache hit/miss/eviction counters
//   STATS                     server-level counters + latency quantiles
//                             (network mode only; see SetServerStatsHandler)
//   quit                      exit
//
// Responses are typed (service::Response) and leave through the
// negotiated codec: under text (the default, bit-compatible with v1)
// they are "OK ..." / "ERR <message>" lines; under the v2 binary codec
// they are the records of service/wire_codec.h. "BUSY <reason>"
// additionally exists at the network layer when admission control sheds
// a request before it ever reaches a session, and "ERR QuotaExceeded:
// ..." when a per-release query quota (SetQueryQuotaGate) runs out.

#ifndef DPCUBE_SERVICE_SERVE_PROTOCOL_H_
#define DPCUBE_SERVICE_SERVE_PROTOCOL_H_

#include <atomic>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/trace.h"
#include "common/trace_metrics.h"
#include "service/batch_executor.h"
#include "service/marginal_cache.h"
#include "service/mutation.h"
#include "service/query_service.h"
#include "service/release_store.h"
#include "service/request.h"
#include "service/service_metrics.h"
#include "service/wire_codec.h"

namespace dpcube {
namespace service {

/// One serve conversation over a request/response stream pair. The
/// session borrows its collaborators; the executor (and therefore its
/// pool) must outlive it.
class ServeSession {
 public:
  ServeSession(std::shared_ptr<ReleaseStore> store,
               std::shared_ptr<MarginalCache> cache,
               std::shared_ptr<const QueryService> service,
               const BatchExecutor* executor);

  /// Reads request lines from `in` until quit/EOF, writing responses to
  /// `out` (flushed after every response, suitable for pipes).
  void Run(std::istream& in, std::ostream& out);

  /// Processes every complete request line in `in`, appending one
  /// encoded response per request to `out`. This is Run without the
  /// per-response flushing: the network server calls it once per decoded
  /// frame (a frame payload is a self-contained chunk of protocol
  /// conversation — possibly several pipelined lines, possibly a batch
  /// header plus its sub-lines). Returns false iff a quit/exit request
  /// was processed (remaining payload lines are not read, matching Run).
  /// A "batch N" whose sub-lines are cut off by the end of `in` answers
  /// "ERR unexpected EOF inside batch", bounding the error to the frame.
  ///
  /// `frame_trace`, when non-null, accumulates the frame's compute and
  /// encode spans plus verb/release/outcome/batch identity (the network
  /// connection owns the trace and its other spans). The session never
  /// shares a trace across threads: one frame executes on one worker.
  bool ProcessStream(std::istream& in, std::ostream& out,
                     bool flush_each = false,
                     trace::RequestTrace* frame_trace = nullptr);

  /// The response codec currently in effect (mutated by HELLO requests
  /// on whatever thread drives the session; readable from any thread —
  /// the network thread uses it to encode shed/goodbye responses it
  /// flushes AFTER all earlier requests completed, which is exactly when
  /// this value reflects every preceding HELLO).
  Codec codec() const { return codec_.load(std::memory_order_acquire); }

  /// Installs a handler for the extended "STATS" verb (server-level
  /// counters, as opposed to lowercase "stats" which reports the cache).
  /// The callback returns one full response line without the trailing
  /// newline; it runs on whatever thread drives the session, so it must
  /// be thread-safe. Unset (the stdin/stdout CLI mode and tests), the
  /// verb falls through to the unknown-request error.
  void SetServerStatsHandler(std::function<std::string()> handler) {
    server_stats_handler_ = std::move(handler);
  }

  /// Installs the per-release query-quota gate. Called once per query
  /// (batch sub-queries included) with the release name BEFORE any work
  /// happens; returning false denies the query, and `*denial` supplies
  /// the human text of the resulting kQuotaExceeded error. Runs on
  /// whatever thread drives the session, so it must be thread-safe.
  /// Unset, queries are unmetered (the v1 behavior).
  void SetQueryQuotaGate(
      std::function<bool(const std::string& release, std::string* denial)>
          gate) {
    quota_gate_ = std::move(gate);
  }

  /// Installs the per-verb telemetry table (resolved once against the
  /// server's registry; see service/service_metrics.h). Every processed
  /// request bumps its verb's counter and latency histogram, and every
  /// non-kOk response bumps its error-code counter. Unset (CLI mode and
  /// most tests), the session records nothing.
  void SetMetrics(std::shared_ptr<const SessionMetrics> metrics) {
    metrics_ = std::move(metrics);
  }

  /// Installs the tracing-side metric table (span histograms plus the
  /// capped per-release series; see common/trace_metrics.h). With it
  /// set, every answered query also records into its release's
  /// labelled counter/latency series. Unset, nothing is recorded.
  void SetTraceMetrics(
      std::shared_ptr<const trace::ServingTraceMetrics> trace_metrics) {
    trace_metrics_ = std::move(trace_metrics);
  }

  /// Called after every successful `load NAME PATH` with the release
  /// name, on the thread driving the session (must be thread-safe).
  /// The listener uses it to register the release's build-phase gauges
  /// the moment a release appears at runtime.
  void SetReleaseLoadedHook(std::function<void(const std::string&)> hook) {
    release_loaded_hook_ = std::move(hook);
  }

  /// Routes the mutating verbs (load/unload) through an external state
  /// machine instead of the in-memory store. With `serve --state-dir`
  /// the listener installs DurableState::Apply here, so a wire-driven
  /// load is changelog-appended and fsync'd before it takes effect.
  /// Runs on whatever thread drives the session (must be thread-safe).
  /// Unset, mutations apply directly to the store/service (the
  /// volatile behavior).
  void SetMutationHandler(std::function<Status(const Mutation&)> handler) {
    mutation_handler_ = std::move(handler);
  }

 private:
  /// Executes one non-batch, non-HELLO typed request.
  Response ExecuteRequest(const Request& request);
  /// Applies a mutating verb: through the installed handler (durable
  /// path) or directly to the in-memory structures.
  Status ApplyMutation(const Mutation& mutation);
  /// Handles "HELLO ...": returns the ack and, on success, switches the
  /// codec AFTER the ack was encoded in the previous one.
  void HandleHello(const Request& request, std::ostream& out);
  /// Handles "batch N": consumes the sub-lines from `in` and responds.
  void HandleBatch(const Request& request, std::istream& in,
                   std::ostream& out);
  /// Quota check for one query; fills `*denied` when the gate refuses.
  bool CheckQuota(const Query& query, Response* denied) const;
  /// Encodes `response` under the current codec, counting any non-kOk
  /// code in the error telemetry first. Every response leaves through
  /// here so the error counters can never miss a path.
  void Emit(const Response& response, std::ostream& out);

  std::shared_ptr<ReleaseStore> store_;
  std::shared_ptr<MarginalCache> cache_;
  std::shared_ptr<const QueryService> service_;
  const BatchExecutor* executor_;
  std::function<std::string()> server_stats_handler_;
  std::function<bool(const std::string&, std::string*)> quota_gate_;
  std::shared_ptr<const SessionMetrics> metrics_;
  std::shared_ptr<const trace::ServingTraceMetrics> trace_metrics_;
  std::function<void(const std::string&)> release_loaded_hook_;
  std::function<Status(const Mutation&)> mutation_handler_;
  /// The frame trace currently being filled (only while ProcessStream
  /// runs; a session executes one frame at a time, so no sharing).
  trace::RequestTrace* active_trace_ = nullptr;
  std::atomic<Codec> codec_{Codec::kText};
};

}  // namespace service
}  // namespace dpcube

#endif  // DPCUBE_SERVICE_SERVE_PROTOCOL_H_
