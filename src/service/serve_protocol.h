// Copyright 2026 The dpcube Authors.
//
// The `dpcube serve` line protocol, factored out of the CLI so the
// request loop can be driven in-process (stream in, stream out) by tests
// — in particular the seeded fuzz harness in
// tests/service/serve_protocol_fuzz_test.cc, which throws malformed
// verbs, truncated arguments, and oversized batches at it.
//
// Protocol (one response line per request line):
//   load NAME PATH            load a release CSV under NAME
//   unload NAME               drop a release (and its cached tables)
//   list                      enumerate loaded releases
//   query NAME marginal MASK  full derived marginal over MASK
//   query NAME cell MASK C    one cell of that marginal
//   query NAME range MASK L H sum of local cells [L, H]
//   batch N                   read next N query lines, run them
//                             concurrently on the executor
//   stats                     cache hit/miss/eviction counters
//   STATS                     server-level counters + latency quantiles
//                             (network mode only; see SetServerStatsHandler)
//   quit                      exit
// Responses are "OK ..." or "ERR <message>" ("BUSY <reason>" additionally
// exists at the network layer when admission control sheds a request
// before it ever reaches a session).

#ifndef DPCUBE_SERVICE_SERVE_PROTOCOL_H_
#define DPCUBE_SERVICE_SERVE_PROTOCOL_H_

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "service/batch_executor.h"
#include "service/marginal_cache.h"
#include "service/query_service.h"
#include "service/release_store.h"

namespace dpcube {
namespace service {

/// Strict non-negative integer parse, decimal or 0x-hex ONLY (no octal:
/// "010" means ten); rejects empty input, negatives, and trailing
/// garbage, unlike strtoull/atof which would silently yield 0 (or wrap
/// "-1" to 2^64-1).
bool ParseSize(const std::string& text, std::size_t* out);

/// Splits a request line on whitespace (the serve loop and its batch
/// sub-loop share this, so the two parse identically).
std::vector<std::string> Tokenize(const std::string& line);

/// Parses "NAME kind MASK [args]" tokens (after the "query" verb) into q.
/// On failure returns false and fills `error`.
bool ParseServeQuery(const std::vector<std::string>& tokens, Query* q,
                     std::string* error);

/// Formats a response as the protocol's single line (no trailing newline).
std::string FormatResponse(const QueryResponse& response);

/// One serve conversation over a request/response stream pair. The
/// session borrows its collaborators; the executor (and therefore its
/// pool) must outlive it.
class ServeSession {
 public:
  ServeSession(std::shared_ptr<ReleaseStore> store,
               std::shared_ptr<MarginalCache> cache,
               std::shared_ptr<const QueryService> service,
               const BatchExecutor* executor);

  /// Reads request lines from `in` until quit/EOF, writing responses to
  /// `out` (flushed after every response, suitable for pipes).
  void Run(std::istream& in, std::ostream& out);

  /// Processes every complete request line in `in`, appending one
  /// response line per request to `out`. This is Run without the
  /// per-response flushing: the network server calls it once per decoded
  /// frame (a frame payload is a self-contained chunk of protocol
  /// conversation — possibly several pipelined lines, possibly a batch
  /// header plus its sub-lines). Returns false iff a quit/exit request
  /// was processed (remaining payload lines are not read, matching Run).
  /// A "batch N" whose sub-lines are cut off by the end of `in` answers
  /// "ERR unexpected EOF inside batch", bounding the error to the frame.
  bool ProcessStream(std::istream& in, std::ostream& out,
                     bool flush_each = false);

  /// Installs a handler for the extended "STATS" verb (server-level
  /// counters, as opposed to lowercase "stats" which reports the cache).
  /// The callback returns one full response line without the trailing
  /// newline; it runs on whatever thread drives the session, so it must
  /// be thread-safe. Unset (the stdin/stdout CLI mode and tests), the
  /// verb falls through to the unknown-request error.
  void SetServerStatsHandler(std::function<std::string()> handler) {
    server_stats_handler_ = std::move(handler);
  }

 private:
  /// Handles one non-batch request line (pre-tokenized by Run; `line` is
  /// only echoed in the unknown-request error). Returns false on quit.
  bool HandleLine(const std::string& line,
                  const std::vector<std::string>& tokens, std::ostream& out);
  /// Handles "batch N": consumes the sub-lines from `in` and responds.
  void HandleBatch(const std::vector<std::string>& tokens, std::istream& in,
                   std::ostream& out);

  std::shared_ptr<ReleaseStore> store_;
  std::shared_ptr<MarginalCache> cache_;
  std::shared_ptr<const QueryService> service_;
  const BatchExecutor* executor_;
  std::function<std::string()> server_stats_handler_;
};

}  // namespace service
}  // namespace dpcube

#endif  // DPCUBE_SERVICE_SERVE_PROTOCOL_H_
