// Copyright 2026 The dpcube Authors.
//
// Online query answering over stored releases. Every answer is pure
// post-processing of an already-released workload (differential privacy
// is closed under post-processing), so serving any number of queries
// costs zero additional privacy budget. Three query kinds:
//
//   kMarginal — the full derived marginal table over an attribute mask;
//   kCell     — one cell of that marginal (a predicate count: the number
//               of rows whose attributes on the mask equal the cell's
//               value combination);
//   kRange    — the sum of a contiguous local-cell range [lo, hi] of the
//               marginal (a one-dimensional range count when the mask is
//               a single encoded attribute's bit-field).
//
// Each response carries the predicted noise variance of the returned
// quantity. For ranges the variance is computed exactly in coefficient
// space — derived cells share fitted Fourier coefficients, so summing
// per-cell variances would be wrong.
//
// Derived tables are memoised in a MarginalCache keyed by
// (release, mask); repeated and overlapping queries hit the cache
// instead of re-running the Walsh-Hadamard reconstruction.

#ifndef DPCUBE_SERVICE_QUERY_SERVICE_H_
#define DPCUBE_SERVICE_QUERY_SERVICE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/bits.h"
#include "common/status.h"
#include "service/marginal_cache.h"
#include "service/release_store.h"

namespace dpcube {
namespace service {

enum class QueryKind {
  kMarginal = 0,
  kCell = 1,
  kRange = 2,
};

/// One request against a named release.
struct Query {
  std::string release;
  QueryKind kind = QueryKind::kMarginal;
  bits::Mask beta = 0;       ///< Attribute-subset mask of the marginal.
  std::size_t cell_lo = 0;   ///< kCell: the cell; kRange: range start.
  std::size_t cell_hi = 0;   ///< kRange: inclusive range end.
};

/// The answer: `values` holds the full table for kMarginal and a single
/// aggregate for kCell/kRange. `variance` is the predicted noise variance
/// of each returned value (per cell for kMarginal, of the aggregate
/// otherwise), under the release's cell-variance model.
struct QueryResponse {
  Status status;
  bits::Mask beta = 0;
  std::vector<double> values;
  double variance = 0.0;
  bool cache_hit = false;
};

class QueryService {
 public:
  QueryService(std::shared_ptr<ReleaseStore> store,
               std::shared_ptr<MarginalCache> cache)
      : store_(std::move(store)), cache_(std::move(cache)) {}

  /// Answers one query. Never throws; errors land in `response.status`.
  QueryResponse Answer(const Query& query) const;

  /// Removes a release from the store AND drops its cached marginals.
  /// Always use this (not ReleaseStore::Remove directly) when the
  /// service is live: cache entries are keyed by release name, so a
  /// bare store Remove followed by an Add under the same name would
  /// serve the old release's tables as cache hits.
  Status RemoveRelease(const std::string& name) const;

  /// The derived marginal for (release, beta) plus its per-cell variance,
  /// via the cache. `cache_hit` (optional) reports whether the table was
  /// served from the cache.
  Result<std::shared_ptr<const CachedMarginal>> DeriveMarginal(
      const std::string& release, bits::Mask beta,
      bool* cache_hit = nullptr) const;

  const ReleaseStore& store() const { return *store_; }
  const MarginalCache& cache() const { return *cache_; }

 private:
  /// Cache-or-derive against an already-resolved release snapshot, so a
  /// caller holding one gets values and variances from the same release
  /// even if the store is concurrently mutated.
  Result<std::shared_ptr<const CachedMarginal>> DeriveFromStored(
      const StoredRelease& stored, bits::Mask beta, bool* cache_hit) const;

  std::shared_ptr<ReleaseStore> store_;
  std::shared_ptr<MarginalCache> cache_;
};

}  // namespace service
}  // namespace dpcube

#endif  // DPCUBE_SERVICE_QUERY_SERVICE_H_
