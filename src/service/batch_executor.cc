// Copyright 2026 The dpcube Authors.

#include "service/batch_executor.h"

#include <algorithm>
#include <map>
#include <utility>

namespace dpcube {
namespace service {

BatchExecutor::BatchExecutor(std::shared_ptr<const QueryService> service,
                             int num_threads)
    : service_(std::move(service)) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

BatchExecutor::~BatchExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void BatchExecutor::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // Shutting down and drained.
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void BatchExecutor::Submit(std::function<void()> task) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

std::vector<QueryResponse> BatchExecutor::ExecuteBatch(
    const std::vector<Query>& queries) const {
  std::vector<QueryResponse> responses(queries.size());
  if (queries.empty()) return responses;

  // Group by shared parent marginal so each group derives it once.
  std::map<std::pair<std::string, bits::Mask>, std::vector<std::size_t>>
      groups;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    groups[{queries[i].release, queries[i].beta}].push_back(i);
  }

  struct BatchState {
    std::mutex mu;
    std::condition_variable done;
    std::size_t pending;
  };
  auto state = std::make_shared<BatchState>();
  state->pending = groups.size();

  for (auto& [key, indices] : groups) {
    Submit([this, state, &queries, &responses,
            indices = std::move(indices)] {
      // The first Answer derives (and caches) the group's parent
      // marginal; the rest are cache hits against it.
      for (const std::size_t i : indices) {
        responses[i] = service_->Answer(queries[i]);
      }
      std::lock_guard<std::mutex> lock(state->mu);
      if (--state->pending == 0) state->done.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(state->mu);
  state->done.wait(lock, [&] { return state->pending == 0; });
  return responses;
}

}  // namespace service
}  // namespace dpcube
