// Copyright 2026 The dpcube Authors.

#include "service/batch_executor.h"

#include <algorithm>
#include <map>
#include <string>
#include <utility>

namespace dpcube {
namespace service {

BatchExecutor::BatchExecutor(std::shared_ptr<const QueryService> service,
                             ThreadPool* pool)
    : service_(std::move(service)), pool_(pool) {}

BatchExecutor::BatchExecutor(std::shared_ptr<const QueryService> service,
                             int num_threads)
    : service_(std::move(service)),
      owned_pool_(std::make_unique<ThreadPool>(num_threads)),
      pool_(owned_pool_.get()) {}

std::vector<QueryResponse> BatchExecutor::ExecuteBatch(
    const std::vector<Query>& queries) const {
  std::vector<QueryResponse> responses(queries.size());
  if (queries.empty()) return responses;

  // Group by shared parent marginal so each group derives it once.
  std::map<std::pair<std::string, bits::Mask>, std::vector<std::size_t>>
      grouped;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    grouped[{queries[i].release, queries[i].beta}].push_back(i);
  }
  std::vector<std::vector<std::size_t>> groups;
  groups.reserve(grouped.size());
  for (auto& [key, indices] : grouped) {
    groups.push_back(std::move(indices));
  }

  pool_->ParallelFor(0, groups.size(), 1, [&](std::size_t g) {
    // The first Answer derives (and caches) the group's parent marginal;
    // the rest are cache hits against it.
    for (const std::size_t i : groups[g]) {
      responses[i] = service_->Answer(queries[i]);
    }
  });
  return responses;
}

}  // namespace service
}  // namespace dpcube
