// Copyright 2026 The dpcube Authors.

#include "service/batch_executor.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <string>
#include <utility>

namespace dpcube {
namespace service {

BatchExecutor::BatchExecutor(std::shared_ptr<const QueryService> service,
                             ThreadPool* pool)
    : service_(std::move(service)), pool_(pool) {}

BatchExecutor::BatchExecutor(std::shared_ptr<const QueryService> service,
                             int num_threads)
    : service_(std::move(service)),
      owned_pool_(std::make_unique<ThreadPool>(num_threads)),
      pool_(owned_pool_.get()) {}

std::vector<QueryResponse> BatchExecutor::ExecuteBatch(
    const std::vector<Query>& queries, BatchTiming* timing) const {
  std::vector<QueryResponse> responses(queries.size());
  if (queries.empty()) return responses;

  // Group by shared parent marginal so each group derives it once.
  std::map<std::pair<std::string, bits::Mask>, std::vector<std::size_t>>
      grouped;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    grouped[{queries[i].release, queries[i].beta}].push_back(i);
  }
  std::vector<std::vector<std::size_t>> groups;
  groups.reserve(grouped.size());
  for (auto& [key, indices] : grouped) {
    groups.push_back(std::move(indices));
  }

  // One pre-sized slot per group: each worker writes only its own index
  // and the slots are read after the ParallelFor join, so the timing
  // never adds a cross-thread write.
  std::vector<std::uint64_t> group_micros(timing ? groups.size() : 0, 0);

  pool_->ParallelFor(0, groups.size(), 1, [&](std::size_t g) {
    const auto started = timing ? std::chrono::steady_clock::now()
                                : std::chrono::steady_clock::time_point();
    // The first Answer derives (and caches) the group's parent marginal;
    // the rest are cache hits against it.
    for (const std::size_t i : groups[g]) {
      responses[i] = service_->Answer(queries[i]);
    }
    if (timing) {
      group_micros[g] = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - started)
              .count());
    }
  });

  if (timing) {
    timing->groups.reserve(groups.size());
    for (std::size_t g = 0; g < groups.size(); ++g) {
      BatchGroupTiming row;
      row.release = queries[groups[g].front()].release;
      row.queries = groups[g].size();
      row.micros = group_micros[g];
      timing->groups.push_back(std::move(row));
      timing->max_group_micros =
          std::max(timing->max_group_micros, group_micros[g]);
    }
  }
  return responses;
}

}  // namespace service
}  // namespace dpcube
