// Copyright 2026 The dpcube Authors.

#include "service/mutation.h"

#include <utility>

namespace dpcube {
namespace service {

namespace {

// Names and paths in mutation payloads are bounded so a corrupt length
// field can never drive a giant allocation during replay.
constexpr std::size_t kMaxStringBytes = 1 << 16;

void PutU16(std::string* out, std::uint16_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
}

void PutU32(std::string* out, std::uint32_t v) {
  PutU16(out, static_cast<std::uint16_t>(v & 0xFFFF));
  PutU16(out, static_cast<std::uint16_t>(v >> 16));
}

void PutU64(std::string* out, std::uint64_t v) {
  PutU32(out, static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<std::uint32_t>(v >> 32));
}

/// A bounds-checked little-endian reader over the payload.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ReadU8(std::uint8_t* v) {
    if (data_.size() - pos_ < 1) return false;
    *v = static_cast<std::uint8_t>(data_[pos_++]);
    return true;
  }
  bool ReadU16(std::uint16_t* v) {
    std::uint8_t lo, hi;
    if (!ReadU8(&lo) || !ReadU8(&hi)) return false;
    *v = static_cast<std::uint16_t>(lo | (hi << 8));
    return true;
  }
  bool ReadU32(std::uint32_t* v) {
    std::uint16_t lo, hi;
    if (!ReadU16(&lo) || !ReadU16(&hi)) return false;
    *v = static_cast<std::uint32_t>(lo) | (static_cast<std::uint32_t>(hi) << 16);
    return true;
  }
  bool ReadU64(std::uint64_t* v) {
    std::uint32_t lo, hi;
    if (!ReadU32(&lo) || !ReadU32(&hi)) return false;
    *v = static_cast<std::uint64_t>(lo) | (static_cast<std::uint64_t>(hi) << 32);
    return true;
  }
  bool ReadString(std::size_t len, std::string* v) {
    if (len > kMaxStringBytes || data_.size() - pos_ < len) return false;
    v->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace

const char* MutationKindName(MutationKind kind) {
  switch (kind) {
    case MutationKind::kLoadRelease: return "load_release";
    case MutationKind::kUnloadRelease: return "unload_release";
    case MutationKind::kQuotaCharge: return "quota_charge";
    case MutationKind::kQuotaConfig: return "quota_config";
  }
  return "unknown";
}

Mutation Mutation::LoadRelease(std::string name, std::string path) {
  Mutation m;
  m.kind = MutationKind::kLoadRelease;
  m.name = std::move(name);
  m.path = std::move(path);
  return m;
}

Mutation Mutation::UnloadRelease(std::string name) {
  Mutation m;
  m.kind = MutationKind::kUnloadRelease;
  m.name = std::move(name);
  return m;
}

Mutation Mutation::QuotaCharge(std::string name, std::uint32_t charged,
                               std::uint32_t denied_lifetime,
                               std::uint32_t denied_rate) {
  Mutation m;
  m.kind = MutationKind::kQuotaCharge;
  m.name = std::move(name);
  m.charged = charged;
  m.denied_lifetime = denied_lifetime;
  m.denied_rate = denied_rate;
  return m;
}

Mutation Mutation::QuotaConfig(std::uint64_t lifetime_limit,
                               std::uint64_t rate_limit,
                               std::uint32_t rate_window_seconds) {
  Mutation m;
  m.kind = MutationKind::kQuotaConfig;
  m.lifetime_limit = lifetime_limit;
  m.rate_limit = rate_limit;
  m.rate_window_seconds = rate_window_seconds;
  return m;
}

std::string EncodeMutation(const Mutation& mutation) {
  std::string out;
  out.reserve(32 + mutation.name.size() + mutation.path.size());
  out.push_back(static_cast<char>(mutation.kind));
  PutU16(&out, static_cast<std::uint16_t>(mutation.name.size()));
  out.append(mutation.name);
  switch (mutation.kind) {
    case MutationKind::kLoadRelease:
      PutU32(&out, static_cast<std::uint32_t>(mutation.path.size()));
      out.append(mutation.path);
      break;
    case MutationKind::kUnloadRelease:
      break;
    case MutationKind::kQuotaCharge:
      PutU32(&out, mutation.charged);
      PutU32(&out, mutation.denied_lifetime);
      PutU32(&out, mutation.denied_rate);
      break;
    case MutationKind::kQuotaConfig:
      PutU64(&out, mutation.lifetime_limit);
      PutU64(&out, mutation.rate_limit);
      PutU32(&out, mutation.rate_window_seconds);
      break;
  }
  return out;
}

Status DecodeMutation(std::string_view payload, Mutation* out) {
  Reader reader(payload);
  std::uint8_t kind_byte = 0;
  if (!reader.ReadU8(&kind_byte)) {
    return Status::InvalidArgument("mutation payload truncated: kind");
  }
  if (kind_byte < 1 || kind_byte > 4) {
    return Status::InvalidArgument("unknown mutation kind " +
                                   std::to_string(kind_byte));
  }
  Mutation m;
  m.kind = static_cast<MutationKind>(kind_byte);
  std::uint16_t name_len = 0;
  if (!reader.ReadU16(&name_len) || !reader.ReadString(name_len, &m.name)) {
    return Status::InvalidArgument("mutation payload truncated: name");
  }
  switch (m.kind) {
    case MutationKind::kLoadRelease: {
      std::uint32_t path_len = 0;
      if (!reader.ReadU32(&path_len) ||
          !reader.ReadString(path_len, &m.path)) {
        return Status::InvalidArgument("mutation payload truncated: path");
      }
      break;
    }
    case MutationKind::kUnloadRelease:
      break;
    case MutationKind::kQuotaCharge:
      if (!reader.ReadU32(&m.charged) || !reader.ReadU32(&m.denied_lifetime) ||
          !reader.ReadU32(&m.denied_rate)) {
        return Status::InvalidArgument("mutation payload truncated: counters");
      }
      break;
    case MutationKind::kQuotaConfig:
      if (!reader.ReadU64(&m.lifetime_limit) ||
          !reader.ReadU64(&m.rate_limit) ||
          !reader.ReadU32(&m.rate_window_seconds)) {
        return Status::InvalidArgument("mutation payload truncated: config");
      }
      break;
  }
  if (!reader.exhausted()) {
    return Status::InvalidArgument("mutation payload has trailing bytes");
  }
  *out = std::move(m);
  return Status::OK();
}

}  // namespace service
}  // namespace dpcube
