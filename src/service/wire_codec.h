// Copyright 2026 The dpcube Authors.
//
// Response codecs for the serve protocol. The text codec reproduces the
// v1 newline-terminated lines byte for byte; the v2 binary codec packs
// each Response into one self-delimiting record so a full-marginal
// answer costs 8 bytes per cell instead of ~19 bytes of %.17g text.
// Records ride the existing 4-byte frame layer unchanged — a response
// frame's payload is simply a concatenation of records instead of a
// concatenation of lines.
//
// Binary record layout (all multi-byte fields little-endian):
//
//   +----+------+-------+------+----------+---------+----------+
//   | u8 | u8   | u8    | u8   | u32      | u64     | f64      |
//   |0xD7| code | flags | rsvd | msg len M| mask    | variance |
//   +----+------+-------+------+----------+---------+----------+
//   | u32 value count N | f64 x N values | M message bytes     |
//   +-------------------+----------------+---------------------+
//
//   flags: bit0 = cache_hit, bit1 = has_values (a query answer; the
//   mask/variance/values fields are meaningful).
//
// For query answers the message is empty and the payload is the raw
// value array. For everything else (load/list/stats/HELLO acks, errors,
// BUSY sheds) the record carries `code` plus the response text in
// `message`: successes hold the full v1 "OK ..." line, failures hold
// the v1 error text without its "ERR "/"BUSY " prefix (the code byte
// replaces it). The magic byte 0xD7 can never begin a text response
// (those start with 'O', 'E', or 'B'), which lets diagnostics and the
// fuzz net walk mixed-codec transcripts unambiguously.

#ifndef DPCUBE_SERVICE_WIRE_CODEC_H_
#define DPCUBE_SERVICE_WIRE_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "service/request.h"

namespace dpcube {
namespace service {

inline constexpr unsigned char kBinaryRecordMagic = 0xD7;
inline constexpr std::size_t kBinaryRecordHeaderBytes = 28;

inline constexpr std::uint8_t kRecordFlagCacheHit = 0x01;
inline constexpr std::uint8_t kRecordFlagHasValues = 0x02;

/// Serializes one Response as one binary record.
std::string EncodeBinaryRecord(const Response& response);

/// Encodes a Response under `codec`: the exact v1 line plus '\n' for
/// kText, one binary record for kBinary.
void EncodeResponse(const Response& response, Codec codec,
                    std::ostream& out);
std::string EncodeResponseToString(const Response& response, Codec codec);

/// A decoded binary record (the client-side mirror of Response; in text
/// mode the client wraps each response line in one of these so callers
/// handle both codecs uniformly).
struct WireRecord {
  ErrorCode code = ErrorCode::kOk;
  bool cache_hit = false;
  bool has_values = false;
  std::uint64_t mask = 0;
  double variance = 0.0;
  std::vector<double> values;
  std::string message;
};

enum class DecodeRecordResult {
  kRecord,    ///< One complete record decoded; *consumed advanced.
  kNeedMore,  ///< `data` ends mid-record (prefix of a valid record).
  kError,     ///< Not a record (bad magic / bad code byte).
};

/// Decodes the record at the front of `data`. On kRecord, `*consumed`
/// is the record's encoded size. Validates bounds BEFORE allocating, so
/// a hostile length field cannot trigger a giant allocation.
DecodeRecordResult DecodeBinaryRecord(std::string_view data,
                                      WireRecord* record,
                                      std::size_t* consumed,
                                      std::string* error);

/// Decodes a whole response-frame payload as a record sequence. A
/// truncated trailing record is an error: frames are atomic, so a
/// partial record cannot be completed by later bytes.
Result<std::vector<WireRecord>> DecodeRecordStream(std::string_view payload);

/// Renders a WireRecord back into its v1-style text line (no trailing
/// newline) — what `dpcube query --binary` prints, keeping the CLI's
/// output identical under either codec.
std::string FormatWireRecord(const WireRecord& record);

}  // namespace service
}  // namespace dpcube

#endif  // DPCUBE_SERVICE_WIRE_CODEC_H_
