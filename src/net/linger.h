// Copyright 2026 The dpcube Authors.
//
// Bounded lingering close for sockets that owe the peer already-flushed
// bytes. Calling close() on a TCP socket whose receive buffer still
// holds unread data makes the kernel send an RST — and an RST can
// destroy data the peer has not read yet, including the final response
// or BUSY goodbye this server just flushed. The historical "fix" was
//
//   ::shutdown(fd, SHUT_WR);
//   while (::recv(fd, buf, sizeof(buf), 0) > 0) {}
//   ::close(fd);
//
// which is a no-op on the non-blocking sockets this server uses: recv
// returns EAGAIN immediately, the loop exits, and the close-with-unread
// -data RST happens anyway whenever the peer pipelined past the goodbye.
//
// A LingerSet upholds the contract for real, without blocking the event
// loop: Add() sends the FIN (SHUT_WR) and parks the fd in a small set
// the owning poll loop keeps readable; inbound bytes are read and
// discarded until the peer FINs in turn (recv returns 0) — only then is
// the socket closed, with an empty receive buffer and no RST. A peer
// that never FINs is cut off at a deadline (default 1s), so a hostile
// client can hold at most one fd for one linger window.
//
// Threading: Add() is safe from any thread (a Connection's destructor
// may run on a pool worker holding the last reference); the poll-splice
// methods (AppendPollFds / DispatchEvents / PumpTimeouts /
// DrainBlocking) must all be called from the single owning loop thread.

#ifndef DPCUBE_NET_LINGER_H_
#define DPCUBE_NET_LINGER_H_

#include <poll.h>

#include <chrono>
#include <cstddef>
#include <map>
#include <vector>

#include "common/fd.h"
#include "common/sync.h"

namespace dpcube {
namespace net {

/// How long a lingering socket may wait for the peer's FIN.
inline constexpr std::chrono::milliseconds kLingerTimeout{1000};

class LingerSet {
 public:
  explicit LingerSet(std::chrono::milliseconds timeout = kLingerTimeout)
      : timeout_(timeout) {}
  /// Closes every still-lingering fd (a set destroyed mid-linger gives
  /// up the no-RST guarantee; callers that care run DrainBlocking
  /// first).
  ~LingerSet() = default;

  LingerSet(const LingerSet&) = delete;
  LingerSet& operator=(const LingerSet&) = delete;

  /// Half-closes `fd` (FIN after everything already written) and parks
  /// it until the peer FINs or the deadline passes. May close
  /// immediately when the peer's FIN already arrived. Thread-safe.
  void Add(UniqueFd fd);

  // --- Poll-loop splice (owner thread only; same shape as
  // HttpEndpoint's) ---

  /// Appends every lingering fd with POLLIN interest.
  void AppendPollFds(std::vector<struct pollfd>* fds);

  /// Consumes readiness for the fds appended by the matching
  /// AppendPollFds call: discards inbound bytes, closes on FIN/error.
  void DispatchEvents(const std::vector<struct pollfd>& fds);

  /// Closes entries whose deadline passed. Call once per loop cycle.
  void PumpTimeouts();

  /// Loop epilogue: polls the remaining entries by itself until all are
  /// closed or timed out, so sockets still lingering when the owning
  /// loop exits keep their no-RST guarantee. Bounded by the per-entry
  /// deadlines (worst case one full linger timeout).
  void DrainBlocking();

  std::size_t size() const;
  bool empty() const { return size() == 0; }

 private:
  struct Entry {
    UniqueFd fd;
    std::chrono::steady_clock::time_point deadline;
  };

  /// Reads-and-discards until EAGAIN. True when the fd is finished
  /// (peer FIN or error) and should be closed.
  static bool DrainToEof(int fd);

  const std::chrono::milliseconds timeout_;
  mutable sync::Mutex mu_;
  std::map<int, Entry> entries_ GUARDED_BY(mu_);
  // Range of `fds` this set appended in the current cycle. Only the
  // owning loop thread writes these, but they share mu_ with the map
  // so cross-thread Add() and the splice methods stay one discipline.
  std::size_t poll_base_ GUARDED_BY(mu_) = 0;
  std::size_t poll_count_ GUARDED_BY(mu_) = 0;
};

}  // namespace net
}  // namespace dpcube

#endif  // DPCUBE_NET_LINGER_H_
