// Copyright 2026 The dpcube Authors.

#include "net/http_endpoint.h"

#include <errno.h>
#include <stdio.h>
#include <sys/socket.h>
#include <time.h>

#include <cctype>
#include <utility>

#include "net/address.h"

namespace dpcube {
namespace net {

namespace {

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 401:
      return "Unauthorized";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 431:
      return "Request Header Fields Too Large";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

// IMF-fixdate (RFC 9110), e.g. "Thu, 07 Aug 2026 12:00:00 GMT".
std::string HttpDateNow() {
  const time_t now = ::time(nullptr);
  struct tm parts;
  if (::gmtime_r(&now, &parts) == nullptr) return "";
  char buf[64];
  if (::strftime(buf, sizeof(buf), "%a, %d %b %Y %H:%M:%S GMT", &parts) == 0) {
    return "";
  }
  return buf;
}

std::string EncodeHttpResponse(const HttpResponse& response) {
  std::string out;
  out.reserve(response.body.size() + 192);
  out += "HTTP/1.0 " + std::to_string(response.status) + " " +
         ReasonPhrase(response.status) + "\r\n";
  const std::string date = HttpDateNow();
  if (!date.empty()) out += "Date: " + date + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

// The value of header `name` (case-insensitive) in the raw request
// bytes, leading/trailing whitespace trimmed; "" when absent.
std::string HeaderValue(const std::string& raw, const std::string& name) {
  std::size_t pos = raw.find('\n');  // Skip the request line.
  while (pos != std::string::npos && pos + 1 < raw.size()) {
    const std::size_t start = pos + 1;
    std::size_t eol = raw.find('\n', start);
    if (eol == std::string::npos) eol = raw.size();
    std::string line = raw.substr(start, eol - start);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) break;  // End of headers.
    const std::size_t colon = line.find(':');
    if (colon != std::string::npos && colon == name.size()) {
      bool match = true;
      for (std::size_t i = 0; i < name.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(line[i])) !=
            std::tolower(static_cast<unsigned char>(name[i]))) {
          match = false;
          break;
        }
      }
      if (match) {
        std::size_t v = colon + 1;
        while (v < line.size() && (line[v] == ' ' || line[v] == '\t')) ++v;
        std::size_t e = line.size();
        while (e > v && (line[e - 1] == ' ' || line[e - 1] == '\t')) --e;
        return line.substr(v, e - v);
      }
    }
    pos = eol;
  }
  return "";
}

}  // namespace

HttpEndpoint::HttpEndpoint(std::string listen_address)
    : listen_address_(std::move(listen_address)) {}

HttpEndpoint::~HttpEndpoint() = default;

void HttpEndpoint::AddRoute(const std::string& path, Handler handler,
                            bool requires_auth) {
  routes_[path] = Route{std::move(handler), requires_auth};
}

Status HttpEndpoint::Start() {
  DPCUBE_RETURN_NOT_OK(ParseHostPort(listen_address_, &host_, &bound_port_));
  auto fd = ListenTcp(host_, bound_port_, /*backlog=*/16, &bound_port_);
  if (!fd.ok()) return fd.status();
  listen_fd_ = std::move(fd).value();
  return Status::OK();
}

std::string HttpEndpoint::bound_address() const {
  return host_ + ":" + std::to_string(bound_port_);
}

void HttpEndpoint::AppendPollFds(std::vector<struct pollfd>* fds) {
  poll_base_ = fds->size();
  listener_polled_ = listen_fd_.valid() &&
                     connections_.size() <
                         static_cast<std::size_t>(kMaxConnections) &&
                     std::chrono::steady_clock::now() >=
                         accept_retry_after_;
  if (listener_polled_) fds->push_back({listen_fd_.get(), POLLIN, 0});
  for (const auto& [fd, conn] : connections_) {
    fds->push_back(
        {fd, static_cast<short>(conn->responding ? POLLOUT : POLLIN), 0});
  }
  poll_count_ = fds->size() - poll_base_;
  linger_.AppendPollFds(fds);  // Tracks its own range past ours.
}

void HttpEndpoint::DispatchEvents(const std::vector<struct pollfd>& fds) {
  std::size_t i = poll_base_;
  const std::size_t end = poll_base_ + poll_count_;
  if (listener_polled_ && i < end) {
    if (fds[i].revents & POLLIN) AcceptPending();
    ++i;
  }
  for (; i < end && i < fds.size(); ++i) {
    const auto it = connections_.find(fds[i].fd);
    if (it == connections_.end()) continue;
    Conn* conn = it->second.get();
    const short revents = fds[i].revents;
    if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
      if (!(revents & POLLIN)) {  // Dead with nothing left to read.
        connections_.erase(it);
        continue;
      }
    }
    if (!conn->responding && (revents & POLLIN)) OnReadable(conn);
    if (conn->responding && (revents & (POLLOUT | POLLIN))) OnWritable(conn);
    if (conn->responding && conn->written >= conn->out.size()) {
      // Lingering close: FIN first and wait (bounded, polled) for the
      // peer's FIN before closing, so an early answer to a request the
      // peer is still sending (431, bare request line) is never
      // destroyed by the RST a close-with-unread-bytes would send.
      if (!conn->out.empty()) linger_.Add(std::move(conn->fd));
      connections_.erase(it);
    }
  }
  linger_.DispatchEvents(fds);
}

void HttpEndpoint::PumpTimeouts() {
  const auto now = std::chrono::steady_clock::now();
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (now >= it->second->deadline) {
      // Too slow, whether mid-request or mid-response: close without
      // ceremony. A half-open peer cannot hold a slot past the budget.
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
  linger_.PumpTimeouts();
}

void HttpEndpoint::AcceptPending() {
  while (connections_.size() < static_cast<std::size_t>(kMaxConnections)) {
    const int raw = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (raw < 0) {
      if (errno == EINTR) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Fd/memory exhaustion: the pending connection stays in the
        // backlog and the listener stays readable, so back off instead
        // of spinning on accept failures (mirrors the protocol
        // listener's accept_retry_after_).
        accept_retry_after_ = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(100);
      }
      return;  // EAGAIN (drained) or a transient error; poll retries.
    }
    UniqueFd fd(raw);
    if (!SetNonBlocking(fd.get()).ok()) continue;  // Closes via RAII.
    auto conn = std::make_unique<Conn>();
    const int key = fd.get();
    conn->fd = std::move(fd);
    conn->deadline = std::chrono::steady_clock::now() + kRequestTimeout;
    connections_.emplace(key, std::move(conn));
  }
}

void HttpEndpoint::OnReadable(Conn* conn) {
  char buf[2048];
  for (;;) {
    const ssize_t n = ::recv(conn->fd.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      conn->in.append(buf, static_cast<std::size_t>(n));
      if (conn->in.size() > kMaxRequestBytes) {
        BeginResponse(conn, HttpResponse{431, "text/plain; charset=utf-8",
                                         "request too large\n"});
        return;
      }
      if (conn->in.find("\r\n\r\n") != std::string::npos ||
          conn->in.find("\n\n") != std::string::npos) {
        BeginResponse(conn, RouteRequest(*conn));
        return;
      }
      continue;
    }
    if (n == 0) {
      // Peer half-closed before completing the request. If a full
      // request line is there anyway (bare "GET /x HTTP/1.0\n" without
      // the blank line), answer it; otherwise just drop the socket.
      if (conn->in.find('\n') != std::string::npos) {
        BeginResponse(conn, RouteRequest(*conn));
      } else {
        conn->responding = true;  // Empty out => erased by the caller.
      }
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    conn->responding = true;  // Read error: drop.
    return;
  }
}

HttpResponse HttpEndpoint::RouteRequest(const Conn& conn) const {
  // Request line: METHOD SP TARGET SP VERSION. Tolerate a bare LF line
  // ending and a missing version (HTTP/0.9-style "GET /path").
  const std::size_t eol = conn.in.find('\n');
  std::string line = conn.in.substr(0, eol == std::string::npos
                                           ? conn.in.size()
                                           : eol);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos || sp1 == 0) {
    return HttpResponse{400, "text/plain; charset=utf-8", "bad request\n"};
  }
  const std::string method = line.substr(0, sp1);
  std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) sp2 = line.size();
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || target[0] != '/') {
    return HttpResponse{400, "text/plain; charset=utf-8", "bad request\n"};
  }
  if (method != "GET") {
    return HttpResponse{405, "text/plain; charset=utf-8",
                        "only GET is supported\n"};
  }
  HttpRequest request;
  request.method = method;
  const std::size_t query = target.find('?');
  if (query != std::string::npos) {
    request.query = target.substr(query + 1);
    target.resize(query);
  }
  request.path = std::move(target);
  const auto it = routes_.find(request.path);
  if (it == routes_.end()) {
    return HttpResponse{404, "text/plain; charset=utf-8",
                        "no such endpoint\n"};
  }
  if (it->second.requires_auth && !bearer_token_.empty() &&
      HeaderValue(conn.in, "Authorization") != "Bearer " + bearer_token_) {
    return HttpResponse{401, "text/plain; charset=utf-8", "unauthorized\n"};
  }
  return it->second.handler(request);
}

void HttpEndpoint::BeginResponse(Conn* conn, const HttpResponse& response) {
  conn->out = EncodeHttpResponse(response);
  conn->written = 0;
  conn->responding = true;
  OnWritable(conn);  // Opportunistic first flush; poll covers the rest.
}

void HttpEndpoint::OnWritable(Conn* conn) {
  while (conn->written < conn->out.size()) {
    const ssize_t n =
        ::send(conn->fd.get(), conn->out.data() + conn->written,
               conn->out.size() - conn->written, MSG_NOSIGNAL);
    if (n > 0) {
      conn->written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    conn->written = conn->out.size();  // Peer gone: count as flushed.
    return;
  }
}

}  // namespace net
}  // namespace dpcube
