// Copyright 2026 The dpcube Authors.

#include "net/admission.h"

#include <algorithm>
#include <chrono>

namespace dpcube {
namespace net {

AdmissionConfig ClampAdmissionConfig(AdmissionConfig config) {
  config.max_connections = std::max(1, config.max_connections);
  config.max_inflight = std::max(1, config.max_inflight);
  config.max_queue_depth = std::max(1, config.max_queue_depth);
  config.query_rate_window_seconds =
      std::min(3600, std::max(1, config.query_rate_window_seconds));
  return config;
}

bool AdmissionController::TryAdmitConnection(std::string* busy_reason) {
  // CAS loop rather than blind increment so a refused attempt never
  // transiently inflates the count another accept is checking against.
  int current = active_connections_.load();
  for (;;) {
    if (current >= config_.max_connections) {
      rejected_connections_.fetch_add(1);
      *busy_reason = "connection limit (" +
                     std::to_string(config_.max_connections) + ") reached";
      return false;
    }
    if (active_connections_.compare_exchange_weak(current, current + 1)) {
      accepted_total_.fetch_add(1);
      return true;
    }
  }
}

void AdmissionController::ReleaseConnection() {
  active_connections_.fetch_sub(1);
}

bool AdmissionController::TryAdmitRequest(int connection_inflight,
                                          std::string* busy_reason) {
  if (connection_inflight >= config_.max_inflight) {
    shed_requests_.fetch_add(1);
    *busy_reason = "per-connection in-flight limit (" +
                   std::to_string(config_.max_inflight) + ") reached";
    return false;
  }
  int current = queued_requests_.load();
  for (;;) {
    if (current >= config_.max_queue_depth) {
      shed_requests_.fetch_add(1);
      *busy_reason = "server queue depth (" +
                     std::to_string(config_.max_queue_depth) + ") reached";
      return false;
    }
    if (queued_requests_.compare_exchange_weak(current, current + 1)) {
      return true;
    }
  }
}

void AdmissionController::ReleaseRequest() { queued_requests_.fetch_sub(1); }

std::uint64_t AdmissionController::NowSeconds() const {
  if (clock_) return clock_();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void AdmissionController::EvictExpiredLocked(QuotaEntry* entry,
                                             std::uint64_t now_seconds) {
  const std::uint64_t window =
      static_cast<std::uint64_t>(config_.query_rate_window_seconds);
  // A bucket stamped `s` covers charges in second s; it leaves the
  // trailing window once s + window <= now.
  while (!entry->buckets.empty() &&
         entry->buckets.front().first + window <= now_seconds) {
    entry->window_total -= entry->buckets.front().second;
    entry->buckets.pop_front();
  }
}

AdmissionController::QuotaDecision AdmissionController::ChargeQuery(
    const std::string& release, std::string* denial) {
  const bool lifetime_metered = config_.max_queries_per_release > 0;
  const bool rate_metered = config_.query_rate_limit > 0;
  if (!lifetime_metered && !rate_metered) return QuotaDecision::kCharged;
  {
    sync::MutexLock lock(&quota_mu_);
    auto it = quota_used_.find(release);
    if (it == quota_used_.end()) {
      // Hard bound on the ledger itself: even if a caller charges
      // attacker-chosen names (the serving gate pre-validates against
      // the store, but this type must be safe on its own), the map can
      // never grow past kMaxTrackedReleases entries.
      if (quota_used_.size() >= kMaxTrackedReleases) {
        quota_denied_.fetch_add(1);
        *denial = "quota ledger full (" +
                  std::to_string(kMaxTrackedReleases) +
                  " releases tracked)";
        return QuotaDecision::kDeniedLifetime;
      }
      it = quota_used_.emplace(release, QuotaEntry{}).first;
    }
    QuotaEntry& entry = it->second;
    if (lifetime_metered && entry.lifetime >= config_.max_queries_per_release) {
      // Fall through to the unlocked denial below.
    } else {
      const std::uint64_t now = NowSeconds();
      if (rate_metered) EvictExpiredLocked(&entry, now);
      if (rate_metered && entry.window_total >= config_.query_rate_limit) {
        rate_denied_.fetch_add(1);
        *denial = "release '" + release + "' exceeded its query rate (" +
                  std::to_string(config_.query_rate_limit) + "/" +
                  std::to_string(config_.query_rate_window_seconds) +
                  "s); retry after the window passes";
        return QuotaDecision::kDeniedRate;
      }
      ++entry.lifetime;
      if (rate_metered) {
        if (entry.buckets.empty() || entry.buckets.back().first != now) {
          entry.buckets.emplace_back(now, 0);
        }
        ++entry.buckets.back().second;
        ++entry.window_total;
      }
      return QuotaDecision::kCharged;
    }
  }
  quota_denied_.fetch_add(1);
  *denial = "release '" + release + "' exhausted its query quota (" +
            std::to_string(config_.max_queries_per_release) + ")";
  return QuotaDecision::kDeniedLifetime;
}

void AdmissionController::RestoreQuota(const std::string& release,
                                       std::uint64_t lifetime_used) {
  sync::MutexLock lock(&quota_mu_);
  if (quota_used_.size() >= kMaxTrackedReleases &&
      quota_used_.count(release) == 0) {
    return;  // Same hard bound as the charge path.
  }
  quota_used_[release].lifetime = lifetime_used;
}

void AdmissionController::RestoreDenials(std::uint64_t lifetime_denied,
                                         std::uint64_t rate_denied) {
  quota_denied_.store(lifetime_denied);
  rate_denied_.store(rate_denied);
}

std::uint64_t AdmissionController::quota_used(
    const std::string& release) const {
  sync::MutexLock lock(&quota_mu_);
  const auto it = quota_used_.find(release);
  return it == quota_used_.end() ? 0 : it->second.lifetime;
}

std::vector<AdmissionController::QuotaEntrySnapshot>
AdmissionController::QuotaLedger() const {
  sync::MutexLock lock(&quota_mu_);
  const std::uint64_t window =
      static_cast<std::uint64_t>(config_.query_rate_window_seconds);
  const std::uint64_t now = NowSeconds();
  std::vector<QuotaEntrySnapshot> ledger;
  ledger.reserve(quota_used_.size());
  for (const auto& [release, entry] : quota_used_) {
    QuotaEntrySnapshot row;
    row.release = release;
    row.lifetime_used = entry.lifetime;
    // Recompute the live window total without mutating (this is const):
    // skip buckets that have aged out since the last charge.
    for (const auto& [second, count] : entry.buckets) {
      if (second + window > now) row.window_used += count;
    }
    ledger.push_back(std::move(row));
  }
  std::sort(ledger.begin(), ledger.end(),
            [](const QuotaEntrySnapshot& a, const QuotaEntrySnapshot& b) {
              return a.release < b.release;
            });
  return ledger;
}

void AdmissionController::SetClockForTests(
    std::function<std::uint64_t()> clock) {
  sync::MutexLock lock(&quota_mu_);
  clock_ = std::move(clock);
}

}  // namespace net
}  // namespace dpcube
