// Copyright 2026 The dpcube Authors.

#include "net/admission.h"

#include <algorithm>

namespace dpcube {
namespace net {

AdmissionConfig ClampAdmissionConfig(AdmissionConfig config) {
  config.max_connections = std::max(1, config.max_connections);
  config.max_inflight = std::max(1, config.max_inflight);
  config.max_queue_depth = std::max(1, config.max_queue_depth);
  return config;
}

bool AdmissionController::TryAdmitConnection(std::string* busy_reason) {
  // CAS loop rather than blind increment so a refused attempt never
  // transiently inflates the count another accept is checking against.
  int current = active_connections_.load();
  for (;;) {
    if (current >= config_.max_connections) {
      rejected_connections_.fetch_add(1);
      *busy_reason = "BUSY connection limit (" +
                     std::to_string(config_.max_connections) + ") reached";
      return false;
    }
    if (active_connections_.compare_exchange_weak(current, current + 1)) {
      accepted_total_.fetch_add(1);
      return true;
    }
  }
}

void AdmissionController::ReleaseConnection() {
  active_connections_.fetch_sub(1);
}

bool AdmissionController::TryAdmitRequest(int connection_inflight,
                                          std::string* busy_reason) {
  if (connection_inflight >= config_.max_inflight) {
    shed_requests_.fetch_add(1);
    *busy_reason = "BUSY per-connection in-flight limit (" +
                   std::to_string(config_.max_inflight) + ") reached";
    return false;
  }
  int current = queued_requests_.load();
  for (;;) {
    if (current >= config_.max_queue_depth) {
      shed_requests_.fetch_add(1);
      *busy_reason = "BUSY server queue depth (" +
                     std::to_string(config_.max_queue_depth) + ") reached";
      return false;
    }
    if (queued_requests_.compare_exchange_weak(current, current + 1)) {
      return true;
    }
  }
}

void AdmissionController::ReleaseRequest() { queued_requests_.fetch_sub(1); }

}  // namespace net
}  // namespace dpcube
