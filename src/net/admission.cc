// Copyright 2026 The dpcube Authors.

#include "net/admission.h"

#include <algorithm>

namespace dpcube {
namespace net {

AdmissionConfig ClampAdmissionConfig(AdmissionConfig config) {
  config.max_connections = std::max(1, config.max_connections);
  config.max_inflight = std::max(1, config.max_inflight);
  config.max_queue_depth = std::max(1, config.max_queue_depth);
  return config;
}

bool AdmissionController::TryAdmitConnection(std::string* busy_reason) {
  // CAS loop rather than blind increment so a refused attempt never
  // transiently inflates the count another accept is checking against.
  int current = active_connections_.load();
  for (;;) {
    if (current >= config_.max_connections) {
      rejected_connections_.fetch_add(1);
      *busy_reason = "connection limit (" +
                     std::to_string(config_.max_connections) + ") reached";
      return false;
    }
    if (active_connections_.compare_exchange_weak(current, current + 1)) {
      accepted_total_.fetch_add(1);
      return true;
    }
  }
}

void AdmissionController::ReleaseConnection() {
  active_connections_.fetch_sub(1);
}

bool AdmissionController::TryAdmitRequest(int connection_inflight,
                                          std::string* busy_reason) {
  if (connection_inflight >= config_.max_inflight) {
    shed_requests_.fetch_add(1);
    *busy_reason = "per-connection in-flight limit (" +
                   std::to_string(config_.max_inflight) + ") reached";
    return false;
  }
  int current = queued_requests_.load();
  for (;;) {
    if (current >= config_.max_queue_depth) {
      shed_requests_.fetch_add(1);
      *busy_reason = "server queue depth (" +
                     std::to_string(config_.max_queue_depth) + ") reached";
      return false;
    }
    if (queued_requests_.compare_exchange_weak(current, current + 1)) {
      return true;
    }
  }
}

void AdmissionController::ReleaseRequest() { queued_requests_.fetch_sub(1); }

bool AdmissionController::TryChargeQuery(const std::string& release,
                                         std::string* denial) {
  if (config_.max_queries_per_release == 0) return true;
  {
    std::lock_guard<std::mutex> lock(quota_mu_);
    const auto it = quota_used_.find(release);
    if (it == quota_used_.end()) {
      // Hard bound on the ledger itself: even if a caller charges
      // attacker-chosen names (the serving gate pre-validates against
      // the store, but this type must be safe on its own), the map can
      // never grow past kMaxTrackedReleases entries.
      if (quota_used_.size() >= kMaxTrackedReleases) {
        quota_denied_.fetch_add(1);
        *denial = "quota ledger full (" +
                  std::to_string(kMaxTrackedReleases) +
                  " releases tracked)";
        return false;
      }
      quota_used_.emplace(release, 1);
      return true;
    }
    if (it->second < config_.max_queries_per_release) {
      ++it->second;
      return true;
    }
  }
  quota_denied_.fetch_add(1);
  *denial = "release '" + release + "' exhausted its query quota (" +
            std::to_string(config_.max_queries_per_release) + ")";
  return false;
}

std::uint64_t AdmissionController::quota_used(
    const std::string& release) const {
  std::lock_guard<std::mutex> lock(quota_mu_);
  const auto it = quota_used_.find(release);
  return it == quota_used_.end() ? 0 : it->second;
}

}  // namespace net
}  // namespace dpcube
