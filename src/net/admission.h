// Copyright 2026 The dpcube Authors.
//
// Admission control for the serving subsystem: fixed caps on accepted
// connections, per-connection in-flight requests, total queued work,
// and per-release query quotas, enforced at the network edge so
// overload degrades into fast structured replies ("BUSY <reason>" for
// shed work, kQuotaExceeded for exhausted quotas) instead of unbounded
// queues, latency collapse, or silent drops. Every shed request still
// gets exactly one response — the one invariant a pipelining client
// needs to stay in sync.

#ifndef DPCUBE_NET_ADMISSION_H_
#define DPCUBE_NET_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace dpcube {
namespace net {

struct AdmissionConfig {
  /// Accepted connections beyond this are answered with one BUSY frame
  /// and closed.
  int max_connections = 64;
  /// Per-connection cap on requests admitted but not yet answered;
  /// arrivals beyond it are shed with BUSY.
  int max_inflight = 8;
  /// Server-wide cap on admitted-but-unanswered requests across all
  /// connections (the executor's queue depth); arrivals beyond it are
  /// shed with BUSY even if their connection is under its own cap.
  int max_queue_depth = 256;
  /// Lifetime cap on queries charged against any one release name
  /// (batch sub-queries each count); queries beyond it are answered
  /// with a structured kQuotaExceeded error. 0 = unmetered.
  std::uint64_t max_queries_per_release = 0;
};

/// Validated config (connection/inflight/queue caps clamped to >= 1;
/// the quota keeps 0 as "unmetered").
AdmissionConfig ClampAdmissionConfig(AdmissionConfig config);

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config)
      : config_(ClampAdmissionConfig(config)) {}

  const AdmissionConfig& config() const { return config_; }

  /// Accept-time gate. On refusal, bumps the rejected counter and fills
  /// `*busy_reason` (no "BUSY " prefix; the caller's codec adds it) for
  /// the one-frame goodbye.
  bool TryAdmitConnection(std::string* busy_reason);
  void ReleaseConnection();

  /// Frame-arrival gate; `connection_inflight` is the calling
  /// connection's own admitted-but-unanswered count. On refusal, bumps
  /// the shed counter and fills `*busy_reason` (no "BUSY " prefix).
  bool TryAdmitRequest(int connection_inflight, std::string* busy_reason);
  void ReleaseRequest();

  /// Hard bound on distinct release names the quota ledger tracks; a
  /// charge for a NEW name beyond it is denied, so hostile name churn
  /// cannot grow the map without bound. Callers should additionally
  /// pre-validate names against the store (the serving gate does) so
  /// misspelled queries neither charge quota nor occupy ledger slots.
  static constexpr std::size_t kMaxTrackedReleases = 65536;

  /// Per-release query-quota gate: charges one query against `release`
  /// and returns true, or — once the release's lifetime spend reaches
  /// max_queries_per_release (or the ledger is full, see above) —
  /// bumps the denial counter, fills `*denial`, and returns false.
  /// Always true when unmetered. Thread-safe (sessions call this from
  /// pool workers).
  bool TryChargeQuery(const std::string& release, std::string* denial);

  // Monitoring snapshot (STATS verb).
  int active_connections() const { return active_connections_.load(); }
  int queued_requests() const { return queued_requests_.load(); }
  std::uint64_t accepted_total() const { return accepted_total_.load(); }
  std::uint64_t rejected_connections() const {
    return rejected_connections_.load();
  }
  std::uint64_t shed_requests() const { return shed_requests_.load(); }
  std::uint64_t quota_denied() const { return quota_denied_.load(); }
  /// Lifetime queries charged against `release` so far.
  std::uint64_t quota_used(const std::string& release) const;

 private:
  const AdmissionConfig config_;
  std::atomic<int> active_connections_{0};
  std::atomic<int> queued_requests_{0};
  std::atomic<std::uint64_t> accepted_total_{0};
  std::atomic<std::uint64_t> rejected_connections_{0};
  std::atomic<std::uint64_t> shed_requests_{0};
  std::atomic<std::uint64_t> quota_denied_{0};
  mutable std::mutex quota_mu_;
  std::unordered_map<std::string, std::uint64_t> quota_used_;
};

}  // namespace net
}  // namespace dpcube

#endif  // DPCUBE_NET_ADMISSION_H_
