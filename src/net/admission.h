// Copyright 2026 The dpcube Authors.
//
// Admission control for the serving subsystem: fixed caps on accepted
// connections, per-connection in-flight requests, and total queued work,
// enforced at the network edge so overload degrades into fast structured
// "BUSY <reason>" replies instead of unbounded queues, latency collapse,
// or silent drops. Every shed request still gets exactly one response —
// the one invariant a pipelining client needs to stay in sync.

#ifndef DPCUBE_NET_ADMISSION_H_
#define DPCUBE_NET_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace dpcube {
namespace net {

struct AdmissionConfig {
  /// Accepted connections beyond this are answered with one BUSY frame
  /// and closed.
  int max_connections = 64;
  /// Per-connection cap on requests admitted but not yet answered;
  /// arrivals beyond it are shed with BUSY.
  int max_inflight = 8;
  /// Server-wide cap on admitted-but-unanswered requests across all
  /// connections (the executor's queue depth); arrivals beyond it are
  /// shed with BUSY even if their connection is under its own cap.
  int max_queue_depth = 256;
};

/// Validated config (all caps clamped to >= 1).
AdmissionConfig ClampAdmissionConfig(AdmissionConfig config);

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config)
      : config_(ClampAdmissionConfig(config)) {}

  const AdmissionConfig& config() const { return config_; }

  /// Accept-time gate. On refusal, bumps the rejected counter and fills
  /// `*busy_reason` for the one-frame goodbye.
  bool TryAdmitConnection(std::string* busy_reason);
  void ReleaseConnection();

  /// Frame-arrival gate; `connection_inflight` is the calling
  /// connection's own admitted-but-unanswered count. On refusal, bumps
  /// the shed counter and fills `*busy_reason`.
  bool TryAdmitRequest(int connection_inflight, std::string* busy_reason);
  void ReleaseRequest();

  // Monitoring snapshot (STATS verb).
  int active_connections() const { return active_connections_.load(); }
  int queued_requests() const { return queued_requests_.load(); }
  std::uint64_t accepted_total() const { return accepted_total_.load(); }
  std::uint64_t rejected_connections() const {
    return rejected_connections_.load();
  }
  std::uint64_t shed_requests() const { return shed_requests_.load(); }

 private:
  const AdmissionConfig config_;
  std::atomic<int> active_connections_{0};
  std::atomic<int> queued_requests_{0};
  std::atomic<std::uint64_t> accepted_total_{0};
  std::atomic<std::uint64_t> rejected_connections_{0};
  std::atomic<std::uint64_t> shed_requests_{0};
};

}  // namespace net
}  // namespace dpcube

#endif  // DPCUBE_NET_ADMISSION_H_
