// Copyright 2026 The dpcube Authors.
//
// Admission control for the serving subsystem: fixed caps on accepted
// connections, per-connection in-flight requests, total queued work,
// and per-release query quotas — both a lifetime ledger and a
// sliding-window rate limit — enforced at the network edge so overload
// degrades into fast structured replies ("BUSY <reason>" for shed work,
// kQuotaExceeded for exhausted quotas) instead of unbounded queues,
// latency collapse, or silent drops. Every shed request still gets
// exactly one response — the one invariant a pipelining client needs to
// stay in sync.

#ifndef DPCUBE_NET_ADMISSION_H_
#define DPCUBE_NET_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/sync.h"

namespace dpcube {
namespace net {

struct AdmissionConfig {
  /// Accepted connections beyond this are answered with one BUSY frame
  /// and closed.
  int max_connections = 64;
  /// Per-connection cap on requests admitted but not yet answered;
  /// arrivals beyond it are shed with BUSY.
  int max_inflight = 8;
  /// Server-wide cap on admitted-but-unanswered requests across all
  /// connections (the executor's queue depth); arrivals beyond it are
  /// shed with BUSY even if their connection is under its own cap.
  int max_queue_depth = 256;
  /// Lifetime cap on queries charged against any one release name
  /// (batch sub-queries each count); queries beyond it are answered
  /// with a structured kQuotaExceeded error. 0 = unmetered.
  std::uint64_t max_queries_per_release = 0;
  /// Sliding-window rate cap per release: at most this many queries in
  /// any trailing `query_rate_window_seconds` window. Charged alongside
  /// the lifetime ledger; denials also answer kQuotaExceeded. The
  /// window recovers on its own, so a rate denial is retryable where a
  /// lifetime denial is terminal. 0 = unmetered.
  std::uint64_t query_rate_limit = 0;
  /// Window length for query_rate_limit (clamped to [1, 3600]).
  int query_rate_window_seconds = 60;
};

/// Validated config (connection/inflight/queue caps clamped to >= 1;
/// the quotas keep 0 as "unmetered"; the rate window is clamped to
/// [1, 3600] seconds).
AdmissionConfig ClampAdmissionConfig(AdmissionConfig config);

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config)
      : config_(ClampAdmissionConfig(config)) {}

  const AdmissionConfig& config() const { return config_; }

  /// Accept-time gate. On refusal, bumps the rejected counter and fills
  /// `*busy_reason` (no "BUSY " prefix; the caller's codec adds it) for
  /// the one-frame goodbye.
  bool TryAdmitConnection(std::string* busy_reason);
  void ReleaseConnection();

  /// Frame-arrival gate; `connection_inflight` is the calling
  /// connection's own admitted-but-unanswered count. On refusal, bumps
  /// the shed counter and fills `*busy_reason` (no "BUSY " prefix).
  bool TryAdmitRequest(int connection_inflight, std::string* busy_reason);
  void ReleaseRequest();

  /// Hard bound on distinct release names the quota ledger tracks; a
  /// charge for a NEW name beyond it is denied, so hostile name churn
  /// cannot grow the map without bound. Callers should additionally
  /// pre-validate names against the store (the serving gate does) so
  /// misspelled queries neither charge quota nor occupy ledger slots.
  static constexpr std::size_t kMaxTrackedReleases = 65536;

  /// Outcome of one quota-gate pass, so callers that must record the
  /// decision (the durable state machine) can tell WHY a query was
  /// denied, not just that it was.
  enum class QuotaDecision {
    kCharged,          ///< Charged against the lifetime + rate ledgers.
    kDeniedLifetime,   ///< Lifetime quota spent (or ledger full) — terminal.
    kDeniedRate,       ///< Trailing-window rate cap hit — retryable.
  };

  /// Per-release query-quota gate: charges one query against `release`,
  /// or denies — once the release's lifetime spend reaches
  /// max_queries_per_release, its trailing-window spend reaches
  /// query_rate_limit, or the ledger is full (see above) — bumping the
  /// matching denial counter and filling `*denial`. A denied charge
  /// leaves both ledgers untouched. Always kCharged when both quotas
  /// are unmetered. Thread-safe (sessions call this from pool workers).
  QuotaDecision ChargeQuery(const std::string& release, std::string* denial);

  /// ChargeQuery collapsed to charged / not-charged.
  bool TryChargeQuery(const std::string& release, std::string* denial) {
    return ChargeQuery(release, denial) == QuotaDecision::kCharged;
  }

  /// Replay-time restore: sets `release`'s lifetime spend outright
  /// (no denial checks, no rate buckets — the sliding window is
  /// deliberately transient across restarts). Boot-time only.
  void RestoreQuota(const std::string& release, std::uint64_t lifetime_used);

  /// Replay-time restore of the denial counters surfaced in STATS and
  /// /metrics, so quota_denied/rate_denied survive a restart too.
  void RestoreDenials(std::uint64_t lifetime_denied, std::uint64_t rate_denied);

  // Monitoring snapshot (STATS verb + /metrics).
  int active_connections() const { return active_connections_.load(); }
  int queued_requests() const { return queued_requests_.load(); }
  std::uint64_t accepted_total() const { return accepted_total_.load(); }
  std::uint64_t rejected_connections() const {
    return rejected_connections_.load();
  }
  std::uint64_t shed_requests() const { return shed_requests_.load(); }
  /// Denials from the lifetime ledger (or a full ledger).
  std::uint64_t quota_denied() const { return quota_denied_.load(); }
  /// Denials from the sliding-window rate limit.
  std::uint64_t rate_denied() const { return rate_denied_.load(); }
  /// Lifetime queries charged against `release` so far.
  std::uint64_t quota_used(const std::string& release) const;

  /// One ledger row per metered release, for /statusz.
  struct QuotaEntrySnapshot {
    std::string release;
    std::uint64_t lifetime_used = 0;
    std::uint64_t window_used = 0;  ///< Charges in the trailing window.
  };
  std::vector<QuotaEntrySnapshot> QuotaLedger() const;

  /// Replaces the rate window's wall clock (whole seconds, monotonic
  /// non-decreasing) so tests can march time forward deterministically.
  void SetClockForTests(std::function<std::uint64_t()> clock);

 private:
  /// Per-release quota state: lifetime spend plus a deque of
  /// (second, count) buckets covering the trailing rate window, with
  /// the bucket total maintained incrementally so a charge is O(expired
  /// buckets), not O(window).
  struct QuotaEntry {
    std::uint64_t lifetime = 0;
    std::uint64_t window_total = 0;
    std::deque<std::pair<std::uint64_t, std::uint64_t>> buckets;
  };

  /// Now in whole seconds (test clock when installed; reads clock_).
  std::uint64_t NowSeconds() const REQUIRES(quota_mu_);
  /// Drops buckets older than the window from `entry`.
  void EvictExpiredLocked(QuotaEntry* entry, std::uint64_t now_seconds)
      REQUIRES(quota_mu_);

  const AdmissionConfig config_;
  std::atomic<int> active_connections_{0};
  std::atomic<int> queued_requests_{0};
  std::atomic<std::uint64_t> accepted_total_{0};
  std::atomic<std::uint64_t> rejected_connections_{0};
  std::atomic<std::uint64_t> shed_requests_{0};
  std::atomic<std::uint64_t> quota_denied_{0};
  std::atomic<std::uint64_t> rate_denied_{0};
  mutable sync::Mutex quota_mu_;
  std::unordered_map<std::string, QuotaEntry> quota_used_
      GUARDED_BY(quota_mu_);
  std::function<std::uint64_t()> clock_ GUARDED_BY(quota_mu_);
};

}  // namespace net
}  // namespace dpcube

#endif  // DPCUBE_NET_ADMISSION_H_
