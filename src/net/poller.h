// Copyright 2026 The dpcube Authors.
//
// One event-loop poller thread of the multi-poller front end. The
// SocketListener's accept loop admits sockets and hands each resulting
// Connection to one Poller chosen round-robin; from that moment the
// connection is PINNED to that poller for its whole life — the poller's
// thread is the only "network thread" that ever touches its read/decode
// /dispatch/flush state, so the single-threaded discipline connection.h
// documents still holds, just per poller instead of per process.
//
// Each poller owns:
//   * a wake pipe — pool workers finishing a response (and the acceptor
//     handing off a socket, and drain) poke it to interrupt poll();
//   * the connections_ map for its pinned connections;
//   * a LingerSet, shared with its connections, so a closing connection
//     parks its fd there and this loop polls it to FIN (see linger.h);
//   * optionally (poller 0 only) the HTTP observability endpoint,
//     spliced into the loop exactly as it was spliced into the old
//     single poll loop.
//
// Compute still never runs here: sessions execute on the ServeContext's
// ThreadPool, and a poller blocked in poll() costs nothing. Cross-
// thread handoff of a new connection goes through a mutex-guarded inbox
// (adopted at the top of each cycle), which is also the happens-before
// edge that publishes the Connection's construction to the poller
// thread.
//
// Drain: the acceptor broadcasts BeginDrain(deadline) to every poller;
// each drains its own connections (stop reading, finish admitted work,
// flush, linger-close) and exits when they are gone or the deadline
// passes. A poller carrying the HTTP endpoint keeps serving probes
// until the acceptor calls RequestStop() after the other pollers have
// drained — so /healthz returns the 503 for the whole drain window
// instead of a refused connection.

#ifndef DPCUBE_NET_POLLER_H_
#define DPCUBE_NET_POLLER_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/fd.h"
#include "common/status.h"
#include "common/sync.h"
#include "net/connection.h"
#include "net/http_endpoint.h"
#include "net/linger.h"

namespace dpcube {
namespace net {

class Poller {
 public:
  explicit Poller(int id);
  /// Joins the thread if the owner never drained it (sets an immediate
  /// deadline first, so destruction is bounded).
  ~Poller();

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  int id() const { return id_; }

  /// Creates the wake pipe and spawns the loop thread. Call once.
  Status Start();

  /// Hands a freshly admitted connection to this poller (acceptor
  /// thread). The connection must have been built with this poller's
  /// MakeWakeup() closure and linger() set.
  void Adopt(std::shared_ptr<Connection> connection);

  /// Splices `http` into this poller's loop (poller 0). Set before
  /// Start(); `http` must outlive the poller thread.
  void AttachHttp(HttpEndpoint* http) { http_ = http; }

  /// Thread-safe: stop reading, finish admitted work, flush, exit by
  /// `deadline` at the latest. Idempotent.
  void BeginDrain(std::chrono::steady_clock::time_point deadline);

  /// Lets a drained HTTP-carrying poller exit (see file comment).
  /// No-op for pollers without the endpoint.
  void RequestStop();

  void Join();

  /// A closure any thread may call to interrupt this poller's poll()
  /// (valid after Start(); safe to call for as long as the returned
  /// copy of the pipe lives, even past the poller itself).
  std::function<void()> MakeWakeup() const;

  /// The linger set this poller polls; connections park closing fds
  /// here. Shared so a connection destroyed after the poller (a pool
  /// task holding the last reference) still has somewhere safe to put
  /// its fd — the set then closes it on destruction.
  const std::shared_ptr<LingerSet>& linger() const { return linger_; }

  /// Connections currently pinned here (relaxed; exported as the
  /// dpcube_poller_connections{poller=} gauge). The counting atomic is
  /// shared so the metrics registry can outlive the poller.
  const std::shared_ptr<std::atomic<std::size_t>>& connection_gauge()
      const {
    return connection_count_;
  }
  std::size_t connection_count() const {
    return connection_count_->load(std::memory_order_relaxed);
  }

  /// Connections ever handed to this poller (round-robin visibility).
  const std::shared_ptr<std::atomic<std::uint64_t>>& adopted_counter()
      const {
    return adopted_total_;
  }
  std::uint64_t adopted_total() const {
    return adopted_total_->load(std::memory_order_relaxed);
  }

 private:
  void Run();
  void Wake() const;

  const int id_;
  std::shared_ptr<Pipe> wake_pipe_;  ///< Shared with wakeup closures.
  std::shared_ptr<LingerSet> linger_ = std::make_shared<LingerSet>();
  HttpEndpoint* http_ = nullptr;
  std::thread thread_;

  // Acceptor -> poller handoff (and drain signalling).
  mutable sync::Mutex mu_;
  std::vector<std::shared_ptr<Connection>> inbox_ GUARDED_BY(mu_);
  std::chrono::steady_clock::time_point drain_deadline_ GUARDED_BY(mu_);
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_requested_{false};

  // Loop-thread-only state.
  std::map<int, std::shared_ptr<Connection>> connections_;  ///< By fd.

  std::shared_ptr<std::atomic<std::size_t>> connection_count_ =
      std::make_shared<std::atomic<std::size_t>>(0);
  std::shared_ptr<std::atomic<std::uint64_t>> adopted_total_ =
      std::make_shared<std::atomic<std::uint64_t>>(0);
};

}  // namespace net
}  // namespace dpcube

#endif  // DPCUBE_NET_POLLER_H_
