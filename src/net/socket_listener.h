// Copyright 2026 The dpcube Authors.
//
// The poll-driven TCP front end of `dpcube serve`. One network thread
// owns every socket: it accepts connections (subject to admission
// control), pumps their read/decode/dispatch/flush cycles, and reacts
// to two out-of-band readable fds — an internal self-pipe that pool
// workers poke when a response completes, and an optional external
// shutdown fd (the CLI wires the SIGINT/SIGTERM self-pipe here).
// All query execution happens on the ServeContext's ThreadPool; this
// thread never computes (see connection.h for the exact split).
//
// The listener also owns the observability surface: a metrics::Registry
// every collaborator registers into (per-verb counters and latency from
// the sessions, callback gauges over admission/cache/pool state, a
// /proc resource tracker) and — when http_listen_address is set — an
// HttpEndpoint spliced into the same poll loop serving /metrics,
// /healthz, and /statusz. HTTP stays polled during drain so probes see
// the 503 instead of a refused connection.
//
// Shutdown is graceful: stop accepting, let every admitted request
// finish and flush, then return from Serve() — bounded by
// drain_timeout_ms so a hung peer cannot wedge process exit.

#ifndef DPCUBE_NET_SOCKET_LISTENER_H_
#define DPCUBE_NET_SOCKET_LISTENER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/fd.h"
#include "common/metrics.h"
#include "common/status.h"
#include "net/admission.h"
#include "net/connection.h"
#include "net/http_endpoint.h"
#include "net/server_stats.h"
#include "service/service_metrics.h"

namespace dpcube {
namespace net {

struct ServerOptions {
  /// "host:port"; port 0 binds an ephemeral port (see bound_port()).
  std::string listen_address = "127.0.0.1:0";
  /// "host:port" for the HTTP observability endpoint (/metrics,
  /// /healthz, /statusz); empty disables HTTP entirely.
  std::string http_listen_address;
  AdmissionConfig admission;
  /// Per-frame payload cap handed to each connection's decoder.
  std::size_t max_frame_payload = std::size_t{1} << 20;
  /// When set (>= 0), Serve() also exits once this fd becomes readable
  /// (level-triggered; the fd is polled, never read or closed).
  int shutdown_fd = -1;
  /// Grace period for in-flight work at shutdown.
  int drain_timeout_ms = 10000;
};

class SocketListener {
 public:
  SocketListener(ServerOptions options, ServeContext context);
  ~SocketListener();

  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  /// Binds and listens (the protocol port, and the HTTP port when
  /// configured). After OK, bound_port()/http_bound_address() are real.
  Status Start();

  /// Runs the event loop until Shutdown()/shutdown_fd, then drains.
  /// Returns the count of connections served over the loop's lifetime.
  /// Call from exactly one thread, after Start().
  Result<std::uint64_t> Serve();

  /// Thread-safe graceful-shutdown request (no-op before Serve()).
  void Shutdown();

  std::uint16_t bound_port() const { return bound_port_; }
  std::string bound_address() const;
  /// "" when HTTP is disabled; the real host:port after Start().
  std::string http_bound_address() const;

  const AdmissionController& admission() const { return *admission_; }
  const ServerStats& stats() const { return *stats_; }
  /// The registry every server metric lives in (valid for the
  /// listener's lifetime; sessions keep it alive past that).
  const metrics::Registry& registry() const { return *registry_; }

  /// The "OK STATS ..." line the per-connection sessions serve for the
  /// STATS verb (public so the CLI/tests can print the same snapshot).
  std::string FormatStatsLine() const;

 private:
  /// Accepts until EAGAIN; each accept passes admission or gets a
  /// one-frame BUSY goodbye.
  void AcceptPending();
  /// Registers every listener-level metric family (frame counters,
  /// admission gauges, cache/pool/store stats, resource tracker) into
  /// registry_ and resolves the sessions' per-verb table.
  void RegisterServerMetrics();
  /// Installs the /metrics, /healthz, and /statusz routes on http_.
  void InstallHttpRoutes();

  const ServerOptions options_;
  const ServeContext context_;
  std::shared_ptr<AdmissionController> admission_;
  std::shared_ptr<ServerStats> stats_;
  std::shared_ptr<metrics::Registry> registry_;
  /// Per-verb pointer table shared by every session; its control block
  /// keeps registry_ alive, so a pool task finishing after teardown can
  /// still bump its counters safely.
  std::shared_ptr<const service::SessionMetrics> session_metrics_;
  std::shared_ptr<metrics::ResourceTracker> resource_tracker_;
  std::unique_ptr<HttpEndpoint> http_;
  /// Set when drain begins; /healthz flips to 503 on it. shared_ptr so
  /// the health handler outlives nothing it doesn't own.
  std::shared_ptr<std::atomic<bool>> draining_flag_;
  std::chrono::steady_clock::time_point started_at_;
  std::shared_ptr<Pipe> wake_pipe_;  ///< Shared with worker closures.
  UniqueFd listen_fd_;
  std::uint16_t bound_port_ = 0;
  std::string host_;
  std::atomic<bool> shutdown_requested_{false};
  /// After accept() fails on resource exhaustion (EMFILE/ENFILE/...),
  /// the listen fd is left out of the poll set until this instant —
  /// a level-triggered readable listener we cannot accept from would
  /// otherwise busy-spin the loop at 100% CPU.
  std::chrono::steady_clock::time_point accept_retry_after_{};
  std::uint64_t next_connection_id_ = 1;
  std::map<int, std::shared_ptr<Connection>> connections_;  ///< By fd.
};

}  // namespace net
}  // namespace dpcube

#endif  // DPCUBE_NET_SOCKET_LISTENER_H_
