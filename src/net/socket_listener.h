// Copyright 2026 The dpcube Authors.
//
// The TCP front end of `dpcube serve`, split acceptor/poller since the
// multi-poller refactor:
//
//   * Serve()'s thread is the ACCEPTOR: it owns the listen fd, runs
//     admission (refused peers get a one-frame BUSY goodbye and a
//     lingering close), and hands each admitted socket to one of N
//     event-loop POLLER threads chosen round-robin (`net_threads`,
//     default min(4, hardware threads)).
//   * Each Connection is pinned to its poller for life: the poller owns
//     its wake pipe, its connections map, and its poll loop (see
//     poller.h), so no connection state is ever shared between network
//     threads. All query execution still happens on the ServeContext's
//     ThreadPool; no network thread ever computes.
//
// The listener also owns the observability surface: a metrics::Registry
// every collaborator registers into (per-verb counters and latency from
// the sessions, callback gauges over admission/cache/pool state and the
// per-poller connection counts, a /proc resource tracker) and — when
// http_listen_address is set — an HttpEndpoint spliced into poller 0's
// loop serving /metrics, /healthz, and /statusz. HTTP stays polled
// during drain so probes see the 503 instead of a refused connection.
//
// Shutdown is graceful: stop accepting, broadcast BeginDrain to every
// poller, let every admitted request finish and flush (bounded by
// drain_timeout_ms), then join the pollers — Serve() returns only after
// every poller thread has exited and every lingering close resolved.

#ifndef DPCUBE_NET_SOCKET_LISTENER_H_
#define DPCUBE_NET_SOCKET_LISTENER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/fd.h"
#include "common/metrics.h"
#include "common/status.h"
#include "net/admission.h"
#include "net/connection.h"
#include "net/http_endpoint.h"
#include "net/linger.h"
#include "net/poller.h"
#include "net/server_stats.h"
#include "service/serve_config.h"
#include "service/service_metrics.h"

namespace dpcube {
namespace net {

struct ServerOptions {
  /// "host:port"; port 0 binds an ephemeral port (see bound_port()).
  std::string listen_address = "127.0.0.1:0";
  /// "host:port" for the HTTP observability endpoint (/metrics,
  /// /healthz, /statusz, /tracez); empty disables HTTP entirely.
  std::string http_listen_address;
  /// When non-empty, /metrics, /statusz, and /tracez require
  /// "Authorization: Bearer <token>" (401 otherwise). /healthz stays
  /// open so load balancers need no secret.
  std::string http_token;
  /// Completed-request traces kept for /tracez (the "recent" view);
  /// 0 disables request tracing entirely (no ring, no spans, no access
  /// log records).
  std::size_t trace_ring_capacity = 256;
  /// Keep-slowest reservoir size for /tracez's "slowest" view.
  std::size_t trace_slowest_capacity = 16;
  /// When non-empty, every completed request appends one JSONL record
  /// here (opened in Start(); open failure fails Start()).
  std::string access_log_path;
  /// Traces at or above this total latency are flagged slow (WARN log
  /// level, slow=1 in /tracez). 0 flags nothing.
  int slow_query_ms = 0;
  AdmissionConfig admission;
  /// Per-frame payload cap handed to each connection's decoder.
  std::size_t max_frame_payload = std::size_t{1} << 20;
  /// When set (>= 0), Serve() also exits once this fd becomes readable
  /// (level-triggered; the fd is polled, never read or closed).
  int shutdown_fd = -1;
  /// Grace period for in-flight work at shutdown.
  int drain_timeout_ms = 10000;
  /// Event-loop poller threads. Each accepted connection is pinned to
  /// one for its lifetime; 0 resolves to min(4, hardware threads),
  /// clamped to [1, 64].
  int net_threads = 0;
};

/// The poller count `net_threads` resolves to (exposed for the CLI's
/// startup banner and tests).
int ResolveNetThreads(int net_threads);

/// The one translation from the validated serve configuration to the
/// listener's options. Every knob a ServeConfig carries for the network
/// layer is consumed here, so the CLI cannot drift from the server: a
/// new flag either lands in this function or it does nothing.
ServerOptions ServerOptionsFromConfig(const service::ServeConfig& config);

class SocketListener {
 public:
  SocketListener(ServerOptions options, ServeContext context);
  ~SocketListener();

  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  /// Binds and listens (the protocol port, and the HTTP port when
  /// configured). After OK, bound_port()/http_bound_address() are real.
  Status Start();

  /// Spawns the poller threads and runs the accept loop until
  /// Shutdown()/shutdown_fd, then drains and joins them. Returns the
  /// count of connections served over the loop's lifetime. Call from
  /// exactly one thread, after Start().
  Result<std::uint64_t> Serve();

  /// Thread-safe graceful-shutdown request (no-op before Serve()).
  void Shutdown();

  std::uint16_t bound_port() const { return bound_port_; }
  std::string bound_address() const;
  /// "" when HTTP is disabled; the real host:port after Start().
  std::string http_bound_address() const;

  const AdmissionController& admission() const { return *admission_; }
  const ServerStats& stats() const { return *stats_; }
  /// The registry every server metric lives in (valid for the
  /// listener's lifetime; sessions keep it alive past that).
  const metrics::Registry& registry() const { return *registry_; }

  /// The resolved poller count.
  int net_threads() const { return static_cast<int>(pollers_.size()); }
  /// Connections currently pinned to poller `i` (tests/metrics).
  std::size_t poller_connections(int i) const {
    return pollers_[static_cast<std::size_t>(i)]->connection_count();
  }

  /// The "OK STATS ..." line the per-connection sessions serve for the
  /// STATS verb (public so the CLI/tests can print the same snapshot).
  std::string FormatStatsLine() const;

  /// The completed-request trace ring (null when trace_ring_capacity
  /// was 0). Thread-safe to read while serving.
  std::shared_ptr<const trace::TraceRing> trace_ring() const {
    return trace_ring_;
  }

 private:
  /// Accepts until EAGAIN; each accept passes admission (and is handed
  /// to the next poller round-robin) or gets a one-frame BUSY goodbye
  /// and a lingering close.
  void AcceptPending();
  /// Registers every listener-level metric family (frame counters,
  /// admission gauges, cache/pool/store stats, per-poller connection
  /// gauges, resource tracker) into registry_ and resolves the
  /// sessions' per-verb table.
  void RegisterServerMetrics();
  /// Installs the /metrics, /healthz, /statusz, and /tracez routes on
  /// http_ (the first and last two behind the bearer token, when set).
  void InstallHttpRoutes();

  const ServerOptions options_;
  /// Mutable (unlike before the tracing spine): the constructor and
  /// Start() splice the trace ring, trace metrics, and access log into
  /// the context BEFORE any connection copies it.
  ServeContext context_;
  std::shared_ptr<trace::TraceRing> trace_ring_;
  std::shared_ptr<AdmissionController> admission_;
  std::shared_ptr<ServerStats> stats_;
  std::shared_ptr<metrics::Registry> registry_;
  /// Per-verb pointer table shared by every session; its control block
  /// keeps registry_ alive, so a pool task finishing after teardown can
  /// still bump its counters safely.
  std::shared_ptr<const service::SessionMetrics> session_metrics_;
  std::shared_ptr<metrics::ResourceTracker> resource_tracker_;
  std::unique_ptr<HttpEndpoint> http_;
  /// Set when drain begins; /healthz flips to 503 on it. shared_ptr so
  /// the health handler outlives nothing it doesn't own.
  std::shared_ptr<std::atomic<bool>> draining_flag_;
  std::chrono::steady_clock::time_point started_at_;
  /// The event-loop fleet; constructed with the listener (so metrics
  /// can register over them), threads spawned by Serve().
  std::vector<std::unique_ptr<Poller>> pollers_;
  std::size_t next_poller_ = 0;  ///< Round-robin cursor.
  /// Lingering closes for refused (BUSY) accepts, polled by the accept
  /// loop itself — these sockets never become Connections.
  std::shared_ptr<LingerSet> busy_linger_;
  std::shared_ptr<Pipe> wake_pipe_;  ///< Interrupts the accept loop.
  UniqueFd listen_fd_;
  std::uint16_t bound_port_ = 0;
  std::string host_;
  std::atomic<bool> shutdown_requested_{false};
  /// After accept() fails on resource exhaustion (EMFILE/ENFILE/...),
  /// the listen fd is left out of the poll set until this instant —
  /// a level-triggered readable listener we cannot accept from would
  /// otherwise busy-spin the loop at 100% CPU.
  std::chrono::steady_clock::time_point accept_retry_after_{};
  std::uint64_t next_connection_id_ = 1;
};

}  // namespace net
}  // namespace dpcube

#endif  // DPCUBE_NET_SOCKET_LISTENER_H_
