// Copyright 2026 The dpcube Authors.
//
// Blocking client for the framed serve protocol — the library behind
// `dpcube query --connect host:port`, the loopback tests, and the TCP
// throughput bench. One Client is one connection; it is move-only and
// NOT thread-safe (open one per thread — connections are cheap, and the
// server's parallelism lives across connections).
//
// Two usage levels:
//   Call()          — one request frame in, one response frame out (the
//                     frame payload may hold several response lines,
//                     e.g. a batch's).
//   Send()/Receive()— explicit pipelining: queue many request frames,
//                     then collect responses in order. Shed requests
//                     come back as "BUSY <reason>" payloads.

#ifndef DPCUBE_NET_CLIENT_H_
#define DPCUBE_NET_CLIENT_H_

#include <string>
#include <vector>

#include "common/fd.h"
#include "common/status.h"
#include "net/framing.h"

namespace dpcube {
namespace net {

class Client {
 public:
  /// Connects to "host:port" (blocking).
  static Result<Client> Connect(const std::string& address);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Sends `request` (a self-contained protocol chunk: one line, several
  /// pipelined lines, or a batch header plus sub-lines; trailing newline
  /// optional) as one frame.
  Status Send(const std::string& request);

  /// Blocks for the next response frame; fills `*payload` verbatim
  /// (newline-terminated response lines). A clean peer close yields
  /// kUnavailable-style NotFound("connection closed").
  Status Receive(std::string* payload);

  /// Send + Receive.
  Status Call(const std::string& request, std::string* payload);

  /// Call() and split the payload into lines (the common case).
  Result<std::vector<std::string>> CallLines(const std::string& request);

 private:
  explicit Client(UniqueFd fd) : fd_(std::move(fd)), decoder_() {}

  UniqueFd fd_;
  FrameDecoder decoder_;
};

/// Splits a response payload into its newline-terminated lines.
std::vector<std::string> SplitResponseLines(const std::string& payload);

}  // namespace net
}  // namespace dpcube

#endif  // DPCUBE_NET_CLIENT_H_
