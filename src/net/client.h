// Copyright 2026 The dpcube Authors.
//
// Blocking client for the framed serve protocol — the library behind
// `dpcube query --connect host:port`, the loopback tests, and the TCP
// throughput bench. One Client is one connection; it is move-only and
// NOT thread-safe (open one per thread — connections are cheap, and the
// server's parallelism lives across connections).
//
// Three usage levels:
//   Call()            — one request frame in, one raw response frame out
//                       (the frame payload may hold several response
//                       lines, e.g. a batch's).
//   Send()/Receive()  — explicit pipelining: queue many request frames,
//                       then collect responses in order. Shed requests
//                       come back as "BUSY <reason>" payloads (or kBusy
//                       records once binary is negotiated).
//   Negotiate()/CallRecords() — protocol v2: negotiate a response codec
//                       with the HELLO handshake, then exchange typed
//                       WireRecords. Under the text codec each response
//                       line is wrapped in a record; under the binary
//                       codec the records are decoded from the wire, so
//                       callers handle both uniformly.

#ifndef DPCUBE_NET_CLIENT_H_
#define DPCUBE_NET_CLIENT_H_

#include <string>
#include <vector>

#include "common/fd.h"
#include "common/status.h"
#include "net/framing.h"
#include "service/wire_codec.h"

namespace dpcube {
namespace net {

class Client {
 public:
  /// Connects to "host:port" (blocking).
  static Result<Client> Connect(const std::string& address);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Sends `request` (a self-contained protocol chunk: one line, several
  /// pipelined lines, or a batch header plus sub-lines; trailing newline
  /// optional) as one frame.
  Status Send(const std::string& request);

  /// Blocks for the next response frame; fills `*payload` verbatim
  /// (newline-terminated response lines, or binary records once the
  /// binary codec is negotiated). A clean peer close yields
  /// kUnavailable-style NotFound("connection closed").
  Status Receive(std::string* payload);

  /// Send + Receive.
  Status Call(const std::string& request, std::string* payload);

  /// Call() and split the payload into lines (the common v1 case).
  Result<std::vector<std::string>> CallLines(const std::string& request);

  /// Performs the "HELLO v<version> <codec>" handshake and, on an OK
  /// ack, switches this client's response decoding to `codec`. The ack
  /// arrives in the codec in effect BEFORE the switch (always readable).
  /// On an ERR ack the negotiation failed, the server's codec is
  /// unchanged, and the returned status carries the server's diagnosis.
  Status Negotiate(int version, service::Codec codec);

  /// The response codec this client currently decodes (kText until a
  /// Negotiate succeeds).
  service::Codec codec() const { return codec_; }

  /// Blocks for the next response frame and decodes it into typed
  /// records: binary records under the binary codec, one wrapped record
  /// per response line under text.
  Result<std::vector<service::WireRecord>> ReceiveRecords();

  /// Send + ReceiveRecords.
  Result<std::vector<service::WireRecord>> CallRecords(
      const std::string& request);

 private:
  explicit Client(UniqueFd fd) : fd_(std::move(fd)), decoder_() {}

  UniqueFd fd_;
  FrameDecoder decoder_;
  service::Codec codec_ = service::Codec::kText;
};

/// Splits a response payload into its newline-terminated lines.
std::vector<std::string> SplitResponseLines(const std::string& payload);

/// Wraps text response lines into WireRecords ("OK ..." -> kOk with the
/// full line as message, "ERR x" -> kInternal with message "x",
/// "BUSY x" -> kBusy with message "x"), so FormatWireRecord round-trips
/// the original line exactly.
std::vector<service::WireRecord> WrapTextLines(
    const std::vector<std::string>& lines);

}  // namespace net
}  // namespace dpcube

#endif  // DPCUBE_NET_CLIENT_H_
