// Copyright 2026 The dpcube Authors.
//
// "host:port" parsing and the two blocking socket setup operations the
// subsystem needs (IPv4 listen, IPv4 connect). Everything event-driven
// lives in SocketListener; these helpers only ever run at startup or in
// the blocking client.

#ifndef DPCUBE_NET_ADDRESS_H_
#define DPCUBE_NET_ADDRESS_H_

#include <cstdint>
#include <string>

#include "common/fd.h"
#include "common/status.h"

namespace dpcube {
namespace net {

/// Splits "host:port" (e.g. "127.0.0.1:8000"; port 0 = ephemeral).
/// `host` must be a dotted-quad IPv4 literal or "localhost".
Status ParseHostPort(const std::string& address, std::string* host,
                     std::uint16_t* port);

/// Creates a non-blocking listening TCP socket bound to host:port with
/// SO_REUSEADDR. On success fills `*bound_port` with the actual port
/// (meaningful when asked for port 0).
Result<UniqueFd> ListenTcp(const std::string& host, std::uint16_t port,
                           int backlog, std::uint16_t* bound_port);

/// Blocking TCP connect to host:port (the client library's transport).
Result<UniqueFd> ConnectTcp(const std::string& host, std::uint16_t port);

}  // namespace net
}  // namespace dpcube

#endif  // DPCUBE_NET_ADDRESS_H_
