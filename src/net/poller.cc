// Copyright 2026 The dpcube Authors.

#include "net/poller.h"

#include <errno.h>
#include <poll.h>

#include <utility>

namespace dpcube {
namespace net {

Poller::Poller(int id) : id_(id) {}

Poller::~Poller() {
  if (thread_.joinable()) {
    BeginDrain(std::chrono::steady_clock::now());
    RequestStop();
    thread_.join();
  }
}

Status Poller::Start() {
  auto pipe = MakePipe();
  if (!pipe.ok()) return pipe.status();
  wake_pipe_ = std::make_shared<Pipe>(std::move(pipe).value());
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void Poller::Wake() const {
  if (wake_pipe_) WriteWakeByte(wake_pipe_->write_end.get());
}

std::function<void()> Poller::MakeWakeup() const {
  auto pipe = wake_pipe_;
  return [pipe] { WriteWakeByte(pipe->write_end.get()); };
}

void Poller::Adopt(std::shared_ptr<Connection> connection) {
  adopted_total_->fetch_add(1, std::memory_order_relaxed);
  {
    sync::MutexLock lock(&mu_);
    inbox_.push_back(std::move(connection));
  }
  Wake();
}

void Poller::BeginDrain(std::chrono::steady_clock::time_point deadline) {
  {
    sync::MutexLock lock(&mu_);
    if (draining_.load(std::memory_order_relaxed)) return;
    drain_deadline_ = deadline;
    draining_.store(true, std::memory_order_release);
  }
  Wake();
}

void Poller::RequestStop() {
  stop_requested_.store(true, std::memory_order_release);
  Wake();
}

void Poller::Join() {
  if (thread_.joinable()) thread_.join();
}

void Poller::Run() {
  using Clock = std::chrono::steady_clock;
  for (;;) {
    // Adopt handed-off connections; under drain, newly adopted ones are
    // drained below like everyone else (the acceptor stops handing off
    // before it broadcasts drain, but the inbox may already hold some).
    {
      sync::MutexLock lock(&mu_);
      for (auto& connection : inbox_) {
        connections_.emplace(connection->fd(), std::move(connection));
      }
      inbox_.clear();
    }
    const bool draining = draining_.load(std::memory_order_acquire);
    Clock::time_point drain_deadline;
    if (draining) {
      {
        sync::MutexLock lock(&mu_);
        drain_deadline = drain_deadline_;
      }
      // Idempotent per connection; repeating each cycle catches ones
      // adopted after the broadcast.
      for (auto& [fd, connection] : connections_) {
        connection->BeginDrain();
      }
    }

    std::vector<struct pollfd> fds;
    std::vector<Connection*> polled;  // Parallel to fds from conn_base.
    fds.push_back({wake_pipe_->read_end.get(), POLLIN, 0});
    const std::size_t conn_base = fds.size();
    for (auto& [fd, connection] : connections_) {
      const short events = connection->PollEvents();
      if (events == 0) continue;  // Blocked on a worker; wake pipe covers it.
      fds.push_back({fd, events, 0});
      polled.push_back(connection.get());
    }
    const std::size_t conn_end = fds.size();
    if (http_) http_->AppendPollFds(&fds);
    linger_->AppendPollFds(&fds);

    const int rc = ::poll(fds.data(), fds.size(), /*timeout_ms=*/100);
    if (rc < 0 && errno != EINTR) {
      // A loop thread has no status channel; throttle so a persistent
      // poll failure (cannot happen with valid fds) degrades to an idle
      // tick instead of a hot spin.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    if (fds[0].revents & POLLIN) {
      DrainWakeBytes(wake_pipe_->read_end.get());
    }
    if (rc > 0) {
      for (std::size_t i = conn_base; i < conn_end; ++i) {
        Connection* connection = polled[i - conn_base];
        if (fds[i].revents & (POLLIN | POLLERR | POLLHUP)) {
          connection->OnReadable();
        }
        if (fds[i].revents & POLLOUT) connection->OnWritable();
      }
      if (http_) http_->DispatchEvents(fds);
      linger_->DispatchEvents(fds);
    }
    if (http_) http_->PumpTimeouts();
    linger_->PumpTimeouts();

    // Pump everything each cycle: worker completions arrive via the
    // wake pipe, not via socket readiness.
    for (auto it = connections_.begin(); it != connections_.end();) {
      it->second->Pump();
      if (it->second->Finished()) {
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
    connection_count_->store(connections_.size(),
                             std::memory_order_relaxed);

    if (draining) {
      const bool drained =
          connections_.empty() &&
          (http_ == nullptr ||
           stop_requested_.load(std::memory_order_acquire));
      if (drained || Clock::now() >= drain_deadline) break;
    }
  }
  connections_.clear();
  connection_count_->store(0, std::memory_order_relaxed);
  // Connections just destroyed parked their fds in the linger set; give
  // the peers their bounded window so the last flushed responses still
  // survive pipelined input (see linger.h).
  linger_->DrainBlocking();
}

}  // namespace net
}  // namespace dpcube
