// Copyright 2026 The dpcube Authors.
//
// Server-side observability: lock-free counters plus per-phase latency
// histograms, snapshotted by the "STATS" protocol verb. Latencies use
// power-of-two microsecond buckets (one atomic add per sample on the
// hot path, quantiles reconstructed from bucket counts on read), the
// standard shape for always-on serving histograms.
//
// Phases per request frame:
//   queue — arrival at the network thread to execution start on a pool
//           worker (admission + executor queueing delay);
//   exec  — time on the worker running the session (parse, derive or
//           cache-hit, format);
//   total — arrival to response enqueued for write (queue + exec; the
//           final socket flush depends on the client draining and is
//           deliberately excluded).

#ifndef DPCUBE_NET_SERVER_STATS_H_
#define DPCUBE_NET_SERVER_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace dpcube {
namespace net {

/// Thread-safe log2-bucketed latency histogram. Bucket i counts samples
/// in [2^i, 2^(i+1)) microseconds (bucket 0 also absorbs sub-microsecond
/// samples; the last bucket absorbs everything above ~2^30 us).
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 31;

  void Record(double seconds);

  std::uint64_t count() const;

  /// Approximate p-quantile (0 <= p <= 1) in microseconds: the geometric
  /// midpoint of the bucket holding the p-th sample. 0 when empty.
  double QuantileMicros(double p) const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Counters owned by the SocketListener; connection/admission counts
/// live in the AdmissionController and are merged at format time.
struct ServerStats {
  std::atomic<std::uint64_t> requests{0};   ///< Frames received (incl. shed).
  std::atomic<std::uint64_t> responses{0};  ///< Response frames enqueued.
  std::atomic<std::uint64_t> frames_executed{0};  ///< Reached a session.
  LatencyHistogram queue_latency;
  LatencyHistogram exec_latency;
  LatencyHistogram total_latency;
};

}  // namespace net
}  // namespace dpcube

#endif  // DPCUBE_NET_SERVER_STATS_H_
