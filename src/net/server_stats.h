// Copyright 2026 The dpcube Authors.
//
// Server-side observability: lock-free counters plus per-phase latency
// histograms, snapshotted by the "STATS" protocol verb and exported
// verbatim on /metrics (the histograms live in common/metrics.h so both
// consumers read the same buckets — one source of truth).
//
// Phases per request frame:
//   queue — arrival at the network thread to execution start on a pool
//           worker (admission + executor queueing delay);
//   exec  — time on the worker running the session (parse, derive or
//           cache-hit, format);
//   total — arrival to response enqueued for write (queue + exec; the
//           final socket flush depends on the client draining and is
//           deliberately excluded).

#ifndef DPCUBE_NET_SERVER_STATS_H_
#define DPCUBE_NET_SERVER_STATS_H_

#include <atomic>
#include <cstdint>

#include "common/metrics.h"

namespace dpcube {
namespace net {

/// The log2-bucketed histogram now lives in common/metrics.h; this alias
/// keeps every existing net:: call site source-compatible.
using LatencyHistogram = metrics::LatencyHistogram;

/// Counters owned by the SocketListener; connection/admission counts
/// live in the AdmissionController and are merged at format time.
struct ServerStats {
  std::atomic<std::uint64_t> requests{0};   ///< Frames received (incl. shed).
  std::atomic<std::uint64_t> responses{0};  ///< Response frames enqueued.
  std::atomic<std::uint64_t> frames_executed{0};  ///< Reached a session.
  LatencyHistogram queue_latency;
  LatencyHistogram exec_latency;
  LatencyHistogram total_latency;
};

}  // namespace net
}  // namespace dpcube

#endif  // DPCUBE_NET_SERVER_STATS_H_
