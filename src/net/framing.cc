// Copyright 2026 The dpcube Authors.

#include "net/framing.h"

#include <algorithm>

namespace dpcube {
namespace net {

std::string EncodeFrame(std::string_view payload) {
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  std::string frame;
  frame.reserve(4 + payload.size());
  frame.push_back(static_cast<char>((n >> 24) & 0xff));
  frame.push_back(static_cast<char>((n >> 16) & 0xff));
  frame.push_back(static_cast<char>((n >> 8) & 0xff));
  frame.push_back(static_cast<char>(n & 0xff));
  frame.append(payload.data(), payload.size());
  return frame;
}

FrameDecoder::FrameDecoder(std::size_t max_payload)
    : max_payload_(std::min(max_payload, kMaxFramePayload)) {}

void FrameDecoder::Append(const char* data, std::size_t n) {
  if (poisoned_) return;  // Bytes after a bad length are meaningless.
  buffer_.append(data, n);
}

FrameDecoder::Next FrameDecoder::Pop(std::string* payload) {
  if (poisoned_) return Next::kError;
  // Compact lazily: drop consumed bytes once they dominate the buffer,
  // so a long pipelined burst costs amortised O(bytes), not O(bytes^2).
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  if (buffer_.size() - consumed_ < 4) return Next::kNeedMore;
  const unsigned char* head =
      reinterpret_cast<const unsigned char*>(buffer_.data()) + consumed_;
  const std::size_t length = (static_cast<std::size_t>(head[0]) << 24) |
                             (static_cast<std::size_t>(head[1]) << 16) |
                             (static_cast<std::size_t>(head[2]) << 8) |
                             static_cast<std::size_t>(head[3]);
  if (length > max_payload_) {
    poisoned_ = true;
    error_ = "frame payload of " + std::to_string(length) +
             " bytes exceeds the " + std::to_string(max_payload_) +
             "-byte cap";
    buffer_.clear();
    consumed_ = 0;
    return Next::kError;
  }
  if (buffer_.size() - consumed_ < 4 + length) return Next::kNeedMore;
  payload->assign(buffer_, consumed_ + 4, length);
  consumed_ += 4 + length;
  return Next::kFrame;
}

}  // namespace net
}  // namespace dpcube
