// Copyright 2026 The dpcube Authors.

#include "net/socket_listener.h"

#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <utility>
#include <vector>

#include "net/address.h"
#include "net/framing.h"
#include "service/marginal_cache.h"
#include "service/release_store.h"

namespace dpcube {
namespace net {

namespace {

// One snapshot line, shaped like every other protocol response. Takes
// its collaborators as shared_ptrs so the closure installed into
// sessions can outlive the listener (a pool task may answer STATS while
// the server is tearing down).
std::string FormatStats(
    const std::shared_ptr<AdmissionController>& admission,
    const std::shared_ptr<ServerStats>& stats,
    const std::shared_ptr<service::MarginalCache>& cache,
    const std::shared_ptr<service::ReleaseStore>& store) {
  const service::CacheStats cs = cache->stats();
  char line[512];
  std::snprintf(
      line, sizeof(line),
      "OK STATS conns=%d accepted=%llu rejected=%llu inflight=%d "
      "requests=%llu executed=%llu responses=%llu shed=%llu "
      "quota_denied=%llu releases=%zu cache_hits=%llu cache_misses=%llu "
      "queue_us_p50=%.0f queue_us_p99=%.0f exec_us_p50=%.0f "
      "exec_us_p99=%.0f total_us_p50=%.0f total_us_p99=%.0f",
      admission->active_connections(),
      static_cast<unsigned long long>(admission->accepted_total()),
      static_cast<unsigned long long>(admission->rejected_connections()),
      admission->queued_requests(),
      static_cast<unsigned long long>(
          stats->requests.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          stats->frames_executed.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          stats->responses.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(admission->shed_requests()),
      static_cast<unsigned long long>(admission->quota_denied()),
      store->size(), static_cast<unsigned long long>(cs.hits),
      static_cast<unsigned long long>(cs.misses),
      stats->queue_latency.QuantileMicros(0.5),
      stats->queue_latency.QuantileMicros(0.99),
      stats->exec_latency.QuantileMicros(0.5),
      stats->exec_latency.QuantileMicros(0.99),
      stats->total_latency.QuantileMicros(0.5),
      stats->total_latency.QuantileMicros(0.99));
  return line;
}

}  // namespace

SocketListener::SocketListener(ServerOptions options, ServeContext context)
    : options_(std::move(options)),
      context_(std::move(context)),
      admission_(std::make_shared<AdmissionController>(options_.admission)),
      stats_(std::make_shared<ServerStats>()) {}

SocketListener::~SocketListener() = default;

Status SocketListener::Start() {
  DPCUBE_RETURN_NOT_OK(
      ParseHostPort(options_.listen_address, &host_, &bound_port_));
  auto pipe = MakePipe();
  if (!pipe.ok()) return pipe.status();
  wake_pipe_ = std::make_shared<Pipe>(std::move(pipe).value());
  auto fd = ListenTcp(host_, bound_port_, /*backlog=*/128, &bound_port_);
  if (!fd.ok()) return fd.status();
  listen_fd_ = std::move(fd).value();
  return Status::OK();
}

std::string SocketListener::bound_address() const {
  return host_ + ":" + std::to_string(bound_port_);
}

std::string SocketListener::FormatStatsLine() const {
  return FormatStats(admission_, stats_, context_.cache, context_.store);
}

void SocketListener::Shutdown() {
  shutdown_requested_.store(true);
  if (wake_pipe_) WriteWakeByte(wake_pipe_->write_end.get());
}

void SocketListener::AcceptPending() {
  for (;;) {
    const int raw = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (raw < 0) {
      if (errno == EINTR) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Fd/memory exhaustion: the pending connection stays in the
        // backlog and the listener stays readable, so back off instead
        // of spinning on accept failures.
        accept_retry_after_ = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(100);
      }
      return;  // EAGAIN (drained) or a transient accept error.
    }
    UniqueFd fd(raw);
    if (!SetNonBlocking(fd.get()).ok()) continue;  // Closes via RAII.
    const int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    std::string busy_reason;
    if (!admission_->TryAdmitConnection(&busy_reason)) {
      // One structured goodbye, then close. The socket is fresh, so the
      // tiny frame fits the send buffer even non-blocking. FIN first and
      // drain whatever the client already pipelined: close() with unread
      // inbound bytes would turn into an RST that could destroy the
      // goodbye before the client reads it.
      const std::string frame = EncodeFrame("BUSY " + busy_reason + "\n");
      ::send(fd.get(), frame.data(), frame.size(), MSG_NOSIGNAL);
      ::shutdown(fd.get(), SHUT_WR);
      char discard[4096];
      while (::recv(fd.get(), discard, sizeof(discard), 0) > 0) {
      }
      continue;
    }

    auto wake_pipe = wake_pipe_;
    auto connection = std::make_shared<Connection>(
        std::move(fd), next_connection_id_++, context_, admission_, stats_,
        [wake_pipe] { WriteWakeByte(wake_pipe->write_end.get()); },
        options_.max_frame_payload);
    connection->session().SetServerStatsHandler(
        [admission = admission_, stats = stats_, cache = context_.cache,
         store = context_.store] {
          return FormatStats(admission, stats, cache, store);
        });
    if (admission_->config().max_queries_per_release > 0) {
      connection->session().SetQueryQuotaGate(
          [admission = admission_, store = context_.store](
              const std::string& release, std::string* denial) {
            // Only loaded releases are metered: a query for an unknown
            // name answers NotFound without charging quota, so hostile
            // made-up names can never grow the quota ledger.
            if (!store->Get(release).ok()) return true;
            return admission->TryChargeQuery(release, denial);
          });
    }
    connections_.emplace(connection->fd(), std::move(connection));
  }
}

Result<std::uint64_t> SocketListener::Serve() {
  if (!listen_fd_.valid()) {
    return Status::FailedPrecondition("Serve() before Start()");
  }
  using Clock = std::chrono::steady_clock;
  bool draining = false;
  Clock::time_point drain_deadline;

  for (;;) {
    std::vector<struct pollfd> fds;
    std::vector<Connection*> polled;  // Parallel to fds from index base.
    fds.push_back({wake_pipe_->read_end.get(), POLLIN, 0});
    // The external shutdown fd is level-triggered and deliberately never
    // drained, so it must leave the poll set once draining starts or
    // every poll() would return instantly and busy-spin the drain
    // window.
    const bool poll_shutdown_fd = options_.shutdown_fd >= 0 && !draining;
    if (poll_shutdown_fd) {
      fds.push_back({options_.shutdown_fd, POLLIN, 0});
    }
    const bool poll_listener =
        !draining && Clock::now() >= accept_retry_after_;
    const std::size_t listen_index = fds.size();
    if (poll_listener) fds.push_back({listen_fd_.get(), POLLIN, 0});
    const std::size_t conn_base = fds.size();
    for (auto& [fd, connection] : connections_) {
      const short events = connection->PollEvents();
      if (events == 0) continue;  // Blocked on a worker; wake pipe covers it.
      fds.push_back({fd, events, 0});
      polled.push_back(connection.get());
    }

    const int rc = ::poll(fds.data(), fds.size(), /*timeout_ms=*/100);
    if (rc < 0 && errno != EINTR) {
      return Status::Internal(std::string("poll: ") + ::strerror(errno));
    }

    if (fds[0].revents & POLLIN) {
      DrainWakeBytes(wake_pipe_->read_end.get());
    }
    bool shutdown_now = shutdown_requested_.load();
    if (poll_shutdown_fd && (fds[1].revents & POLLIN)) {
      shutdown_now = true;  // Level-triggered; deliberately not drained.
    }
    if (!draining && shutdown_now) {
      draining = true;
      drain_deadline = Clock::now() + std::chrono::milliseconds(
                                          options_.drain_timeout_ms);
      listen_fd_.reset();  // Stop accepting; refuse new peers at the OS.
      for (auto& [fd, connection] : connections_) connection->BeginDrain();
    }
    if (poll_listener && !draining &&
        (fds[listen_index].revents & POLLIN)) {
      AcceptPending();
    }

    if (rc > 0) {
      for (std::size_t i = conn_base; i < fds.size(); ++i) {
        Connection* connection = polled[i - conn_base];
        if (fds[i].revents & (POLLIN | POLLERR | POLLHUP)) {
          connection->OnReadable();
        }
        if (fds[i].revents & POLLOUT) connection->OnWritable();
      }
    }

    // Pump everything each cycle: worker completions arrive via the
    // wake pipe, not via socket readiness.
    for (auto it = connections_.begin(); it != connections_.end();) {
      it->second->Pump();
      if (it->second->Finished()) {
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }

    if (draining &&
        (connections_.empty() || Clock::now() >= drain_deadline)) {
      break;
    }
  }
  connections_.clear();
  return next_connection_id_ - 1;
}

}  // namespace net
}  // namespace dpcube
