// Copyright 2026 The dpcube Authors.

#include "net/socket_listener.h"

#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>
#include <vector>

#include "common/log.h"
#include "common/trace.h"
#include "common/trace_metrics.h"
#include "engine/metrics.h"
#include "net/address.h"
#include "net/framing.h"
#include "service/durable_state.h"
#include "service/marginal_cache.h"
#include "service/release_store.h"

namespace dpcube {
namespace net {

// serve_config.cc restates the frame-size ceiling as a local constant
// (the service layer must not include net/); this pins the two values
// together so they cannot drift.
static_assert(kMaxFramePayload == (std::size_t{1} << 24),
              "net::kMaxFramePayload moved; update the ceiling in "
              "service/serve_config.cc to match");

namespace {

// One snapshot line, shaped like every other protocol response. Takes
// its collaborators as shared_ptrs so the closure installed into
// sessions can outlive the listener (a pool task may answer STATS while
// the server is tearing down). `verbs` reads the SAME registry-owned
// counters /metrics exports, so the two views can never disagree.
std::string FormatStats(
    const std::shared_ptr<AdmissionController>& admission,
    const std::shared_ptr<ServerStats>& stats,
    const std::shared_ptr<service::MarginalCache>& cache,
    const std::shared_ptr<service::ReleaseStore>& store,
    const std::shared_ptr<const service::SessionMetrics>& verbs) {
  const service::CacheStats cs = cache->stats();
  const double lookups = static_cast<double>(cs.hits + cs.misses);
  char line[1024];
  int len = std::snprintf(
      line, sizeof(line),
      "OK STATS conns=%d accepted=%llu rejected=%llu inflight=%d "
      "requests=%llu executed=%llu responses=%llu shed=%llu "
      "quota_denied=%llu releases=%zu cache_hits=%llu cache_misses=%llu "
      "queue_us_p50=%.0f queue_us_p99=%.0f exec_us_p50=%.0f "
      "exec_us_p99=%.0f total_us_p50=%.0f total_us_p99=%.0f "
      "rate_denied=%llu cache_hit_rate=%.3f",
      admission->active_connections(),
      static_cast<unsigned long long>(admission->accepted_total()),
      static_cast<unsigned long long>(admission->rejected_connections()),
      admission->queued_requests(),
      static_cast<unsigned long long>(
          stats->requests.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          stats->frames_executed.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          stats->responses.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(admission->shed_requests()),
      static_cast<unsigned long long>(admission->quota_denied()),
      store->size(), static_cast<unsigned long long>(cs.hits),
      static_cast<unsigned long long>(cs.misses),
      stats->queue_latency.QuantileMicros(0.5),
      stats->queue_latency.QuantileMicros(0.99),
      stats->exec_latency.QuantileMicros(0.5),
      stats->exec_latency.QuantileMicros(0.99),
      stats->total_latency.QuantileMicros(0.5),
      stats->total_latency.QuantileMicros(0.99),
      static_cast<unsigned long long>(admission->rate_denied()),
      lookups > 0.0 ? static_cast<double>(cs.hits) / lookups : 0.0);
  if (verbs && len > 0 && static_cast<std::size_t>(len) < sizeof(line)) {
    using service::RequestKind;
    for (const RequestKind kind :
         {RequestKind::kLoad, RequestKind::kUnload, RequestKind::kList,
          RequestKind::kQuery, RequestKind::kBatch,
          RequestKind::kCacheStats}) {
      len += std::snprintf(
          line + len, sizeof(line) - static_cast<std::size_t>(len),
          " verb_%s=%llu", service::VerbName(kind),
          static_cast<unsigned long long>(
              verbs->request_count(kind)->value()));
      if (len <= 0 || static_cast<std::size_t>(len) >= sizeof(line)) break;
    }
  }
  return line;
}

/// Registers the five dpcube_release_build_seconds{phase=,release=}
/// gauges for one release. Each gauge reads the store at render time, so
/// an unloaded release reports 0 and a reloaded one its fresh timings
/// (Registry::RegisterGauge overwrites the callback on re-registration).
void RegisterReleaseBuildGauges(
    metrics::Registry* registry,
    const std::shared_ptr<service::ReleaseStore>& store,
    const std::string& name) {
  struct Phase {
    const char* label;
    double engine::PhaseTimings::*field;
  };
  const Phase phases[] = {
      {"construction", &engine::PhaseTimings::construction_seconds},
      {"budget", &engine::PhaseTimings::budget_seconds},
      {"measure", &engine::PhaseTimings::measure_seconds},
      {"consistency", &engine::PhaseTimings::consistency_seconds},
      {"total", &engine::PhaseTimings::total_seconds},
  };
  for (const Phase& phase : phases) {
    registry->RegisterGauge(
        "dpcube_release_build_seconds",
        std::string("phase=\"") + phase.label + "\",release=\"" +
            trace::EscapeLabelValue(name) + "\"",
        "Release build wall-clock by pipeline phase, from the release "
        "CSV's build metadata (or the load-time consistency fit when the "
        "CSV predates it).",
        [store, name, field = phase.field] {
          const auto release = store->Get(name);
          if (!release.ok()) return 0.0;
          return release.value()->build_timings().*field;
        });
  }
}

const char* OrDash(const std::string& value) {
  return value.empty() ? "-" : value.c_str();
}

/// One grep-able /tracez row per completed request.
std::string FormatTraceRow(const trace::RequestTrace& t) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "trace id=%llu conn=%llu verb=%s release=%s codec=%s outcome=%s "
      "bytes_in=%llu bytes_out=%llu total_us=%llu decode_us=%llu "
      "admit_us=%llu queue_us=%llu compute_us=%llu encode_us=%llu "
      "flush_us=%llu batch_n=%u batch_max_group_us=%llu slow=%d",
      static_cast<unsigned long long>(t.context.trace_id),
      static_cast<unsigned long long>(t.context.connection_id),
      OrDash(t.verb), OrDash(t.release), OrDash(t.codec), OrDash(t.outcome),
      static_cast<unsigned long long>(t.request_bytes),
      static_cast<unsigned long long>(t.response_bytes),
      static_cast<unsigned long long>(t.total_micros),
      static_cast<unsigned long long>(t.span(trace::Span::kDecode)),
      static_cast<unsigned long long>(t.span(trace::Span::kAdmit)),
      static_cast<unsigned long long>(t.span(trace::Span::kQueue)),
      static_cast<unsigned long long>(t.span(trace::Span::kCompute)),
      static_cast<unsigned long long>(t.span(trace::Span::kEncode)),
      static_cast<unsigned long long>(t.span(trace::Span::kFlush)),
      t.batch_queries,
      static_cast<unsigned long long>(t.batch_max_group_micros),
      t.slow ? 1 : 0);
  return buf;
}

/// The value of `key` in an (un-decoded) "a=b&c=d" query string.
std::string QueryParam(const std::string& query, const std::string& key) {
  std::size_t pos = 0;
  while (pos <= query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      return query.substr(eq + 1, amp - eq - 1);
    }
    if (amp >= query.size()) break;
    pos = amp + 1;
  }
  return "";
}

}  // namespace

int ResolveNetThreads(int net_threads) {
  int resolved = net_threads;
  if (resolved <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    resolved = static_cast<int>(hw < 1 ? 1 : (hw > 4 ? 4 : hw));
  }
  if (resolved > 64) resolved = 64;
  return resolved;
}

ServerOptions ServerOptionsFromConfig(const service::ServeConfig& config) {
  ServerOptions options;
  options.listen_address = config.listen_address;
  options.http_listen_address = config.http_listen_address;
  options.http_token = config.http_token;
  options.trace_ring_capacity = config.trace_ring_capacity;
  options.access_log_path = config.access_log_path;
  options.slow_query_ms = config.slow_query_ms;
  options.admission.max_connections = config.max_connections;
  options.admission.max_inflight = config.max_inflight;
  options.admission.max_queue_depth = config.max_queue_depth;
  options.admission.max_queries_per_release = config.query_quota;
  options.admission.query_rate_limit = config.query_rate_limit;
  options.admission.query_rate_window_seconds =
      config.query_rate_window_seconds;
  options.max_frame_payload = config.max_frame_payload;
  options.drain_timeout_ms = config.drain_timeout_ms;
  options.net_threads = config.net_threads;
  return options;
}

SocketListener::SocketListener(ServerOptions options, ServeContext context)
    : options_(std::move(options)),
      context_(std::move(context)),
      admission_(std::make_shared<AdmissionController>(options_.admission)),
      stats_(std::make_shared<ServerStats>()),
      registry_(std::make_shared<metrics::Registry>()),
      draining_flag_(std::make_shared<std::atomic<bool>>(false)),
      started_at_(std::chrono::steady_clock::now()),
      busy_linger_(std::make_shared<LingerSet>()) {
  const int pollers = ResolveNetThreads(options_.net_threads);
  pollers_.reserve(static_cast<std::size_t>(pollers));
  for (int i = 0; i < pollers; ++i) {
    pollers_.push_back(std::make_unique<Poller>(i));
  }
  // With a durable state machine attached, the admission controller's
  // quota ledger and denial counters start from the replayed state, so
  // STATS/metrics/quota enforcement all pick up exactly where the
  // previous process stopped.
  if (context_.durable) {
    for (const auto& row : context_.durable->QuotaLedger()) {
      admission_->RestoreQuota(row.first, row.second);
    }
    admission_->RestoreDenials(context_.durable->quota_denied(),
                               context_.durable->rate_denied());
  }
  RegisterServerMetrics();
  if (options_.trace_ring_capacity > 0) {
    trace_ring_ = std::make_shared<trace::TraceRing>(
        options_.trace_ring_capacity, options_.trace_slowest_capacity);
    context_.trace_ring = trace_ring_;
    // The deleter pins the registry: a connection (and its pool tasks)
    // can outlive the listener, and RecordSpans dereferences
    // registry-owned histograms.
    context_.trace_metrics = std::shared_ptr<const trace::ServingTraceMetrics>(
        new trace::ServingTraceMetrics(registry_.get()),
        [registry = registry_](const trace::ServingTraceMetrics* p) {
          delete p;
        });
    context_.slow_query_micros =
        options_.slow_query_ms > 0
            ? static_cast<std::uint64_t>(options_.slow_query_ms) * 1000
            : 0;
  }
  // Build-phase gauges for everything loaded before the server started;
  // the release-loaded hook covers runtime loads.
  for (const auto& info : context_.store->List()) {
    RegisterReleaseBuildGauges(registry_.get(), context_.store, info.name);
  }
}

SocketListener::~SocketListener() = default;

void SocketListener::RegisterServerMetrics() {
  auto table = service::SessionMetrics::Create(registry_.get());
  // The no-op deleter's captures pin the registry (and the table's own
  // control block) for as long as any session holds the pointer table.
  session_metrics_ = std::shared_ptr<const service::SessionMetrics>(
      table.get(),
      [registry = registry_, table](const service::SessionMetrics*) {});

  // Frame-level counters: the ServerStats atomics stay authoritative
  // (the connections bump them); the registry exports live views.
  auto stats = stats_;
  registry_->RegisterCallbackCounter(
      "dpcube_frames_received_total", "",
      "Protocol frames received, including shed ones.", [stats] {
        return static_cast<double>(
            stats->requests.load(std::memory_order_relaxed));
      });
  registry_->RegisterCallbackCounter(
      "dpcube_frames_executed_total", "",
      "Protocol frames that reached a session.", [stats] {
        return static_cast<double>(
            stats->frames_executed.load(std::memory_order_relaxed));
      });
  registry_->RegisterCallbackCounter(
      "dpcube_responses_total", "", "Response frames enqueued for write.",
      [stats] {
        return static_cast<double>(
            stats->responses.load(std::memory_order_relaxed));
      });
  // The per-phase histograms are owned by ServerStats; aliasing
  // shared_ptrs export them without copying a sample.
  registry_->RegisterExternalHistogram(
      "dpcube_frame_latency_microseconds", "phase=\"queue\"",
      "Frame latency by phase: queue (admission to worker), exec (on the "
      "worker), total (arrival to response enqueued).",
      std::shared_ptr<const LatencyHistogram>(stats_,
                                              &stats_->queue_latency));
  registry_->RegisterExternalHistogram(
      "dpcube_frame_latency_microseconds", "phase=\"exec\"", "",
      std::shared_ptr<const LatencyHistogram>(stats_,
                                              &stats_->exec_latency));
  registry_->RegisterExternalHistogram(
      "dpcube_frame_latency_microseconds", "phase=\"total\"", "",
      std::shared_ptr<const LatencyHistogram>(stats_,
                                              &stats_->total_latency));

  // Admission state and spill counters.
  auto admission = admission_;
  registry_->RegisterGauge(
      "dpcube_connections_active", "", "Currently admitted connections.",
      [admission] {
        return static_cast<double>(admission->active_connections());
      });
  registry_->RegisterCallbackCounter(
      "dpcube_connections_accepted_total", "",
      "Connections admitted over the server's lifetime.", [admission] {
        return static_cast<double>(admission->accepted_total());
      });
  registry_->RegisterCallbackCounter(
      "dpcube_connections_rejected_total", "",
      "Connections refused at the admission gate.", [admission] {
        return static_cast<double>(admission->rejected_connections());
      });
  registry_->RegisterCallbackCounter(
      "dpcube_requests_shed_total", "",
      "Requests shed by in-flight or queue-depth limits.", [admission] {
        return static_cast<double>(admission->shed_requests());
      });
  registry_->RegisterGauge(
      "dpcube_queue_depth", "",
      "Admitted-but-unanswered requests across all connections.",
      [admission] {
        return static_cast<double>(admission->queued_requests());
      });
  registry_->RegisterCallbackCounter(
      "dpcube_quota_denied_total", "kind=\"lifetime\"",
      "Query denials by quota kind: lifetime ledger vs sliding-window "
      "rate.",
      [admission] { return static_cast<double>(admission->quota_denied()); });
  registry_->RegisterCallbackCounter(
      "dpcube_quota_denied_total", "kind=\"rate\"", "",
      [admission] { return static_cast<double>(admission->rate_denied()); });

  // Cache and store state (the cache's own counters stay authoritative).
  auto cache = context_.cache;
  registry_->RegisterCallbackCounter(
      "dpcube_cache_hits_total", "", "Marginal-cache hits.",
      [cache] { return static_cast<double>(cache->stats().hits); });
  registry_->RegisterCallbackCounter(
      "dpcube_cache_misses_total", "", "Marginal-cache misses.",
      [cache] { return static_cast<double>(cache->stats().misses); });
  registry_->RegisterCallbackCounter(
      "dpcube_cache_evictions_total", "", "Marginal-cache evictions.",
      [cache] { return static_cast<double>(cache->stats().evictions); });
  registry_->RegisterGauge(
      "dpcube_cache_entries", "", "Marginals currently cached.",
      [cache] { return static_cast<double>(cache->stats().entries); });
  registry_->RegisterGauge(
      "dpcube_cache_resident_cells", "",
      "Cells resident in the marginal cache.",
      [cache] { return static_cast<double>(cache->stats().cells); });
  auto store = context_.store;
  registry_->RegisterGauge(
      "dpcube_releases_loaded", "", "Releases currently loaded.",
      [store] { return static_cast<double>(store->size()); });

  // Compute-pool state. The pool outlives the listener (the CLI owns
  // the process-wide pool), so a raw pointer capture is safe here.
  if (ThreadPool* pool = context_.pool) {
    registry_->RegisterGauge(
        "dpcube_pool_queue_depth", "",
        "Tasks queued in the compute pool, not yet claimed by a worker.",
        [pool] { return static_cast<double>(pool->queue_depth()); });
    registry_->RegisterGauge(
        "dpcube_pool_busy_workers", "",
        "Pool workers currently inside a task.",
        [pool] { return static_cast<double>(pool->busy_workers()); });
    registry_->RegisterGauge(
        "dpcube_pool_threads", "",
        "Total compute threads (workers plus the caller slot).",
        [pool] { return static_cast<double>(pool->parallelism()); });
  }

  // Per-poller connection gauges. The counting atomics are shared with
  // the pollers, so a registry outliving the listener (sessions pin it)
  // still reads from live memory.
  registry_->RegisterGauge(
      "dpcube_net_pollers", "", "Event-loop poller threads serving "
      "protocol connections (--net-threads).",
      [n = pollers_.size()] { return static_cast<double>(n); });
  for (const auto& poller : pollers_) {
    const std::string label =
        "poller=\"" + std::to_string(poller->id()) + "\"";
    registry_->RegisterGauge(
        "dpcube_poller_connections", label,
        poller->id() == 0
            ? "Connections currently pinned to each poller thread."
            : "",
        [count = poller->connection_gauge()] {
          return static_cast<double>(
              count->load(std::memory_order_relaxed));
        });
    registry_->RegisterCallbackCounter(
        "dpcube_poller_connections_adopted_total", label,
        poller->id() == 0
            ? "Connections ever handed to each poller (round-robin)."
            : "",
        [total = poller->adopted_counter()] {
          return static_cast<double>(
              total->load(std::memory_order_relaxed));
        });
  }

  // The dpcube_wal_* families. The durable state outlives the registry
  // (the CLI holds it past the listener's destruction), so the raw
  // `this` captures inside RegisterMetrics stay valid.
  if (context_.durable) {
    context_.durable->RegisterMetrics(registry_.get());
  }

  resource_tracker_ = metrics::RegisterResourceTracker(registry_.get());
}

void SocketListener::InstallHttpRoutes() {
  auto registry = registry_;
  auto http_hits = [registry](const char* path) {
    return registry->GetCounter("dpcube_http_requests_total",
                                std::string("path=\"") + path + "\"",
                                "HTTP observability requests, by path.");
  };
  metrics::Counter* metrics_hits = http_hits("/metrics");
  metrics::Counter* healthz_hits = http_hits("/healthz");
  metrics::Counter* statusz_hits = http_hits("/statusz");
  metrics::Counter* tracez_hits = http_hits("/tracez");

  // Everything except the health probe sits behind the bearer token
  // when one is configured (an empty token leaves every route open).
  http_->set_bearer_token(options_.http_token);

  http_->AddRoute("/metrics",
                  [registry, metrics_hits](const HttpRequest&) {
                    metrics_hits->Increment();
                    HttpResponse response;
                    // The exposition-format content type Prometheus
                    // scrapers expect.
                    response.content_type =
                        "text/plain; version=0.0.4; charset=utf-8";
                    response.body = registry->RenderPrometheus();
                    return response;
                  },
                  /*requires_auth=*/true);

  auto ring = trace_ring_;
  http_->AddRoute(
      "/tracez",
      [ring, tracez_hits](const HttpRequest& request) {
        tracez_hits->Increment();
        HttpResponse response;
        if (!ring) {
          response.body = "tracing disabled (trace ring capacity 0)\n";
          return response;
        }
        // ?verb=query&release=census filter both views (exact match).
        const std::string verb = QueryParam(request.query, "verb");
        const std::string release = QueryParam(request.query, "release");
        const auto matches = [&verb, &release](const trace::RequestTrace& t) {
          if (!verb.empty() && t.verb != verb) return false;
          if (!release.empty() && t.release != release) return false;
          return true;
        };
        std::string body = "dpcube request traces\n";
        char line[160];
        std::snprintf(line, sizeof(line),
                      "ring: capacity=%zu slowest_capacity=%zu "
                      "recorded_total=%llu\n",
                      ring->capacity(), ring->slowest_capacity(),
                      static_cast<unsigned long long>(ring->recorded_total()));
        body += line;
        body +=
            "spans: decode -> admit -> queue -> compute -> encode -> "
            "flush (microseconds)\n";
        body += "\nslowest:\n";
        for (const auto& t : ring->Slowest()) {
          if (matches(t)) body += FormatTraceRow(t) + "\n";
        }
        body += "\nrecent:\n";
        for (const auto& t : ring->Recent(64)) {
          if (matches(t)) body += FormatTraceRow(t) + "\n";
        }
        response.body = std::move(body);
        return response;
      },
      /*requires_auth=*/true);

  auto draining = draining_flag_;
  auto admission = admission_;
  http_->AddRoute(
      "/healthz",
      [draining, admission, healthz_hits](const HttpRequest&) {
        healthz_hits->Increment();
        HttpResponse response;
        if (draining->load(std::memory_order_relaxed)) {
          response.status = 503;
          response.body = "draining\n";
        } else if (admission->queued_requests() >=
                   admission->config().max_queue_depth) {
          response.status = 503;
          response.body = "overloaded\n";
        } else {
          response.body = "ok\n";
        }
        return response;
      });

  auto store = context_.store;
  auto durable = context_.durable;
  const auto started = started_at_;
  const std::string protocol_address = bound_address();
  http_->AddRoute(
      "/statusz",
      [store, admission, durable, started, protocol_address,
       statusz_hits](const HttpRequest&) {
        statusz_hits->Increment();
        std::string body = "dpcube serve\n";
        body += "compiler: " __VERSION__ "\n";
        body += "protocol: " + protocol_address + "\n";
        const double uptime =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          started)
                .count();
        char buf[64];
        std::snprintf(buf, sizeof(buf), "uptime_seconds: %.1f\n", uptime);
        body += buf;
        body += "releases:\n";
        for (const auto& info : store->List()) {
          std::snprintf(buf, sizeof(buf), " d=%d cells=%llu\n", info.d,
                        static_cast<unsigned long long>(info.total_cells));
          body += "  " + info.name + buf;
        }
        body += "quota_ledger:\n";
        for (const auto& row : admission->QuotaLedger()) {
          std::snprintf(buf, sizeof(buf), " lifetime=%llu window=%llu\n",
                        static_cast<unsigned long long>(row.lifetime_used),
                        static_cast<unsigned long long>(row.window_used));
          body += "  " + row.release + buf;
        }
        // The durable "durability:" + "recovery:" blocks come LAST so a
        // crash-recovery check can byte-diff everything up to the
        // volatile "recovery:" delimiter.
        if (durable) body += durable->FormatStatusz();
        return HttpResponse{200, "text/plain; charset=utf-8",
                            std::move(body)};
      },
      /*requires_auth=*/true);
}

Status SocketListener::Start() {
  DPCUBE_RETURN_NOT_OK(
      ParseHostPort(options_.listen_address, &host_, &bound_port_));
  auto pipe = MakePipe();
  if (!pipe.ok()) return pipe.status();
  wake_pipe_ = std::make_shared<Pipe>(std::move(pipe).value());
  auto fd = ListenTcp(host_, bound_port_, /*backlog=*/128, &bound_port_);
  if (!fd.ok()) return fd.status();
  listen_fd_ = std::move(fd).value();
  if (!options_.access_log_path.empty()) {
    auto logger = logging::Logger::Open(options_.access_log_path,
                                        logging::Logger::Format::kJson);
    if (!logger.ok()) return logger.status();
    context_.access_log = std::move(logger).value();
  }
  if (!options_.http_listen_address.empty()) {
    http_ = std::make_unique<HttpEndpoint>(options_.http_listen_address);
    DPCUBE_RETURN_NOT_OK(http_->Start());
    InstallHttpRoutes();  // After both binds so /statusz knows the port.
  }
  return Status::OK();
}

std::string SocketListener::bound_address() const {
  return host_ + ":" + std::to_string(bound_port_);
}

std::string SocketListener::http_bound_address() const {
  return http_ ? http_->bound_address() : std::string();
}

std::string SocketListener::FormatStatsLine() const {
  return FormatStats(admission_, stats_, context_.cache, context_.store,
                     session_metrics_);
}

void SocketListener::Shutdown() {
  shutdown_requested_.store(true);
  if (wake_pipe_) WriteWakeByte(wake_pipe_->write_end.get());
}

void SocketListener::AcceptPending() {
  for (;;) {
    const int raw = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (raw < 0) {
      if (errno == EINTR) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Fd/memory exhaustion: the pending connection stays in the
        // backlog and the listener stays readable, so back off instead
        // of spinning on accept failures.
        accept_retry_after_ = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(100);
      }
      return;  // EAGAIN (drained) or a transient accept error.
    }
    UniqueFd fd(raw);
    if (!SetNonBlocking(fd.get()).ok()) continue;  // Closes via RAII.
    const int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    std::string busy_reason;
    if (!admission_->TryAdmitConnection(&busy_reason)) {
      // One structured goodbye, then a lingering close. The socket is
      // fresh, so the tiny frame always fits the empty send buffer even
      // non-blocking (a failed send still linger-closes; there is
      // nothing more to say to a peer we cannot write). The linger set
      // holds the FIN-before-close contract a pipelining client needs:
      // close() with unread inbound bytes would turn into an RST that
      // could destroy the goodbye before the client reads it.
      const std::string frame = EncodeFrame("BUSY " + busy_reason + "\n");
      (void)::send(fd.get(), frame.data(), frame.size(), MSG_NOSIGNAL);
      busy_linger_->Add(std::move(fd));
      continue;
    }

    // Pin the connection to the next poller round-robin: its wake pipe
    // carries worker completions, its linger set the eventual close.
    Poller& poller = *pollers_[next_poller_++ % pollers_.size()];
    auto connection = std::make_shared<Connection>(
        std::move(fd), next_connection_id_++, context_, admission_, stats_,
        poller.MakeWakeup(), options_.max_frame_payload, poller.linger());
    connection->session().SetServerStatsHandler(
        [admission = admission_, stats = stats_, cache = context_.cache,
         store = context_.store, verbs = session_metrics_] {
          return FormatStats(admission, stats, cache, store, verbs);
        });
    connection->session().SetMetrics(session_metrics_);
    // Runtime `load` requests register their release's build-phase
    // gauges too. Captures shared_ptrs only: the hook runs on pool
    // workers and may fire after the listener is gone.
    connection->session().SetReleaseLoadedHook(
        [registry = registry_, store = context_.store](
            const std::string& name) {
          RegisterReleaseBuildGauges(registry.get(), store, name);
        });
    // With --state-dir, the mutating verbs (load/unload) route through
    // the durable state machine: changelog-appended and fsync'd before
    // they take effect. Captures shared_ptrs only (pool workers may run
    // the handler after the listener is gone).
    if (context_.durable) {
      connection->session().SetMutationHandler(
          [durable = context_.durable](const service::Mutation& mutation) {
            return durable->Apply(mutation);
          });
    }
    if (admission_->config().max_queries_per_release > 0 ||
        admission_->config().query_rate_limit > 0) {
      connection->session().SetQueryQuotaGate(
          [admission = admission_, store = context_.store,
           durable = context_.durable](const std::string& release,
                                       std::string* denial) {
            // Only loaded releases are metered: a query for an unknown
            // name answers NotFound without charging quota, so hostile
            // made-up names can never grow the quota ledger.
            if (!store->Get(release).ok()) return true;
            using QuotaDecision = AdmissionController::QuotaDecision;
            const QuotaDecision decision =
                admission->ChargeQuery(release, denial);
            if (durable) {
              // Charges AND denials are logged: quota_used and the
              // denial counters both survive kill -9. If the append or
              // fsync fails, a charge must fail the query — answering
              // from a ledger that cannot persist would let a crash
              // refund spent privacy budget.
              const Status logged = durable->Apply(
                  service::Mutation::QuotaCharge(
                      release,
                      decision == QuotaDecision::kCharged ? 1 : 0,
                      decision == QuotaDecision::kDeniedLifetime ? 1 : 0,
                      decision == QuotaDecision::kDeniedRate ? 1 : 0));
              if (!logged.ok() && decision == QuotaDecision::kCharged) {
                *denial =
                    "durable quota ledger append failed: " +
                    logged.ToString();
                return false;
              }
            }
            return decision == QuotaDecision::kCharged;
          });
    }
    poller.Adopt(std::move(connection));
  }
}

Result<std::uint64_t> SocketListener::Serve() {
  if (!listen_fd_.valid()) {
    return Status::FailedPrecondition("Serve() before Start()");
  }
  using Clock = std::chrono::steady_clock;

  // Spawn the poller fleet. HTTP rides poller 0's loop (and stays
  // polled through drain, so probes observe the 503 rather than a
  // refused connection).
  if (http_) pollers_[0]->AttachHttp(http_.get());
  for (auto& poller : pollers_) {
    const Status started = poller->Start();
    if (!started.ok()) {
      // Unwind whatever did start so no thread outlives Serve().
      const auto now = Clock::now();
      for (auto& p : pollers_) {
        p->BeginDrain(now);
        p->RequestStop();
        p->Join();
      }
      return started;
    }
  }

  // The accept loop: the listen fd, the shutdown plumbing, and the
  // lingering closes of refused (BUSY) peers. Everything admitted lives
  // on a poller.
  Status failure = Status::OK();
  bool draining = false;
  Clock::time_point drain_deadline;
  for (;;) {
    std::vector<struct pollfd> fds;
    fds.push_back({wake_pipe_->read_end.get(), POLLIN, 0});
    // The external shutdown fd is level-triggered and deliberately never
    // drained, so a second readable edge must end the loop, not spin it.
    const bool poll_shutdown_fd = options_.shutdown_fd >= 0;
    if (poll_shutdown_fd) {
      fds.push_back({options_.shutdown_fd, POLLIN, 0});
    }
    const bool poll_listener = Clock::now() >= accept_retry_after_;
    const std::size_t listen_index = fds.size();
    if (poll_listener) fds.push_back({listen_fd_.get(), POLLIN, 0});
    busy_linger_->AppendPollFds(&fds);

    const int rc = ::poll(fds.data(), fds.size(), /*timeout_ms=*/100);
    if (rc < 0 && errno != EINTR) {
      failure =
          Status::Internal(std::string("poll: ") + ::strerror(errno));
      break;
    }

    if (fds[0].revents & POLLIN) {
      DrainWakeBytes(wake_pipe_->read_end.get());
    }
    bool shutdown_now = shutdown_requested_.load();
    if (poll_shutdown_fd && (fds[1].revents & POLLIN)) {
      shutdown_now = true;  // Level-triggered; deliberately not drained.
    }
    if (shutdown_now) {
      draining = true;
      draining_flag_->store(true, std::memory_order_relaxed);
      drain_deadline = Clock::now() + std::chrono::milliseconds(
                                          options_.drain_timeout_ms);
      listen_fd_.reset();  // Stop accepting; refuse new peers at the OS.
      for (auto& poller : pollers_) poller->BeginDrain(drain_deadline);
      break;
    }
    if (poll_listener && (fds[listen_index].revents & POLLIN)) {
      AcceptPending();
    }
    if (rc > 0) busy_linger_->DispatchEvents(fds);
    busy_linger_->PumpTimeouts();
  }

  if (!failure.ok() && !draining) {
    // The accept loop died: drain the fleet with an immediate deadline
    // so no poller thread outlives the error return.
    draining_flag_->store(true, std::memory_order_relaxed);
    const auto now = Clock::now();
    for (auto& poller : pollers_) poller->BeginDrain(now);
  }

  // Shared drain barrier: every plain poller exits once its connections
  // are answered, flushed, and linger-closed (or the deadline passes);
  // the HTTP-carrying poller is released last so probes stay answered
  // through the whole drain window.
  for (auto& poller : pollers_) {
    if (http_ && poller->id() == 0) continue;
    poller->Join();
  }
  pollers_[0]->RequestStop();
  pollers_[0]->Join();
  busy_linger_->DrainBlocking();
  if (!failure.ok()) return failure;
  return next_connection_id_ - 1;
}

}  // namespace net
}  // namespace dpcube
