// Copyright 2026 The dpcube Authors.

#include "net/address.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

namespace dpcube {
namespace net {

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::Internal(what + ": " + ::strerror(errno));
}

Result<struct sockaddr_in> ResolveV4(const std::string& host,
                                     std::uint16_t port) {
  struct sockaddr_in addr;
  ::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 host '" + host +
                                   "' (want a dotted quad or localhost)");
  }
  return addr;
}

}  // namespace

Status ParseHostPort(const std::string& address, std::string* host,
                     std::uint16_t* port) {
  const auto colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == address.size()) {
    return Status::InvalidArgument("address '" + address +
                                   "' is not HOST:PORT");
  }
  const std::string port_text = address.substr(colon + 1);
  unsigned long parsed = 0;
  std::size_t pos = 0;
  try {
    parsed = std::stoul(port_text, &pos, 10);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != port_text.size() || parsed > 65535) {
    return Status::InvalidArgument("bad port '" + port_text + "' in '" +
                                   address + "'");
  }
  *host = address.substr(0, colon);
  *port = static_cast<std::uint16_t>(parsed);
  return Status::OK();
}

Result<UniqueFd> ListenTcp(const std::string& host, std::uint16_t port,
                           int backlog, std::uint16_t* bound_port) {
  auto addr = ResolveV4(host, port);
  if (!addr.ok()) return addr.status();
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoStatus("socket");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<struct sockaddr*>(&addr.value()),
             sizeof(addr.value())) != 0) {
    return ErrnoStatus("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), backlog) != 0) return ErrnoStatus("listen");
  if (bound_port != nullptr) {
    struct sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<struct sockaddr*>(&bound),
                      &len) != 0) {
      return ErrnoStatus("getsockname");
    }
    *bound_port = ntohs(bound.sin_port);
  }
  DPCUBE_RETURN_NOT_OK(SetNonBlocking(fd.get()));
  return fd;
}

Result<UniqueFd> ConnectTcp(const std::string& host, std::uint16_t port) {
  auto addr = ResolveV4(host, port);
  if (!addr.ok()) return addr.status();
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoStatus("socket");
  // Request/response framing means Nagle would add 40ms stalls to every
  // pipelined burst; the frames are already maximally coalesced.
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (::connect(fd.get(), reinterpret_cast<struct sockaddr*>(&addr.value()),
                sizeof(addr.value())) == 0) {
    return fd;
  }
  if (errno != EINTR) {
    return ErrnoStatus("connect " + host + ":" + std::to_string(port));
  }
  // POSIX: an EINTR'd connect keeps establishing asynchronously, and
  // calling connect() again would just fail with EALREADY. Wait for
  // writability and read the real outcome from SO_ERROR.
  struct pollfd pfd = {fd.get(), POLLOUT, 0};
  while (::poll(&pfd, 1, /*timeout_ms=*/-1) < 0) {
    if (errno != EINTR) return ErrnoStatus("poll(connect)");
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
    return ErrnoStatus("getsockopt(SO_ERROR)");
  }
  if (err != 0) {
    errno = err;
    return ErrnoStatus("connect " + host + ":" + std::to_string(port));
  }
  return fd;
}

}  // namespace net
}  // namespace dpcube
