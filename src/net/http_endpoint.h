// Copyright 2026 The dpcube Authors.
//
// A deliberately minimal HTTP/1.0 observability endpoint — just enough
// protocol for `curl`, a Prometheus scraper, or a load balancer's
// health probe, and nothing more. GET only, exact-path routes,
// Connection: close on every response; no keep-alive, chunking, TLS, or
// content negotiation.
//
// It owns no thread: SocketListener splices the endpoint's fds into its
// existing poll set each cycle (AppendPollFds / DispatchEvents /
// PumpTimeouts), so HTTP is served by the network thread between
// protocol frames and NEVER touches the compute pool — a scrape can
// observe an overloaded server precisely because it does not queue
// behind the overload. Handlers therefore must be cheap and
// non-blocking (render a string, read atomics).
//
// Hostility budget: at most kMaxConnections sockets, kMaxRequestBytes
// of buffered request, and kRequestTimeout of wall time per connection;
// a peer exceeding any of these is answered (where possible) and
// closed, without ever stalling the poll loop.

#ifndef DPCUBE_NET_HTTP_ENDPOINT_H_
#define DPCUBE_NET_HTTP_ENDPOINT_H_

#include <poll.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/fd.h"
#include "common/status.h"
#include "net/linger.h"

namespace dpcube {
namespace net {

struct HttpRequest {
  std::string method;  ///< Uppercase as sent ("GET").
  std::string path;    ///< Absolute path with any "?query" stripped.
  std::string query;   ///< The raw "?query" remainder, without the "?".
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class HttpEndpoint {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  static constexpr int kMaxConnections = 32;
  static constexpr std::size_t kMaxRequestBytes = 8192;
  static constexpr std::chrono::milliseconds kRequestTimeout{5000};

  /// `listen_address` is "host:port" (port 0 = ephemeral).
  explicit HttpEndpoint(std::string listen_address);
  ~HttpEndpoint();

  HttpEndpoint(const HttpEndpoint&) = delete;
  HttpEndpoint& operator=(const HttpEndpoint&) = delete;

  /// Registers `handler` for exact path `path` ("/metrics"). Handlers
  /// run on the polling thread; register everything before Start().
  /// With `requires_auth` and a bearer token configured, requests must
  /// carry "Authorization: Bearer <token>" or are answered 401 without
  /// reaching the handler (no token configured = route stays open).
  void AddRoute(const std::string& path, Handler handler,
                bool requires_auth = false);

  /// Sets the bearer token that guards requires_auth routes. Empty
  /// (the default) disables the check. Call before Start().
  void set_bearer_token(std::string token) {
    bearer_token_ = std::move(token);
  }

  /// Binds and listens. After OK, bound_port() is the real port.
  Status Start();

  std::uint16_t bound_port() const { return bound_port_; }
  std::string bound_address() const;

  // --- Poll-loop splice (single-threaded with the caller's loop) ---

  /// Appends the listen fd and every live connection's fd (with the
  /// events each currently needs) to `fds`, remembering the range so
  /// DispatchEvents can find its entries after poll() returns.
  void AppendPollFds(std::vector<struct pollfd>* fds);

  /// Consumes the readiness poll() reported for the fds appended by the
  /// matching AppendPollFds call: accepts, reads, routes, writes, and
  /// closes as far as each socket allows without blocking.
  void DispatchEvents(const std::vector<struct pollfd>& fds);

  /// Closes connections that outlived kRequestTimeout. Call once per
  /// loop cycle; the caller's poll timeout bounds the enforcement lag.
  void PumpTimeouts();

  /// Live connection count (tests).
  std::size_t connection_count() const { return connections_.size(); }
  /// Fds in lingering close, FIN sent and waiting for the peer's
  /// (tests).
  std::size_t lingering_count() const { return linger_.size(); }

  /// Forces the accept-backoff window (tests exercise the EMFILE path
  /// without exhausting real fds).
  void set_accept_retry_after_for_tests(
      std::chrono::steady_clock::time_point instant) {
    accept_retry_after_ = instant;
  }

 private:
  struct Conn {
    UniqueFd fd;
    std::string in;        ///< Bytes read so far (until CRLFCRLF).
    std::string out;       ///< Encoded response being flushed.
    std::size_t written = 0;
    bool responding = false;  ///< Response built; now write-and-close.
    std::chrono::steady_clock::time_point deadline;
  };

  void AcceptPending();
  /// Reads what is available; on a complete (or hopeless) request,
  /// builds the response and flips the connection to writing.
  void OnReadable(Conn* conn);
  void OnWritable(Conn* conn);
  /// Parses `conn->in` and routes it; any parse failure becomes 400/404/
  /// 405 — every syntactically complete request gets SOME response.
  HttpResponse RouteRequest(const Conn& conn) const;
  void BeginResponse(Conn* conn, const HttpResponse& response);

  struct Route {
    Handler handler;
    bool requires_auth = false;
  };

  const std::string listen_address_;
  std::string host_;
  std::uint16_t bound_port_ = 0;
  UniqueFd listen_fd_;
  std::map<std::string, Route> routes_;
  std::string bearer_token_;
  std::map<int, std::unique_ptr<Conn>> connections_;  ///< By fd.
  /// Fully-responded sockets waiting out their FIN-before-close grace
  /// (see linger.h); spliced into the same poll cycle.
  LingerSet linger_;
  // Range of `fds` this endpoint appended in the current cycle.
  std::size_t poll_base_ = 0;
  std::size_t poll_count_ = 0;
  bool listener_polled_ = false;
  /// After accept() fails on fd/memory exhaustion, the listen fd is
  /// left out of the poll set until this instant — the same 100ms
  /// backoff the protocol listener applies, because a level-triggered
  /// readable listener we cannot accept from would busy-spin the loop.
  std::chrono::steady_clock::time_point accept_retry_after_{};
};

}  // namespace net
}  // namespace dpcube

#endif  // DPCUBE_NET_HTTP_ENDPOINT_H_
