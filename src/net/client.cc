// Copyright 2026 The dpcube Authors.

#include "net/client.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <sstream>
#include <utility>

#include "net/address.h"

namespace dpcube {
namespace net {

Result<Client> Client::Connect(const std::string& address) {
  std::string host;
  std::uint16_t port = 0;
  DPCUBE_RETURN_NOT_OK(ParseHostPort(address, &host, &port));
  auto fd = ConnectTcp(host, port);
  if (!fd.ok()) return fd.status();
  return Client(std::move(fd).value());
}

Status Client::Send(const std::string& request) {
  const std::string frame = EncodeFrame(request);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd_.get(), frame.data() + sent,
                             frame.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("send: ") + ::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

Status Client::Receive(std::string* payload) {
  for (;;) {
    switch (decoder_.Pop(payload)) {
      case FrameDecoder::Next::kFrame:
        return Status::OK();
      case FrameDecoder::Next::kError:
        return Status::Internal("response stream: " + decoder_.error());
      case FrameDecoder::Next::kNeedMore:
        break;
    }
    char buf[64 * 1024];
    const ssize_t n = ::recv(fd_.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      decoder_.Append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      return Status::NotFound(
          "connection closed by server before a response frame");
    }
    if (errno == EINTR) continue;
    return Status::Internal(std::string("recv: ") + ::strerror(errno));
  }
}

Status Client::Call(const std::string& request, std::string* payload) {
  DPCUBE_RETURN_NOT_OK(Send(request));
  return Receive(payload);
}

Result<std::vector<std::string>> Client::CallLines(
    const std::string& request) {
  std::string payload;
  DPCUBE_RETURN_NOT_OK(Call(request, &payload));
  return SplitResponseLines(payload);
}

Status Client::Negotiate(int version, service::Codec codec) {
  DPCUBE_RETURN_NOT_OK(
      Send("HELLO v" + std::to_string(version) + " " +
           service::CodecName(codec)));
  // The ack is encoded in the codec in effect before the switch, so
  // decode it with the current setting.
  auto ack = ReceiveRecords();
  if (!ack.ok()) return ack.status();
  if (ack.value().size() != 1) {
    return Status::Internal("HELLO expected one ack record, got " +
                            std::to_string(ack.value().size()));
  }
  const service::WireRecord& record = ack.value().front();
  if (record.code != service::ErrorCode::kOk) {
    return Status::InvalidArgument("HELLO refused: " + record.message);
  }
  codec_ = codec;
  return Status::OK();
}

Result<std::vector<service::WireRecord>> Client::ReceiveRecords() {
  std::string payload;
  DPCUBE_RETURN_NOT_OK(Receive(&payload));
  if (codec_ == service::Codec::kBinary) {
    return service::DecodeRecordStream(payload);
  }
  return WrapTextLines(SplitResponseLines(payload));
}

Result<std::vector<service::WireRecord>> Client::CallRecords(
    const std::string& request) {
  DPCUBE_RETURN_NOT_OK(Send(request));
  return ReceiveRecords();
}

std::vector<service::WireRecord> WrapTextLines(
    const std::vector<std::string>& lines) {
  std::vector<service::WireRecord> records;
  records.reserve(lines.size());
  for (const std::string& line : lines) {
    service::WireRecord record;
    if (line.rfind("ERR ", 0) == 0) {
      record.code = service::ErrorCode::kInternal;
      record.message = line.substr(4);
    } else if (line.rfind("BUSY ", 0) == 0) {
      record.code = service::ErrorCode::kBusy;
      record.message = line.substr(5);
    } else {
      record.code = service::ErrorCode::kOk;
      record.message = line;
    }
    records.push_back(std::move(record));
  }
  return records;
}

std::vector<std::string> SplitResponseLines(const std::string& payload) {
  std::vector<std::string> lines;
  std::istringstream in(payload);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

}  // namespace net
}  // namespace dpcube
