// Copyright 2026 The dpcube Authors.

#include "net/linger.h"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace dpcube {
namespace net {

bool LingerSet::DrainToEof(int fd) {
  char discard[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, discard, sizeof(discard), 0);
    if (n > 0) continue;
    if (n == 0) return true;  // Peer FIN: receive buffer is empty now.
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
    return true;  // Real error; nothing left to protect.
  }
}

void LingerSet::Add(UniqueFd fd) {
  if (!fd.valid()) return;
  ::shutdown(fd.get(), SHUT_WR);  // FIN rides behind the flushed bytes.
  if (DrainToEof(fd.get())) return;  // Peer already FIN'd: close via RAII.
  const auto deadline = std::chrono::steady_clock::now() + timeout_;
  sync::MutexLock lock(&mu_);
  const int key = fd.get();
  entries_[key] = Entry{std::move(fd), deadline};
}

void LingerSet::AppendPollFds(std::vector<struct pollfd>* fds) {
  sync::MutexLock lock(&mu_);
  poll_base_ = fds->size();
  for (const auto& [fd, entry] : entries_) {
    fds->push_back({fd, POLLIN, 0});
  }
  poll_count_ = fds->size() - poll_base_;
}

void LingerSet::DispatchEvents(const std::vector<struct pollfd>& fds) {
  sync::MutexLock lock(&mu_);
  const std::size_t end = poll_base_ + poll_count_;
  for (std::size_t i = poll_base_; i < end && i < fds.size(); ++i) {
    if (!(fds[i].revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL))) {
      continue;
    }
    const auto it = entries_.find(fds[i].fd);
    if (it == entries_.end()) continue;  // Added after the append; skip.
    if (DrainToEof(it->second.fd.get())) entries_.erase(it);
  }
}

void LingerSet::PumpTimeouts() {
  const auto now = std::chrono::steady_clock::now();
  sync::MutexLock lock(&mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (now >= it->second.deadline) {
      // The peer never FIN'd inside the window: close anyway (a
      // possible RST, but bounded — the linger is a grace period, not
      // a hostage situation).
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void LingerSet::DrainBlocking() {
  for (;;) {
    std::vector<struct pollfd> fds;
    AppendPollFds(&fds);
    if (fds.empty()) return;
    // Short slices keep the deadline enforcement responsive even if
    // the peer trickles bytes without ever closing.
    const int rc = ::poll(fds.data(), fds.size(), /*timeout_ms=*/50);
    if (rc < 0 && errno != EINTR) return;
    if (rc > 0) DispatchEvents(fds);
    PumpTimeouts();
  }
}

std::size_t LingerSet::size() const {
  sync::MutexLock lock(&mu_);
  return entries_.size();
}

}  // namespace net
}  // namespace dpcube
