// Copyright 2026 The dpcube Authors.

#include "net/connection.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <sstream>
#include <utility>

namespace dpcube {
namespace net {

namespace {

// A client that stops reading while pipelining can grow the write buffer
// without bound; past this, the connection is dropped (standard
// slow-consumer protection).
constexpr std::size_t kMaxWriteBufferBytes = std::size_t{16} << 20;

double SecondsSince(std::chrono::steady_clock::time_point start,
                    std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

std::uint64_t MicrosSince(std::chrono::steady_clock::time_point start,
                          std::chrono::steady_clock::time_point end) {
  if (end <= start) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(end - start)
          .count());
}

}  // namespace

Connection::Connection(UniqueFd fd, std::uint64_t id,
                       const ServeContext& context,
                       std::shared_ptr<AdmissionController> admission,
                       std::shared_ptr<ServerStats> stats,
                       std::function<void()> wakeup,
                       std::size_t max_frame_payload,
                       std::shared_ptr<LingerSet> linger)
    : id_(id),
      fd_(std::move(fd)),
      context_(context),
      admission_(std::move(admission)),
      stats_(std::move(stats)),
      wakeup_(std::move(wakeup)),
      linger_(std::move(linger)),
      session_(context.store, context.cache, context.service,
               context.executor.get()),
      decoder_(max_frame_payload),
      traced_(context.trace_ring != nullptr) {
  if (context_.trace_metrics) session_.SetTraceMetrics(context_.trace_metrics);
}

Connection::~Connection() {
  // Slots admitted but never executed (connection died first) still hold
  // a unit of the server-wide queue depth; return it. Executed slots
  // released theirs at completion (admitted flips false there). We hold
  // the last reference here, but slots_ is mu_-guarded state, so take
  // the (uncontended) lock anyway and keep one discipline.
  {
    sync::MutexLock lock(&mu_);
    for (const auto& slot : slots_) {
      if (slot->admitted && !slot->dispatched) admission_->ReleaseRequest();
    }
  }
  admission_->ReleaseConnection();
  // Graceful goodbye for orderly closes (quit / drain / decode error):
  // the fd moves to the owning poller's linger set, which FINs and then
  // waits (bounded) for the peer's FIN before closing — close() with
  // unread pipelined input would RST and could destroy the final
  // flushed response before the peer reads it. Dead sockets skip this —
  // an RST is exactly right for a slow-consumer drop. This destructor
  // may run on a pool worker (a task holding the last reference), which
  // is why LingerSet::Add is thread-safe.
  if (fd_.valid() && !dead_ && linger_) {
    linger_->Add(std::move(fd_));
  }
}

short Connection::PollEvents() const {
  if (dead_) return 0;
  short events = 0;
  if (!draining_ && !read_eof_ && !sent_decode_error_) events |= POLLIN;
  if (write_offset_ < write_buffer_.size()) events |= POLLOUT;
  return events;
}

void Connection::OnReadable() {
  if (dead_ || draining_ || read_eof_) return;
  if (traced_) read_start_ = std::chrono::steady_clock::now();
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd_.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      decoder_.Append(buf, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      // Half-close: the client sent everything and shut down its write
      // side; keep flushing responses for what is already admitted.
      read_eof_ = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    dead_ = true;
    return;
  }
  ProcessDecodedFrames();
  Pump();
}

void Connection::ProcessDecodedFrames() {
  std::string payload;
  for (;;) {
    const FrameDecoder::Next next = decoder_.Pop(&payload);
    if (next == FrameDecoder::Next::kNeedMore) return;
    if (next == FrameDecoder::Next::kError) {
      if (!sent_decode_error_) {
        sent_decode_error_ = true;
        // One final structured goodbye, then no more reads: byte
        // boundaries after a bad length prefix are meaningless. The
        // goodbye rides the slot FIFO so it cannot overtake responses
        // still owed for earlier frames, and stays typed so it leaves
        // in whatever codec the conversation has negotiated by then.
        auto goodbye = std::make_shared<Slot>();
        goodbye->done = true;
        goodbye->typed_pending = true;
        goodbye->typed = service::Response::Error(
            service::ErrorCode::kBadRequest, decoder_.error());
        if (traced_) {
          goodbye->trace.context.trace_id = trace::NextTraceId();
          goodbye->trace.context.connection_id = id_;
          goodbye->trace.verb = "(decode-error)";
          goodbye->trace.span_micros[static_cast<std::size_t>(
              trace::Span::kDecode)] =
              MicrosSince(read_start_, std::chrono::steady_clock::now());
        }
        sync::MutexLock lock(&mu_);
        slots_.push_back(std::move(goodbye));
      }
      return;
    }
    stats_->requests.fetch_add(1, std::memory_order_relaxed);
    auto slot = std::make_shared<Slot>();
    slot->arrival = std::chrono::steady_clock::now();
    if (traced_) {
      slot->trace.context.trace_id = trace::NextTraceId();
      slot->trace.context.connection_id = id_;
      slot->trace.request_bytes = payload.size();
      slot->trace.span_micros[static_cast<std::size_t>(
          trace::Span::kDecode)] = MicrosSince(read_start_, slot->arrival);
    }
    std::string busy_reason;
    int inflight = 0;
    {
      sync::MutexLock lock(&mu_);
      inflight = admitted_inflight_;
    }
    const bool admitted = admission_->TryAdmitRequest(inflight, &busy_reason);
    if (traced_) {
      slot->trace.span_micros[static_cast<std::size_t>(trace::Span::kAdmit)] =
          MicrosSince(slot->arrival, std::chrono::steady_clock::now());
    }
    if (!admitted) {
      slot->done = true;
      slot->typed_pending = true;
      slot->typed = service::Response::Busy(std::move(busy_reason));
      if (traced_) slot->trace.verb = "(shed)";
    } else {
      slot->admitted = true;
      slot->request = std::move(payload);
      sync::MutexLock lock(&mu_);
      ++admitted_inflight_;
    }
    {
      sync::MutexLock lock(&mu_);
      slots_.push_back(std::move(slot));
    }
  }
}

void Connection::MaybeDispatch() {
  std::shared_ptr<Slot> next;
  {
    sync::MutexLock lock(&mu_);
    if (executing_ || quit_seen_) return;
    for (const auto& slot : slots_) {
      if (!slot->done && !slot->dispatched) {
        next = slot;
        break;
      }
    }
    if (!next) return;
    next->dispatched = true;
    executing_ = true;
  }
  // Submit OUTSIDE the lock: on a 1-thread pool the task runs inline,
  // and Execute takes mu_.
  auto self = shared_from_this();
  context_.pool->Submit([self, next] { self->Execute(next); });
}

void Connection::Execute(const std::shared_ptr<Slot>& slot) {
  const auto exec_start = std::chrono::steady_clock::now();
  if (traced_) {
    slot->trace.span_micros[static_cast<std::size_t>(trace::Span::kQueue)] =
        MicrosSince(slot->arrival, exec_start);
  }
  std::istringstream in(slot->request);
  std::ostringstream out;
  const bool keep_going = session_.ProcessStream(
      in, out, /*flush_each=*/false, traced_ ? &slot->trace : nullptr);
  const auto exec_end = std::chrono::steady_clock::now();

  stats_->frames_executed.fetch_add(1, std::memory_order_relaxed);
  stats_->queue_latency.Record(SecondsSince(slot->arrival, exec_start));
  stats_->exec_latency.Record(SecondsSince(exec_start, exec_end));
  stats_->total_latency.Record(SecondsSince(slot->arrival, exec_end));

  {
    sync::MutexLock lock(&mu_);
    slot->response = out.str();
    slot->request.clear();
    slot->request.shrink_to_fit();
    slot->done = true;
    slot->admitted = false;  // Queue-depth unit returned below.
    --admitted_inflight_;
    executing_ = false;
    if (!keep_going) quit_seen_ = true;
  }
  admission_->ReleaseRequest();
  // The poll loop flushes the response and dispatches the next slot.
  wakeup_();
}

void Connection::EnqueueResponseFrame(Slot& slot) {
  // Typed slots (shed BUSY, decode goodbye) are encoded here — at
  // dequeue time, after every earlier slot flushed — so they pick up
  // the codec the session had negotiated at this point in the stream.
  const std::string& payload =
      slot.typed_pending
          ? (slot.response =
                 service::EncodeResponseToString(slot.typed, session_.codec()))
          : slot.response;
  const std::size_t before = write_buffer_.size();
  write_buffer_ += EncodeFrame(payload);
  stats_->responses.fetch_add(1, std::memory_order_relaxed);
  if (!traced_) return;
  trace::RequestTrace& t = slot.trace;
  t.response_bytes = payload.size();
  t.codec = service::CodecName(session_.codec());
  if (t.outcome.empty()) {
    t.outcome = slot.typed_pending && slot.typed.code != service::ErrorCode::kOk
                    ? service::ErrorCodeName(slot.typed.code)
                    : "Ok";
  }
  bytes_enqueued_ += write_buffer_.size() - before;
  PendingTrace pending;
  pending.target_bytes = bytes_enqueued_;
  pending.enqueued = std::chrono::steady_clock::now();
  pending.trace = std::move(t);
  pending_flush_.push_back(std::move(pending));
}

void Connection::Pump() {
  if (dead_) return;
  // Flush completed responses BEFORE dispatching the next slot: on a
  // 1-thread pool Submit runs the task inline, and a HELLO executing
  // there must not switch the codec under a typed slot that is already
  // ahead of it in the FIFO.
  {
    sync::MutexLock lock(&mu_);
    while (!slots_.empty() && slots_.front()->done) {
      EnqueueResponseFrame(*slots_.front());
      slots_.pop_front();
    }
    if (quit_seen_) {
      // quit closes the conversation: frames pipelined past it are
      // discarded unanswered (their admitted queue-depth units go back).
      // No slot can be mid-execution here — quit_seen_ is only set by a
      // completing Execute, and execution is serial per connection.
      for (const auto& slot : slots_) {
        if (slot->admitted && !slot->dispatched) {
          slot->admitted = false;
          --admitted_inflight_;
          admission_->ReleaseRequest();
        }
      }
      slots_.clear();
      draining_ = true;
    }
  }
  MaybeDispatch();
  FlushWrites();
  FinalizeFlushedTraces();
  if (write_buffer_.size() - write_offset_ > kMaxWriteBufferBytes) {
    dead_ = true;  // Slow consumer: pipelines requests, never reads.
  }
}

void Connection::FlushWrites() {
  while (write_offset_ < write_buffer_.size()) {
    const ssize_t n =
        ::send(fd_.get(), write_buffer_.data() + write_offset_,
               write_buffer_.size() - write_offset_, MSG_NOSIGNAL);
    if (n > 0) {
      write_offset_ += static_cast<std::size_t>(n);
      bytes_flushed_ += static_cast<std::uint64_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    dead_ = true;
    return;
  }
  if (write_offset_ == write_buffer_.size()) {
    write_buffer_.clear();
    write_offset_ = 0;
  }
}

void Connection::OnWritable() {
  if (dead_) return;
  FlushWrites();
  FinalizeFlushedTraces();
}

void Connection::FinalizeFlushedTraces() {
  if (!traced_ || dead_) return;
  const auto now = std::chrono::steady_clock::now();
  while (!pending_flush_.empty() &&
         bytes_flushed_ >= pending_flush_.front().target_bytes) {
    PendingTrace& pending = pending_flush_.front();
    pending.trace.span_micros[static_cast<std::size_t>(trace::Span::kFlush)] =
        MicrosSince(pending.enqueued, now);
    PublishTrace(pending.trace);
    pending_flush_.pop_front();
  }
}

void Connection::PublishTrace(trace::RequestTrace& finished) {
  std::uint64_t total = 0;
  for (const std::uint64_t micros : finished.span_micros) total += micros;
  finished.total_micros = total;
  finished.slow = context_.slow_query_micros > 0 &&
                  total >= context_.slow_query_micros;
  context_.trace_ring->Record(finished);
  if (context_.trace_metrics) context_.trace_metrics->RecordSpans(finished);
  if (context_.access_log == nullptr) return;
  using logging::Field;
  context_.access_log->Log(
      finished.slow ? logging::Level::kWarn : logging::Level::kInfo, "request",
      {Field::Num("trace_id", finished.context.trace_id),
       Field::Num("conn", finished.context.connection_id),
       Field("verb", finished.verb), Field("release", finished.release),
       Field("codec", finished.codec), Field("outcome", finished.outcome),
       Field::Num("bytes_in", finished.request_bytes),
       Field::Num("bytes_out", finished.response_bytes),
       Field::Num("total_us", finished.total_micros),
       Field::Num("decode_us", finished.span(trace::Span::kDecode)),
       Field::Num("admit_us", finished.span(trace::Span::kAdmit)),
       Field::Num("queue_us", finished.span(trace::Span::kQueue)),
       Field::Num("compute_us", finished.span(trace::Span::kCompute)),
       Field::Num("encode_us", finished.span(trace::Span::kEncode)),
       Field::Num("flush_us", finished.span(trace::Span::kFlush)),
       Field::Num("batch_n", finished.batch_queries),
       Field::Num("batch_max_group_us", finished.batch_max_group_micros),
       Field::Bool("slow", finished.slow)});
}

void Connection::BeginDrain() { draining_ = true; }

bool Connection::Finished() const {
  if (dead_) return true;
  if (!draining_ && !read_eof_ && !sent_decode_error_) return false;
  sync::MutexLock lock(&mu_);
  return slots_.empty() && write_offset_ >= write_buffer_.size();
}

}  // namespace net
}  // namespace dpcube
