// Copyright 2026 The dpcube Authors.
//
// Length-delimited framing over the `dpcube serve` line protocol. TCP is
// a byte stream: a single read() can deliver half a request or twenty of
// them, so the wire format prefixes every payload with its length and
// the decoder reassembles frames regardless of how the kernel split the
// bytes.
//
// Wire format (both directions):
//
//   +--------------------+------------------------+
//   | length: 4 bytes BE | payload: length bytes  |
//   +--------------------+------------------------+
//
// A request payload is a self-contained chunk of the line protocol —
// one request line, several pipelined lines, or a "batch N" header
// followed by its N sub-lines — newline-separated, trailing newline
// optional. The server answers every request frame with EXACTLY ONE
// response frame whose payload carries one newline-terminated response
// line per request line (empty payload in -> empty payload out), so a
// client can correlate by counting frames even when pipelining. The one
// exception: frames pipelined PAST a quit are discarded as the
// connection closes, exactly as bytes after "quit\n" on stdin are never
// read.
//
// The decoder enforces a maximum payload length; an oversized or
// malformed length prefix poisons the stream (kError) because byte
// boundaries after it are meaningless.

#ifndef DPCUBE_NET_FRAMING_H_
#define DPCUBE_NET_FRAMING_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace dpcube {
namespace net {

/// Hard cap a decoder will ever accept, independent of configuration.
inline constexpr std::size_t kMaxFramePayload = std::size_t{1} << 24;

/// Serializes one frame: 4-byte big-endian length + payload.
std::string EncodeFrame(std::string_view payload);

/// Incremental frame reassembly from arbitrarily-split byte chunks.
class FrameDecoder {
 public:
  /// `max_payload` rejects hostile lengths before any buffering happens;
  /// clamped to kMaxFramePayload.
  explicit FrameDecoder(std::size_t max_payload = kMaxFramePayload);

  enum class Next {
    kFrame,     ///< A complete payload was produced.
    kNeedMore,  ///< No complete frame buffered yet.
    kError,     ///< Stream poisoned (oversized length); no recovery.
  };

  /// Buffers `n` more wire bytes.
  void Append(const char* data, std::size_t n);
  void Append(std::string_view bytes) { Append(bytes.data(), bytes.size()); }

  /// Extracts the next complete frame payload into `*payload`. Call in a
  /// loop until it stops returning kFrame — one Append can complete many
  /// pipelined frames.
  Next Pop(std::string* payload);

  /// Human-readable reason after kError.
  const std::string& error() const { return error_; }

  /// Bytes buffered but not yet consumed as frames.
  std::size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  const std::size_t max_payload_;
  std::string buffer_;
  std::size_t consumed_ = 0;  ///< Prefix of buffer_ already popped.
  bool poisoned_ = false;
  std::string error_;
};

}  // namespace net
}  // namespace dpcube

#endif  // DPCUBE_NET_FRAMING_H_
