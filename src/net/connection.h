// Copyright 2026 The dpcube Authors.
//
// One accepted TCP connection: the read-side FrameDecoder, the FIFO of
// request slots, the write buffer, and a private ServeSession. The
// design splits work rigidly between two kinds of threads:
//
//   network thread (the owning Poller's loop — each connection is
//     pinned to exactly one poller for its lifetime) — reads bytes,
//     decodes frames, runs admission, dispatches slots, flushes
//     completed responses, closes the socket. Never computes.
//   pool workers (ThreadPool::Shared via the ServeContext) — execute
//     one admitted frame at a time per connection through the session
//     (which may fan a batch out across the same pool), fill the slot,
//     and wake the poll loop.
//
// Invariant the whole protocol rests on: every request frame gets
// EXACTLY ONE response frame, and response frames leave in request
// order. Shed requests complete instantly with a "BUSY <reason>" payload
// in their ordinal position; execution is serial per connection
// (cross-connection parallelism comes from many connections sharing the
// pool, intra-request parallelism from the batch verb), so the FIFO
// order is also execution order.

#ifndef DPCUBE_NET_CONNECTION_H_
#define DPCUBE_NET_CONNECTION_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "common/fd.h"
#include "common/log.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "common/trace_metrics.h"
#include "net/admission.h"
#include "net/framing.h"
#include "net/linger.h"
#include "net/server_stats.h"
#include "service/serve_protocol.h"

namespace dpcube {

namespace service {
class DurableState;
}  // namespace service

namespace net {

/// The shared serving collaborators a connection's session borrows.
/// Everything a pool task can touch after the listener is gone is held
/// by shared_ptr (each Connection keeps a copy of this context and each
/// task keeps its Connection alive), so a query that outlives the drain
/// timeout cannot dangle. `pool` alone stays raw: it is only
/// dereferenced by the network thread while the listener is alive, and
/// the production caller passes the process-static ThreadPool::Shared().
struct ServeContext {
  ServeContext() = default;
  /// The common five collaborators; tracing and durability members stay
  /// default (callers set them individually when enabled).
  ServeContext(std::shared_ptr<service::ReleaseStore> store_in,
               std::shared_ptr<service::MarginalCache> cache_in,
               std::shared_ptr<const service::QueryService> service_in,
               std::shared_ptr<const service::BatchExecutor> executor_in,
               ThreadPool* pool_in)
      : store(std::move(store_in)),
        cache(std::move(cache_in)),
        service(std::move(service_in)),
        executor(std::move(executor_in)),
        pool(pool_in) {}

  std::shared_ptr<service::ReleaseStore> store;
  std::shared_ptr<service::MarginalCache> cache;
  std::shared_ptr<const service::QueryService> service;
  std::shared_ptr<const service::BatchExecutor> executor;
  ThreadPool* pool = nullptr;
  /// Request tracing (all optional). A non-null `trace_ring` switches
  /// tracing on: every completed request then finalises a RequestTrace
  /// into the ring, into the span/per-release metric families when
  /// `trace_metrics` is set, and as one structured line to `access_log`
  /// when that is set. `slow_query_micros` > 0 marks traces at or above
  /// it as slow (reservoir candidates, WARN-level log lines).
  std::shared_ptr<trace::TraceRing> trace_ring;
  std::shared_ptr<const trace::ServingTraceMetrics> trace_metrics;
  std::shared_ptr<logging::Logger> access_log;
  std::uint64_t slow_query_micros = 0;
  /// Non-null when `serve --state-dir` is in effect: sessions route
  /// mutations (load/unload) through it, and the quota gate records
  /// every charge/denial durably before the response leaves.
  std::shared_ptr<service::DurableState> durable;
};

class Connection : public std::enable_shared_from_this<Connection> {
 public:
  /// `wakeup` must be callable from any thread for as long as any
  /// Connection or its in-flight pool tasks exist (the owning poller
  /// hands out a closure over its shared wake pipe). `linger` is the
  /// owning poller's linger set: on an orderly close the destructor
  /// parks the fd there so the final flushed response survives
  /// pipelined input (see linger.h); nullptr falls back to a plain
  /// close.
  Connection(UniqueFd fd, std::uint64_t id, const ServeContext& context,
             std::shared_ptr<AdmissionController> admission,
             std::shared_ptr<ServerStats> stats,
             std::function<void()> wakeup, std::size_t max_frame_payload,
             std::shared_ptr<LingerSet> linger = nullptr);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd() const { return fd_.get(); }
  std::uint64_t id() const { return id_; }

  /// POLLIN/POLLOUT interest for the next poll cycle. 0 = nothing to
  /// wait for (the connection is finished or fully blocked on workers).
  short PollEvents() const;

  /// Network-thread entry points, driven by poll results.
  void OnReadable();
  void OnWritable();

  /// Moves completed responses (in FIFO order) into the write buffer and
  /// writes what the socket accepts. Called every loop iteration.
  void Pump();

  /// Enters drain: stop reading, let admitted work finish, flush, close.
  void BeginDrain();

  /// True when the connection can be destroyed: socket dead, or draining
  /// /EOF with every slot answered and flushed. May be true while a pool
  /// task still runs (the task keeps *this alive via shared_ptr).
  bool Finished() const;

  /// The session, exposed so the listener can install the STATS handler.
  service::ServeSession& session() { return session_; }

 private:
  struct Slot {
    std::string request;   ///< Cleared when handed to a worker.
    std::string response;  ///< Encoded payload, valid once done (unless
                           ///< typed_pending).
    /// Shed/goodbye slots never reach the session, so they carry a
    /// typed Response instead of encoded bytes; the network thread
    /// encodes it with the session's negotiated codec when the slot
    /// reaches the front of the FIFO — by which point every earlier
    /// request (and therefore any HELLO codec switch) has executed, so
    /// the codec is exactly the one the client expects at that point in
    /// the stream.
    service::Response typed;
    bool typed_pending = false;
    bool done = false;
    bool dispatched = false;
    bool admitted = false;  ///< Shed slots never touched the executor.
    std::chrono::steady_clock::time_point arrival;
    /// Per-request trace (only filled when the context carries a trace
    /// ring). Written by the network thread before dispatch (identity,
    /// decode/admit spans) and by the worker during Execute (queue,
    /// compute, encode); the network thread reads it back only after
    /// observing `done` under mu_, so the hand-off needs no extra
    /// synchronisation.
    trace::RequestTrace trace;
  };

  /// Decodes and admits every complete frame buffered so far. Network
  /// thread only.
  void ProcessDecodedFrames();

  /// Dispatches the next undispatched slot to the pool if no slot is
  /// executing. Must NOT be called with mu_ held (a 1-thread pool runs
  /// the task inline).
  void MaybeDispatch();

  /// Worker-side: runs `slot`'s payload through the session.
  void Execute(const std::shared_ptr<Slot>& slot);

  /// Encodes `slot`'s response (typed or pre-encoded) and appends one
  /// response frame to the write buffer; when tracing, stamps the
  /// response identity and moves the trace onto the pending-flush queue.
  /// Pump calls it while walking slots_, so it runs under mu_ even
  /// though the write buffer itself is network-thread-only.
  void EnqueueResponseFrame(Slot& slot) REQUIRES(mu_);

  /// Writes as much buffered output as the socket accepts.
  void FlushWrites();

  /// Completes (flush span, total, slow flag) and publishes every
  /// pending trace whose response bytes have fully left the socket.
  /// Network thread only.
  void FinalizeFlushedTraces();

  /// Publishes one finished trace to the ring, the metric families, and
  /// the access log.
  void PublishTrace(trace::RequestTrace& finished);

  const std::uint64_t id_;
  UniqueFd fd_;
  ServeContext context_;
  std::shared_ptr<AdmissionController> admission_;
  std::shared_ptr<ServerStats> stats_;
  const std::function<void()> wakeup_;
  const std::shared_ptr<LingerSet> linger_;
  service::ServeSession session_;
  FrameDecoder decoder_;

  const bool traced_;  ///< context_.trace_ring != nullptr, cached.

  // --- network-thread-only state ---
  std::string write_buffer_;
  std::size_t write_offset_ = 0;
  bool read_eof_ = false;
  bool draining_ = false;
  bool dead_ = false;        ///< Socket error; discard everything.
  bool sent_decode_error_ = false;
  /// When the current OnReadable pass pulled its bytes off the socket;
  /// frames decoded in that pass stamp their decode span against it.
  std::chrono::steady_clock::time_point read_start_;
  /// Traces whose response frames sit in the write buffer, FIFO. Each
  /// finalises (flush span = enqueue -> last byte accepted by the
  /// kernel) once `bytes_flushed_` reaches its cumulative byte target.
  /// Dropped unpublished if the connection dies mid-flush.
  struct PendingTrace {
    std::uint64_t target_bytes = 0;
    std::chrono::steady_clock::time_point enqueued;
    trace::RequestTrace trace;
  };
  std::deque<PendingTrace> pending_flush_;
  std::uint64_t bytes_enqueued_ = 0;  ///< Response bytes ever buffered.
  std::uint64_t bytes_flushed_ = 0;   ///< Response bytes ever sent.

  // --- cross-thread state (guarded by mu_) ---
  mutable sync::Mutex mu_;
  std::deque<std::shared_ptr<Slot>> slots_ GUARDED_BY(mu_);
  bool executing_ GUARDED_BY(mu_) = false;
  bool quit_seen_ GUARDED_BY(mu_) = false;
  /// Admitted slots not yet done.
  int admitted_inflight_ GUARDED_BY(mu_) = 0;
};

}  // namespace net
}  // namespace dpcube

#endif  // DPCUBE_NET_CONNECTION_H_
