// Copyright 2026 The dpcube Authors.

#include "net/server_stats.h"

#include <algorithm>
#include <cmath>

namespace dpcube {
namespace net {

void LatencyHistogram::Record(double seconds) {
  const double micros = seconds * 1e6;
  int bucket = 0;
  if (micros >= 1.0) {
    bucket = std::min(kBuckets - 1,
                      static_cast<int>(std::log2(micros)));
  }
  buckets_[static_cast<std::size_t>(bucket)].fetch_add(
      1, std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::count() const {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double LatencyHistogram::QuantileMicros(double p) const {
  std::array<std::uint64_t, kBuckets> snapshot;
  std::uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    snapshot[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    total += snapshot[static_cast<std::size_t>(i)];
  }
  if (total == 0) return 0.0;
  p = std::min(1.0, std::max(0.0, p));
  const std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(p * static_cast<double>(total)));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += snapshot[static_cast<std::size_t>(i)];
    if (seen >= std::max<std::uint64_t>(rank, 1)) {
      // Geometric midpoint of [2^i, 2^(i+1)).
      return std::exp2(i + 0.5);
    }
  }
  return std::exp2(kBuckets - 1);
}

}  // namespace net
}  // namespace dpcube
