// Copyright 2026 The dpcube Authors.

#include "opt/matrix_mechanism.h"

#include <cmath>
#include <utility>

#include "linalg/decompositions.h"

namespace dpcube {
namespace opt {

namespace {

using linalg::CholeskyDecomposition;
using linalg::Matrix;

// Normalises every column of s to unit norm (L2 or L1). Zero columns are
// left untouched (they contribute nothing to any measurement).
void NormaliseColumns(Matrix* s, bool l2) {
  const std::size_t m = s->rows();
  const std::size_t n = s->cols();
  for (std::size_t c = 0; c < n; ++c) {
    double norm = 0.0;
    for (std::size_t r = 0; r < m; ++r) {
      const double v = (*s)(r, c);
      norm += l2 ? v * v : std::fabs(v);
    }
    if (l2) norm = std::sqrt(norm);
    if (norm == 0.0) continue;
    for (std::size_t r = 0; r < m; ++r) (*s)(r, c) /= norm;
  }
}

// trace((S^T S)^{-1} A) via Cholesky of the (ridged if necessary) normal
// matrix; also returns the factor for gradient reuse. Fails if S^T S is
// numerically singular even after a tiny ridge.
Result<std::pair<double, CholeskyDecomposition>> ObjectiveAndFactor(
    const Matrix& s, const Matrix& a) {
  Matrix m = s.Transpose().Multiply(s);
  Result<CholeskyDecomposition> chol = CholeskyDecomposition::Compute(m);
  if (!chol.ok()) {
    const double ridge = 1e-10 * std::max(m.MaxAbs(), 1.0);
    for (std::size_t i = 0; i < m.rows(); ++i) m(i, i) += ridge;
    chol = CholeskyDecomposition::Compute(m);
    if (!chol.ok()) {
      return Status::NumericalError(
          "matrix mechanism: strategy lost full column rank");
    }
  }
  const Matrix minv_a = chol.value().SolveMatrix(a);
  double trace = 0.0;
  for (std::size_t i = 0; i < minv_a.rows(); ++i) trace += minv_a(i, i);
  return std::make_pair(trace, std::move(chol).value());
}

}  // namespace

Matrix DefaultInitialStrategy(const linalg::Matrix& q) {
  const std::size_t n = q.cols();
  Matrix s(q.rows() + n, n);
  for (std::size_t r = 0; r < q.rows(); ++r) {
    for (std::size_t c = 0; c < n; ++c) s(r, c) = q(r, c);
  }
  for (std::size_t i = 0; i < n; ++i) s(q.rows() + i, i) = 1.0;
  return s;
}

Result<MatrixMechanismResult> OptimizeStrategy(
    const linalg::Matrix& q, const linalg::Matrix& initial,
    const MatrixMechanismOptions& options) {
  if (q.rows() == 0 || q.cols() == 0) {
    return Status::InvalidArgument("matrix mechanism: empty workload");
  }
  if (initial.cols() != q.cols()) {
    return Status::InvalidArgument(
        "matrix mechanism: initial strategy has wrong domain dimension");
  }
  if (options.max_iterations < 0 || !(options.initial_step > 0.0)) {
    return Status::InvalidArgument("matrix mechanism: bad options");
  }
  const Matrix a = q.Transpose().Multiply(q);

  Matrix s = initial;
  NormaliseColumns(&s, options.l2_sensitivity);
  DPCUBE_ASSIGN_OR_RETURN(auto obj_factor, ObjectiveAndFactor(s, a));
  double objective = obj_factor.first;

  MatrixMechanismResult result;
  result.initial_objective = objective;
  double step = options.initial_step;
  int performed = 0;
  bool converged = false;
  for (int iter = 0; iter < options.max_iterations && !converged; ++iter) {
    // Gradient of trace(M^{-1} A): -2 S M^{-1} A M^{-1}. The descent
    // direction is therefore +2 S Z with Z = M^{-1} A M^{-1}.
    const CholeskyDecomposition& chol = obj_factor.second;
    const Matrix minv_a = chol.SolveMatrix(a);
    const Matrix z = chol.SolveMatrix(minv_a.Transpose()).Transpose();
    const Matrix direction = s.Multiply(z);  // -(1/2) * gradient.

    // Backtracking line search on the projected iterate.
    bool improved = false;
    for (int bt = 0; bt < 30; ++bt) {
      Matrix candidate = s.Add(direction.Scale(step));
      NormaliseColumns(&candidate, options.l2_sensitivity);
      auto cand_obj = ObjectiveAndFactor(candidate, a);
      if (cand_obj.ok() && cand_obj->first < objective) {
        const double improvement = (objective - cand_obj->first) / objective;
        s = std::move(candidate);
        obj_factor = std::move(cand_obj).value();
        objective = obj_factor.first;
        step *= 1.5;  // Reward: try a bolder step next time.
        improved = true;
        converged = improvement < options.tolerance;
        break;
      }
      step *= 0.5;
    }
    ++performed;
    if (!improved) break;  // Line search exhausted: local minimum.
  }
  result.strategy = std::move(s);
  result.objective = objective;
  result.iterations = performed;
  return result;
}

Result<double> MatrixMechanismTotalVariance(const linalg::Matrix& s,
                                            const linalg::Matrix& q,
                                            const dp::PrivacyParams& params) {
  if (s.cols() != q.cols()) {
    return Status::InvalidArgument(
        "matrix mechanism variance: domain dimension mismatch");
  }
  DPCUBE_RETURN_NOT_OK(params.Validate());
  const Matrix a = q.Transpose().Multiply(q);
  DPCUBE_ASSIGN_OR_RETURN(auto obj_factor, ObjectiveAndFactor(s, a));
  const double trace = obj_factor.first;
  const double eps = params.epsilon;
  if (params.IsPureDp()) {
    const double sens = dp::L1Sensitivity(s, params.neighbour);
    return 2.0 * sens * sens / (eps * eps) * trace;
  }
  const double sens = dp::L2Sensitivity(s, params.neighbour);
  return 2.0 * std::log(2.0 / params.delta) * sens * sens / (eps * eps) *
         trace;
}

}  // namespace opt
}  // namespace dpcube
