// Copyright 2026 The dpcube Authors.
//
// An approximate matrix mechanism (Li et al., PODS 2010) — the strategy-
// search baseline the paper positions itself against. The exact matrix
// mechanism solves a rank-constrained SDP for the strategy S minimising
// the total error of answering Q through S with uniform noise; that SDP
// is "impractical for data with more than a few tens of entries"
// (Section 1). This module implements the standard practical surrogate:
// projected gradient descent on the scale-invariant objective
//
//   f(S) = trace((S^T S)^{-1} Q^T Q),   columns of S normalised to unit
//                                       norm (L2 for Gaussian noise, L1
//                                       for Laplace),
//
// which is exactly the total output variance of the uniform-noise
// strategy/recovery pipeline up to the mechanism's noise constant. The
// gradient of f is -2 S M^{-1} A M^{-1} with M = S^T S, A = Q^T Q;
// column renormalisation projects back onto the sensitivity ball. This
// gives the paper's framework a genuine search-based comparator at small
// N (the only regime where any matrix-mechanism variant runs), exercised
// by bench_ablation_matrix_mechanism.

#ifndef DPCUBE_OPT_MATRIX_MECHANISM_H_
#define DPCUBE_OPT_MATRIX_MECHANISM_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "dp/privacy.h"
#include "linalg/matrix.h"

namespace dpcube {
namespace opt {

/// Options for the strategy search.
struct MatrixMechanismOptions {
  /// Maximum gradient iterations. Each costs O(N^3 + m N^2).
  int max_iterations = 300;
  /// Stop when the relative objective improvement over one iteration
  /// falls below this.
  double tolerance = 1e-8;
  /// Initial step size for the backtracking line search.
  double initial_step = 1.0;
  /// Columns are normalised in L2 (Gaussian noise) when true, L1
  /// (Laplace) when false. The L1 objective is non-smooth; gradient
  /// descent still behaves as a subgradient method and improves the
  /// objective in practice, but the L2 setting is the principled one.
  bool l2_sensitivity = true;
};

/// Result of the search.
struct MatrixMechanismResult {
  /// The optimised strategy, columns normalised to unit sensitivity norm.
  linalg::Matrix strategy;
  /// Scale-invariant objective trace((S^T S)^{-1} Q^T Q) at the solution.
  double objective = 0.0;
  /// Objective of the (normalised) initial strategy, for reporting.
  double initial_objective = 0.0;
  /// Iterations actually performed.
  int iterations = 0;
};

/// Default starting point: the workload rows stacked on an identity block,
/// guaranteeing full column rank regardless of Q.
linalg::Matrix DefaultInitialStrategy(const linalg::Matrix& q);

/// Runs the projected-gradient strategy search. `initial` must have
/// q.cols() columns and full column rank after normalisation (the default
/// from DefaultInitialStrategy always does). The search never returns a
/// strategy worse than the normalised initial one.
Result<MatrixMechanismResult> OptimizeStrategy(
    const linalg::Matrix& q, const linalg::Matrix& initial,
    const MatrixMechanismOptions& options = {});

/// Total output variance of answering Q through strategy S with uniform
/// per-row noise at the given privacy parameters and least-squares
/// recovery R = Q S^+:
///   Laplace:  2 (c Delta_1(S))^2 / eps^2 * trace((S^T S)^{-1} Q^T Q),
///   Gaussian: 2 ln(2/delta) (c Delta_2(S))^2 / eps^2 * trace(...),
/// where c is the neighbour-model factor. This evaluates any strategy
/// (searched or fixed) on the uniform-noise matrix-mechanism error model,
/// making cross-strategy comparisons one-liners in benches.
Result<double> MatrixMechanismTotalVariance(const linalg::Matrix& s,
                                            const linalg::Matrix& q,
                                            const dp::PrivacyParams& params);

}  // namespace opt
}  // namespace dpcube

#endif  // DPCUBE_OPT_MATRIX_MECHANISM_H_
