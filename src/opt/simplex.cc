// Copyright 2026 The dpcube Authors.

#include "opt/simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace dpcube {
namespace opt {
namespace {

constexpr double kEps = 1e-9;

// Dense simplex tableau. Rows: one per constraint plus the objective row.
// Columns: structural + slack/artificial + rhs.
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  void Pivot(std::size_t pivot_row, std::size_t pivot_col) {
    const double pivot = at(pivot_row, pivot_col);
    assert(std::fabs(pivot) > kEps);
    for (std::size_t c = 0; c < cols_; ++c) at(pivot_row, c) /= pivot;
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == pivot_row) continue;
      const double factor = at(r, pivot_col);
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c < cols_; ++c) {
        at(r, c) -= factor * at(pivot_row, c);
      }
    }
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

// Runs simplex iterations on `t`. Rows [0, m) are constraint rows;
// `obj_row` holds the active (reduced-cost) objective; the last column is
// the rhs. `basis[r]` is the basic column of constraint row r. Uses Bland's
// rule. Returns false if unbounded. Pivots update every row of the tableau,
// so an inactive secondary objective row stays consistent.
bool RunSimplex(Tableau* t, std::vector<std::size_t>* basis, std::size_t m,
                std::size_t obj_row, std::size_t num_cols_usable) {
  const std::size_t rhs_col = t->cols() - 1;
  // Bland's rule guarantees termination; cap iterations defensively anyway.
  const std::size_t max_iters = 50'000 + 200 * (m + num_cols_usable);
  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    // Entering column: smallest index with negative reduced cost (Bland).
    std::size_t enter = num_cols_usable;
    for (std::size_t c = 0; c < num_cols_usable; ++c) {
      if (t->at(obj_row, c) < -kEps) {
        enter = c;
        break;
      }
    }
    if (enter == num_cols_usable) return true;  // Optimal.

    // Leaving row: min ratio rhs / column among positive entries;
    // ties broken by smallest basis index (Bland).
    std::size_t leave = m;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < m; ++r) {
      const double a = t->at(r, enter);
      if (a > kEps) {
        const double ratio = t->at(r, rhs_col) / a;
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps &&
             (leave == m || (*basis)[r] < (*basis)[leave]))) {
          best_ratio = ratio;
          leave = r;
        }
      }
    }
    if (leave == m) return false;  // Unbounded.
    t->Pivot(leave, enter);
    (*basis)[leave] = enter;
  }
  return true;  // Iteration cap: treat as converged (defensive).
}

}  // namespace

Result<LpSolution> SolveLp(const LpProblem& problem) {
  const std::size_t n = problem.objective.size();
  const std::size_t m = problem.constraints.size();
  for (const LpConstraint& c : problem.constraints) {
    if (c.coeffs.size() != n) {
      return Status::InvalidArgument("SolveLp: constraint width mismatch");
    }
  }

  // Normalise to rhs >= 0 and count auxiliary columns.
  std::vector<LpConstraint> cons = problem.constraints;
  for (LpConstraint& c : cons) {
    if (c.rhs < 0.0) {
      for (double& v : c.coeffs) v = -v;
      c.rhs = -c.rhs;
      if (c.sense == ConstraintSense::kLessEqual) {
        c.sense = ConstraintSense::kGreaterEqual;
      } else if (c.sense == ConstraintSense::kGreaterEqual) {
        c.sense = ConstraintSense::kLessEqual;
      }
    }
  }
  std::size_t num_slack = 0;
  std::size_t num_artificial = 0;
  for (const LpConstraint& c : cons) {
    if (c.sense == ConstraintSense::kLessEqual) {
      ++num_slack;
    } else if (c.sense == ConstraintSense::kGreaterEqual) {
      ++num_slack;       // Surplus column.
      ++num_artificial;
    } else {
      ++num_artificial;
    }
  }

  const std::size_t total_cols = n + num_slack + num_artificial;
  // Rows: constraints + phase-2 objective + phase-1 objective.
  Tableau t(m + 2, total_cols + 1);
  const std::size_t obj2_row = m;      // Original objective.
  const std::size_t obj1_row = m + 1;  // Artificial objective.
  const std::size_t rhs_col = total_cols;

  std::vector<std::size_t> basis(m);
  std::size_t next_slack = n;
  std::size_t next_art = n + num_slack;
  std::vector<bool> is_artificial(total_cols, false);

  for (std::size_t r = 0; r < m; ++r) {
    const LpConstraint& c = cons[r];
    for (std::size_t j = 0; j < n; ++j) t.at(r, j) = c.coeffs[j];
    t.at(r, rhs_col) = c.rhs;
    switch (c.sense) {
      case ConstraintSense::kLessEqual:
        t.at(r, next_slack) = 1.0;
        basis[r] = next_slack++;
        break;
      case ConstraintSense::kGreaterEqual:
        t.at(r, next_slack) = -1.0;
        ++next_slack;
        t.at(r, next_art) = 1.0;
        is_artificial[next_art] = true;
        basis[r] = next_art++;
        break;
      case ConstraintSense::kEqual:
        t.at(r, next_art) = 1.0;
        is_artificial[next_art] = true;
        basis[r] = next_art++;
        break;
    }
  }
  for (std::size_t j = 0; j < n; ++j) t.at(obj2_row, j) = problem.objective[j];

  // Phase 1: minimise the sum of artificials. The phase-1 objective row is
  // -(sum of rows whose basic variable is artificial), expressed so reduced
  // costs of basic variables are zero.
  if (num_artificial > 0) {
    for (std::size_t r = 0; r < m; ++r) {
      if (!is_artificial[basis[r]]) continue;
      for (std::size_t c = 0; c <= total_cols; ++c) {
        t.at(obj1_row, c) -= t.at(r, c);
      }
    }
    // Zero out artificial columns in the phase-1 objective (they cost 1 and
    // are basic, already handled by the subtraction above which leaves their
    // reduced cost at -1 + 1 = 0 after adding the unit cost).
    for (std::size_t c = 0; c < total_cols; ++c) {
      if (is_artificial[c]) t.at(obj1_row, c) += 1.0;
    }

    if (!RunSimplex(&t, &basis, m, obj1_row, total_cols)) {
      return Status::NumericalError("SolveLp: phase-1 unbounded (internal)");
    }
    if (t.at(obj1_row, rhs_col) < -1e-6) {
      return Status::NumericalError("SolveLp: infeasible");
    }
    // Drive any remaining artificial variables out of the basis if possible.
    for (std::size_t r = 0; r < m; ++r) {
      if (!is_artificial[basis[r]]) continue;
      bool pivoted = false;
      for (std::size_t c = 0; c < n + num_slack; ++c) {
        if (std::fabs(t.at(r, c)) > kEps) {
          t.Pivot(r, c);
          basis[r] = c;
          pivoted = true;
          break;
        }
      }
      if (!pivoted) {
        // Redundant constraint row; leave the artificial at value ~0.
      }
    }
  }

  // Phase 2: zero out reduced costs of basic columns in the original
  // objective row, then run with artificial columns frozen.
  for (std::size_t r = 0; r < m; ++r) {
    const double cost = t.at(obj2_row, basis[r]);
    if (std::fabs(cost) > 0.0) {
      for (std::size_t c = 0; c <= total_cols; ++c) {
        t.at(obj2_row, c) -= cost * t.at(r, c);
      }
    }
  }
  // Freeze artificials by making them unattractive: exclude them from the
  // usable column range. Artificial columns are contiguous at the end.
  {
    // Build a compact tableau without the phase-1 row and artificial cols.
    const std::size_t usable = n + num_slack;
    Tableau t2(m + 1, usable + 1);
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < usable; ++c) t2.at(r, c) = t.at(r, c);
      t2.at(r, usable) = t.at(r, rhs_col);
    }
    for (std::size_t c = 0; c < usable; ++c) {
      t2.at(m, c) = t.at(obj2_row, c);
    }
    t2.at(m, usable) = t.at(obj2_row, rhs_col);

    // Any basis entry still pointing at an artificial column corresponds to a
    // redundant zero row; give it a synthetic out-of-range basis id so Bland
    // tie-breaking still works.
    for (std::size_t r = 0; r < m; ++r) {
      if (basis[r] >= usable) basis[r] = usable + r;
    }
    if (!RunSimplex(&t2, &basis, m, m, usable)) {
      return Status::NumericalError("SolveLp: unbounded");
    }

    LpSolution solution;
    solution.x.assign(n, 0.0);
    for (std::size_t r = 0; r < m; ++r) {
      if (basis[r] < n) solution.x[basis[r]] = t2.at(r, usable);
    }
    solution.objective = linalg::Dot(problem.objective, solution.x);
    return solution;
  }
}

int LpBuilder::AddVariable(double objective_coeff) {
  VarColumns vc;
  vc.positive = num_columns_++;
  objective_.push_back(objective_coeff);
  var_columns_.push_back(vc);
  return static_cast<int>(var_columns_.size()) - 1;
}

int LpBuilder::AddFreeVariable(double objective_coeff) {
  VarColumns vc;
  vc.positive = num_columns_++;
  vc.negative = num_columns_++;
  objective_.push_back(objective_coeff);
  objective_.push_back(-objective_coeff);
  var_columns_.push_back(vc);
  return static_cast<int>(var_columns_.size()) - 1;
}

void LpBuilder::AddConstraint(const std::vector<int>& handles,
                              const std::vector<double>& coeffs,
                              ConstraintSense sense, double rhs) {
  assert(handles.size() == coeffs.size());
  LpConstraint c;
  c.coeffs.assign(num_columns_, 0.0);
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const VarColumns& vc = var_columns_.at(handles[i]);
    c.coeffs[vc.positive] += coeffs[i];
    if (vc.negative >= 0) c.coeffs[vc.negative] -= coeffs[i];
  }
  c.sense = sense;
  c.rhs = rhs;
  constraints_.push_back(std::move(c));
}

Result<linalg::Vector> LpBuilder::Solve() const {
  LpProblem problem;
  problem.objective = objective_;
  problem.constraints = constraints_;
  // Constraints recorded before later variables were added are narrower
  // than the final column count; pad them with zeros.
  for (LpConstraint& c : problem.constraints) {
    c.coeffs.resize(num_columns_, 0.0);
  }
  DPCUBE_ASSIGN_OR_RETURN(LpSolution sol, SolveLp(problem));
  linalg::Vector out(var_columns_.size(), 0.0);
  for (std::size_t i = 0; i < var_columns_.size(); ++i) {
    const VarColumns& vc = var_columns_[i];
    out[i] = sol.x[vc.positive];
    if (vc.negative >= 0) out[i] -= sol.x[vc.negative];
  }
  return out;
}

}  // namespace opt
}  // namespace dpcube
