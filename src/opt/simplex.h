// Copyright 2026 The dpcube Authors.
//
// A self-contained two-phase dense simplex solver. The paper's Section 3.3 /
// 4.3 consistency step for p = 1 and p = infinity reduces to small linear
// programs over the Fourier coefficients of the released marginals; this
// solver is sized for exactly those (tens to a few thousand variables).
//
// Canonical form: minimize c^T x subject to per-row {<=, >=, =} constraints
// and x >= 0. Free variables must be split by the caller (x = x+ - x-);
// opt::LpBuilder below does this bookkeeping.

#ifndef DPCUBE_OPT_SIMPLEX_H_
#define DPCUBE_OPT_SIMPLEX_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace dpcube {
namespace opt {

enum class ConstraintSense { kLessEqual, kGreaterEqual, kEqual };

/// One linear constraint: coeffs . x  <sense>  rhs.
struct LpConstraint {
  linalg::Vector coeffs;
  ConstraintSense sense = ConstraintSense::kLessEqual;
  double rhs = 0.0;
};

/// min objective . x  s.t.  constraints, x >= 0.
struct LpProblem {
  linalg::Vector objective;
  std::vector<LpConstraint> constraints;
};

struct LpSolution {
  linalg::Vector x;
  double objective = 0.0;
};

/// Solves the LP with the two-phase simplex method (Bland's rule, so it
/// terminates on degenerate problems). Fails with:
///  - NumericalError("infeasible") if phase 1 cannot zero the artificials,
///  - NumericalError("unbounded")  if a pivot column has no positive entry.
Result<LpSolution> SolveLp(const LpProblem& problem);

/// Convenience builder that supports free (sign-unrestricted) variables by
/// transparent splitting, and assembles LpProblem instances.
class LpBuilder {
 public:
  /// Adds a non-negative variable with the given objective coefficient;
  /// returns its handle.
  int AddVariable(double objective_coeff);

  /// Adds a free variable (internally split into a difference of two
  /// non-negative columns); returns its handle.
  int AddFreeVariable(double objective_coeff);

  /// Adds a constraint sum_i coeffs[i] * var(handles[i]) <sense> rhs.
  void AddConstraint(const std::vector<int>& handles,
                     const std::vector<double>& coeffs, ConstraintSense sense,
                     double rhs);

  /// Solves and maps the solution back to the caller's variable handles.
  Result<linalg::Vector> Solve() const;

  std::size_t num_variables() const { return var_columns_.size(); }

 private:
  struct VarColumns {
    int positive = -1;  // Column index of the positive part.
    int negative = -1;  // Column of the negative part; -1 if non-negative var.
  };
  std::vector<VarColumns> var_columns_;
  int num_columns_ = 0;
  linalg::Vector objective_;  // Per internal column.
  std::vector<LpConstraint> constraints_;  // Over internal columns.
};

}  // namespace opt
}  // namespace dpcube

#endif  // DPCUBE_OPT_SIMPLEX_H_
