// Copyright 2026 The dpcube Authors.
//
// General-purpose solver for the paper's noise-budgeting program (1)-(3):
//
//   minimize   sum_i  b_i / eps_i^2
//   subject to sum_i |S_ij| eps_i <= eps_total   for every column j,
//              eps_i >= 0.
//
// For strategies with the grouping property the closed form in
// budget/grouped_budget.h is exact and should be preferred; this solver is
// the fallback for arbitrary (non-groupable) strategy matrices, and is used
// by tests/benches to validate the closed form against an independent
// method. It implements a log-barrier interior-point scheme with gradient
// descent + backtracking line search, which is ample for the problem sizes
// that arise (m up to a few thousand rows).

#ifndef DPCUBE_OPT_CONVEX_BUDGET_SOLVER_H_
#define DPCUBE_OPT_CONVEX_BUDGET_SOLVER_H_

#include "common/status.h"
#include "linalg/matrix.h"

namespace dpcube {
namespace opt {

struct ConvexBudgetOptions {
  double initial_barrier = 1.0;    ///< Starting barrier weight mu.
  double barrier_decay = 0.2;      ///< mu <- mu * decay per outer round.
  int outer_rounds = 12;           ///< Barrier reduction rounds.
  int inner_iterations = 400;      ///< Gradient steps per round.
  double tolerance = 1e-10;        ///< Gradient-norm stopping tolerance.
};

struct ConvexBudgetResult {
  linalg::Vector epsilons;  ///< Per-row budgets eps_i.
  double objective = 0.0;   ///< sum_i b_i / eps_i^2 at the solution.
};

/// Solves the budgeting program for strategy matrix `s` (m x N), per-row
/// weights `b` (size m, non-negative; rows with b_i = 0 still receive a
/// small budget so the iterate stays interior), and total budget
/// `eps_total` > 0. Columns of `s` that are entirely zero impose no
/// constraint. Fails if no row has a non-zero entry.
Result<ConvexBudgetResult> SolveConvexBudget(
    const linalg::Matrix& s, const linalg::Vector& b, double eps_total,
    const ConvexBudgetOptions& options = {});

}  // namespace opt
}  // namespace dpcube

#endif  // DPCUBE_OPT_CONVEX_BUDGET_SOLVER_H_
