// Copyright 2026 The dpcube Authors.

#include "opt/convex_budget_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

namespace dpcube {
namespace opt {
namespace {

// Sparse column view of |S|: for column j, the (row, |S_ij|) pairs.
struct SparseColumns {
  std::vector<std::vector<std::pair<std::size_t, double>>> cols;
};

SparseColumns BuildColumns(const linalg::Matrix& s) {
  SparseColumns sc;
  for (std::size_t j = 0; j < s.cols(); ++j) {
    std::vector<std::pair<std::size_t, double>> col;
    for (std::size_t i = 0; i < s.rows(); ++i) {
      const double v = std::fabs(s(i, j));
      if (v > 0.0) col.emplace_back(i, v);
    }
    if (!col.empty()) sc.cols.push_back(std::move(col));
  }
  return sc;
}

// slack_j = eps_total - sum_i A_ji eps_i; returns min slack.
double ComputeSlacks(const SparseColumns& sc, const linalg::Vector& eps,
                     double eps_total, linalg::Vector* slacks) {
  slacks->assign(sc.cols.size(), eps_total);
  double min_slack = eps_total;
  for (std::size_t j = 0; j < sc.cols.size(); ++j) {
    double used = 0.0;
    for (const auto& [i, a] : sc.cols[j]) used += a * eps[i];
    (*slacks)[j] = eps_total - used;
    min_slack = std::min(min_slack, (*slacks)[j]);
  }
  return min_slack;
}

double BarrierObjective(const SparseColumns& sc, const linalg::Vector& b,
                        const linalg::Vector& eps, double eps_total,
                        double mu) {
  double f = 0.0;
  for (std::size_t i = 0; i < eps.size(); ++i) {
    if (eps[i] <= 0.0) return std::numeric_limits<double>::infinity();
    f += b[i] / (eps[i] * eps[i]);
    f -= mu * std::log(eps[i]);
  }
  linalg::Vector slacks;
  const double min_slack = ComputeSlacks(sc, eps, eps_total, &slacks);
  if (min_slack <= 0.0) return std::numeric_limits<double>::infinity();
  for (double sl : slacks) f -= mu * std::log(sl);
  return f;
}

}  // namespace

Result<ConvexBudgetResult> SolveConvexBudget(
    const linalg::Matrix& s, const linalg::Vector& b, double eps_total,
    const ConvexBudgetOptions& options) {
  const std::size_t m = s.rows();
  if (b.size() != m) {
    return Status::InvalidArgument("SolveConvexBudget: b size mismatch");
  }
  if (!(eps_total > 0.0)) {
    return Status::InvalidArgument("SolveConvexBudget: eps_total must be > 0");
  }
  for (double bi : b) {
    if (bi < 0.0) {
      return Status::InvalidArgument("SolveConvexBudget: b must be >= 0");
    }
  }
  const SparseColumns sc = BuildColumns(s);
  if (sc.cols.empty()) {
    return Status::InvalidArgument("SolveConvexBudget: strategy is all-zero");
  }

  // Strictly feasible uniform start: half the uniform-budget allocation.
  double max_col_sum = 0.0;
  for (const auto& col : sc.cols) {
    double sum = 0.0;
    for (const auto& [i, a] : col) sum += a;
    max_col_sum = std::max(max_col_sum, sum);
  }
  linalg::Vector eps(m, 0.5 * eps_total / max_col_sum);

  linalg::Vector slacks;
  linalg::Vector grad(m);
  double mu = options.initial_barrier;
  for (int round = 0; round < options.outer_rounds; ++round) {
    for (int iter = 0; iter < options.inner_iterations; ++iter) {
      ComputeSlacks(sc, eps, eps_total, &slacks);
      // Gradient of the barrier objective.
      for (std::size_t i = 0; i < m; ++i) {
        grad[i] = -2.0 * b[i] / (eps[i] * eps[i] * eps[i]) - mu / eps[i];
      }
      for (std::size_t j = 0; j < sc.cols.size(); ++j) {
        const double inv_slack = mu / slacks[j];
        for (const auto& [i, a] : sc.cols[j]) grad[i] += a * inv_slack;
      }
      const double gnorm = linalg::Norm2(grad);
      if (gnorm < options.tolerance) break;

      // Backtracking line search along -grad (Armijo, feasibility-aware).
      const double f0 = BarrierObjective(sc, b, eps, eps_total, mu);
      double step = 0.25 * eps_total / (gnorm + 1e-30);
      bool moved = false;
      for (int bt = 0; bt < 60; ++bt) {
        linalg::Vector cand(m);
        for (std::size_t i = 0; i < m; ++i) cand[i] = eps[i] - step * grad[i];
        const double f1 = BarrierObjective(sc, b, cand, eps_total, mu);
        if (f1 < f0 - 1e-4 * step * gnorm * gnorm) {
          eps = std::move(cand);
          moved = true;
          break;
        }
        step *= 0.5;
      }
      if (!moved) break;  // Stuck at this barrier level; shrink mu.
    }
    mu *= options.barrier_decay;
  }

  ConvexBudgetResult result;
  result.epsilons = eps;
  result.objective = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    result.objective += b[i] / (eps[i] * eps[i]);
  }
  return result;
}

}  // namespace opt
}  // namespace dpcube
