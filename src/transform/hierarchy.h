// Copyright 2026 The dpcube Authors.
//
// Dyadic hierarchical strategy over a linearised 1-D domain — the binary
// tree of Hay et al. (VLDB 2010, "Boosting the accuracy of differentially
// private histograms through consistency"). Every node stores the sum of
// its dyadic interval; any range query decomposes into O(log N) nodes.
// All nodes at the same depth have disjoint support with coefficient 1,
// so the tree satisfies the grouping property with one group per level
// (grouping number log2(N) + 1, Section 3.1 of the paper).

#ifndef DPCUBE_TRANSFORM_HIERARCHY_H_
#define DPCUBE_TRANSFORM_HIERARCHY_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "linalg/matrix.h"

namespace dpcube {
namespace transform {

/// The dyadic tree over a domain of size n = 2^g.
class DyadicHierarchy {
 public:
  /// Builds the index structure for a power-of-two domain size.
  explicit DyadicHierarchy(std::size_t domain_size);

  std::size_t domain_size() const { return n_; }
  int depth() const { return levels_; }  ///< Number of levels, g + 1.

  /// Total number of tree nodes (strategy rows): 2n - 1.
  std::size_t num_nodes() const { return 2 * n_ - 1; }

  /// Level of node `row` (0 = root). Each level is one budget group.
  int LevelOfNode(std::size_t row) const;

  /// Half-open interval [lo, hi) covered by node `row`.
  std::pair<std::size_t, std::size_t> NodeInterval(std::size_t row) const;

  /// Node ids whose disjoint intervals exactly cover [lo, hi) — the greedy
  /// dyadic decomposition, at most 2 per level.
  std::vector<std::size_t> DecomposeRange(std::size_t lo,
                                          std::size_t hi) const;

  /// Evaluates all node sums for a data vector x (size n_) in O(n).
  /// Output indexed by node id (level order: root first).
  std::vector<double> NodeSums(const std::vector<double>& x) const;

  /// Dense (2n-1) x n strategy matrix (0/1 interval indicators).
  linalg::Matrix StrategyMatrix() const;

 private:
  std::size_t n_;
  int levels_;
};

}  // namespace transform
}  // namespace dpcube

#endif  // DPCUBE_TRANSFORM_HIERARCHY_H_
