// Copyright 2026 The dpcube Authors.
//
// Fast Walsh–Hadamard transform (WHT) — the 2^d-dimensional discrete Fourier
// transform over the Boolean hypercube used throughout Section 4 of the
// paper. With the orthonormal scaling used here the basis vectors are
//   f^alpha_beta = 2^{-d/2} (-1)^{<alpha, beta>},
// the transform is an involution (applying it twice is the identity), and
// coefficient alpha of a contingency table x equals <f^alpha, x>.

#ifndef DPCUBE_TRANSFORM_WALSH_HADAMARD_H_
#define DPCUBE_TRANSFORM_WALSH_HADAMARD_H_

#include <cstddef>
#include <vector>

#include "common/bits.h"
#include "linalg/matrix.h"

namespace dpcube {
namespace transform {

/// In-place orthonormal WHT of a length-2^d vector (d inferred; size must be
/// a power of two). O(N log N). Involution: WHT(WHT(x)) == x.
void WalshHadamard(std::vector<double>* x);

/// Out-of-place convenience wrapper.
std::vector<double> WalshHadamardCopy(std::vector<double> x);

/// Single Fourier coefficient <f^alpha, x> computed directly in O(N)
/// (useful when only a few coefficients are needed and N is large).
double FourierCoefficient(const std::vector<double>& x, bits::Mask alpha);

/// The dense orthonormal Hadamard matrix H with H(alpha, beta) =
/// 2^{-d/2} (-1)^{<alpha,beta>}; row alpha is the basis vector f^alpha.
/// Only practical for small d (tests, worked examples).
linalg::Matrix HadamardMatrix(int d);

/// True iff n is a power of two (and > 0).
bool IsPowerOfTwo(std::size_t n);

/// log2 of a power of two.
int Log2OfPowerOfTwo(std::size_t n);

}  // namespace transform
}  // namespace dpcube

#endif  // DPCUBE_TRANSFORM_WALSH_HADAMARD_H_
