// Copyright 2026 The dpcube Authors.
//
// Multi-dimensional (tensor-product) Haar wavelet transform. Section 3.1
// of the paper notes that "for higher dimensional wavelets, the grouping
// number grows exponentially with the dimension of the wavelet
// transform": a p-dimensional tensor Haar basis over a 2^{g_1} x ... x
// 2^{g_p} grid groups by the tuple of per-axis levels, giving
// prod_i (g_i + 1) groups. Rows sharing a level tuple have disjoint
// support (their per-axis supports are disjoint on at least one axis) and
// constant magnitude (the product of per-axis level magnitudes), so
// Definition 3.1 holds and the closed-form optimal budgets apply. This
// module provides the transform, its inverse, and the grouping metadata;
// strategy/tensor_wavelet_strategy.h builds the 2-D rectangle-query
// strategy on top.

#ifndef DPCUBE_TRANSFORM_TENSOR_HAAR_H_
#define DPCUBE_TRANSFORM_TENSOR_HAAR_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"

namespace dpcube {
namespace transform {

/// Total domain size 2^{sum of log2_dims}.
std::uint64_t TensorDomainSize(const std::vector<int>& log2_dims);

/// In-place forward tensor Haar transform: the 1-D orthonormal Haar
/// analysis applied along every axis (axis order does not matter; the
/// per-axis transforms commute). `x` is row-major with axis 0 slowest;
/// x->size() must equal TensorDomainSize(log2_dims).
void TensorHaarForward(std::vector<double>* x,
                       const std::vector<int>& log2_dims);

/// Inverse of TensorHaarForward (orthonormal transpose per axis).
void TensorHaarInverse(std::vector<double>* x,
                       const std::vector<int>& log2_dims);

/// Number of budget groups: prod_i (g_i + 1). Exponential in the number
/// of axes for fixed per-axis depth — the paper's Section 3.1 remark.
int TensorHaarNumGroups(const std::vector<int>& log2_dims);

/// Group of the coefficient at flat index `index`: the mixed-radix code of
/// the per-axis levels (axis 0 most significant).
int TensorHaarGroupOfIndex(std::uint64_t index,
                           const std::vector<int>& log2_dims);

/// Magnitude of the non-zero entries of the group's basis rows: the
/// product of the per-axis level magnitudes (the group's column norm C_r).
double TensorHaarGroupMagnitude(int group, const std::vector<int>& log2_dims);

/// Dense tensor Haar analysis matrix; rows follow the flat coefficient
/// layout of TensorHaarForward. Small domains only (tests).
linalg::Matrix TensorHaarMatrix(const std::vector<int>& log2_dims);

}  // namespace transform
}  // namespace dpcube

#endif  // DPCUBE_TRANSFORM_TENSOR_HAAR_H_
