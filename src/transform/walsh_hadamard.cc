// Copyright 2026 The dpcube Authors.

#include "transform/walsh_hadamard.h"

#include <bit>
#include <cassert>
#include <cmath>

#include "common/thread_pool.h"

namespace dpcube {
namespace transform {

namespace {

// Below this size the whole transform is cheaper than one fork/join, so
// it stays on the calling thread (marginal-local WHTs are almost always
// tiny; only full-domain tables cross this).
constexpr std::size_t kParallelCutoff = std::size_t{1} << 14;

}  // namespace

bool IsPowerOfTwo(std::size_t n) { return n > 0 && (n & (n - 1)) == 0; }

int Log2OfPowerOfTwo(std::size_t n) {
  assert(IsPowerOfTwo(n));
  return std::countr_zero(n);
}

void WalshHadamard(std::vector<double>* x) {
  const std::size_t n = x->size();
  assert(IsPowerOfTwo(n));
  std::vector<double>& v = *x;
  ThreadPool& pool = ThreadPool::Shared();
  const bool parallel = n >= kParallelCutoff && pool.parallelism() > 1;
  for (std::size_t len = 1; len < n; len <<= 1) {
    if (parallel) {
      // Every stage is a disjoint set of (k, k+len) pairs, so the blocked
      // fan-out writes non-overlapping elements and the result is
      // bit-identical to the sequential sweep; the join between stages
      // orders the dependent reads.
      pool.ParallelForBlocks(
          0, n >> 1, std::size_t{1} << 12,
          [&v, len](std::size_t lo, std::size_t hi) {
            // Pair p lives at k = (p / len) * 2len + (p % len); decompose
            // once and track incrementally (a division per butterfly
            // costs more than the butterfly).
            const std::size_t block = lo / len;
            std::size_t off = lo - block * len;
            std::size_t k = block * (len << 1) + off;
            for (std::size_t p = lo; p < hi; ++p) {
              const double a = v[k];
              const double b = v[k + len];
              v[k] = a + b;
              v[k + len] = a - b;
              if (++off == len) {
                off = 0;
                k += len + 1;
              } else {
                ++k;
              }
            }
          });
      continue;
    }
    for (std::size_t base = 0; base < n; base += len << 1) {
      for (std::size_t k = base; k < base + len; ++k) {
        const double a = v[k];
        const double b = v[k + len];
        v[k] = a + b;
        v[k + len] = a - b;
      }
    }
  }
  // Orthonormal scaling 2^{-d/2}.
  const double scale = 1.0 / std::sqrt(static_cast<double>(n));
  if (parallel) {
    pool.ParallelForBlocks(0, n, std::size_t{1} << 14,
                           [&v, scale](std::size_t lo, std::size_t hi) {
                             for (std::size_t i = lo; i < hi; ++i) {
                               v[i] *= scale;
                             }
                           });
  } else {
    for (double& value : v) value *= scale;
  }
}

std::vector<double> WalshHadamardCopy(std::vector<double> x) {
  WalshHadamard(&x);
  return x;
}

double FourierCoefficient(const std::vector<double>& x, bits::Mask alpha) {
  assert(IsPowerOfTwo(x.size()));
  double sum = 0.0;
  for (std::size_t beta = 0; beta < x.size(); ++beta) {
    sum += bits::FourierSign(alpha, beta) * x[beta];
  }
  return sum / std::sqrt(static_cast<double>(x.size()));
}

linalg::Matrix HadamardMatrix(int d) {
  assert(d >= 0 && d < 28);
  const std::size_t n = std::size_t{1} << d;
  const double scale = 1.0 / std::sqrt(static_cast<double>(n));
  linalg::Matrix h(n, n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      h(a, b) = bits::FourierSign(a, b) * scale;
    }
  }
  return h;
}

}  // namespace transform
}  // namespace dpcube
