// Copyright 2026 The dpcube Authors.

#include "transform/walsh_hadamard.h"

#include <bit>
#include <cassert>
#include <cmath>

namespace dpcube {
namespace transform {

bool IsPowerOfTwo(std::size_t n) { return n > 0 && (n & (n - 1)) == 0; }

int Log2OfPowerOfTwo(std::size_t n) {
  assert(IsPowerOfTwo(n));
  return std::countr_zero(n);
}

void WalshHadamard(std::vector<double>* x) {
  const std::size_t n = x->size();
  assert(IsPowerOfTwo(n));
  std::vector<double>& v = *x;
  for (std::size_t len = 1; len < n; len <<= 1) {
    for (std::size_t base = 0; base < n; base += len << 1) {
      for (std::size_t k = base; k < base + len; ++k) {
        const double a = v[k];
        const double b = v[k + len];
        v[k] = a + b;
        v[k + len] = a - b;
      }
    }
  }
  // Orthonormal scaling 2^{-d/2}.
  const double scale = 1.0 / std::sqrt(static_cast<double>(n));
  for (double& value : v) value *= scale;
}

std::vector<double> WalshHadamardCopy(std::vector<double> x) {
  WalshHadamard(&x);
  return x;
}

double FourierCoefficient(const std::vector<double>& x, bits::Mask alpha) {
  assert(IsPowerOfTwo(x.size()));
  double sum = 0.0;
  for (std::size_t beta = 0; beta < x.size(); ++beta) {
    sum += bits::FourierSign(alpha, beta) * x[beta];
  }
  return sum / std::sqrt(static_cast<double>(x.size()));
}

linalg::Matrix HadamardMatrix(int d) {
  assert(d >= 0 && d < 28);
  const std::size_t n = std::size_t{1} << d;
  const double scale = 1.0 / std::sqrt(static_cast<double>(n));
  linalg::Matrix h(n, n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      h(a, b) = bits::FourierSign(a, b) * scale;
    }
  }
  return h;
}

}  // namespace transform
}  // namespace dpcube
