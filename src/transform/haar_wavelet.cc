// Copyright 2026 The dpcube Authors.

#include "transform/haar_wavelet.h"

#include <bit>
#include <cassert>
#include <cmath>

#include "transform/walsh_hadamard.h"

namespace dpcube {
namespace transform {
namespace {
const double kInvSqrt2 = 1.0 / std::sqrt(2.0);
}  // namespace

void HaarForward(std::vector<double>* x) {
  const std::size_t n = x->size();
  assert(IsPowerOfTwo(n));
  std::vector<double>& v = *x;
  std::vector<double> tmp(n);
  for (std::size_t len = n; len > 1; len >>= 1) {
    const std::size_t half = len >> 1;
    for (std::size_t i = 0; i < half; ++i) {
      tmp[i] = (v[2 * i] + v[2 * i + 1]) * kInvSqrt2;
      tmp[half + i] = (v[2 * i] - v[2 * i + 1]) * kInvSqrt2;
    }
    for (std::size_t i = 0; i < len; ++i) v[i] = tmp[i];
  }
}

void HaarInverse(std::vector<double>* x) {
  const std::size_t n = x->size();
  assert(IsPowerOfTwo(n));
  std::vector<double>& v = *x;
  std::vector<double> tmp(n);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len >> 1;
    for (std::size_t i = 0; i < half; ++i) {
      tmp[2 * i] = (v[i] + v[half + i]) * kInvSqrt2;
      tmp[2 * i + 1] = (v[i] - v[half + i]) * kInvSqrt2;
    }
    for (std::size_t i = 0; i < len; ++i) v[i] = tmp[i];
  }
}

linalg::Matrix HaarMatrix(int log2_n) {
  assert(log2_n >= 0 && log2_n < 24);
  const std::size_t n = std::size_t{1} << log2_n;
  linalg::Matrix h(n, n);
  std::vector<double> unit(n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    // Row r of the orthonormal analysis matrix equals the synthesis of e_r.
    unit.assign(n, 0.0);
    unit[r] = 1.0;
    HaarInverse(&unit);
    h.SetRow(r, unit);
  }
  return h;
}

int HaarLevelOfIndex(std::size_t index, std::size_t n) {
  (void)n;
  assert(IsPowerOfTwo(n) && index < n);
  if (index == 0) return 0;
  // Level l >= 1 occupies indices [2^{l-1}, 2^l).
  return std::bit_width(index);
}

double HaarLevelMagnitude(int level, int log2_n) {
  assert(level >= 0 && level <= log2_n);
  if (level == 0) {
    return std::pow(2.0, -0.5 * log2_n);
  }
  // Detail level l has support 2^{g - l + 1} and magnitude 2^{-(g-l+1)/2}.
  return std::pow(2.0, -0.5 * (log2_n - level + 1));
}

}  // namespace transform
}  // namespace dpcube
