// Copyright 2026 The dpcube Authors.
//
// 1-D Haar wavelet transform — the strategy matrix of Xiao, Wang & Gehrke
// (ICDE 2010, "Differential privacy via wavelet transforms"), one of the
// prior-work strategies whose accuracy the paper improves with non-uniform
// budgets. The orthonormal Haar basis over a length-2^g domain has
// g + 1 "levels": the overall average plus g detail levels; rows within a
// level have disjoint support and equal magnitude, which is exactly the
// grouping property of Definition 3.1 (grouping number g + 1).

#ifndef DPCUBE_TRANSFORM_HAAR_WAVELET_H_
#define DPCUBE_TRANSFORM_HAAR_WAVELET_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"

namespace dpcube {
namespace transform {

/// In-place orthonormal Haar analysis transform of a length-2^g vector.
/// Output layout: index 0 holds the scaling (average) coefficient, then
/// detail coefficients from the coarsest level (1 coefficient) to the
/// finest (N/2 coefficients).
void HaarForward(std::vector<double>* x);

/// Inverse of HaarForward (orthonormal, so this is the transpose).
void HaarInverse(std::vector<double>* x);

/// Dense orthonormal Haar analysis matrix (rows = wavelet basis vectors,
/// same layout as HaarForward). Only practical for small domains.
linalg::Matrix HaarMatrix(int log2_n);

/// Level of coefficient `index` in the HaarForward layout:
/// 0 for the scaling coefficient, then 1..g from coarsest to finest detail.
/// All coefficients of a level form one group under Definition 3.1.
int HaarLevelOfIndex(std::size_t index, std::size_t n);

/// Magnitude of the non-zero entries of a level's basis rows:
/// 2^{-(g - level + 1)/2} for detail levels, 2^{-g/2} for the scaling row.
/// This is the bounded column norm C_r of the level's group.
double HaarLevelMagnitude(int level, int log2_n);

}  // namespace transform
}  // namespace dpcube

#endif  // DPCUBE_TRANSFORM_HAAR_WAVELET_H_
