// Copyright 2026 The dpcube Authors.

#include "transform/tensor_haar.h"

#include <cassert>

#include "common/thread_pool.h"
#include "transform/haar_wavelet.h"

namespace dpcube {
namespace transform {

namespace {

// Applies `fn` (a 1-D in-place transform) along axis `axis` of the
// row-major tensor x with the given log2 dimensions. The lines are
// pairwise disjoint, so they fan out over the shared pool (one scratch
// buffer per chunk); per-line arithmetic is unchanged, keeping the result
// bit-identical for every thread count.
template <typename Fn>
void ApplyAlongAxis(std::vector<double>* x, const std::vector<int>& log2_dims,
                    std::size_t axis, Fn fn) {
  const std::size_t p = log2_dims.size();
  const std::size_t n_axis = std::size_t{1} << log2_dims[axis];
  // Row-major, axis 0 slowest: stride of `axis` is the product of the
  // sizes of all later axes.
  std::size_t stride = 1;
  for (std::size_t a = axis + 1; a < p; ++a) {
    stride <<= log2_dims[a];
  }
  const std::size_t num_lines = x->size() / n_axis;
  constexpr std::size_t kParallelCutoffElements = std::size_t{1} << 14;
  const std::size_t grain =
      x->size() >= kParallelCutoffElements
          ? std::max<std::size_t>(1, (std::size_t{1} << 14) / n_axis)
          : num_lines;  // Small tensors stay on the calling thread.
  ThreadPool::Shared().ParallelForBlocks(
      0, num_lines, grain, [&](std::size_t lo, std::size_t hi) {
        std::vector<double> line(n_axis);
        for (std::size_t l = lo; l < hi; ++l) {
          const std::size_t o = l / stride;
          const std::size_t s = l - o * stride;
          const std::size_t base = o * n_axis * stride + s;
          for (std::size_t i = 0; i < n_axis; ++i) {
            line[i] = (*x)[base + i * stride];
          }
          fn(&line);
          for (std::size_t i = 0; i < n_axis; ++i) {
            (*x)[base + i * stride] = line[i];
          }
        }
      });
}

}  // namespace

std::uint64_t TensorDomainSize(const std::vector<int>& log2_dims) {
  int total = 0;
  for (int g : log2_dims) total += g;
  return std::uint64_t{1} << total;
}

void TensorHaarForward(std::vector<double>* x,
                       const std::vector<int>& log2_dims) {
  assert(x->size() == TensorDomainSize(log2_dims));
  for (std::size_t axis = 0; axis < log2_dims.size(); ++axis) {
    ApplyAlongAxis(x, log2_dims, axis, HaarForward);
  }
}

void TensorHaarInverse(std::vector<double>* x,
                       const std::vector<int>& log2_dims) {
  assert(x->size() == TensorDomainSize(log2_dims));
  for (std::size_t axis = 0; axis < log2_dims.size(); ++axis) {
    ApplyAlongAxis(x, log2_dims, axis, HaarInverse);
  }
}

int TensorHaarNumGroups(const std::vector<int>& log2_dims) {
  int groups = 1;
  for (int g : log2_dims) groups *= g + 1;
  return groups;
}

int TensorHaarGroupOfIndex(std::uint64_t index,
                           const std::vector<int>& log2_dims) {
  // Decompose the flat index into per-axis coefficient indices (axis 0
  // most significant), then mix the per-axis levels in the same radix.
  const std::size_t p = log2_dims.size();
  int group = 0;
  // Walk axes from slowest (0) to fastest: peel off high-order digits.
  std::uint64_t rest = index;
  std::uint64_t scale = TensorDomainSize(log2_dims);
  for (std::size_t a = 0; a < p; ++a) {
    const std::uint64_t n_axis = std::uint64_t{1} << log2_dims[a];
    scale /= n_axis;
    const std::uint64_t axis_index = rest / scale;
    rest %= scale;
    const int level =
        HaarLevelOfIndex(axis_index, static_cast<std::size_t>(n_axis));
    group = group * (log2_dims[a] + 1) + level;
  }
  return group;
}

double TensorHaarGroupMagnitude(int group,
                                const std::vector<int>& log2_dims) {
  // Decode the mixed-radix level tuple (axis 0 most significant) and
  // multiply the per-axis magnitudes.
  const std::size_t p = log2_dims.size();
  std::vector<int> levels(p, 0);
  int rest = group;
  for (std::size_t a = p; a-- > 0;) {
    levels[a] = rest % (log2_dims[a] + 1);
    rest /= log2_dims[a] + 1;
  }
  double magnitude = 1.0;
  for (std::size_t a = 0; a < p; ++a) {
    magnitude *= HaarLevelMagnitude(levels[a], log2_dims[a]);
  }
  return magnitude;
}

linalg::Matrix TensorHaarMatrix(const std::vector<int>& log2_dims) {
  const std::uint64_t n = TensorDomainSize(log2_dims);
  linalg::Matrix m(n, n);
  // Column c of the analysis matrix is the transform of the c-th
  // indicator vector.
  std::vector<double> e(n, 0.0);
  for (std::uint64_t c = 0; c < n; ++c) {
    e.assign(n, 0.0);
    e[c] = 1.0;
    TensorHaarForward(&e, log2_dims);
    for (std::uint64_t r = 0; r < n; ++r) m(r, c) = e[r];
  }
  return m;
}

}  // namespace transform
}  // namespace dpcube
