// Copyright 2026 The dpcube Authors.

#include "transform/hierarchy.h"

#include <bit>
#include <cassert>

#include "transform/walsh_hadamard.h"

namespace dpcube {
namespace transform {

DyadicHierarchy::DyadicHierarchy(std::size_t domain_size) : n_(domain_size) {
  assert(IsPowerOfTwo(n_));
  levels_ = Log2OfPowerOfTwo(n_) + 1;
}

int DyadicHierarchy::LevelOfNode(std::size_t row) const {
  assert(row < num_nodes());
  // Heap numbering: node i sits at level bit_width(i + 1) - 1.
  return std::bit_width(row + 1) - 1;
}

std::pair<std::size_t, std::size_t> DyadicHierarchy::NodeInterval(
    std::size_t row) const {
  const int level = LevelOfNode(row);
  const std::size_t first_at_level = (std::size_t{1} << level) - 1;
  const std::size_t idx = row - first_at_level;
  const std::size_t width = n_ >> level;
  return {idx * width, (idx + 1) * width};
}

std::vector<std::size_t> DyadicHierarchy::DecomposeRange(std::size_t lo,
                                                         std::size_t hi) const {
  assert(lo <= hi && hi <= n_);
  std::vector<std::size_t> out;
  if (lo == hi) return out;
  // Iterative DFS from the root, taking whole nodes when fully contained.
  std::vector<std::size_t> stack = {0};
  while (!stack.empty()) {
    const std::size_t node = stack.back();
    stack.pop_back();
    const auto [node_lo, node_hi] = NodeInterval(node);
    if (node_hi <= lo || node_lo >= hi) continue;  // Disjoint.
    if (lo <= node_lo && node_hi <= hi) {
      out.push_back(node);  // Fully contained: take the node.
      continue;
    }
    stack.push_back(2 * node + 1);
    stack.push_back(2 * node + 2);
  }
  return out;
}

std::vector<double> DyadicHierarchy::NodeSums(
    const std::vector<double>& x) const {
  assert(x.size() == n_);
  std::vector<double> sums(num_nodes(), 0.0);
  const std::size_t first_leaf = n_ - 1;
  for (std::size_t j = 0; j < n_; ++j) sums[first_leaf + j] = x[j];
  for (std::size_t i = first_leaf; i-- > 0;) {
    sums[i] = sums[2 * i + 1] + sums[2 * i + 2];
  }
  return sums;
}

linalg::Matrix DyadicHierarchy::StrategyMatrix() const {
  linalg::Matrix s(num_nodes(), n_);
  for (std::size_t row = 0; row < num_nodes(); ++row) {
    const auto [lo, hi] = NodeInterval(row);
    for (std::size_t j = lo; j < hi; ++j) s(row, j) = 1.0;
  }
  return s;
}

}  // namespace transform
}  // namespace dpcube
