// Copyright 2026 The dpcube Authors.
//
// Dry-run accuracy prediction: everything a data owner wants to know
// about a release BEFORE spending privacy budget. The paper's variance
// formulas are data-independent, so the per-marginal noise level — and
// from it the expected absolute error per cell, E|Laplace| = sqrt(V/2),
// E|Gaussian| = sqrt(2V/pi) — is known exactly in advance.

#ifndef DPCUBE_ENGINE_VARIANCE_REPORT_H_
#define DPCUBE_ENGINE_VARIANCE_REPORT_H_

#include <vector>

#include "budget/grouped_budget.h"
#include "common/status.h"
#include "dp/privacy.h"
#include "strategy/marginal_strategy.h"

namespace dpcube {
namespace engine {

struct VarianceReport {
  /// Per-marginal predicted cell variance, workload order.
  linalg::Vector cell_variances;
  /// Per-marginal expected |noise| per cell (exact for the default
  /// recovery's noise distribution; after the consistency projection the
  /// true error is weakly smaller, so this is a safe upper bound).
  linalg::Vector expected_abs_error;
  /// Predicted total output variance a^T Var(y) (a = 1).
  double total_variance = 0.0;
  /// The group budgets the prediction assumed.
  linalg::Vector group_budgets;
};

/// Predicts the accuracy of releasing `strat`'s workload at the given
/// privacy parameters and budget mode, without touching any data.
Result<VarianceReport> PredictRelease(
    const strategy::MarginalStrategy& strat, const dp::PrivacyParams& params,
    budget::BudgetMode budget_mode = budget::BudgetMode::kOptimal);

}  // namespace engine
}  // namespace dpcube

#endif  // DPCUBE_ENGINE_VARIANCE_REPORT_H_
