// Copyright 2026 The dpcube Authors.

#include "engine/metrics.h"

#include <algorithm>
#include <cmath>

namespace dpcube {
namespace engine {

Result<ErrorReport> EvaluateRelease(
    const marginal::Workload& workload, const data::SparseCounts& data,
    const std::vector<marginal::MarginalTable>& released) {
  if (released.size() != workload.num_marginals()) {
    return Status::InvalidArgument("released marginal count mismatch");
  }
  ErrorReport report;
  double abs_sum = 0.0;
  std::size_t cell_count = 0;
  double rel_sum = 0.0;
  std::size_t rel_count = 0;

  for (std::size_t i = 0; i < released.size(); ++i) {
    if (released[i].alpha() != workload.mask(i)) {
      return Status::InvalidArgument("released marginals out of order");
    }
    const marginal::MarginalTable truth =
        marginal::ComputeMarginal(data, workload.mask(i));
    double marginal_abs = 0.0;
    for (std::size_t g = 0; g < truth.num_cells(); ++g) {
      const double err = std::fabs(released[i].value(g) - truth.value(g));
      marginal_abs += err;
      report.max_absolute_error = std::max(report.max_absolute_error, err);
    }
    abs_sum += marginal_abs;
    cell_count += truth.num_cells();

    const double mean_true = truth.MeanCellValue();
    const double mean_abs =
        marginal_abs / static_cast<double>(truth.num_cells());
    if (mean_true > 0.0) {
      const double rel = mean_abs / mean_true;
      report.per_marginal_relative.push_back(rel);
      rel_sum += rel;
      ++rel_count;
    } else {
      report.per_marginal_relative.push_back(0.0);
    }
  }
  report.absolute_error =
      cell_count > 0 ? abs_sum / static_cast<double>(cell_count) : 0.0;
  report.relative_error =
      rel_count > 0 ? rel_sum / static_cast<double>(rel_count) : 0.0;
  return report;
}

}  // namespace engine
}  // namespace dpcube
