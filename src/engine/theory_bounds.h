// Copyright 2026 The dpcube Authors.
//
// The asymptotic bounds of the paper's Table 1: expected L1 noise per
// marginal, E[||C^beta x - C~^beta||_1], when releasing all k-way
// marginals of a d-dimensional binary domain (k < d/2). Constants inside
// the O(.) are dropped; the bench bench_table1_marginal_bounds compares
// the *shape* of these expressions against measured noise.

#ifndef DPCUBE_ENGINE_THEORY_BOUNDS_H_
#define DPCUBE_ENGINE_THEORY_BOUNDS_H_

namespace dpcube {
namespace engine {

/// Base counts, epsilon-DP [Dwork et al. 06]: 2^{(d+k)/2} / eps.
double BoundBaseCountsPure(int d, int k, double eps);

/// Base counts, (eps, delta)-DP: 2^{(d+k)/2} sqrt(log(1/delta)) / eps.
double BoundBaseCountsApprox(int d, int k, double eps, double delta);

/// Direct marginals, epsilon-DP [Barak et al. 07]: 2^k C(d,k) / eps.
double BoundMarginalsPure(int d, int k, double eps);

/// Direct marginals, (eps,delta)-DP: 2^k sqrt(C(d,k) log(1/delta)) / eps.
double BoundMarginalsApprox(int d, int k, double eps, double delta);

/// Fourier, uniform noise, epsilon-DP (Theorem B.1, the paper's improved
/// analysis): k C(d,k) sqrt(2^k) / eps.
double BoundFourierUniformPure(int d, int k, double eps);

/// Fourier, uniform noise, (eps,delta)-DP [Barak et al. 07]:
/// sqrt(k 2^k C(d,k) log(1/delta)) / eps.
double BoundFourierUniformApprox(int d, int k, double eps, double delta);

/// Fourier, non-uniform noise, epsilon-DP (Lemma 4.2(1)):
/// k sqrt(C(d,k) C(d+k,k)) / eps.
double BoundFourierNonUniformPure(int d, int k, double eps);

/// Fourier, non-uniform noise, (eps,delta)-DP (Lemma 4.2(2)):
/// sqrt(k C(d+k,k) log(1/delta)) / eps.
double BoundFourierNonUniformApprox(int d, int k, double eps, double delta);

/// Unconditional lower bound [Kasiviswanathan et al. 10]:
/// sqrt(C(d,k)) / eps (log factors dropped).
double BoundLower(int d, int k, double eps);

}  // namespace engine
}  // namespace dpcube

#endif  // DPCUBE_ENGINE_THEORY_BOUNDS_H_
