// Copyright 2026 The dpcube Authors.

#include "engine/theory_bounds.h"

#include <cmath>

#include "common/bits.h"

namespace dpcube {
namespace engine {
namespace {
using bits::Binomial;
}  // namespace

double BoundBaseCountsPure(int d, int k, double eps) {
  return std::pow(2.0, 0.5 * (d + k)) / eps;
}

double BoundBaseCountsApprox(int d, int k, double eps, double delta) {
  return std::pow(2.0, 0.5 * (d + k)) * std::sqrt(std::log(1.0 / delta)) /
         eps;
}

double BoundMarginalsPure(int d, int k, double eps) {
  return std::pow(2.0, k) * Binomial(d, k) / eps;
}

double BoundMarginalsApprox(int d, int k, double eps, double delta) {
  return std::pow(2.0, k) *
         std::sqrt(Binomial(d, k) * std::log(1.0 / delta)) / eps;
}

double BoundFourierUniformPure(int d, int k, double eps) {
  return k * Binomial(d, k) * std::pow(2.0, 0.5 * k) / eps;
}

double BoundFourierUniformApprox(int d, int k, double eps, double delta) {
  return std::sqrt(k * std::pow(2.0, k) * Binomial(d, k) *
                   std::log(1.0 / delta)) /
         eps;
}

double BoundFourierNonUniformPure(int d, int k, double eps) {
  return k * std::sqrt(Binomial(d, k) * Binomial(d + k, k)) / eps;
}

double BoundFourierNonUniformApprox(int d, int k, double eps, double delta) {
  return std::sqrt(k * Binomial(d + k, k) * std::log(1.0 / delta)) / eps;
}

double BoundLower(int d, int k, double eps) {
  return std::sqrt(Binomial(d, k)) / eps;
}

}  // namespace engine
}  // namespace dpcube
