// Copyright 2026 The dpcube Authors.

#include "engine/release_io.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace dpcube {
namespace engine {

Status WriteReleaseCsv(const std::string& path,
                       const std::vector<marginal::MarginalTable>& marginals,
                       const linalg::Vector& cell_variances,
                       const PhaseTimings* build_timings) {
  if (!cell_variances.empty() && cell_variances.size() != marginals.size()) {
    return Status::InvalidArgument(
        "cell_variances must be empty or have one entry per marginal");
  }
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open '" + path + "' for writing");
  const int d = marginals.empty() ? 0 : marginals.front().d();
  for (const marginal::MarginalTable& m : marginals) {
    if (m.d() != d) {
      return Status::InvalidArgument(
          "all marginals must share the same domain dimensionality");
    }
  }
  out << "# dpcube-release d=" << d << "\n";
  if (!cell_variances.empty()) {
    out << "# dpcube-cell-variances";
    char field[32];
    for (const double v : cell_variances) {
      std::snprintf(field, sizeof(field), " %.17g", v);
      out << field;
    }
    out << "\n";
  }
  if (build_timings != nullptr) {
    char header[192];
    std::snprintf(header, sizeof(header),
                  "# dpcube-build-seconds construction=%.6f budget=%.6f "
                  "measure=%.6f consistency=%.6f total=%.6f\n",
                  build_timings->construction_seconds,
                  build_timings->budget_seconds,
                  build_timings->measure_seconds,
                  build_timings->consistency_seconds,
                  build_timings->total_seconds);
    out << header;
  }
  out << "mask,cell,value\n";
  char line[96];
  for (const marginal::MarginalTable& m : marginals) {
    for (std::size_t g = 0; g < m.num_cells(); ++g) {
      std::snprintf(line, sizeof(line), "%" PRIu64 ",%zu,%.17g\n",
                    static_cast<std::uint64_t>(m.alpha()), g, m.value(g));
      out << line;
    }
  }
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::OK();
}

Result<LoadedRelease> ReadReleaseCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::string line;
  if (!std::getline(in, line) ||
      line.rfind("# dpcube-release d=", 0) != 0) {
    return Status::InvalidArgument("'" + path + "': missing release header");
  }
  int d = 0;
  try {
    d = std::stoi(line.substr(std::string("# dpcube-release d=").size()));
  } catch (const std::exception&) {
    return Status::InvalidArgument("'" + path + "': bad dimensionality");
  }
  LoadedRelease release;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("'" + path + "': missing column header");
  }
  const std::string kVarianceHeader = "# dpcube-cell-variances";
  if (line.rfind(kVarianceHeader, 0) == 0) {
    std::stringstream vs(line.substr(kVarianceHeader.size()));
    double v = 0.0;
    while (vs >> v) release.cell_variances.push_back(v);
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("'" + path + "': missing column header");
    }
  }
  const std::string kBuildHeader = "# dpcube-build-seconds";
  if (line.rfind(kBuildHeader, 0) == 0) {
    std::stringstream ts(line.substr(kBuildHeader.size()));
    std::string field;
    while (ts >> field) {
      const std::size_t eq = field.find('=');
      if (eq == std::string::npos) continue;
      const std::string key = field.substr(0, eq);
      double value = 0.0;
      try {
        value = std::stod(field.substr(eq + 1));
      } catch (const std::exception&) {
        continue;  // Tolerated, like any unknown comment content.
      }
      if (key == "construction") {
        release.build_timings.construction_seconds = value;
      } else if (key == "budget") {
        release.build_timings.budget_seconds = value;
      } else if (key == "measure") {
        release.build_timings.measure_seconds = value;
      } else if (key == "consistency") {
        release.build_timings.consistency_seconds = value;
      } else if (key == "total") {
        release.build_timings.total_seconds = value;
      }
    }
    release.has_build_timings = true;
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("'" + path + "': missing column header");
    }
  }
  if (line != "mask,cell,value") {
    return Status::InvalidArgument("'" + path + "': missing column header");
  }

  std::vector<bits::Mask> masks;
  std::size_t line_no = 2;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::stringstream ss(line);
    std::string mask_field, cell_field, value_field;
    if (!std::getline(ss, mask_field, ',') ||
        !std::getline(ss, cell_field, ',') ||
        !std::getline(ss, value_field)) {
      return Status::InvalidArgument("'" + path + "' line " +
                                     std::to_string(line_no) + ": malformed");
    }
    bits::Mask mask;
    std::size_t cell;
    double value;
    try {
      mask = std::stoull(mask_field);
      cell = std::stoull(cell_field);
      value = std::stod(value_field);
    } catch (const std::exception&) {
      return Status::InvalidArgument("'" + path + "' line " +
                                     std::to_string(line_no) +
                                     ": non-numeric field");
    }
    if (release.marginals.empty() ||
        release.marginals.back().alpha() != mask) {
      masks.push_back(mask);
      release.marginals.emplace_back(mask, d);
    }
    marginal::MarginalTable& table = release.marginals.back();
    if (cell >= table.num_cells()) {
      return Status::OutOfRange("'" + path + "' line " +
                                std::to_string(line_no) +
                                ": cell index out of range");
    }
    table.value(cell) = value;
  }
  if (!release.cell_variances.empty() &&
      release.cell_variances.size() != release.marginals.size()) {
    return Status::InvalidArgument(
        "'" + path + "': cell-variance count does not match marginal count");
  }
  release.workload = marginal::Workload(d, std::move(masks));
  return release;
}

}  // namespace engine
}  // namespace dpcube
