// Copyright 2026 The dpcube Authors.

#include "engine/release_engine.h"

#include <chrono>

#include "budget/grouped_budget.h"
#include "recovery/consistency.h"

namespace dpcube {
namespace engine {

Result<ReleaseOutcome> ReleaseWorkload(const strategy::MarginalStrategy& strat,
                                       const data::SparseCounts& data,
                                       const ReleaseOptions& options,
                                       Rng* rng) {
  DPCUBE_RETURN_NOT_OK(options.params.Validate());
  const auto start = std::chrono::steady_clock::now();

  // Step 2: budgets.
  Result<budget::GroupBudgets> budgets =
      options.budget_mode == BudgetMode::kOptimal
          ? budget::OptimalGroupBudgets(strat.groups(), options.params)
          : budget::UniformGroupBudgets(strat.groups(), options.params);
  if (!budgets.ok()) return budgets.status();

  // Measure + default recovery.
  DPCUBE_ASSIGN_OR_RETURN(
      strategy::Release release,
      strat.Run(data, budgets.value().eta, options.params, rng));

  ReleaseOutcome outcome;
  outcome.predicted_variance = budgets.value().variance_objective;
  outcome.group_budgets = budgets.value().eta;
  outcome.consistent = release.consistent;

  // Step 3: consistency projection (doubles as the optimal GLS recovery).
  if (options.enforce_consistency && !release.consistent) {
    DPCUBE_ASSIGN_OR_RETURN(
        outcome.marginals,
        recovery::ProjectConsistentL2(strat.workload(), release.marginals,
                                      release.cell_variances));
    outcome.consistent = true;
  } else {
    outcome.marginals = std::move(release.marginals);
  }

  outcome.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return outcome;
}

}  // namespace engine
}  // namespace dpcube
