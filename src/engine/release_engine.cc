// Copyright 2026 The dpcube Authors.

#include "engine/release_engine.h"

#include <chrono>

#include "budget/grouped_budget.h"
#include "recovery/consistency.h"

namespace dpcube {
namespace engine {

Result<ReleaseOutcome> ReleaseWorkload(const strategy::MarginalStrategy& strat,
                                       const data::SparseCounts& data,
                                       const ReleaseOptions& options,
                                       Rng* rng) {
  DPCUBE_RETURN_NOT_OK(options.params.Validate());
  const auto start = std::chrono::steady_clock::now();
  auto seconds_since = [](std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  // Step 2: budgets.
  Result<budget::GroupBudgets> budgets =
      options.budget_mode == BudgetMode::kOptimal
          ? budget::OptimalGroupBudgets(strat.groups(), options.params)
          : budget::UniformGroupBudgets(strat.groups(), options.params);
  if (!budgets.ok()) return budgets.status();

  ReleaseOutcome outcome;
  outcome.timings.construction_seconds = strat.construction_seconds();
  outcome.timings.budget_seconds = seconds_since(start);

  // Measure + default recovery.
  const auto measure_start = std::chrono::steady_clock::now();
  DPCUBE_ASSIGN_OR_RETURN(
      strategy::Release release,
      strat.Run(data, budgets.value().eta, options.params, rng));
  outcome.timings.measure_seconds = seconds_since(measure_start);

  outcome.predicted_variance = budgets.value().variance_objective;
  outcome.group_budgets = budgets.value().eta;
  outcome.consistent = release.consistent;

  // Step 3: consistency projection (doubles as the optimal GLS recovery).
  const auto consistency_start = std::chrono::steady_clock::now();
  if (options.enforce_consistency && !release.consistent) {
    DPCUBE_ASSIGN_OR_RETURN(
        outcome.marginals,
        recovery::ProjectConsistentL2(strat.workload(), release.marginals,
                                      release.cell_variances));
    outcome.consistent = true;
    outcome.timings.consistency_seconds = seconds_since(consistency_start);
  } else {
    outcome.marginals = std::move(release.marginals);
  }

  outcome.elapsed_seconds = seconds_since(start);
  outcome.timings.total_seconds = outcome.elapsed_seconds;
  return outcome;
}

}  // namespace engine
}  // namespace dpcube
