// Copyright 2026 The dpcube Authors.
//
// Serialisation of private releases. A released workload is written as a
// CSV of (marginal mask, local cell index, value) rows with a header
// carrying the domain dimensionality, so a release can be archived,
// diffed, or consumed by downstream tooling without this library.

#ifndef DPCUBE_ENGINE_RELEASE_IO_H_
#define DPCUBE_ENGINE_RELEASE_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "marginal/marginal_table.h"
#include "marginal/workload.h"

namespace dpcube {
namespace engine {

/// Writes released marginals as CSV:
///   # dpcube-release d=<d>
///   mask,cell,value
///   5,0,123.4
///   ...
Status WriteReleaseCsv(const std::string& path,
                       const std::vector<marginal::MarginalTable>& marginals);

/// Reads a release written by WriteReleaseCsv. The reconstructed workload
/// preserves the file's marginal order.
struct LoadedRelease {
  marginal::Workload workload{0, {}};
  std::vector<marginal::MarginalTable> marginals;
};
Result<LoadedRelease> ReadReleaseCsv(const std::string& path);

}  // namespace engine
}  // namespace dpcube

#endif  // DPCUBE_ENGINE_RELEASE_IO_H_
