// Copyright 2026 The dpcube Authors.
//
// Serialisation of private releases. A released workload is written as a
// CSV of (marginal mask, local cell index, value) rows with a header
// carrying the domain dimensionality, so a release can be archived,
// diffed, or consumed by downstream tooling without this library.

#ifndef DPCUBE_ENGINE_RELEASE_IO_H_
#define DPCUBE_ENGINE_RELEASE_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/metrics.h"
#include "linalg/matrix.h"
#include "marginal/marginal_table.h"
#include "marginal/workload.h"

namespace dpcube {
namespace engine {

/// Writes released marginals as CSV:
///   # dpcube-release d=<d>
///   # dpcube-cell-variances <v1> <v2> ...        (optional)
///   # dpcube-build-seconds construction=<s> budget=<s> measure=<s>
///       consistency=<s> total=<s>                (optional, one line)
///   mask,cell,value
///   5,0,123.4
///   ...
/// `cell_variances` (one per marginal, the release mechanism's predicted
/// per-cell noise variance) is archived so downstream serving can report
/// true accuracy; empty omits the line, preserving the legacy format.
/// `build_timings` (the pipeline's per-phase wall-clock) is likewise
/// opt-in: nullptr omits the line, so goldens against the legacy format
/// keep passing byte-for-byte.
Status WriteReleaseCsv(const std::string& path,
                       const std::vector<marginal::MarginalTable>& marginals,
                       const linalg::Vector& cell_variances = {},
                       const PhaseTimings* build_timings = nullptr);

/// Reads a release written by WriteReleaseCsv. The reconstructed workload
/// preserves the file's marginal order. `cell_variances` is empty when
/// the file predates the variance header; `has_build_timings` is false
/// when it predates the build-seconds header.
struct LoadedRelease {
  marginal::Workload workload{0, {}};
  std::vector<marginal::MarginalTable> marginals;
  linalg::Vector cell_variances;
  bool has_build_timings = false;
  PhaseTimings build_timings;
};
Result<LoadedRelease> ReadReleaseCsv(const std::string& path);

}  // namespace engine
}  // namespace dpcube

#endif  // DPCUBE_ENGINE_RELEASE_IO_H_
