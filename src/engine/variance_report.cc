// Copyright 2026 The dpcube Authors.

#include "engine/variance_report.h"

#include <cmath>

namespace dpcube {
namespace engine {

Result<VarianceReport> PredictRelease(const strategy::MarginalStrategy& strat,
                                      const dp::PrivacyParams& params,
                                      budget::BudgetMode budget_mode) {
  DPCUBE_RETURN_NOT_OK(params.Validate());
  auto budgets = budget_mode == budget::BudgetMode::kOptimal
                     ? budget::OptimalGroupBudgets(strat.groups(), params)
                     : budget::UniformGroupBudgets(strat.groups(), params);
  if (!budgets.ok()) return budgets.status();

  VarianceReport report;
  report.group_budgets = budgets.value().eta;
  report.total_variance = budgets.value().variance_objective;
  DPCUBE_ASSIGN_OR_RETURN(
      report.cell_variances,
      strat.PredictCellVariances(budgets.value().eta, params));

  // E|X| for the per-cell noise: Laplace with variance V has E|X| =
  // sqrt(V/2); a Gaussian (and the CLT-aggregated base-count noise,
  // which is near-Gaussian) has E|X| = sqrt(2 V / pi). Sums of several
  // independent noises (Fourier, cluster covers) are between the two;
  // we report the Gaussian value for aggregated cells and the exact
  // Laplace value for single-measurement cells.
  report.expected_abs_error.reserve(report.cell_variances.size());
  const bool single_draw_laplace =
      params.IsPureDp() && strat.name() == "Q";
  for (double v : report.cell_variances) {
    report.expected_abs_error.push_back(
        single_draw_laplace ? std::sqrt(v / 2.0)
                            : std::sqrt(2.0 * v / M_PI));
  }
  return report;
}

}  // namespace engine
}  // namespace dpcube
