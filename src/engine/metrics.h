// Copyright 2026 The dpcube Authors.
//
// Error metrics of the experimental study (Section 5): the average
// absolute error per marginal cell, scaled by the mean true cell value of
// the respective marginal ("relative error"); a relative error above 1
// means the noise dwarfs the data.

#ifndef DPCUBE_ENGINE_METRICS_H_
#define DPCUBE_ENGINE_METRICS_H_

#include <vector>

#include "common/status.h"
#include "data/contingency_table.h"
#include "marginal/marginal_table.h"
#include "marginal/workload.h"

namespace dpcube {
namespace engine {

/// Wall-clock breakdown of one ReleaseWorkload run. Phases map to the
/// pipeline of Figure 3: budget optimisation (Step 2), measurement plus
/// the strategy's default recovery (z = S x + nu and R z), and the
/// consistency projection (Step 3). Benches report these so parallel
/// speedups are attributable to a phase rather than to the aggregate.
struct PhaseTimings {
  /// Strategy construction (the clustering search for C, support scoring
  /// for F, group summaries for I/Q). Construction happens in the
  /// strategy constructor — before ReleaseWorkload is called — so this is
  /// copied from MarginalStrategy::construction_seconds() and is NOT part
  /// of total_seconds.
  double construction_seconds = 0.0;
  double budget_seconds = 0.0;
  double measure_seconds = 0.0;
  double consistency_seconds = 0.0;
  double total_seconds = 0.0;
};

struct ErrorReport {
  /// Mean over marginals of (mean |error| per cell) / (mean true cell).
  double relative_error = 0.0;
  /// Mean absolute per-cell error over all cells of all marginals.
  double absolute_error = 0.0;
  /// Largest single-cell absolute error.
  double max_absolute_error = 0.0;
  /// Per-marginal relative errors, workload order.
  std::vector<double> per_marginal_relative;
};

/// Compares a released workload answer against the true marginals of
/// `data`. Marginals whose mean true cell value is zero are skipped in the
/// relative aggregate (they carry no mass to compare against).
Result<ErrorReport> EvaluateRelease(
    const marginal::Workload& workload, const data::SparseCounts& data,
    const std::vector<marginal::MarginalTable>& released);

}  // namespace engine
}  // namespace dpcube

#endif  // DPCUBE_ENGINE_METRICS_H_
