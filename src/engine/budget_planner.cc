// Copyright 2026 The dpcube Authors.

#include "engine/budget_planner.h"

#include <cmath>

#include "budget/grouped_budget.h"

namespace dpcube {
namespace engine {

Result<ReleasePlan> PlanReleases(const std::vector<PlannedRelease>& releases,
                                 const dp::PrivacyParams& params) {
  DPCUBE_RETURN_NOT_OK(params.Validate());
  if (releases.empty()) {
    return Status::InvalidArgument("no releases to plan");
  }
  // Per-release predicted variance at unit epsilon.
  linalg::Vector unit_variance(releases.size());
  for (std::size_t i = 0; i < releases.size(); ++i) {
    if (releases[i].strategy == nullptr) {
      return Status::InvalidArgument("release '" + releases[i].label +
                                     "' has no strategy");
    }
    if (releases[i].importance < 0.0) {
      return Status::InvalidArgument("importance must be >= 0");
    }
    dp::PrivacyParams unit = params;
    unit.epsilon = 1.0;
    auto budgets =
        releases[i].budget_mode == budget::BudgetMode::kOptimal
            ? budget::OptimalGroupBudgets(releases[i].strategy->groups(),
                                          unit)
            : budget::UniformGroupBudgets(releases[i].strategy->groups(),
                                          unit);
    if (!budgets.ok()) return budgets.status();
    unit_variance[i] = budgets.value().variance_objective;
  }

  // min sum_i w_i V_i / t_i^2  s.t.  sum t_i = eps: t_i ~ (w_i V_i)^{1/3}.
  // Zero-importance releases receive a vanishing reserved share so they
  // stay runnable (mirroring the grouped optimizer's policy); the rest of
  // the budget is split optimally among the weighted releases.
  double denom = 0.0;
  std::size_t zero_weight = 0;
  for (std::size_t i = 0; i < releases.size(); ++i) {
    const double w = releases[i].importance * unit_variance[i];
    if (w > 0.0) {
      denom += std::cbrt(w);
    } else {
      ++zero_weight;
    }
  }
  if (!(denom > 0.0)) {
    return Status::InvalidArgument(
        "all planned releases have zero weighted variance");
  }
  const double reserved = 1e-6 * params.epsilon;
  const double usable =
      params.epsilon - reserved * static_cast<double>(zero_weight);

  ReleasePlan plan;
  plan.epsilons.resize(releases.size());
  plan.per_release_variance.resize(releases.size());
  for (std::size_t i = 0; i < releases.size(); ++i) {
    const double w = releases[i].importance * unit_variance[i];
    plan.epsilons[i] = w > 0.0 ? usable * std::cbrt(w) / denom : reserved;
    plan.per_release_variance[i] =
        unit_variance[i] / (plan.epsilons[i] * plan.epsilons[i]);
    plan.total_variance +=
        releases[i].importance * plan.per_release_variance[i];
  }
  return plan;
}

}  // namespace engine
}  // namespace dpcube
