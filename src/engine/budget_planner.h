// Copyright 2026 The dpcube Authors.
//
// Splitting one privacy budget across several planned releases. Under
// sequential composition, a total budget eps splits into eps_1..eps_r;
// each release's predicted variance scales as V_i / eps_i^2 (the
// closed-form objective of Corollary 3.3 evaluated at eps = 1). The
// optimal split therefore solves exactly the paper's grouped budgeting
// program once more — minimize sum_i V_i / eps_i^2 subject to
// sum_i eps_i = eps — whose solution is the same cube-root rule:
// eps_i proportional to V_i^{1/3}. The framework composes with itself.

#ifndef DPCUBE_ENGINE_BUDGET_PLANNER_H_
#define DPCUBE_ENGINE_BUDGET_PLANNER_H_

#include <string>
#include <vector>

#include "budget/grouped_budget.h"
#include "common/status.h"
#include "dp/privacy.h"
#include "linalg/matrix.h"
#include "strategy/marginal_strategy.h"

namespace dpcube {
namespace engine {

/// One planned release: a strategy (not owned) and whether it will use
/// optimal budgets.
struct PlannedRelease {
  std::string label;
  const strategy::MarginalStrategy* strategy = nullptr;
  budget::BudgetMode budget_mode = budget::BudgetMode::kOptimal;
  /// Importance multiplier on this release's variance in the plan
  /// objective (>= 0; 1 = neutral).
  double importance = 1.0;
};

struct ReleasePlan {
  /// Epsilon assigned to each release, summing to the total.
  linalg::Vector epsilons;
  /// Predicted total (importance-weighted) variance across releases.
  double total_variance = 0.0;
  /// Per-release predicted variance at its assigned epsilon.
  linalg::Vector per_release_variance;
};

/// Computes the optimal epsilon split across the planned releases for a
/// total pure-DP budget `params.epsilon` (Laplace; for Gaussian the
/// variances scale as 1/eps^2 as well under the L2 constraint when
/// deltas are fixed per release, and the same rule applies — pass the
/// per-release delta through `params`).
Result<ReleasePlan> PlanReleases(const std::vector<PlannedRelease>& releases,
                                 const dp::PrivacyParams& params);

}  // namespace engine
}  // namespace dpcube

#endif  // DPCUBE_ENGINE_BUDGET_PLANNER_H_
