// Copyright 2026 The dpcube Authors.
//
// The end-to-end pipeline of the paper's Figure 3:
//   Step 1  pick a strategy (caller supplies a MarginalStrategy);
//   Step 2  compute noise budgets — uniform (the prior-work baseline) or
//           the closed-form optimal non-uniform budgets of Section 3.1;
//   measure z = S x + nu;
//   Step 3  recover and (optionally) project onto the consistent set via
//           the Fourier-space GLS of Section 4.3, which doubles as the
//           optimal recovery for marginal strategies.

#ifndef DPCUBE_ENGINE_RELEASE_ENGINE_H_
#define DPCUBE_ENGINE_RELEASE_ENGINE_H_

#include <vector>

#include "budget/grouped_budget.h"
#include "common/rng.h"
#include "common/status.h"
#include "dp/privacy.h"
#include "engine/metrics.h"
#include "strategy/marginal_strategy.h"

namespace dpcube {
namespace engine {

/// How Step 2 allocates the privacy budget across strategy groups
/// (re-exported from budget/ for API convenience).
using BudgetMode = budget::BudgetMode;

struct ReleaseOptions {
  dp::PrivacyParams params;
  BudgetMode budget_mode = BudgetMode::kOptimal;
  /// Apply the consistency projection when the strategy's raw output is
  /// not already consistent.
  bool enforce_consistency = true;
};

struct ReleaseOutcome {
  /// Private workload answers, in workload order.
  std::vector<marginal::MarginalTable> marginals;
  /// Predicted total output variance a^T Var(y) (a = 1) under the chosen
  /// budgets and the strategy's default recovery.
  double predicted_variance = 0.0;
  /// Per-group budgets actually used.
  linalg::Vector group_budgets;
  /// Wall-clock seconds spent inside the pipeline (excludes strategy
  /// construction, which benches time separately).
  double elapsed_seconds = 0.0;
  /// Per-phase breakdown of elapsed_seconds (timings.total_seconds ==
  /// elapsed_seconds).
  PhaseTimings timings;
  /// Whether the returned marginals are consistent (Definition 2.3).
  bool consistent = false;
};

/// Runs the full pipeline for one strategy over the data.
Result<ReleaseOutcome> ReleaseWorkload(const strategy::MarginalStrategy& strat,
                                       const data::SparseCounts& data,
                                       const ReleaseOptions& options,
                                       Rng* rng);

}  // namespace engine
}  // namespace dpcube

#endif  // DPCUBE_ENGINE_RELEASE_ENGINE_H_
