// Copyright 2026 The dpcube Authors.

#include "dp/mechanisms.h"

#include <cmath>

namespace dpcube {
namespace dp {

double SampleNoise(double eps_i, const PrivacyParams& params, Rng* rng) {
  if (params.IsPureDp()) {
    return rng->NextLaplace(1.0 / eps_i);
  }
  return rng->NextGaussian(0.0, std::sqrt(GaussianVariance(eps_i,
                                                           params.delta)));
}

Result<linalg::Vector> AddNoise(const linalg::Vector& answers,
                                const linalg::Vector& budgets,
                                const PrivacyParams& params, Rng* rng) {
  DPCUBE_RETURN_NOT_OK(params.Validate());
  if (answers.size() != budgets.size()) {
    return Status::InvalidArgument("AddNoise: budgets size mismatch");
  }
  linalg::Vector out(answers);
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (!(budgets[i] > 0.0)) {
      return Status::InvalidArgument("AddNoise: budgets must be positive");
    }
    out[i] += SampleNoise(budgets[i], params, rng);
  }
  return out;
}

Result<linalg::Vector> AddUniformNoise(const linalg::Vector& answers,
                                       double eps_row,
                                       const PrivacyParams& params, Rng* rng) {
  return AddNoise(answers, linalg::Vector(answers.size(), eps_row), params,
                  rng);
}

double SampleNoiseSum(std::uint64_t count, double eps_i,
                      const PrivacyParams& params, Rng* rng,
                      std::uint64_t clt_threshold) {
  if (count == 0) return 0.0;
  if (!params.IsPureDp()) {
    // A sum of independent Gaussians is exactly Gaussian.
    const double variance =
        static_cast<double>(count) * GaussianVariance(eps_i, params.delta);
    return rng->NextGaussian(0.0, std::sqrt(variance));
  }
  if (count <= clt_threshold) {
    double sum = 0.0;
    const double scale = 1.0 / eps_i;
    for (std::uint64_t i = 0; i < count; ++i) sum += rng->NextLaplace(scale);
    return sum;
  }
  // CLT approximation for a large sum of i.i.d. Laplace draws.
  const double variance =
      static_cast<double>(count) * LaplaceVariance(eps_i);
  return rng->NextGaussian(0.0, std::sqrt(variance));
}

}  // namespace dp
}  // namespace dpcube
