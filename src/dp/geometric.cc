// Copyright 2026 The dpcube Authors.

#include "dp/geometric.h"

#include <cmath>

namespace dpcube {
namespace dp {

namespace {

// One-sided geometric on {0, 1, 2, ...} with ratio alpha:
// Pr[G = k] = (1 - alpha) alpha^k. Inverse-CDF sampling.
std::int64_t SampleOneSidedGeometric(double alpha, Rng* rng) {
  if (alpha <= 0.0) return 0;
  const double u = rng->NextDoubleOpen();
  return static_cast<std::int64_t>(std::floor(std::log(u) / std::log(alpha)));
}

}  // namespace

double GeometricAlpha(double eps_i) { return std::exp(-eps_i); }

double GeometricVariance(double eps_i) {
  const double alpha = GeometricAlpha(eps_i);
  const double one_minus = 1.0 - alpha;
  return 2.0 * alpha / (one_minus * one_minus);
}

std::int64_t SampleGeometricNoise(double eps_i, Rng* rng) {
  const double alpha = GeometricAlpha(eps_i);
  // G1 - G2 for i.i.d. one-sided geometrics is exactly the two-sided
  // geometric with the same ratio.
  return SampleOneSidedGeometric(alpha, rng) -
         SampleOneSidedGeometric(alpha, rng);
}

Result<std::vector<std::int64_t>> AddGeometricNoise(
    const std::vector<std::int64_t>& answers,
    const std::vector<double>& budgets, Rng* rng) {
  if (answers.size() != budgets.size()) {
    return Status::InvalidArgument(
        "geometric mechanism: one budget per answer required");
  }
  std::vector<std::int64_t> out(answers.size());
  for (std::size_t i = 0; i < answers.size(); ++i) {
    if (!(budgets[i] > 0.0)) {
      return Status::InvalidArgument(
          "geometric mechanism: budgets must be positive");
    }
    out[i] = answers[i] + SampleGeometricNoise(budgets[i], rng);
  }
  return out;
}

Result<std::vector<std::int64_t>> AddUniformGeometricNoise(
    const std::vector<std::int64_t>& answers, double eps_row, Rng* rng) {
  return AddGeometricNoise(answers,
                           std::vector<double>(answers.size(), eps_row), rng);
}

}  // namespace dp
}  // namespace dpcube
