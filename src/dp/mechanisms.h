// Copyright 2026 The dpcube Authors.
//
// Noise-addition mechanisms (Theorems 2.1 / 2.2) with per-measurement
// budgets. Given true answers t and row budgets eps_i, the mechanism
// releases z_i = t_i + nu_i where nu_i is Laplace of variance 2/eps_i^2
// (pure DP) or Gaussian of variance 2 ln(2/delta)/eps_i^2. The caller is
// responsible for the budgets jointly satisfying Proposition 3.1 for the
// strategy matrix that produced t (see budget/ and dp/privacy.h).

#ifndef DPCUBE_DP_MECHANISMS_H_
#define DPCUBE_DP_MECHANISMS_H_

#include "common/rng.h"
#include "common/status.h"
#include "dp/privacy.h"
#include "linalg/matrix.h"

namespace dpcube {
namespace dp {

/// One noise draw of variance matching MeasurementVariance(eps_i, params).
double SampleNoise(double eps_i, const PrivacyParams& params, Rng* rng);

/// Adds independent noise to each answer; budgets.size() must equal
/// answers.size() and every budget must be positive.
Result<linalg::Vector> AddNoise(const linalg::Vector& answers,
                                const linalg::Vector& budgets,
                                const PrivacyParams& params, Rng* rng);

/// Uniform-budget convenience: every answer gets budget eps_row.
Result<linalg::Vector> AddUniformNoise(const linalg::Vector& answers,
                                       double eps_row,
                                       const PrivacyParams& params, Rng* rng);

/// Samples the SUM of `count` i.i.d. noise draws of budget eps_i. Used by
/// the base-count strategy at scale, where a marginal cell aggregates
/// 2^{d-k} noisy base cells: for large counts the exact sum is replaced by
/// its CLT normal approximation (mean 0, variance count * per-draw
/// variance), which is indistinguishable for the error statistics we
/// report and turns an O(2^d) simulation into O(1). `clt_threshold`
/// controls the crossover (draws below it are sampled exactly).
double SampleNoiseSum(std::uint64_t count, double eps_i,
                      const PrivacyParams& params, Rng* rng,
                      std::uint64_t clt_threshold = 1024);

}  // namespace dp
}  // namespace dpcube

#endif  // DPCUBE_DP_MECHANISMS_H_
