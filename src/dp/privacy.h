// Copyright 2026 The dpcube Authors.
//
// Privacy accounting primitives: the privacy parameters (epsilon, delta),
// the neighbouring-database convention, and matrix sensitivities
// (Definition 2.2). The paper's analysis uses the replace-one-tuple
// convention, under which changing one tuple moves weight 1 between two
// contingency-table cells and the sensitivity of a strategy matrix picks
// up a factor of 2 (Proposition 3.1); the add/remove convention (factor 1)
// is also supported.

#ifndef DPCUBE_DP_PRIVACY_H_
#define DPCUBE_DP_PRIVACY_H_

#include <cmath>

#include "common/status.h"
#include "linalg/matrix.h"

namespace dpcube {
namespace dp {

/// Which pairs of databases count as neighbours.
enum class NeighbourModel {
  kAddRemove,   ///< D' = D plus-or-minus one tuple (sensitivity factor 1).
  kReplaceOne,  ///< D' = D with one tuple changed (factor 2; paper default).
};

/// (epsilon, delta)-differential-privacy parameters.
struct PrivacyParams {
  double epsilon = 1.0;
  double delta = 0.0;  ///< 0 for pure epsilon-DP.
  NeighbourModel neighbour = NeighbourModel::kReplaceOne;

  bool IsPureDp() const { return delta == 0.0; }

  /// The multiplier applied to column norms of the strategy matrix.
  double SensitivityFactor() const {
    return neighbour == NeighbourModel::kReplaceOne ? 2.0 : 1.0;
  }

  Status Validate() const {
    if (!(epsilon > 0.0)) {
      return Status::InvalidArgument("epsilon must be positive");
    }
    if (delta < 0.0 || delta >= 1.0) {
      return Status::InvalidArgument("delta must be in [0, 1)");
    }
    return Status::OK();
  }
};

/// L1-sensitivity of a strategy matrix under the given neighbour model:
/// factor * max_j sum_i |S_ij|.
double L1Sensitivity(const linalg::Matrix& s, NeighbourModel neighbour);

/// L2-sensitivity: factor * max_j sqrt(sum_i S_ij^2).
double L2Sensitivity(const linalg::Matrix& s, NeighbourModel neighbour);

/// The epsilon actually consumed by per-row Laplace budgets (Prop. 3.1(i)):
/// factor * max_j sum_i |S_ij| eps_i.
double AchievedEpsilonLaplace(const linalg::Matrix& s,
                              const linalg::Vector& row_budgets,
                              NeighbourModel neighbour);

/// The epsilon consumed by per-row Gaussian budgets (Prop. 3.1(ii)):
/// factor * max_j sqrt(sum_i S_ij^2 eps_i^2).
double AchievedEpsilonGaussian(const linalg::Matrix& s,
                               const linalg::Vector& row_budgets,
                               NeighbourModel neighbour);

/// Per-measurement noise variance for a row budget eps_i:
/// Laplace (pure DP): 2 / eps_i^2.
inline double LaplaceVariance(double eps_i) { return 2.0 / (eps_i * eps_i); }

/// Gaussian ((eps, delta)-DP, Theorem 2.2): 2 ln(2/delta) / eps_i^2.
inline double GaussianVariance(double eps_i, double delta) {
  return 2.0 * std::log(2.0 / delta) / (eps_i * eps_i);
}

/// Variance of one noisy measurement for the given parameters.
inline double MeasurementVariance(double eps_i, const PrivacyParams& params) {
  return params.IsPureDp() ? LaplaceVariance(eps_i)
                           : GaussianVariance(eps_i, params.delta);
}

}  // namespace dp
}  // namespace dpcube

#endif  // DPCUBE_DP_PRIVACY_H_
