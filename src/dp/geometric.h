// Copyright 2026 The dpcube Authors.
//
// The geometric mechanism (two-sided geometric / discrete Laplace noise)
// for integer-valued releases — the natural mechanism behind the paper's
// Section 6 remark that applications sometimes require "a data set in
// which all counts are integral and non-negative". Adding two-sided
// geometric noise with ratio alpha = exp(-eps_i) to an integer count
// gives eps_i-differential privacy per unit of sensitivity (the same
// budget convention as dp/mechanisms.h: the strategy-level constraint of
// Proposition 3.1 accounts for column norms and the neighbour model), and
// the released value is an integer by construction, so the base-count
// strategy composed with non-negative clamping yields an exactly
// integral, non-negative, consistent datacube with no post-hoc rounding.
//
// Distribution: Pr[Z = k] = (1 - alpha) / (1 + alpha) * alpha^{|k|},
// variance 2 alpha / (1 - alpha)^2 — strictly smaller than the Laplace
// variance 2 / eps^2 it discretises, approaching it as eps -> 0.

#ifndef DPCUBE_DP_GEOMETRIC_H_
#define DPCUBE_DP_GEOMETRIC_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace dpcube {
namespace dp {

/// The geometric ratio alpha = exp(-eps_i) for a per-row budget.
double GeometricAlpha(double eps_i);

/// Variance of the two-sided geometric distribution with ratio
/// alpha = exp(-eps_i): 2 alpha / (1 - alpha)^2.
double GeometricVariance(double eps_i);

/// One two-sided geometric draw with ratio alpha = exp(-eps_i), sampled
/// as the difference of two one-sided geometric variables (an exact
/// representation of the discrete Laplace distribution).
std::int64_t SampleGeometricNoise(double eps_i, Rng* rng);

/// Adds independent two-sided geometric noise to each integer answer;
/// budgets.size() must equal answers.size(), every budget positive.
Result<std::vector<std::int64_t>> AddGeometricNoise(
    const std::vector<std::int64_t>& answers,
    const std::vector<double>& budgets, Rng* rng);

/// Convenience: uniform budget across all answers.
Result<std::vector<std::int64_t>> AddUniformGeometricNoise(
    const std::vector<std::int64_t>& answers, double eps_row, Rng* rng);

}  // namespace dp
}  // namespace dpcube

#endif  // DPCUBE_DP_GEOMETRIC_H_
