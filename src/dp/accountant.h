// Copyright 2026 The dpcube Authors.
//
// Privacy accounting across multiple releases. A single ReleaseWorkload
// call consumes its stated (epsilon, delta); a data owner answering
// several workloads over time composes those costs. The accountant
// implements:
//  * basic (sequential) composition: epsilons and deltas add;
//  * advanced composition (Dwork, Rothblum, Vadhan FOCS'10): k releases
//    of (eps, delta)-DP are jointly
//    (eps * sqrt(2 k ln(1/delta')) + k eps (e^eps - 1), k delta + delta')
//    -DP for any slack delta' > 0 — a sqrt(k) rate instead of linear for
//    small eps.

#ifndef DPCUBE_DP_ACCOUNTANT_H_
#define DPCUBE_DP_ACCOUNTANT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "dp/privacy.h"

namespace dpcube {
namespace dp {

/// One recorded privacy expenditure.
struct PrivacyCharge {
  double epsilon = 0.0;
  double delta = 0.0;
  std::string label;  ///< Free-form tag ("Q1* release", ...).
};

class PrivacyAccountant {
 public:
  /// Creates an accountant with a total budget the owner will not exceed.
  explicit PrivacyAccountant(double epsilon_budget, double delta_budget = 0.0)
      : epsilon_budget_(epsilon_budget), delta_budget_(delta_budget) {}

  /// Records a charge. Fails (and records nothing) if the charge would
  /// push the BASIC composition total over the configured budget.
  Status Charge(const PrivacyParams& params, std::string label = "");

  /// Basic composition totals.
  double TotalEpsilonBasic() const;
  double TotalDeltaBasic() const;

  /// Advanced composition: the epsilon of the joint release when the
  /// caller accepts an extra `delta_slack` of failure probability. Uses
  /// the per-charge maximum epsilon (charges are heterogeneous; the bound
  /// instantiates with the worst one, which is safe). Returns the basic
  /// total when it is smaller (advanced composition only wins for many
  /// small charges).
  double TotalEpsilonAdvanced(double delta_slack) const;
  double TotalDeltaAdvanced(double delta_slack) const;

  /// Remaining budget under basic composition (>= 0).
  double RemainingEpsilon() const;

  const std::vector<PrivacyCharge>& charges() const { return charges_; }

 private:
  double epsilon_budget_;
  double delta_budget_;
  std::vector<PrivacyCharge> charges_;
};

}  // namespace dp
}  // namespace dpcube

#endif  // DPCUBE_DP_ACCOUNTANT_H_
