// Copyright 2026 The dpcube Authors.

#include "dp/accountant.h"

#include <algorithm>
#include <cmath>

namespace dpcube {
namespace dp {

Status PrivacyAccountant::Charge(const PrivacyParams& params,
                                 std::string label) {
  DPCUBE_RETURN_NOT_OK(params.Validate());
  const double new_eps = TotalEpsilonBasic() + params.epsilon;
  const double new_delta = TotalDeltaBasic() + params.delta;
  if (new_eps > epsilon_budget_ + 1e-12) {
    return Status::FailedPrecondition(
        "privacy budget exhausted: epsilon " + std::to_string(new_eps) +
        " would exceed " + std::to_string(epsilon_budget_));
  }
  if (new_delta > delta_budget_ + 1e-15) {
    return Status::FailedPrecondition("privacy budget exhausted: delta");
  }
  charges_.push_back(
      PrivacyCharge{params.epsilon, params.delta, std::move(label)});
  return Status::OK();
}

double PrivacyAccountant::TotalEpsilonBasic() const {
  double total = 0.0;
  for (const PrivacyCharge& c : charges_) total += c.epsilon;
  return total;
}

double PrivacyAccountant::TotalDeltaBasic() const {
  double total = 0.0;
  for (const PrivacyCharge& c : charges_) total += c.delta;
  return total;
}

double PrivacyAccountant::TotalEpsilonAdvanced(double delta_slack) const {
  if (charges_.empty()) return 0.0;
  if (!(delta_slack > 0.0)) return TotalEpsilonBasic();
  double max_eps = 0.0;
  for (const PrivacyCharge& c : charges_) {
    max_eps = std::max(max_eps, c.epsilon);
  }
  const double k = static_cast<double>(charges_.size());
  const double advanced =
      max_eps * std::sqrt(2.0 * k * std::log(1.0 / delta_slack)) +
      k * max_eps * (std::exp(max_eps) - 1.0);
  return std::min(advanced, TotalEpsilonBasic());
}

double PrivacyAccountant::TotalDeltaAdvanced(double delta_slack) const {
  return TotalDeltaBasic() + std::max(0.0, delta_slack);
}

double PrivacyAccountant::RemainingEpsilon() const {
  return std::max(0.0, epsilon_budget_ - TotalEpsilonBasic());
}

}  // namespace dp
}  // namespace dpcube
