// Copyright 2026 The dpcube Authors.

#include "dp/privacy.h"

#include <algorithm>

namespace dpcube {
namespace dp {
namespace {

double Factor(NeighbourModel neighbour) {
  return neighbour == NeighbourModel::kReplaceOne ? 2.0 : 1.0;
}

}  // namespace

double L1Sensitivity(const linalg::Matrix& s, NeighbourModel neighbour) {
  return Factor(neighbour) * s.MaxColumnL1();
}

double L2Sensitivity(const linalg::Matrix& s, NeighbourModel neighbour) {
  return Factor(neighbour) * s.MaxColumnL2();
}

double AchievedEpsilonLaplace(const linalg::Matrix& s,
                              const linalg::Vector& row_budgets,
                              NeighbourModel neighbour) {
  double best = 0.0;
  for (std::size_t j = 0; j < s.cols(); ++j) {
    double sum = 0.0;
    for (std::size_t i = 0; i < s.rows(); ++i) {
      sum += std::fabs(s(i, j)) * row_budgets[i];
    }
    best = std::max(best, sum);
  }
  return Factor(neighbour) * best;
}

double AchievedEpsilonGaussian(const linalg::Matrix& s,
                               const linalg::Vector& row_budgets,
                               NeighbourModel neighbour) {
  double best = 0.0;
  for (std::size_t j = 0; j < s.cols(); ++j) {
    double ss = 0.0;
    for (std::size_t i = 0; i < s.rows(); ++i) {
      const double term = s(i, j) * row_budgets[i];
      ss += term * term;
    }
    best = std::max(best, ss);
  }
  return Factor(neighbour) * std::sqrt(best);
}

}  // namespace dp
}  // namespace dpcube
