// Copyright 2026 The dpcube Authors.

#include "data/discretize.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dpcube {
namespace data {

namespace {

std::string IntervalLabel(double lo, double hi, bool last) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), last ? "[%g, %g]" : "[%g, %g)", lo, hi);
  return buf;
}

// Bin index of v for strictly increasing edges (see header conventions).
std::uint32_t BinOf(double v, const std::vector<double>& edges) {
  const std::size_t b = edges.size() - 1;
  if (v < edges.front()) return 0;
  if (v >= edges.back()) return static_cast<std::uint32_t>(b - 1);
  // upper_bound - 1 gives the bin whose left edge is <= v.
  const auto it = std::upper_bound(edges.begin(), edges.end(), v);
  return static_cast<std::uint32_t>(it - edges.begin() - 1);
}

Status ValidateEdges(const std::vector<double>& edges) {
  if (edges.size() < 2) {
    return Status::InvalidArgument("discretize: need at least two edges");
  }
  for (std::size_t i = 1; i < edges.size(); ++i) {
    if (!(edges[i] > edges[i - 1])) {
      return Status::InvalidArgument(
          "discretize: edges must be strictly increasing");
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<double>> EqualWidthEdges(double lo, double hi,
                                            int num_bins) {
  if (num_bins < 1) {
    return Status::InvalidArgument("discretize: num_bins must be >= 1");
  }
  if (!(lo < hi)) {
    return Status::InvalidArgument("discretize: need lo < hi");
  }
  std::vector<double> edges(num_bins + 1);
  for (int i = 0; i <= num_bins; ++i) {
    edges[i] = lo + (hi - lo) * double(i) / double(num_bins);
  }
  edges.back() = hi;  // Avoid rounding drift on the last edge.
  return edges;
}

Result<Discretization> DiscretizeWithEdges(const std::vector<double>& values,
                                           const std::vector<double>& edges) {
  DPCUBE_RETURN_NOT_OK(ValidateEdges(edges));
  Discretization out;
  out.edges = edges;
  const std::size_t num_bins = edges.size() - 1;
  out.labels.reserve(num_bins);
  for (std::size_t i = 0; i < num_bins; ++i) {
    out.labels.push_back(
        IntervalLabel(edges[i], edges[i + 1], i + 1 == num_bins));
  }
  out.codes.reserve(values.size());
  for (double v : values) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("discretize: non-finite value");
    }
    out.codes.push_back(BinOf(v, edges));
  }
  return out;
}

Result<Discretization> Discretize(const std::vector<double>& values,
                                  BinningMethod method, int num_bins) {
  if (values.empty()) {
    return Status::InvalidArgument("discretize: empty column");
  }
  if (num_bins < 1) {
    return Status::InvalidArgument("discretize: num_bins must be >= 1");
  }
  for (double v : values) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("discretize: non-finite value");
    }
  }
  const auto [min_it, max_it] =
      std::minmax_element(values.begin(), values.end());
  double lo = *min_it;
  double hi = *max_it;
  if (lo == hi) hi = lo + 1.0;  // Constant column: one well-formed bin.

  std::vector<double> edges;
  if (method == BinningMethod::kEqualWidth) {
    DPCUBE_ASSIGN_OR_RETURN(edges, EqualWidthEdges(lo, hi, num_bins));
  } else {
    // Quantile cuts on the sorted sample; merge duplicate cut points.
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    edges.push_back(lo);
    for (int i = 1; i < num_bins; ++i) {
      const std::size_t idx = i * sorted.size() / num_bins;
      const double cut = sorted[std::min(idx, sorted.size() - 1)];
      if (cut > edges.back()) edges.push_back(cut);
    }
    if (hi > edges.back()) {
      edges.push_back(hi);
    } else {
      // All remaining mass is tied at the top value; widen the last edge
      // so the bin is a non-degenerate interval.
      edges.push_back(edges.back() + 1.0);
    }
  }
  return DiscretizeWithEdges(values, edges);
}

Result<std::vector<double>> ParseNumericColumn(
    const std::vector<std::string>& fields,
    const std::vector<std::string>& missing_tokens, double missing_value) {
  std::vector<double> out;
  out.reserve(fields.size());
  for (std::size_t i = 0; i < fields.size(); ++i) {
    const std::string& f = fields[i];
    if (std::find(missing_tokens.begin(), missing_tokens.end(), f) !=
        missing_tokens.end()) {
      out.push_back(missing_value);
      continue;
    }
    char* end = nullptr;
    const double v = std::strtod(f.c_str(), &end);
    if (end == f.c_str() || *end != '\0') {
      return Status::InvalidArgument("discretize: non-numeric field '" + f +
                                     "' at row " + std::to_string(i));
    }
    out.push_back(v);
  }
  return out;
}

}  // namespace data
}  // namespace dpcube
