// Copyright 2026 The dpcube Authors.
//
// The contingency table x in R^N (N = 2^d): the database representation on
// which all linear queries operate. Two forms are provided:
//
//  * DenseTable   — the full 2^d cell vector. Practical up to d ~ 24.
//  * SparseCounts — (cell, count) pairs over occupied cells only. Real
//    datasets occupy far fewer cells than 2^d; marginals and Fourier
//    coefficients are computed directly from the occupied cells in time
//    O(#occupied) per query, which is how the library scales to the
//    Adult-size 23-bit domain without materialising x.

#ifndef DPCUBE_DATA_CONTINGENCY_TABLE_H_
#define DPCUBE_DATA_CONTINGENCY_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/bits.h"
#include "common/status.h"
#include "data/dataset.h"

namespace dpcube {
namespace data {

/// Dense contingency table: cell c holds the number of tuples encoding to c.
class DenseTable {
 public:
  /// Zero table over a d-bit domain (d <= 26 to bound memory).
  static Result<DenseTable> Zero(int d);

  /// Builds the table from a dataset (fails if the encoded domain is too
  /// large to materialise densely).
  static Result<DenseTable> FromDataset(const Dataset& dataset);

  /// Builds from an explicit cell vector (size must be a power of two).
  static Result<DenseTable> FromCells(std::vector<double> cells);

  int d() const { return d_; }
  std::uint64_t domain_size() const { return std::uint64_t{1} << d_; }

  double cell(bits::Mask c) const { return cells_[c]; }
  double& cell(bits::Mask c) { return cells_[c]; }
  const std::vector<double>& cells() const { return cells_; }
  std::vector<double>& mutable_cells() { return cells_; }

  /// Total tuple count (sum of all cells).
  double Total() const;

 private:
  DenseTable(int d, std::vector<double> cells)
      : d_(d), cells_(std::move(cells)) {}
  int d_;
  std::vector<double> cells_;
};

/// Sparse contingency table: sorted (cell, count) pairs, zero cells omitted.
class SparseCounts {
 public:
  struct Entry {
    bits::Mask cell = 0;
    double count = 0.0;
  };

  /// Aggregates a dataset's encoded rows.
  static SparseCounts FromDataset(const Dataset& dataset);

  /// From a dense table (drops zero cells).
  static SparseCounts FromDense(const DenseTable& dense);

  int d() const { return d_; }
  const std::vector<Entry>& entries() const { return entries_; }
  std::size_t num_occupied() const { return entries_.size(); }

  /// Total tuple count.
  double Total() const;

  /// Materialises the dense table (requires d small enough).
  Result<DenseTable> ToDense() const;

  /// Fourier coefficient <f^alpha, x> = 2^{-d/2} sum_cells count *
  /// (-1)^{<alpha, cell>}, in O(num_occupied).
  double FourierCoefficient(bits::Mask alpha) const;

 private:
  SparseCounts(int d, std::vector<Entry> entries)
      : d_(d), entries_(std::move(entries)) {}
  int d_;
  std::vector<Entry> entries_;  // Sorted by cell, unique.
};

}  // namespace data
}  // namespace dpcube

#endif  // DPCUBE_DATA_CONTINGENCY_TABLE_H_
