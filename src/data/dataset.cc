// Copyright 2026 The dpcube Authors.

#include "data/dataset.h"

#include <fstream>
#include <sstream>

namespace dpcube {
namespace data {

Status Dataset::AppendRow(const std::vector<std::uint32_t>& values) {
  if (values.size() != schema_.num_attributes()) {
    return Status::InvalidArgument("row width does not match schema");
  }
  for (std::size_t a = 0; a < values.size(); ++a) {
    if (values[a] >= schema_.attribute(a).cardinality) {
      return Status::OutOfRange("value " + std::to_string(values[a]) +
                                " out of range for attribute '" +
                                schema_.attribute(a).name + "'");
    }
  }
  values_.insert(values_.end(), values.begin(), values.end());
  return Status::OK();
}

bits::Mask Dataset::EncodeRow(std::size_t r) const {
  bits::Mask cell = 0;
  for (std::size_t a = 0; a < schema_.num_attributes(); ++a) {
    cell |= static_cast<bits::Mask>(At(r, a)) << schema_.BitOffset(a);
  }
  return cell;
}

std::vector<bits::Mask> Dataset::EncodeAll() const {
  std::vector<bits::Mask> out;
  out.reserve(num_rows());
  for (std::size_t r = 0; r < num_rows(); ++r) out.push_back(EncodeRow(r));
  return out;
}

std::vector<std::uint32_t> DecodeCell(const Schema& schema, bits::Mask cell) {
  std::vector<std::uint32_t> values(schema.num_attributes());
  for (std::size_t a = 0; a < schema.num_attributes(); ++a) {
    const bits::Mask field = (cell >> schema.BitOffset(a)) &
                             ((bits::Mask{1} << schema.BitWidth(a)) - 1);
    values[a] = static_cast<std::uint32_t>(field);
  }
  return values;
}

Status WriteCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open '" + path + "' for writing");
  const Schema& schema = dataset.schema();
  for (std::size_t a = 0; a < schema.num_attributes(); ++a) {
    out << (a ? "," : "") << schema.attribute(a).name;
  }
  out << "\n";
  for (std::size_t r = 0; r < dataset.num_rows(); ++r) {
    for (std::size_t a = 0; a < schema.num_attributes(); ++a) {
      out << (a ? "," : "") << dataset.At(r, a);
    }
    out << "\n";
  }
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::OK();
}

Result<Dataset> ReadCsv(const Schema& schema, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  Dataset dataset(schema);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("'" + path + "': missing header");
  }
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::vector<std::uint32_t> row;
    row.reserve(schema.num_attributes());
    std::stringstream ss(line);
    std::string field;
    while (std::getline(ss, field, ',')) {
      try {
        const unsigned long value = std::stoul(field);
        row.push_back(static_cast<std::uint32_t>(value));
      } catch (const std::exception&) {
        return Status::InvalidArgument("'" + path + "' line " +
                                       std::to_string(line_no) +
                                       ": non-integer field '" + field + "'");
      }
    }
    Status st = dataset.AppendRow(row);
    if (!st.ok()) {
      return Status::InvalidArgument("'" + path + "' line " +
                                     std::to_string(line_no) + ": " +
                                     st.message());
    }
  }
  return dataset;
}

}  // namespace data
}  // namespace dpcube
