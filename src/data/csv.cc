// Copyright 2026 The dpcube Authors.

#include "data/csv.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

namespace dpcube {
namespace data {

namespace {

void TrimInPlace(std::string* s) {
  const auto is_space = [](char c) { return c == ' ' || c == '\t'; };
  std::size_t begin = 0;
  while (begin < s->size() && is_space((*s)[begin])) ++begin;
  std::size_t end = s->size();
  while (end > begin && is_space((*s)[end - 1])) --end;
  *s = s->substr(begin, end - begin);
}

bool IsMissing(const std::string& field, const CsvOptions& options) {
  return std::find(options.missing_tokens.begin(),
                   options.missing_tokens.end(),
                   field) != options.missing_tokens.end();
}

// Tokenises `text` starting at *pos into the fields of one record,
// consuming the trailing newline. Quoted fields may contain delimiters,
// doubled quotes, and newlines. Returns false at end of input.
Result<bool> NextRecord(const std::string& text, std::size_t* pos,
                        const CsvOptions& options,
                        std::vector<std::string>* fields) {
  fields->clear();
  if (*pos >= text.size()) return false;
  std::string field;
  bool in_quotes = false;
  bool field_was_quoted = false;
  for (;;) {
    if (*pos >= text.size()) {
      if (in_quotes) {
        return Status::InvalidArgument("CSV: unterminated quoted field");
      }
      break;  // End of input terminates the record.
    }
    const char c = text[(*pos)++];
    if (in_quotes) {
      if (c == '"') {
        if (*pos < text.size() && text[*pos] == '"') {
          field.push_back('"');  // Escaped quote.
          ++*pos;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    if (c == '"' && !field_was_quoted) {
      // A quote opens the field if nothing (or, leniently, only ignorable
      // whitespace) precedes it.
      const bool only_space = std::all_of(
          field.begin(), field.end(),
          [](char f) { return f == ' ' || f == '\t'; });
      if (field.empty() || (options.trim_whitespace && only_space)) {
        field.clear();
        in_quotes = true;
        field_was_quoted = true;
        continue;
      }
    }
    if (field_was_quoted && options.trim_whitespace &&
        (c == ' ' || c == '\t')) {
      continue;  // Ignore padding between a closing quote and the delimiter.
    }
    if (c == options.delimiter) {
      if (options.trim_whitespace && !field_was_quoted) TrimInPlace(&field);
      fields->push_back(std::move(field));
      field.clear();
      field_was_quoted = false;
      continue;
    }
    if (c == '\n') break;
    if (c == '\r') {
      if (*pos < text.size() && text[*pos] == '\n') ++*pos;
      break;
    }
    field.push_back(c);
  }
  if (options.trim_whitespace && !field_was_quoted) TrimInPlace(&field);
  fields->push_back(std::move(field));
  return true;
}

}  // namespace

Result<std::vector<std::string>> ParseCsvRecord(const std::string& line,
                                                const CsvOptions& options) {
  std::size_t pos = 0;
  std::vector<std::string> fields;
  DPCUBE_ASSIGN_OR_RETURN(bool got, NextRecord(line, &pos, options, &fields));
  if (!got) return Status::InvalidArgument("CSV: empty record");
  return fields;
}

Result<CsvTable> ParseCsv(const std::string& text, const CsvOptions& options) {
  CsvTable table;
  std::size_t pos = 0;
  DPCUBE_ASSIGN_OR_RETURN(bool got_header,
                          NextRecord(text, &pos, options, &table.header));
  if (!got_header || table.header.empty()) {
    return Status::InvalidArgument("CSV: missing header row");
  }
  std::vector<std::string> fields;
  for (;;) {
    DPCUBE_ASSIGN_OR_RETURN(bool got, NextRecord(text, &pos, options, &fields));
    if (!got) break;
    if (fields.size() == 1 && fields[0].empty()) continue;  // Blank line.
    if (fields.size() != table.header.size()) {
      return Status::InvalidArgument(
          "CSV: row " + std::to_string(table.rows.size() + 1) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(table.header.size()));
    }
    bool drop = false;
    for (auto& field : fields) {
      if (!IsMissing(field, options)) continue;
      switch (options.missing_policy) {
        case CsvOptions::MissingPolicy::kKeep:
          break;
        case CsvOptions::MissingPolicy::kDropRow:
          drop = true;
          break;
        case CsvOptions::MissingPolicy::kSentinel:
          field = options.sentinel;
          break;
      }
      if (drop) break;
    }
    if (drop) {
      ++table.rows_dropped;
      continue;
    }
    table.rows.push_back(fields);
  }
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path,
                             const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open CSV file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str(), options);
}

}  // namespace data
}  // namespace dpcube
