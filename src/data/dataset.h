// Copyright 2026 The dpcube Authors.
//
// Tuple storage and the binary encoding of Section 4.1: each tuple maps to
// a d-bit cell index of the contingency-table domain.

#ifndef DPCUBE_DATA_DATASET_H_
#define DPCUBE_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bits.h"
#include "common/status.h"
#include "data/schema.h"

namespace dpcube {
namespace data {

/// A dataset: a schema plus a row-major table of attribute values.
class Dataset {
 public:
  explicit Dataset(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  std::size_t num_rows() const {
    return schema_.num_attributes() == 0
               ? 0
               : values_.size() / schema_.num_attributes();
  }

  /// Appends a row; values.size() must equal num_attributes and each value
  /// must be < its attribute's cardinality.
  Status AppendRow(const std::vector<std::uint32_t>& values);

  /// Value of attribute a in row r.
  std::uint32_t At(std::size_t r, std::size_t a) const {
    return values_[r * schema_.num_attributes() + a];
  }

  /// Encodes row r into its d-bit cell index (attribute values packed at
  /// their schema bit offsets).
  bits::Mask EncodeRow(std::size_t r) const;

  /// Encodes every row; out.size() == num_rows().
  std::vector<bits::Mask> EncodeAll() const;

 private:
  Schema schema_;
  std::vector<std::uint32_t> values_;  // Row-major.
};

/// Decodes a cell index back into per-attribute values (raw bit fields; a
/// cell index that was never produced by EncodeRow may decode to values
/// >= cardinality, which callers treat as structurally-empty cells).
std::vector<std::uint32_t> DecodeCell(const Schema& schema, bits::Mask cell);

/// Writes the dataset as a CSV file: header of attribute names, then one
/// row of integer values per tuple.
Status WriteCsv(const Dataset& dataset, const std::string& path);

/// Reads a CSV produced by WriteCsv (or hand-authored with the same layout)
/// against the given schema; validates width and value ranges.
Result<Dataset> ReadCsv(const Schema& schema, const std::string& path);

}  // namespace data
}  // namespace dpcube

#endif  // DPCUBE_DATA_DATASET_H_
