// Copyright 2026 The dpcube Authors.
//
// Microdata synthesis from a released table — the Section 6 remark taken
// literally: a consistent release "corresponds to a data set", and this
// module materialises that data set as tuples. Two modes:
//
//  * kExact  — emit exactly round(cell) copies of each cell's tuple.
//    Applied to the integral release (recovery/integral.h) or a rounded
//    consistent witness, this is a faithful microdata file whose every
//    marginal equals the released one.
//  * kSample — draw `sample_rows` tuples from the cell distribution
//    (negative cells treated as zero). Useful when the release is
//    real-valued or when a smaller extract is wanted; marginals then
//    match in expectation.
//
// Cells whose bit pattern decodes outside an attribute's cardinality
// (structurally empty padding cells — possible when noise put mass
// there) cannot be represented as tuples; they are skipped and counted
// in `skipped_mass` so callers can report the discrepancy.

#ifndef DPCUBE_DATA_MICRODATA_H_
#define DPCUBE_DATA_MICRODATA_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"
#include "data/schema.h"

namespace dpcube {
namespace data {

struct MicrodataOptions {
  enum class Mode {
    kExact,   ///< round(cell) copies per cell.
    kSample,  ///< sample_rows draws proportional to max(cell, 0).
  };
  Mode mode = Mode::kExact;
  std::size_t sample_rows = 0;  ///< Required for kSample.
};

struct Microdata {
  Dataset dataset;
  /// Mass that sat on structurally-empty cells (not representable as
  /// tuples) and was dropped (kExact) or excluded from the distribution
  /// (kSample).
  double skipped_mass = 0.0;
};

/// Materialises tuples from a cell vector over the schema's encoded
/// domain. `cells` must have schema.DomainSize() entries and, in kExact
/// mode, non-negative entries (the integral/clamped release guarantees
/// this; pass a clamped copy otherwise). Fails on dimension mismatch,
/// negative cells in kExact mode, sample_rows == 0 in kSample mode, or a
/// domain with no representable mass.
Result<Microdata> GenerateMicrodata(const Schema& schema,
                                    const std::vector<double>& cells,
                                    const MicrodataOptions& options,
                                    Rng* rng);

}  // namespace data
}  // namespace dpcube

#endif  // DPCUBE_DATA_MICRODATA_H_
