// Copyright 2026 The dpcube Authors.
//
// Relational schema over categorical attributes. Following Section 4.1 of
// the paper, an attribute with |A| distinct values is mapped onto
// ceil(log2 |A|) binary attributes; the concatenation of all encoded
// attributes indexes the 2^d-cell contingency-table domain.

#ifndef DPCUBE_DATA_SCHEMA_H_
#define DPCUBE_DATA_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bits.h"
#include "common/status.h"

namespace dpcube {
namespace data {

/// One categorical attribute.
struct Attribute {
  std::string name;
  std::uint32_t cardinality = 0;  ///< Number of distinct values (>= 1).
};

/// An ordered list of attributes plus the derived binary encoding layout.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes);

  /// Validates cardinalities (>= 1) and the total bit width (<= 63).
  Status Validate() const;

  std::size_t num_attributes() const { return attributes_.size(); }
  const Attribute& attribute(std::size_t i) const { return attributes_.at(i); }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Bits used to encode attribute i: ceil(log2 cardinality), min 1.
  int BitWidth(std::size_t i) const { return bit_widths_.at(i); }

  /// Bit offset of attribute i inside the encoded d-bit index.
  int BitOffset(std::size_t i) const { return bit_offsets_.at(i); }

  /// Total encoded dimensionality d = sum of bit widths.
  int TotalBits() const { return total_bits_; }

  /// Encoded domain size N = 2^d.
  std::uint64_t DomainSize() const { return std::uint64_t{1} << total_bits_; }

  /// Mask selecting the bits of attribute i (BitWidth(i) ones at BitOffset).
  bits::Mask AttributeMask(std::size_t i) const;

  /// Union of AttributeMask over a set of attribute indices; this is the
  /// marginal mask alpha for a marginal over those attributes.
  bits::Mask MarginalMask(const std::vector<std::size_t>& attr_indices) const;

  /// Index of the attribute named `name`, or error if absent.
  Result<std::size_t> AttributeIndex(const std::string& name) const;

 private:
  std::vector<Attribute> attributes_;
  std::vector<int> bit_widths_;
  std::vector<int> bit_offsets_;
  int total_bits_ = 0;
};

/// Convenience: a schema of `d` binary attributes named prefix0..prefix{d-1}.
Schema BinarySchema(int d, const std::string& prefix = "b");

/// Parses a schema specification "name:cardinality,name:cardinality,...",
/// e.g. "age:4,smoker:2,region:8". Whitespace around fields is ignored.
Result<Schema> ParseSchemaSpec(const std::string& spec);

}  // namespace data
}  // namespace dpcube

#endif  // DPCUBE_DATA_SCHEMA_H_
