// Copyright 2026 The dpcube Authors.

#include "data/string_table.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

namespace dpcube {
namespace data {

std::uint32_t ValueDictionary::CodeOf(const std::string& label) {
  auto it = codes_.find(label);
  if (it != codes_.end()) return it->second;
  const std::uint32_t code = static_cast<std::uint32_t>(labels_.size());
  labels_.push_back(label);
  codes_.emplace(label, code);
  return code;
}

Result<std::uint32_t> ValueDictionary::Find(const std::string& label) const {
  auto it = codes_.find(label);
  if (it == codes_.end()) {
    return Status::NotFound("unknown category '" + label + "'");
  }
  return it->second;
}

Result<StringTable> EncodeStringRows(
    const std::vector<std::string>& column_names,
    const std::vector<std::vector<std::string>>& rows) {
  if (column_names.empty()) {
    return Status::InvalidArgument("no columns");
  }
  const std::size_t width = column_names.size();
  std::vector<ValueDictionary> dictionaries(width);
  std::vector<std::vector<std::uint32_t>> coded;
  coded.reserve(rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != width) {
      return Status::InvalidArgument("row " + std::to_string(r) +
                                     " has wrong width");
    }
    std::vector<std::uint32_t> code_row(width);
    for (std::size_t a = 0; a < width; ++a) {
      code_row[a] = dictionaries[a].CodeOf(rows[r][a]);
    }
    coded.push_back(std::move(code_row));
  }

  // Schema from the observed cardinalities (min 1 to keep a valid width).
  std::vector<Attribute> attrs;
  attrs.reserve(width);
  for (std::size_t a = 0; a < width; ++a) {
    attrs.push_back(Attribute{
        column_names[a], std::max<std::uint32_t>(1, dictionaries[a].size())});
  }
  Schema schema(std::move(attrs));
  DPCUBE_RETURN_NOT_OK(schema.Validate());

  StringTable table{Dataset(schema), std::move(dictionaries)};
  for (const auto& code_row : coded) {
    DPCUBE_RETURN_NOT_OK(table.dataset.AppendRow(code_row));
  }
  return table;
}

Result<StringTable> ReadStringCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("'" + path + "': empty file");
  }
  auto split = [](const std::string& text) {
    std::vector<std::string> fields;
    std::stringstream ss(text);
    std::string field;
    while (std::getline(ss, field, ',')) fields.push_back(field);
    if (!text.empty() && text.back() == ',') fields.push_back("");
    return fields;
  };
  const std::vector<std::string> header = split(line);
  std::vector<std::vector<std::string>> rows;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    rows.push_back(split(line));
  }
  auto table = EncodeStringRows(header, rows);
  if (!table.ok()) {
    return Status::InvalidArgument("'" + path +
                                   "': " + table.status().message());
  }
  return table;
}

}  // namespace data
}  // namespace dpcube
