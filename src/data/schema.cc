// Copyright 2026 The dpcube Authors.

#include "data/schema.h"

#include <bit>

namespace dpcube {
namespace data {
namespace {

int BitsFor(std::uint32_t cardinality) {
  if (cardinality <= 2) return 1;
  return std::bit_width(cardinality - 1);
}

}  // namespace

Schema::Schema(std::vector<Attribute> attributes)
    : attributes_(std::move(attributes)) {
  bit_widths_.reserve(attributes_.size());
  bit_offsets_.reserve(attributes_.size());
  total_bits_ = 0;
  for (const Attribute& attr : attributes_) {
    bit_offsets_.push_back(total_bits_);
    const int width = BitsFor(attr.cardinality);
    bit_widths_.push_back(width);
    total_bits_ += width;
  }
}

Status Schema::Validate() const {
  for (const Attribute& attr : attributes_) {
    if (attr.cardinality < 1) {
      return Status::InvalidArgument("attribute '" + attr.name +
                                     "' has zero cardinality");
    }
  }
  if (total_bits_ > 63) {
    return Status::InvalidArgument(
        "encoded domain exceeds 63 bits; too large for a Mask index");
  }
  return Status::OK();
}

bits::Mask Schema::AttributeMask(std::size_t i) const {
  const int width = BitWidth(i);
  const int offset = BitOffset(i);
  return ((bits::Mask{1} << width) - 1) << offset;
}

bits::Mask Schema::MarginalMask(
    const std::vector<std::size_t>& attr_indices) const {
  bits::Mask mask = 0;
  for (std::size_t i : attr_indices) mask |= AttributeMask(i);
  return mask;
}

Result<std::size_t> Schema::AttributeIndex(const std::string& name) const {
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return Status::NotFound("no attribute named '" + name + "'");
}

Result<Schema> ParseSchemaSpec(const std::string& spec) {
  std::vector<Attribute> attrs;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string field = spec.substr(pos, comma - pos);
    // Trim whitespace.
    const std::size_t first = field.find_first_not_of(" \t");
    const std::size_t last = field.find_last_not_of(" \t");
    if (first == std::string::npos) {
      return Status::InvalidArgument("empty attribute in schema spec");
    }
    field = field.substr(first, last - first + 1);
    const std::size_t colon = field.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= field.size()) {
      return Status::InvalidArgument("bad attribute spec '" + field +
                                     "' (want name:cardinality)");
    }
    const std::string name = field.substr(0, colon);
    unsigned long cardinality = 0;
    try {
      cardinality = std::stoul(field.substr(colon + 1));
    } catch (const std::exception&) {
      return Status::InvalidArgument("bad cardinality in '" + field + "'");
    }
    if (cardinality == 0) {
      return Status::InvalidArgument("zero cardinality in '" + field + "'");
    }
    attrs.push_back(
        Attribute{name, static_cast<std::uint32_t>(cardinality)});
    pos = comma + 1;
    if (comma == spec.size()) break;
  }
  if (attrs.empty()) {
    return Status::InvalidArgument("empty schema spec");
  }
  Schema schema(std::move(attrs));
  DPCUBE_RETURN_NOT_OK(schema.Validate());
  return schema;
}

Schema BinarySchema(int d, const std::string& prefix) {
  std::vector<Attribute> attrs;
  attrs.reserve(d);
  for (int i = 0; i < d; ++i) {
    attrs.push_back(Attribute{prefix + std::to_string(i), 2});
  }
  return Schema(std::move(attrs));
}

}  // namespace data
}  // namespace dpcube
