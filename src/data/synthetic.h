// Copyright 2026 The dpcube Authors.
//
// Synthetic dataset generators. The paper evaluates on the UCI Adult census
// extract and the StatLib NLTCS disability survey; neither ships with this
// repository, so seeded generators reproduce their structural profile
// (row counts, attribute cardinalities, skew and cross-attribute
// correlation). See DESIGN.md "Substitutions" for why this preserves the
// evaluation's behaviour: every algorithm here touches the data only
// through marginal counts over the encoded binary domain.

#ifndef DPCUBE_DATA_SYNTHETIC_H_
#define DPCUBE_DATA_SYNTHETIC_H_

#include <cstdint>

#include "common/rng.h"
#include "data/dataset.h"

namespace dpcube {
namespace data {

/// Schema of the paper's Adult extract: workclass(9), education(16),
/// marital-status(7), occupation(15), relationship(6), race(5), sex(2),
/// salary(2). Encoded width d = 23 bits.
Schema AdultSchema();

/// Adult-like dataset: `num_rows` tuples (paper: 32561) with skewed
/// per-attribute distributions and a dependency chain
/// education -> occupation -> salary, marital-status -> relationship.
Dataset MakeAdultLike(std::size_t num_rows, Rng* rng);

/// Schema of NLTCS: 16 binary functional-disability measures (d = 16).
Schema NltcsSchema();

/// NLTCS-like dataset: `num_rows` tuples (paper: 21576) of positively
/// correlated binary attributes driven by a latent severity class, giving
/// the sparse skewed contingency table characteristic of the real survey.
Dataset MakeNltcsLike(std::size_t num_rows, Rng* rng);

/// Uniform dataset over an arbitrary schema (each attribute independent
/// uniform) — a structureless baseline for tests.
Dataset MakeUniform(const Schema& schema, std::size_t num_rows, Rng* rng);

/// Independent product of Bernoulli(p) bits over a binary schema.
Dataset MakeProductBernoulli(int d, double p, std::size_t num_rows, Rng* rng);

}  // namespace data
}  // namespace dpcube

#endif  // DPCUBE_DATA_SYNTHETIC_H_
