// Copyright 2026 The dpcube Authors.

#include "data/microdata.h"

#include <cmath>

namespace dpcube {
namespace data {

namespace {

// True if every attribute field of `cell` is below its cardinality.
bool IsRepresentable(const Schema& schema, bits::Mask cell) {
  const std::vector<std::uint32_t> values = DecodeCell(schema, cell);
  for (std::size_t a = 0; a < schema.num_attributes(); ++a) {
    if (values[a] >= schema.attribute(a).cardinality) return false;
  }
  return true;
}

}  // namespace

Result<Microdata> GenerateMicrodata(const Schema& schema,
                                    const std::vector<double>& cells,
                                    const MicrodataOptions& options,
                                    Rng* rng) {
  DPCUBE_RETURN_NOT_OK(schema.Validate());
  if (cells.size() != schema.DomainSize()) {
    return Status::InvalidArgument(
        "microdata: cell vector does not match the schema's domain size");
  }
  if (options.mode == MicrodataOptions::Mode::kSample &&
      options.sample_rows == 0) {
    return Status::InvalidArgument(
        "microdata: sample mode requires sample_rows > 0");
  }

  Microdata out{Dataset(schema), 0.0};
  if (options.mode == MicrodataOptions::Mode::kExact) {
    for (bits::Mask cell = 0; cell < cells.size(); ++cell) {
      const double value = cells[cell];
      if (value < 0.0) {
        return Status::InvalidArgument(
            "microdata: exact mode requires non-negative cells (clamp or "
            "use sample mode)");
      }
      const std::int64_t copies = std::llround(value);
      if (copies == 0) continue;
      if (!IsRepresentable(schema, cell)) {
        out.skipped_mass += value;
        continue;
      }
      const std::vector<std::uint32_t> values = DecodeCell(schema, cell);
      for (std::int64_t i = 0; i < copies; ++i) {
        DPCUBE_RETURN_NOT_OK(out.dataset.AppendRow(values));
      }
    }
    return out;
  }

  // Sample mode: cumulative distribution over representable positive mass.
  std::vector<double> cumulative(cells.size(), 0.0);
  double total = 0.0;
  for (bits::Mask cell = 0; cell < cells.size(); ++cell) {
    const double value = std::max(cells[cell], 0.0);
    if (value > 0.0 && !IsRepresentable(schema, cell)) {
      out.skipped_mass += value;
    } else if (value > 0.0) {
      total += value;
    }
    cumulative[cell] = total;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument(
        "microdata: no representable positive mass to sample from");
  }
  for (std::size_t row = 0; row < options.sample_rows; ++row) {
    const double u = rng->NextDouble() * total;
    // Binary search the cumulative distribution.
    std::size_t lo = 0, hi = cumulative.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cumulative[mid] > u) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    DPCUBE_RETURN_NOT_OK(
        out.dataset.AppendRow(DecodeCell(schema, bits::Mask{lo})));
  }
  return out;
}

}  // namespace data
}  // namespace dpcube
