// Copyright 2026 The dpcube Authors.
//
// Numeric-attribute discretisation. The paper's pipeline (Section 4.1)
// operates on categorical attributes bit-encoded into the contingency
// domain; real extracts such as UCI Adult also carry numeric columns
// (age, hours-per-week, capital-gain) which must be binned before
// encoding. Two standard schemes are provided:
//   * equal-width  — fixed-size intervals over [min, max];
//   * equal-depth  — quantile cuts, so every bin holds ~the same number
//                    of rows (robust to skew, e.g. capital-gain's mass
//                    at zero).
// The result is a per-row bin code plus human-readable interval labels,
// drop-in compatible with the string-table / schema machinery.
//
// NOTE: choosing bin edges from the data is itself data-dependent; for an
// end-to-end DP guarantee the edges must be fixed a priori (use
// EqualWidthEdges with a known attribute range) or released through a DP
// quantile mechanism (out of scope here). The equal-depth helper is
// intended for offline schema design, matching how prior work prepared
// the evaluation datasets.

#ifndef DPCUBE_DATA_DISCRETIZE_H_
#define DPCUBE_DATA_DISCRETIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace dpcube {
namespace data {

/// How to place bin boundaries.
enum class BinningMethod {
  kEqualWidth,  ///< Evenly spaced cuts over [min, max].
  kEqualDepth,  ///< Empirical quantile cuts.
};

/// A fitted binning: edges[0] < edges[1] < ... < edges[b]; bin i covers
/// [edges[i], edges[i+1]) with the last bin closed on the right.
struct Discretization {
  std::vector<double> edges;          ///< num_bins + 1 boundaries.
  std::vector<std::uint32_t> codes;   ///< Per input row, in input order.
  std::vector<std::string> labels;    ///< "[lo, hi)" per bin.

  std::uint32_t num_bins() const {
    return static_cast<std::uint32_t>(labels.size());
  }
};

/// Evenly spaced edges over [lo, hi]; requires lo < hi and num_bins >= 1.
/// Use this (with an a-priori range) when the binning itself must not
/// depend on the data.
Result<std::vector<double>> EqualWidthEdges(double lo, double hi,
                                            int num_bins);

/// Fits a binning to `values`. Equal-depth duplicates cuts are merged, so
/// the realised bin count can be smaller than requested on heavily tied
/// data (never zero). Fails on empty input, non-finite values, or
/// num_bins < 1.
Result<Discretization> Discretize(const std::vector<double>& values,
                                  BinningMethod method, int num_bins);

/// Bins `values` against explicit edges (see Discretization for interval
/// conventions); values outside [edges.front(), edges.back()] clamp to the
/// first/last bin. Fails if edges are not strictly increasing.
Result<Discretization> DiscretizeWithEdges(const std::vector<double>& values,
                                           const std::vector<double>& edges);

/// Parses a string column into doubles ("3", "-1.5", "2e3"); fails on the
/// first non-numeric, non-missing field. Missing tokens become
/// `missing_value` (callers typically bin them into their own category
/// afterwards or drop the rows at CSV level).
Result<std::vector<double>> ParseNumericColumn(
    const std::vector<std::string>& fields,
    const std::vector<std::string>& missing_tokens = {"?", "", "NA"},
    double missing_value = 0.0);

}  // namespace data
}  // namespace dpcube

#endif  // DPCUBE_DATA_DISCRETIZE_H_
