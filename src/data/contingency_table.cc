// Copyright 2026 The dpcube Authors.

#include "data/contingency_table.h"

#include <algorithm>
#include <cmath>

#include "transform/walsh_hadamard.h"

namespace dpcube {
namespace data {

namespace {
constexpr int kMaxDenseBits = 26;  // 64M cells * 8B = 512 MiB ceiling.
}  // namespace

Result<DenseTable> DenseTable::Zero(int d) {
  if (d < 0 || d > kMaxDenseBits) {
    return Status::InvalidArgument("DenseTable: d out of range [0, 26]");
  }
  return DenseTable(d, std::vector<double>(std::uint64_t{1} << d, 0.0));
}

Result<DenseTable> DenseTable::FromDataset(const Dataset& dataset) {
  const int d = dataset.schema().TotalBits();
  DPCUBE_ASSIGN_OR_RETURN(DenseTable table, Zero(d));
  for (std::size_t r = 0; r < dataset.num_rows(); ++r) {
    table.cell(dataset.EncodeRow(r)) += 1.0;
  }
  return table;
}

Result<DenseTable> DenseTable::FromCells(std::vector<double> cells) {
  if (!transform::IsPowerOfTwo(cells.size())) {
    return Status::InvalidArgument("DenseTable: size must be a power of two");
  }
  const int d = transform::Log2OfPowerOfTwo(cells.size());
  if (d > kMaxDenseBits) {
    return Status::InvalidArgument("DenseTable: domain too large");
  }
  return DenseTable(d, std::move(cells));
}

double DenseTable::Total() const {
  double total = 0.0;
  for (double c : cells_) total += c;
  return total;
}

SparseCounts SparseCounts::FromDataset(const Dataset& dataset) {
  std::vector<bits::Mask> cells = dataset.EncodeAll();
  std::sort(cells.begin(), cells.end());
  std::vector<Entry> entries;
  for (std::size_t i = 0; i < cells.size();) {
    std::size_t j = i;
    while (j < cells.size() && cells[j] == cells[i]) ++j;
    entries.push_back(Entry{cells[i], static_cast<double>(j - i)});
    i = j;
  }
  return SparseCounts(dataset.schema().TotalBits(), std::move(entries));
}

SparseCounts SparseCounts::FromDense(const DenseTable& dense) {
  std::vector<Entry> entries;
  for (std::uint64_t c = 0; c < dense.domain_size(); ++c) {
    if (dense.cell(c) != 0.0) entries.push_back(Entry{c, dense.cell(c)});
  }
  return SparseCounts(dense.d(), std::move(entries));
}

double SparseCounts::Total() const {
  double total = 0.0;
  for (const Entry& e : entries_) total += e.count;
  return total;
}

Result<DenseTable> SparseCounts::ToDense() const {
  DPCUBE_ASSIGN_OR_RETURN(DenseTable table, DenseTable::Zero(d_));
  for (const Entry& e : entries_) table.cell(e.cell) = e.count;
  return table;
}

double SparseCounts::FourierCoefficient(bits::Mask alpha) const {
  double sum = 0.0;
  for (const Entry& e : entries_) {
    sum += bits::FourierSign(alpha, e.cell) * e.count;
  }
  return sum * std::pow(2.0, -0.5 * d_);
}

}  // namespace data
}  // namespace dpcube
