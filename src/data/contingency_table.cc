// Copyright 2026 The dpcube Authors.

#include "data/contingency_table.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"
#include "transform/walsh_hadamard.h"

namespace dpcube {
namespace data {

namespace {
constexpr int kMaxDenseBits = 26;  // 64M cells * 8B = 512 MiB ceiling.
}  // namespace

Result<DenseTable> DenseTable::Zero(int d) {
  if (d < 0 || d > kMaxDenseBits) {
    return Status::InvalidArgument("DenseTable: d out of range [0, 26]");
  }
  return DenseTable(d, std::vector<double>(std::uint64_t{1} << d, 0.0));
}

Result<DenseTable> DenseTable::FromDataset(const Dataset& dataset) {
  const int d = dataset.schema().TotalBits();
  DPCUBE_ASSIGN_OR_RETURN(DenseTable table, Zero(d));
  for (std::size_t r = 0; r < dataset.num_rows(); ++r) {
    table.cell(dataset.EncodeRow(r)) += 1.0;
  }
  return table;
}

Result<DenseTable> DenseTable::FromCells(std::vector<double> cells) {
  if (!transform::IsPowerOfTwo(cells.size())) {
    return Status::InvalidArgument("DenseTable: size must be a power of two");
  }
  const int d = transform::Log2OfPowerOfTwo(cells.size());
  if (d > kMaxDenseBits) {
    return Status::InvalidArgument("DenseTable: domain too large");
  }
  return DenseTable(d, std::move(cells));
}

double DenseTable::Total() const {
  double total = 0.0;
  for (double c : cells_) total += c;
  return total;
}

SparseCounts SparseCounts::FromDataset(const Dataset& dataset) {
  const std::size_t rows = dataset.num_rows();
  std::vector<bits::Mask> cells(rows);
  ThreadPool& pool = ThreadPool::Shared();
  pool.ParallelForBlocks(0, rows, std::size_t{1} << 13,
                         [&](std::size_t lo, std::size_t hi) {
                           for (std::size_t r = lo; r < hi; ++r) {
                             cells[r] = dataset.EncodeRow(r);
                           }
                         });

  // Sharded sort: fixed-size shards sorted concurrently, then merged in
  // rounds of pairwise inplace_merge (merges within a round are disjoint
  // and also run concurrently). The merged sequence is the same sorted
  // multiset a single std::sort would produce, so the (cell, count)
  // output — integer counts, summed exactly — is identical for every
  // thread count.
  constexpr std::size_t kShard = std::size_t{1} << 15;
  if (rows > kShard && pool.parallelism() > 1) {
    const std::size_t num_shards = (rows + kShard - 1) / kShard;
    pool.ParallelFor(0, num_shards, 1, [&](std::size_t s) {
      const std::size_t lo = s * kShard;
      std::sort(cells.begin() + lo,
                cells.begin() + std::min(rows, lo + kShard));
    });
    for (std::size_t width = kShard; width < rows; width <<= 1) {
      const std::size_t num_pairs = (rows + 2 * width - 1) / (2 * width);
      pool.ParallelFor(0, num_pairs, 1, [&](std::size_t p) {
        const std::size_t base = p * 2 * width;
        const std::size_t mid = base + width;
        if (mid >= rows) return;  // Odd tail carries over unmerged.
        std::inplace_merge(cells.begin() + base, cells.begin() + mid,
                           cells.begin() + std::min(rows, base + 2 * width));
      });
    }
  } else {
    std::sort(cells.begin(), cells.end());
  }

  std::vector<Entry> entries;
  for (std::size_t i = 0; i < cells.size();) {
    std::size_t j = i;
    while (j < cells.size() && cells[j] == cells[i]) ++j;
    entries.push_back(Entry{cells[i], static_cast<double>(j - i)});
    i = j;
  }
  return SparseCounts(dataset.schema().TotalBits(), std::move(entries));
}

SparseCounts SparseCounts::FromDense(const DenseTable& dense) {
  std::vector<Entry> entries;
  for (std::uint64_t c = 0; c < dense.domain_size(); ++c) {
    if (dense.cell(c) != 0.0) entries.push_back(Entry{c, dense.cell(c)});
  }
  return SparseCounts(dense.d(), std::move(entries));
}

double SparseCounts::Total() const {
  double total = 0.0;
  for (const Entry& e : entries_) total += e.count;
  return total;
}

Result<DenseTable> SparseCounts::ToDense() const {
  DPCUBE_ASSIGN_OR_RETURN(DenseTable table, DenseTable::Zero(d_));
  for (const Entry& e : entries_) table.cell(e.cell) = e.count;
  return table;
}

double SparseCounts::FourierCoefficient(bits::Mask alpha) const {
  // Above the cutoff, block the occupied-cell scan into fixed-size
  // partial sums merged in block-index order. The block partition is a
  // constant of the entry count — never of the pool size or schedule —
  // so one huge cuboid produces bit-identical coefficients at every
  // thread count (the determinism suite covers this). Below the cutoff
  // the scan stays inline and byte-identical to the historical
  // sequential sum (the golden snapshots sit well below it). This is the
  // single-huge-cuboid complement to the per-coefficient fan-out in the
  // F strategy: nested ParallelFor is safe, and when only a few
  // coefficients are in flight the inner blocks keep every thread busy.
  constexpr std::size_t kParallelCutoff = std::size_t{1} << 14;
  constexpr std::size_t kBlock = std::size_t{1} << 12;
  const std::size_t n = entries_.size();
  double sum = 0.0;
  if (n < kParallelCutoff) {
    for (const Entry& e : entries_) {
      sum += bits::FourierSign(alpha, e.cell) * e.count;
    }
  } else {
    sum = ThreadPool::Shared().ParallelSumBlocks(
        0, n, kBlock, [&](std::size_t lo, std::size_t hi) {
          double block_sum = 0.0;
          for (std::size_t i = lo; i < hi; ++i) {
            block_sum +=
                bits::FourierSign(alpha, entries_[i].cell) * entries_[i].count;
          }
          return block_sum;
        });
  }
  return sum * std::pow(2.0, -0.5 * d_);
}

}  // namespace data
}  // namespace dpcube
