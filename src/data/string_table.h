// Copyright 2026 The dpcube Authors.
//
// Ingesting real-world categorical CSVs: values are strings ("Private",
// "Bachelors", ...), not pre-coded integers. StringTableReader builds a
// per-column dictionary in first-appearance order, yielding a Schema
// (cardinalities = dictionary sizes) plus the encoded Dataset, and keeps
// the dictionaries so released marginal cells can be labelled with the
// original category names.

#ifndef DPCUBE_DATA_STRING_TABLE_H_
#define DPCUBE_DATA_STRING_TABLE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace dpcube {
namespace data {

/// A per-attribute value dictionary (code -> label, label -> code).
class ValueDictionary {
 public:
  /// Returns the code of `label`, inserting it if new.
  std::uint32_t CodeOf(const std::string& label);

  /// Returns the code if present, error otherwise (read-only lookup).
  Result<std::uint32_t> Find(const std::string& label) const;

  /// The label of a code; code must be < size().
  const std::string& LabelOf(std::uint32_t code) const {
    return labels_.at(code);
  }

  std::uint32_t size() const {
    return static_cast<std::uint32_t>(labels_.size());
  }

 private:
  std::vector<std::string> labels_;
  std::unordered_map<std::string, std::uint32_t> codes_;
};

/// The result of ingesting a string-valued CSV.
struct StringTable {
  Dataset dataset;                          ///< Dictionary-encoded rows.
  std::vector<ValueDictionary> dictionaries;  ///< One per attribute.

  /// The label of the dataset value at (row, attribute).
  const std::string& LabelAt(std::size_t row, std::size_t attribute) const {
    return dictionaries[attribute].LabelOf(dataset.At(row, attribute));
  }
};

/// Reads a string-valued CSV (header row of attribute names, comma
/// separated, no quoting/escaping — fields must not contain commas).
/// Builds dictionaries in first-appearance order. Fails on ragged rows
/// or an empty file; empty fields become the category "" like any other
/// value. The resulting schema uses the observed cardinalities, so the
/// encoded domain is as tight as the data allows.
Result<StringTable> ReadStringCsv(const std::string& path);

/// Parses rows already in memory (header excluded); used by tests and by
/// callers with their own I/O.
Result<StringTable> EncodeStringRows(
    const std::vector<std::string>& column_names,
    const std::vector<std::vector<std::string>>& rows);

}  // namespace data
}  // namespace dpcube

#endif  // DPCUBE_DATA_STRING_TABLE_H_
