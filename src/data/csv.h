// Copyright 2026 The dpcube Authors.
//
// RFC-4180-style CSV parsing: quoted fields, escaped quotes ("" inside a
// quoted field), embedded delimiters and newlines inside quotes, CRLF
// line endings, configurable delimiter, and missing-value tokens. This is
// the ingestion layer for real-world extracts like the UCI Adult file
// (whose fields contain "?" for missing values and commas inside quoted
// occupation strings); data/string_table.h and data/discretize.h build
// the encoded dataset on top of the raw string rows produced here.

#ifndef DPCUBE_DATA_CSV_H_
#define DPCUBE_DATA_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace dpcube {
namespace data {

struct CsvOptions {
  char delimiter = ',';
  /// Trim ASCII spaces/tabs around unquoted fields (the Adult extract
  /// pads fields as ", Private").
  bool trim_whitespace = true;
  /// Field values treated as missing (after trimming).
  std::vector<std::string> missing_tokens = {"?", "", "NA"};
  /// What to do with a row containing a missing field.
  enum class MissingPolicy {
    kKeep,      ///< Keep the token as an ordinary category value.
    kDropRow,   ///< Skip the whole row.
    kSentinel,  ///< Replace the field with `sentinel`.
  };
  MissingPolicy missing_policy = MissingPolicy::kKeep;
  std::string sentinel = "<missing>";
};

/// A parsed CSV: the header row and the data rows (all strings).
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
  std::size_t rows_dropped = 0;  ///< Rows removed by kDropRow.
};

/// Splits one physical CSV record into fields. Fails on an unterminated
/// quote. (Records with embedded newlines must be assembled by the caller
/// or read via ParseCsv, which handles them.)
Result<std::vector<std::string>> ParseCsvRecord(const std::string& line,
                                                const CsvOptions& options = {});

/// Parses a full CSV document (first record = header). Handles quoted
/// newlines, CRLF, and a trailing newline. Fails on ragged rows or an
/// empty document.
Result<CsvTable> ParseCsv(const std::string& text,
                          const CsvOptions& options = {});

/// Reads and parses a CSV file.
Result<CsvTable> ReadCsvFile(const std::string& path,
                             const CsvOptions& options = {});

}  // namespace data
}  // namespace dpcube

#endif  // DPCUBE_DATA_CSV_H_
