// Copyright 2026 The dpcube Authors.

#include "data/synthetic.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace dpcube {
namespace data {
namespace {

// Zipf-ish decaying weights w_i = 1 / (i + 1)^s over n categories.
std::vector<double> DecayWeights(int n, double s) {
  std::vector<double> w(n);
  for (int i = 0; i < n; ++i) w[i] = std::pow(static_cast<double>(i + 1), -s);
  return w;
}

// Weights shifted so that mass concentrates around `center`.
std::vector<double> PeakedWeights(int n, int center, double spread) {
  std::vector<double> w(n);
  for (int i = 0; i < n; ++i) {
    const double z = (i - center) / spread;
    w[i] = std::exp(-0.5 * z * z) + 0.02;
  }
  return w;
}

}  // namespace

Schema AdultSchema() {
  return Schema({
      Attribute{"workclass", 9},
      Attribute{"education", 16},
      Attribute{"marital_status", 7},
      Attribute{"occupation", 15},
      Attribute{"relationship", 6},
      Attribute{"race", 5},
      Attribute{"sex", 2},
      Attribute{"salary", 2},
  });
}

Dataset MakeAdultLike(std::size_t num_rows, Rng* rng) {
  Schema schema = AdultSchema();
  Dataset dataset(schema);

  // Static skewed priors mirroring the census profile: one dominant
  // workclass (private sector), a handful of common education levels,
  // married/never-married dominating marital status, etc.
  const std::vector<double> workclass_w = {0.70, 0.08, 0.06, 0.04, 0.04,
                                           0.03, 0.03, 0.01, 0.01};
  const std::vector<double> education_w = DecayWeights(16, 0.9);
  const std::vector<double> marital_w = {0.46, 0.33, 0.13, 0.04, 0.03,
                                         0.007, 0.003};
  const std::vector<double> race_w = {0.85, 0.10, 0.03, 0.01, 0.01};

  for (std::size_t r = 0; r < num_rows; ++r) {
    const std::uint32_t workclass = static_cast<std::uint32_t>(
        rng->NextCategorical(workclass_w.data(), 9));
    const std::uint32_t education = static_cast<std::uint32_t>(
        rng->NextCategorical(education_w.data(), 16));

    // Occupation correlates with education: higher education shifts the
    // peak of the occupation distribution.
    const int occ_center = static_cast<int>(education) * 14 / 15;
    const std::vector<double> occupation_w = PeakedWeights(15, occ_center, 3.0);
    const std::uint32_t occupation = static_cast<std::uint32_t>(
        rng->NextCategorical(occupation_w.data(), 15));

    const std::uint32_t marital = static_cast<std::uint32_t>(
        rng->NextCategorical(marital_w.data(), 7));

    // Relationship is strongly determined by marital status (husband/wife
    // for married, own-child/unmarried otherwise).
    std::vector<double> relationship_w(6, 0.05);
    if (marital == 0) {          // Married.
      relationship_w[0] = 0.70;  // Husband.
      relationship_w[1] = 0.20;  // Wife.
    } else if (marital == 1) {   // Never married.
      relationship_w[3] = 0.55;  // Own child.
      relationship_w[4] = 0.30;  // Not in family.
    } else {
      relationship_w[4] = 0.45;
      relationship_w[5] = 0.25;
    }
    const std::uint32_t relationship = static_cast<std::uint32_t>(
        rng->NextCategorical(relationship_w.data(), 6));

    const std::uint32_t race =
        static_cast<std::uint32_t>(rng->NextCategorical(race_w.data(), 5));
    const std::uint32_t sex = rng->NextBernoulli(0.33) ? 1u : 0u;

    // Salary > 50K depends on education, occupation and sex through a
    // logistic score; overall positive rate ~24% as in the census data.
    const double score = -2.4 + 0.16 * education + 0.05 * occupation +
                         (sex == 0 ? 0.55 : 0.0) + (marital == 0 ? 0.8 : 0.0);
    const double p_high = 1.0 / (1.0 + std::exp(-score));
    const std::uint32_t salary = rng->NextBernoulli(p_high) ? 1u : 0u;

    const Status st = dataset.AppendRow({workclass, education, marital,
                                         occupation, relationship, race, sex,
                                         salary});
    assert(st.ok());
    (void)st;
  }
  return dataset;
}

Schema NltcsSchema() {
  std::vector<Attribute> attrs;
  // 6 activities of daily living + 10 instrumental activities.
  for (int i = 0; i < 6; ++i) {
    attrs.push_back(Attribute{"adl" + std::to_string(i), 2});
  }
  for (int i = 0; i < 10; ++i) {
    attrs.push_back(Attribute{"iadl" + std::to_string(i), 2});
  }
  return Schema(std::move(attrs));
}

Dataset MakeNltcsLike(std::size_t num_rows, Rng* rng) {
  Schema schema = NltcsSchema();
  Dataset dataset(schema);

  // Latent severity class: none / moderate / severe. Disability indicators
  // are rare for healthy respondents and common for severe ones, which
  // produces the positively correlated, sparse contingency table the real
  // survey exhibits.
  const double class_w[3] = {0.55, 0.32, 0.13};
  // Base activation probability per attribute (ADLs rarer than IADLs).
  std::vector<double> base(16);
  for (int a = 0; a < 6; ++a) base[a] = 0.04 + 0.01 * a;
  for (int a = 6; a < 16; ++a) base[a] = 0.08 + 0.012 * (a - 6);
  const double lift[3] = {0.0, 0.30, 0.72};

  std::vector<std::uint32_t> row(16);
  for (std::size_t r = 0; r < num_rows; ++r) {
    const int severity = rng->NextCategorical(class_w, 3);
    for (int a = 0; a < 16; ++a) {
      const double p = std::min(0.97, base[a] + lift[severity]);
      row[a] = rng->NextBernoulli(p) ? 1u : 0u;
    }
    const Status st = dataset.AppendRow(row);
    assert(st.ok());
    (void)st;
  }
  return dataset;
}

Dataset MakeUniform(const Schema& schema, std::size_t num_rows, Rng* rng) {
  Dataset dataset(schema);
  std::vector<std::uint32_t> row(schema.num_attributes());
  for (std::size_t r = 0; r < num_rows; ++r) {
    for (std::size_t a = 0; a < schema.num_attributes(); ++a) {
      row[a] = static_cast<std::uint32_t>(
          rng->NextBounded(schema.attribute(a).cardinality));
    }
    const Status st = dataset.AppendRow(row);
    assert(st.ok());
    (void)st;
  }
  return dataset;
}

Dataset MakeProductBernoulli(int d, double p, std::size_t num_rows, Rng* rng) {
  Schema schema = BinarySchema(d);
  Dataset dataset(schema);
  std::vector<std::uint32_t> row(d);
  for (std::size_t r = 0; r < num_rows; ++r) {
    for (int a = 0; a < d; ++a) row[a] = rng->NextBernoulli(p) ? 1u : 0u;
    const Status st = dataset.AppendRow(row);
    assert(st.ok());
    (void)st;
  }
  return dataset;
}

}  // namespace data
}  // namespace dpcube
