// Copyright 2026 The dpcube Authors.

#include "budget/grouped_budget.h"

#include <cmath>
#include <string>

namespace dpcube {
namespace budget {
namespace {

constexpr double kZeroGroupShare = 1e-6;

Status ValidateGroups(const std::vector<GroupSummary>& groups) {
  if (groups.empty()) {
    return Status::InvalidArgument("no groups");
  }
  for (const GroupSummary& g : groups) {
    if (!(g.column_norm > 0.0)) {
      return Status::InvalidArgument("group column_norm must be positive");
    }
    if (g.weight_sum < 0.0) {
      return Status::InvalidArgument("group weight_sum must be >= 0");
    }
  }
  return Status::OK();
}

double DistributionFactor(const dp::PrivacyParams& params) {
  return params.IsPureDp() ? 1.0 : std::log(2.0 / params.delta);
}

}  // namespace

Result<GroupBudgets> OptimalGroupBudgets(const std::vector<GroupSummary>& groups,
                                         const dp::PrivacyParams& params) {
  DPCUBE_RETURN_NOT_OK(params.Validate());
  DPCUBE_RETURN_NOT_OK(ValidateGroups(groups));
  const double eps_prime = params.epsilon / params.SensitivityFactor();
  const std::size_t g = groups.size();

  bool any_weighted = false;
  bool any_zero = false;
  for (const GroupSummary& grp : groups) {
    (grp.weight_sum > 0.0 ? any_weighted : any_zero) = true;
  }
  if (!any_weighted) {
    return Status::InvalidArgument(
        "all group weights are zero; nothing to optimize");
  }

  GroupBudgets out;
  out.eta.assign(g, 0.0);

  if (params.IsPureDp()) {
    // Constraint: sum_r C_r eta_r = eps'. Zero-weight groups share a
    // vanishing slice so their measurements stay well-defined.
    double zero_slice = any_zero ? kZeroGroupShare * eps_prime : 0.0;
    double zero_c_sum = 0.0;
    for (const GroupSummary& grp : groups) {
      if (grp.weight_sum == 0.0) zero_c_sum += grp.column_norm;
    }
    const double eps_opt = eps_prime - zero_slice;
    // eta_r = eps_opt * (s_r / C_r)^{1/3} / T with
    // T = sum_q C_q^{2/3} s_q^{1/3}.
    double t = 0.0;
    for (const GroupSummary& grp : groups) {
      if (grp.weight_sum > 0.0) {
        t += std::pow(grp.column_norm, 2.0 / 3.0) *
             std::cbrt(grp.weight_sum);
      }
    }
    for (std::size_t r = 0; r < g; ++r) {
      if (groups[r].weight_sum > 0.0) {
        out.eta[r] = eps_opt *
                     std::cbrt(groups[r].weight_sum / groups[r].column_norm) /
                     t;
      } else {
        out.eta[r] = zero_slice / zero_c_sum;
      }
    }
    out.variance_objective = t * t * t / (eps_opt * eps_opt);
  } else {
    // Constraint: sum_r C_r^2 eta_r^2 = eps'^2.
    double zero_slice_sq =
        any_zero ? (kZeroGroupShare * eps_prime) * (kZeroGroupShare * eps_prime)
                 : 0.0;
    double zero_c2_sum = 0.0;
    for (const GroupSummary& grp : groups) {
      if (grp.weight_sum == 0.0) {
        zero_c2_sum += grp.column_norm * grp.column_norm;
      }
    }
    const double eps_opt_sq = eps_prime * eps_prime - zero_slice_sq;
    // eta_r^2 = eps_opt^2 * (sqrt(s_r)/C_r) / T with T = sum_q C_q sqrt(s_q).
    double t = 0.0;
    for (const GroupSummary& grp : groups) {
      if (grp.weight_sum > 0.0) {
        t += grp.column_norm * std::sqrt(grp.weight_sum);
      }
    }
    for (std::size_t r = 0; r < g; ++r) {
      if (groups[r].weight_sum > 0.0) {
        const double eta_sq = eps_opt_sq *
                              std::sqrt(groups[r].weight_sum) /
                              (groups[r].column_norm * t);
        out.eta[r] = std::sqrt(eta_sq);
      } else {
        out.eta[r] = std::sqrt(zero_slice_sq / zero_c2_sum);
      }
    }
    out.variance_objective =
        DistributionFactor(params) * t * t / eps_opt_sq;
  }
  return out;
}

Result<GroupBudgets> UniformGroupBudgets(const std::vector<GroupSummary>& groups,
                                         const dp::PrivacyParams& params) {
  DPCUBE_RETURN_NOT_OK(params.Validate());
  DPCUBE_RETURN_NOT_OK(ValidateGroups(groups));
  const double eps_prime = params.epsilon / params.SensitivityFactor();

  double eps_row;
  if (params.IsPureDp()) {
    double c_sum = 0.0;
    for (const GroupSummary& grp : groups) c_sum += grp.column_norm;
    eps_row = eps_prime / c_sum;
  } else {
    double c2_sum = 0.0;
    for (const GroupSummary& grp : groups) {
      c2_sum += grp.column_norm * grp.column_norm;
    }
    eps_row = eps_prime / std::sqrt(c2_sum);
  }

  GroupBudgets out;
  out.eta.assign(groups.size(), eps_row);
  out.variance_objective = VarianceObjective(groups, out.eta, params);
  return out;
}

double VarianceObjective(const std::vector<GroupSummary>& groups,
                         const linalg::Vector& eta,
                         const dp::PrivacyParams& params) {
  double core = 0.0;
  for (std::size_t r = 0; r < groups.size(); ++r) {
    if (groups[r].weight_sum == 0.0) continue;
    core += groups[r].weight_sum / (eta[r] * eta[r]);
  }
  return DistributionFactor(params) * core;
}

linalg::Vector RecoveryRowWeights(const linalg::Matrix& r,
                                  const linalg::Vector& a) {
  linalg::Vector b(r.cols(), 0.0);
  for (std::size_t j = 0; j < r.rows(); ++j) {
    const double aj = a.empty() ? 1.0 : a[j];
    const double* row = r.RowData(j);
    for (std::size_t i = 0; i < r.cols(); ++i) {
      b[i] += 2.0 * aj * row[i] * row[i];
    }
  }
  return b;
}

Status CheckRecoveryConsistentWithGrouping(const RowGrouping& grouping,
                                           const linalg::Vector& row_weights,
                                           double tol) {
  if (grouping.group_of_row.size() != row_weights.size()) {
    return Status::InvalidArgument("row weight size mismatch");
  }
  std::vector<double> first(grouping.num_groups(), -1.0);
  for (std::size_t i = 0; i < row_weights.size(); ++i) {
    const int r = grouping.group_of_row[i];
    if (first[r] < 0.0) {
      first[r] = row_weights[i];
    } else if (std::fabs(first[r] - row_weights[i]) >
               tol * std::max(1.0, first[r])) {
      return Status::FailedPrecondition(
          "recovery weights differ within group " + std::to_string(r) +
          " (Definition 3.2 violated)");
    }
  }
  return Status::OK();
}

}  // namespace budget
}  // namespace dpcube
