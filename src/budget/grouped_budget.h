// Copyright 2026 The dpcube Authors.
//
// Optimal noise budgeting for grouped strategies — the closed-form solution
// of the paper's optimization problem (4)-(6) (Section 3.1, Corollary 3.3).
//
// Under a grouping with column norms C_r and group weight sums
// s_r = sum_{rows i in group r} b_i, with b_i = 2 sum_j a_j R_ji^2:
//
//  * pure eps-DP (Laplace): minimize sum_r s_r / eta_r^2 subject to
//    sum_r C_r eta_r = eps', giving eta_r ∝ (s_r / C_r)^{1/3} and optimum
//    (sum_r C_r^{2/3} s_r^{1/3})^3 / eps'^2;
//  * (eps, delta)-DP (Gaussian): the constraint is
//    sum_r C_r^2 eta_r^2 = eps'^2, giving eta_r^2 ∝ sqrt(s_r)/C_r and
//    optimum ln(2/delta) * (sum_r C_r sqrt(s_r))^2 / eps'^2,
//
// where eps' = eps / SensitivityFactor() accounts for the neighbour model.
// The reported `variance_objective` is the total weighted output variance
// a^T Var(y) = sum_i b_i Var(nu_i) / 2 — directly comparable across
// mechanisms and budgeting schemes.

#ifndef DPCUBE_BUDGET_GROUPED_BUDGET_H_
#define DPCUBE_BUDGET_GROUPED_BUDGET_H_

#include <vector>

#include "budget/grouping.h"
#include "common/status.h"
#include "dp/privacy.h"
#include "linalg/matrix.h"

namespace dpcube {
namespace budget {

/// How the privacy budget is allocated across strategy groups.
enum class BudgetMode {
  kUniform,  ///< Same per-row budget everywhere (prior work; "S").
  kOptimal,  ///< Closed-form non-uniform budgets ("S+", Section 3.1).
};

/// Per-group budgets plus the predicted total output variance.
struct GroupBudgets {
  linalg::Vector eta;              ///< Budget eta_r for every row of group r.
  double variance_objective = 0.0; ///< Predicted a^T Var(y).
};

/// Closed-form optimal non-uniform budgets (the paper's "S+" variants).
/// Groups with weight_sum == 0 contribute nothing to the objective; they
/// are assigned a vanishing share (1e-6 of the budget, split evenly) so
/// their measurements remain well-defined, and the remaining budget is
/// allotted optimally. Fails if all weight sums are zero or any
/// column_norm is non-positive.
Result<GroupBudgets> OptimalGroupBudgets(const std::vector<GroupSummary>& groups,
                                         const dp::PrivacyParams& params);

/// Uniform budgets (the prior-work baseline): every strategy row gets the
/// same eps_row = eps' / sum_r C_r (Laplace) or the L2 analogue
/// eps' / sqrt(sum_r C_r^2) (Gaussian), saturating the privacy constraint.
Result<GroupBudgets> UniformGroupBudgets(const std::vector<GroupSummary>& groups,
                                         const dp::PrivacyParams& params);

/// Total output variance a^T Var(y) for arbitrary per-group budgets
/// (used to cross-check the closed forms against the convex solver).
double VarianceObjective(const std::vector<GroupSummary>& groups,
                         const linalg::Vector& eta,
                         const dp::PrivacyParams& params);

/// Per-row recovery weights b_i = 2 * sum_j a_j R_ji^2 for a dense recovery
/// matrix R and query weighting a (pass empty `a` for all-ones).
linalg::Vector RecoveryRowWeights(const linalg::Matrix& r,
                                  const linalg::Vector& a = {});

/// Checks Definition 3.2: R is consistent with the grouping if b_i is
/// constant within every group (within tolerance). When this holds the
/// grouped optimum is optimal for the full problem (Theorem 3.4).
Status CheckRecoveryConsistentWithGrouping(const RowGrouping& grouping,
                                           const linalg::Vector& row_weights,
                                           double tol = 1e-9);

}  // namespace budget
}  // namespace dpcube

#endif  // DPCUBE_BUDGET_GROUPED_BUDGET_H_
