// Copyright 2026 The dpcube Authors.
//
// The grouping property of strategy matrices (Definition 3.1): a grouping
// function G over the rows of S such that
//   (row-wise disjointness)  rows in the same group have disjoint support;
//   (bounded column norm)    within a group, every column's max |S_ij| is
//                            the same constant C_r.
// Under a grouping, every privacy constraint sum_i |S_ij| eps_i <= eps
// collapses to the single constraint sum_r C_r eta_r <= eps, which is what
// makes the closed-form budgets of grouped_budget.h possible.
//
// Two representations are provided: a compact per-group summary (all the
// optimizer needs — strategies over huge domains never materialise
// per-row data), and an explicit per-row grouping for dense matrices with
// a greedy detector and a verifier used in tests.

#ifndef DPCUBE_BUDGET_GROUPING_H_
#define DPCUBE_BUDGET_GROUPING_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace dpcube {
namespace budget {

/// Everything the budget optimizer needs to know about one group.
struct GroupSummary {
  double column_norm = 0.0;   ///< C_r: magnitude of the group's entries.
  double weight_sum = 0.0;    ///< s_r = sum of b_i over the group's rows.
  std::uint64_t num_rows = 0; ///< Rows in the group (diagnostics only).
};

/// Explicit per-row grouping of a dense strategy matrix.
struct RowGrouping {
  std::vector<int> group_of_row;     ///< size = rows of S.
  std::vector<double> column_norms;  ///< C_r per group.

  int num_groups() const { return static_cast<int>(column_norms.size()); }
};

/// Greedily groups the rows of a dense strategy matrix: each row joins the
/// first existing group whose rows are support-disjoint from it and whose
/// non-zero magnitude matches; otherwise it opens a new group. Requires
/// every row to have uniform non-zero magnitude (a necessary condition of
/// Definition 3.1); fails otherwise. The greedy result may not attain the
/// minimum grouping number, which is fine for budgeting purposes.
Result<RowGrouping> DetectGrouping(const linalg::Matrix& s);

/// Verifies Definition 3.1 for an explicit grouping: per-group row
/// disjointness and the bounded-column-norm condition (every column must
/// attain max |S_ij| = C_r inside every group). Used by tests and by
/// callers that construct groupings structurally.
Status VerifyGrouping(const linalg::Matrix& s, const RowGrouping& grouping);

/// Condenses an explicit grouping plus per-row weights b into GroupSummary
/// form for the optimizer.
std::vector<GroupSummary> Summarize(const RowGrouping& grouping,
                                    const linalg::Vector& row_weights);

/// Expands per-group budgets eta_r back to per-row budgets eps_i.
linalg::Vector ExpandGroupBudgets(const RowGrouping& grouping,
                                  const linalg::Vector& group_budgets);

}  // namespace budget
}  // namespace dpcube

#endif  // DPCUBE_BUDGET_GROUPING_H_
