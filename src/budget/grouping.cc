// Copyright 2026 The dpcube Authors.

#include "budget/grouping.h"

#include <cmath>
#include <string>

namespace dpcube {
namespace budget {
namespace {

constexpr double kMagTol = 1e-9;

// The uniform non-zero magnitude of a row, or an error if entries differ.
Result<double> RowMagnitude(const linalg::Matrix& s, std::size_t row) {
  double mag = 0.0;
  for (std::size_t j = 0; j < s.cols(); ++j) {
    const double v = std::fabs(s(row, j));
    if (v == 0.0) continue;
    if (mag == 0.0) {
      mag = v;
    } else if (std::fabs(v - mag) > kMagTol * mag) {
      return Status::FailedPrecondition(
          "row " + std::to_string(row) +
          " has non-uniform magnitudes; not groupable (Definition 3.1)");
    }
  }
  if (mag == 0.0) {
    return Status::FailedPrecondition("row " + std::to_string(row) +
                                      " is identically zero");
  }
  return mag;
}

}  // namespace

Result<RowGrouping> DetectGrouping(const linalg::Matrix& s) {
  const std::size_t m = s.rows();
  const std::size_t n = s.cols();
  RowGrouping grouping;
  grouping.group_of_row.assign(m, -1);

  // Per group: the union of supports (as a bool row) and the magnitude.
  std::vector<std::vector<bool>> support;
  for (std::size_t i = 0; i < m; ++i) {
    DPCUBE_ASSIGN_OR_RETURN(double mag, RowMagnitude(s, i));
    int placed = -1;
    for (std::size_t g = 0; g < support.size(); ++g) {
      if (std::fabs(grouping.column_norms[g] - mag) > kMagTol * mag) continue;
      bool disjoint = true;
      for (std::size_t j = 0; j < n; ++j) {
        if (s(i, j) != 0.0 && support[g][j]) {
          disjoint = false;
          break;
        }
      }
      if (disjoint) {
        placed = static_cast<int>(g);
        break;
      }
    }
    if (placed < 0) {
      support.emplace_back(n, false);
      grouping.column_norms.push_back(mag);
      placed = static_cast<int>(support.size()) - 1;
    }
    grouping.group_of_row[i] = placed;
    for (std::size_t j = 0; j < n; ++j) {
      if (s(i, j) != 0.0) support[placed][j] = true;
    }
  }
  return grouping;
}

Status VerifyGrouping(const linalg::Matrix& s, const RowGrouping& grouping) {
  const std::size_t m = s.rows();
  const std::size_t n = s.cols();
  if (grouping.group_of_row.size() != m) {
    return Status::InvalidArgument("grouping size does not match S rows");
  }
  const int g = grouping.num_groups();
  for (int r : grouping.group_of_row) {
    if (r < 0 || r >= g) {
      return Status::InvalidArgument("row assigned to an out-of-range group");
    }
  }
  // Per column and group: at most one non-zero, attaining exactly C_r.
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<int> nonzeros(g, 0);
    std::vector<double> max_abs(g, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      const double v = std::fabs(s(i, j));
      if (v == 0.0) continue;
      const int r = grouping.group_of_row[i];
      ++nonzeros[r];
      max_abs[r] = std::max(max_abs[r], v);
    }
    for (int r = 0; r < g; ++r) {
      if (nonzeros[r] > 1) {
        return Status::FailedPrecondition(
            "column " + std::to_string(j) + " hits group " +
            std::to_string(r) + " more than once (row-wise disjointness)");
      }
      const double c = grouping.column_norms[r];
      if (std::fabs(max_abs[r] - c) > kMagTol * std::max(c, 1.0)) {
        return Status::FailedPrecondition(
            "column " + std::to_string(j) + " has max magnitude " +
            std::to_string(max_abs[r]) + " in group " + std::to_string(r) +
            ", want C_r = " + std::to_string(c) +
            " (bounded column norm)");
      }
    }
  }
  return Status::OK();
}

std::vector<GroupSummary> Summarize(const RowGrouping& grouping,
                                    const linalg::Vector& row_weights) {
  std::vector<GroupSummary> out(grouping.num_groups());
  for (int r = 0; r < grouping.num_groups(); ++r) {
    out[r].column_norm = grouping.column_norms[r];
  }
  for (std::size_t i = 0; i < grouping.group_of_row.size(); ++i) {
    GroupSummary& g = out[grouping.group_of_row[i]];
    g.weight_sum += row_weights[i];
    ++g.num_rows;
  }
  return out;
}

linalg::Vector ExpandGroupBudgets(const RowGrouping& grouping,
                                  const linalg::Vector& group_budgets) {
  linalg::Vector out(grouping.group_of_row.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = group_budgets[grouping.group_of_row[i]];
  }
  return out;
}

}  // namespace budget
}  // namespace dpcube
