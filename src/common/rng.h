// Copyright 2026 The dpcube Authors.
//
// Deterministic random number generation. All randomized components in the
// library (mechanisms, synthetic data generators, sketch strategies) take an
// explicit Rng so experiments are reproducible from a single seed.
//
// The engine is xoshiro256++ seeded through SplitMix64, a standard choice
// for simulation workloads: fast, high quality, and stable across platforms
// (unlike std::normal_distribution, whose output is implementation-defined).

#ifndef DPCUBE_COMMON_RNG_H_
#define DPCUBE_COMMON_RNG_H_

#include <cstdint>

namespace dpcube {

/// xoshiro256++ pseudo-random generator with distribution samplers.
class Rng {
 public:
  /// Seeds the four 64-bit state words via SplitMix64 from `seed`.
  explicit Rng(std::uint64_t seed = 0xd1b54a32d192ed03ULL);

  /// Next raw 64-bit output.
  std::uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in (0, 1) — never returns exactly 0 (safe for logs).
  double NextDoubleOpen();

  /// Uniform integer in [0, bound) using Lemire rejection; bound > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Standard normal via Box–Muller (cached second value).
  double NextGaussian();

  /// Normal with the given mean and standard deviation (sigma >= 0).
  double NextGaussian(double mean, double sigma);

  /// Zero-mean Laplace with scale b (variance 2 b^2), via inverse CDF.
  double NextLaplace(double scale);

  /// Bernoulli with success probability p.
  bool NextBernoulli(double p);

  /// Samples an index from an unnormalised non-negative weight vector of
  /// length n. Returns n-1 if weights sum to zero.
  int NextCategorical(const double* weights, int n);

  /// Forks an independent generator (jumps are emulated by reseeding from
  /// the parent stream, which is sufficient for our simulation use).
  Rng Fork();

  /// Child stream `index` of the stream family rooted at `base`. This is
  /// the library's seed-derivation rule for parallel fan-out: a randomized
  /// parallel stage draws `base` from its master Rng exactly once (one
  /// NextUint64, regardless of thread count), then work unit i samples
  /// from Stream(base, i). Unit outputs therefore depend only on the
  /// master seed and the unit index — never on the thread count or the
  /// schedule — which makes parallel releases bit-identical to sequential
  /// ones. Seeds are decorrelated by the constructor's SplitMix64 pass.
  static Rng Stream(std::uint64_t base, std::uint64_t index);

 private:
  std::uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace dpcube

#endif  // DPCUBE_COMMON_RNG_H_
