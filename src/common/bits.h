// Copyright 2026 The dpcube Authors.
//
// Bit-mask utilities over attribute subsets. Throughout the library a
// marginal over a d-attribute binary domain is identified by a mask
// alpha in {0,1}^d packed into a uint64 (bit i set <=> attribute i is
// retained by the marginal). These helpers implement the notation of
// Section 4.1 of the paper: dominance (alpha "is dominated by" beta),
// bitwise intersection, inner products <alpha,beta> = popcount(alpha&beta),
// and enumeration of all submasks of a mask.

#ifndef DPCUBE_COMMON_BITS_H_
#define DPCUBE_COMMON_BITS_H_

#include <bit>
#include <cstdint>
#include <vector>

namespace dpcube {
namespace bits {

/// Attribute-subset mask; bit i corresponds to attribute i.
using Mask = std::uint64_t;

/// Number of set bits, written ||alpha|| in the paper (the dimensionality
/// of the marginal C^alpha).
inline int Popcount(Mask alpha) { return std::popcount(alpha); }

/// Parity of <alpha, beta> = ||alpha AND beta||; the sign of the Fourier
/// basis entry f^alpha_beta is (-1)^InnerParity(alpha, beta).
inline int InnerParity(Mask alpha, Mask beta) {
  return std::popcount(alpha & beta) & 1;
}

/// Sign (-1)^{<alpha,beta>} as a double (+1.0 or -1.0).
inline double FourierSign(Mask alpha, Mask beta) {
  return InnerParity(alpha, beta) ? -1.0 : 1.0;
}

/// True iff alpha is dominated by beta (alpha "⪯" beta): alpha & beta == alpha.
inline bool IsSubset(Mask alpha, Mask beta) { return (alpha & beta) == alpha; }

/// Mask with the low `d` bits set: the full d-dimensional cube.
inline Mask FullMask(int d) {
  return d >= 64 ? ~Mask{0} : ((Mask{1} << d) - 1);
}

/// Iterates all submasks of `alpha` (including 0 and alpha itself) in
/// decreasing numeric order, via the classic (sub - 1) & alpha walk.
///
///   for (SubmaskIterator it(alpha); !it.done(); it.Next()) use(it.mask());
class SubmaskIterator {
 public:
  explicit SubmaskIterator(Mask alpha)
      : alpha_(alpha), sub_(alpha), done_(false) {}

  bool done() const { return done_; }
  Mask mask() const { return sub_; }

  void Next() {
    if (sub_ == 0) {
      done_ = true;
    } else {
      sub_ = (sub_ - 1) & alpha_;
    }
  }

 private:
  Mask alpha_;
  Mask sub_;
  bool done_;
};

/// All submasks of alpha as a vector (2^||alpha|| entries), ascending order.
std::vector<Mask> AllSubmasks(Mask alpha);

/// All masks of popcount exactly `k` over `d` attributes, ascending order
/// (Gosper's hack). There are C(d, k) of them.
std::vector<Mask> MasksOfWeight(int d, int k);

/// All masks of popcount at most `k` over `d` attributes, ascending order.
std::vector<Mask> MasksOfWeightAtMost(int d, int k);

/// Expands the ||alpha||-bit local cell index `local` into a d-bit mask whose
/// set bits land on the set bits of alpha, in ascending bit order. This maps
/// a cell index beta ⪯ alpha of a marginal table to its global index.
Mask ExpandIntoMask(std::uint64_t local, Mask alpha);

/// Inverse of ExpandIntoMask: compresses the bits of `global` at the set
/// positions of alpha into a dense ||alpha||-bit integer. Bits of `global`
/// outside alpha are ignored.
std::uint64_t CompressFromMask(Mask global, Mask alpha);

/// Binomial coefficient C(n, k) in double precision (exact for the sizes we
/// use, n <= 64).
double Binomial(int n, int k);

}  // namespace bits
}  // namespace dpcube

#endif  // DPCUBE_COMMON_BITS_H_
