// Copyright 2026 The dpcube Authors.

#include "common/metrics.h"

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <utility>

namespace dpcube {
namespace metrics {

void LatencyHistogram::Record(double seconds) {
  const double micros = seconds * 1e6;
  int bucket = 0;
  if (micros >= 1.0) {
    bucket = std::min(kBuckets - 1, static_cast<int>(std::log2(micros)));
  }
  buckets_[static_cast<std::size_t>(bucket)].fetch_add(
      1, std::memory_order_relaxed);
  const double rounded = micros > 0.0 ? std::llround(micros) : 0;
  sum_micros_.fetch_add(static_cast<std::uint64_t>(rounded),
                        std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::count() const {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

std::array<std::uint64_t, LatencyHistogram::kBuckets>
LatencyHistogram::SnapshotBuckets() const {
  std::array<std::uint64_t, kBuckets> snapshot;
  for (int i = 0; i < kBuckets; ++i) {
    snapshot[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  return snapshot;
}

double LatencyHistogram::BucketLowerEdgeMicros(int i) {
  return i <= 0 ? 0.0 : std::exp2(i);
}

double LatencyHistogram::BucketUpperEdgeMicros(int i) {
  return std::exp2(i + 1);
}

double LatencyHistogram::QuantileMicros(double p) const {
  const std::array<std::uint64_t, kBuckets> snapshot = SnapshotBuckets();
  std::uint64_t total = 0;
  for (const std::uint64_t c : snapshot) total += c;
  if (total == 0) return 0.0;
  p = std::min(1.0, std::max(0.0, p));

  int first = 0;
  while (snapshot[static_cast<std::size_t>(first)] == 0) ++first;
  int last = kBuckets - 1;
  while (snapshot[static_cast<std::size_t>(last)] == 0) --last;

  // Documented edges: p=0 is the lower edge of the first occupied
  // bucket, p=1 the upper edge of the last occupied one — except the
  // unbounded top bucket, whose only honest answer is its lower edge.
  if (p == 0.0) return BucketLowerEdgeMicros(first);
  if (p == 1.0) {
    return last == kBuckets - 1 ? BucketLowerEdgeMicros(last)
                                : BucketUpperEdgeMicros(last);
  }

  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(p * static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (int i = first; i <= last; ++i) {
    seen += snapshot[static_cast<std::size_t>(i)];
    if (seen >= rank) {
      // Saturated top bucket: a certain lower bound beats a fabricated
      // midpoint (the bucket absorbs everything above ~18 minutes).
      if (i == kBuckets - 1) return BucketLowerEdgeMicros(i);
      // Geometric midpoint of [2^i, 2^(i+1)); bucket 0 spans [0, 2).
      return std::exp2(i + 0.5);
    }
  }
  return last == kBuckets - 1 ? BucketLowerEdgeMicros(last)
                              : BucketUpperEdgeMicros(last);
}

ResourceTracker::ResourceTracker()
    : start_(std::chrono::steady_clock::now()) {
  const long ticks = ::sysconf(_SC_CLK_TCK);
  if (ticks > 0) ticks_per_second_ = static_cast<double>(ticks);
  const long page = ::sysconf(_SC_PAGESIZE);
  if (page > 0) page_bytes_ = page;
}

ResourceTracker::Sample ResourceTracker::TakeSample() const {
  Sample sample;
  sample.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();

  // /proc/self/statm: size resident ... (pages).
  if (std::FILE* f = std::fopen("/proc/self/statm", "r")) {
    long long size_pages = 0;
    long long resident_pages = 0;
    if (std::fscanf(f, "%lld %lld", &size_pages, &resident_pages) == 2) {
      sample.vsize_bytes =
          static_cast<double>(size_pages) * static_cast<double>(page_bytes_);
      sample.rss_bytes = static_cast<double>(resident_pages) *
                         static_cast<double>(page_bytes_);
    }
    std::fclose(f);
  }

  // /proc/self/stat fields 14/15 are utime/stime in clock ticks. The
  // comm field (2) may contain spaces, so seek past its closing ')'.
  if (std::FILE* f = std::fopen("/proc/self/stat", "r")) {
    char line[1024];
    if (std::fgets(line, sizeof(line), f) != nullptr) {
      const char* after_comm = std::strrchr(line, ')');
      if (after_comm != nullptr) {
        // after_comm points at ')'; field 3 (state) follows. utime and
        // stime are fields 14 and 15, i.e. the 11th and 12th after state.
        unsigned long long utime = 0;
        unsigned long long stime = 0;
        if (std::sscanf(after_comm + 1,
                        " %*c %*d %*d %*d %*d %*d %*u %*u %*u %*u %*u "
                        "%llu %llu",
                        &utime, &stime) == 2) {
          sample.cpu_seconds =
              static_cast<double>(utime + stime) / ticks_per_second_;
        }
      }
    }
    std::fclose(f);
  }

  if (DIR* dir = ::opendir("/proc/self/fd")) {
    int fds = 0;
    while (struct dirent* entry = ::readdir(dir)) {
      if (entry->d_name[0] != '.') ++fds;
    }
    ::closedir(dir);
    // Exclude the directory fd opendir itself holds.
    sample.open_fds = fds > 0 ? fds - 1 : 0;
  }
  return sample;
}

Registry::Family* Registry::FamilyLocked(const std::string& name, Type type,
                                         const std::string& help) {
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.type = type;
    it->second.help = help;
  } else if (it->second.type != type) {
    return nullptr;  // Caller hands out a sink.
  }
  return &it->second;
}

Registry::Child* Registry::ChildLocked(Family* family,
                                       const std::string& labels) {
  for (const auto& child : family->children) {
    if (child->labels == labels) return child.get();
  }
  family->children.push_back(std::make_unique<Child>());
  family->children.back()->labels = labels;
  return family->children.back().get();
}

Counter* Registry::GetCounter(const std::string& family,
                              const std::string& labels,
                              const std::string& help) {
  sync::MutexLock lock(&mu_);
  Family* f = FamilyLocked(family, Type::kCounter, help);
  if (f == nullptr) {
    sink_counters_.push_back(std::make_unique<Counter>());
    return sink_counters_.back().get();
  }
  Child* child = ChildLocked(f, labels);
  if (child->read) {  // Labels collide with a callback-backed child.
    sink_counters_.push_back(std::make_unique<Counter>());
    return sink_counters_.back().get();
  }
  if (!child->counter) child->counter = std::make_unique<Counter>();
  return child->counter.get();
}

LatencyHistogram* Registry::GetHistogram(const std::string& family,
                                         const std::string& labels,
                                         const std::string& help) {
  sync::MutexLock lock(&mu_);
  Family* f = FamilyLocked(family, Type::kHistogram, help);
  if (f == nullptr) {
    sink_histograms_.push_back(std::make_unique<LatencyHistogram>());
    return sink_histograms_.back().get();
  }
  Child* child = ChildLocked(f, labels);
  if (child->external) {
    sink_histograms_.push_back(std::make_unique<LatencyHistogram>());
    return sink_histograms_.back().get();
  }
  if (!child->histogram) child->histogram = std::make_unique<LatencyHistogram>();
  return child->histogram.get();
}

void Registry::RegisterGauge(const std::string& family,
                             const std::string& labels,
                             const std::string& help,
                             std::function<double()> read) {
  sync::MutexLock lock(&mu_);
  Family* f = FamilyLocked(family, Type::kGauge, help);
  if (f == nullptr) return;
  Child* child = ChildLocked(f, labels);
  child->read = std::move(read);
}

void Registry::RegisterCallbackCounter(const std::string& family,
                                       const std::string& labels,
                                       const std::string& help,
                                       std::function<double()> read) {
  sync::MutexLock lock(&mu_);
  Family* f = FamilyLocked(family, Type::kCounter, help);
  if (f == nullptr) return;
  Child* child = ChildLocked(f, labels);
  if (child->counter) return;  // Owned counter wins; keep one source.
  child->read = std::move(read);
}

void Registry::RegisterExternalHistogram(
    const std::string& family, const std::string& labels,
    const std::string& help,
    std::shared_ptr<const LatencyHistogram> histogram) {
  sync::MutexLock lock(&mu_);
  Family* f = FamilyLocked(family, Type::kHistogram, help);
  if (f == nullptr) return;
  Child* child = ChildLocked(f, labels);
  if (child->histogram) return;
  child->external = std::move(histogram);
}

namespace {

void AppendSample(std::string* out, const std::string& name,
                  const std::string& labels, double value) {
  char buf[64];
  // Integral values (counter snapshots) render without an exponent so
  // `grep ' 3$'`-style assertions in smoke tests stay simple.
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", value);
  }
  *out += name;
  if (!labels.empty()) {
    *out += '{';
    *out += labels;
    *out += '}';
  }
  *out += ' ';
  *out += buf;
  *out += '\n';
}

void AppendHistogram(std::string* out, const std::string& name,
                     const std::string& labels,
                     const LatencyHistogram& histogram) {
  const auto buckets = histogram.SnapshotBuckets();
  const std::string sep = labels.empty() ? "" : ",";
  std::uint64_t cumulative = 0;
  for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
    cumulative += buckets[static_cast<std::size_t>(i)];
    char le[32];
    std::snprintf(le, sizeof(le), "%.0f",
                  LatencyHistogram::BucketUpperEdgeMicros(i));
    AppendSample(out, name + "_bucket",
                 labels + sep + "le=\"" + le + "\"",
                 static_cast<double>(cumulative));
  }
  AppendSample(out, name + "_bucket", labels + sep + "le=\"+Inf\"",
               static_cast<double>(cumulative));
  AppendSample(out, name + "_sum", labels,
               static_cast<double>(histogram.sum_micros()));
  AppendSample(out, name + "_count", labels,
               static_cast<double>(cumulative));
}

}  // namespace

std::string Registry::RenderPrometheus() const {
  sync::MutexLock lock(&mu_);
  std::string out;
  out.reserve(4096);
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) {
      out += "# HELP " + name + " " + family.help + "\n";
    }
    out += "# TYPE " + name + " ";
    switch (family.type) {
      case Type::kCounter:
        out += "counter\n";
        break;
      case Type::kGauge:
        out += "gauge\n";
        break;
      case Type::kHistogram:
        out += "histogram\n";
        break;
    }
    for (const auto& child : family.children) {
      if (family.type == Type::kHistogram) {
        const LatencyHistogram* histogram =
            child->external ? child->external.get() : child->histogram.get();
        if (histogram != nullptr) {
          AppendHistogram(&out, name, child->labels, *histogram);
        }
        continue;
      }
      double value = 0.0;
      if (child->counter) {
        value = static_cast<double>(child->counter->value());
      } else if (child->read) {
        value = child->read();
      }
      AppendSample(&out, name, child->labels, value);
    }
  }
  return out;
}

std::size_t Registry::family_count() const {
  sync::MutexLock lock(&mu_);
  return families_.size();
}

std::shared_ptr<ResourceTracker> RegisterResourceTracker(Registry* registry) {
  auto tracker = std::make_shared<ResourceTracker>();
  registry->RegisterGauge(
      "dpcube_process_resident_memory_bytes", "",
      "Resident set size from /proc/self/statm.",
      [tracker] { return tracker->TakeSample().rss_bytes; });
  registry->RegisterGauge(
      "dpcube_process_virtual_memory_bytes", "",
      "Virtual memory size from /proc/self/statm.",
      [tracker] { return tracker->TakeSample().vsize_bytes; });
  registry->RegisterGauge(
      "dpcube_process_open_fds", "",
      "Open file descriptors in /proc/self/fd.",
      [tracker] { return tracker->TakeSample().open_fds; });
  registry->RegisterCallbackCounter(
      "dpcube_process_cpu_seconds_total", "",
      "User plus system CPU time from /proc/self/stat.",
      [tracker] { return tracker->TakeSample().cpu_seconds; });
  registry->RegisterGauge(
      "dpcube_process_uptime_seconds", "",
      "Seconds since the metrics subsystem started.",
      [tracker] { return tracker->TakeSample().uptime_seconds; });
  return tracker;
}

}  // namespace metrics
}  // namespace dpcube
