// Copyright 2026 The dpcube Authors.
//
// The one synchronization layer for the whole tree: annotated drop-in
// wrappers over <mutex>/<shared_mutex>/<condition_variable> that carry
// Clang Thread Safety Analysis attributes, so every locking invariant
// that used to live in a comment ("guarded by mu_", "must hold mu_")
// is machine-checked at compile time under
// `-Wthread-safety -Werror=thread-safety-analysis` (the CI
// static-analysis job). Under GCC every attribute macro expands to
// nothing and the wrappers compile to the underlying std primitive.
//
// Conventions (enforced by tools/lint_sync.py — naked std::mutex /
// std::lock_guard / std::unique_lock are banned outside this header):
//
//   * Guard data, not code: every cross-thread member is declared with
//     GUARDED_BY(mu_) next to the mutex that protects it.
//   * Private helpers that expect the caller to hold a lock are
//     annotated REQUIRES(mu_) instead of being named `...Locked` only
//     by convention (the names stay as documentation).
//   * Scoped locking is the default (`sync::MutexLock lock(&mu_)`);
//     explicit Lock()/Unlock() pairs are reserved for hand-over-hand
//     sections (the WAL group-commit leader) where the analysis still
//     checks the pairing within the function.
//   * NO_THREAD_SAFETY_ANALYSIS is a last resort, budgeted at <= 10
//     uses tree-wide, and every use states the invariant that makes
//     the escape sound in one line.
//
// Debug builds (!NDEBUG) additionally track the owning thread of every
// sync::Mutex / exclusive SharedMutex hold, so AssertHeld() aborts the
// process when called off-lock — turning "works under TSan luck" into
// a deterministic unit-test failure. Release builds compile the owner
// word and every assertion out entirely: the wrappers are zero-cost,
// which the bench gate's tcp_cell/{untraced,traced} ratio depends on.

#ifndef DPCUBE_COMMON_SYNC_H_
#define DPCUBE_COMMON_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <shared_mutex>

#ifndef NDEBUG
#include <atomic>
#include <thread>
#endif

// ---------------------------------------------------------------------
// Thread-safety attribute macros (abseil-style spellings). Real only
// under Clang; GCC and MSVC see empty expansions.
// ---------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DPCUBE_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef DPCUBE_THREAD_ANNOTATION_
#define DPCUBE_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

#define CAPABILITY(x) DPCUBE_THREAD_ANNOTATION_(capability(x))
#define SCOPED_CAPABILITY DPCUBE_THREAD_ANNOTATION_(scoped_lockable)
#define GUARDED_BY(x) DPCUBE_THREAD_ANNOTATION_(guarded_by(x))
#define PT_GUARDED_BY(x) DPCUBE_THREAD_ANNOTATION_(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) \
  DPCUBE_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  DPCUBE_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define REQUIRES(...) \
  DPCUBE_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  DPCUBE_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) \
  DPCUBE_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  DPCUBE_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  DPCUBE_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  DPCUBE_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  DPCUBE_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  DPCUBE_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  DPCUBE_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) DPCUBE_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) DPCUBE_THREAD_ANNOTATION_(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  DPCUBE_THREAD_ANNOTATION_(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) DPCUBE_THREAD_ANNOTATION_(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  DPCUBE_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace dpcube {
namespace sync {

namespace internal {

[[noreturn]] inline void AssertionFailure(const char* what) {
  std::fprintf(stderr, "sync: %s\n", what);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal

/// std::mutex with thread-safety annotations and (debug-only) owner
/// tracking. Capitalized Lock/Unlock are the project spelling; the
/// debug AssertHeld() aborts when the calling thread is not the owner.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
    mu_.lock();
    SetOwner();
  }

  void Unlock() RELEASE() {
    ClearOwner();
    mu_.unlock();
  }

  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    SetOwner();
    return true;
  }

  /// Debug builds: aborts unless the calling thread holds the lock.
  /// Release builds: no-op (still tells the static analysis the lock
  /// is held, so it is meaningful on both sides).
  void AssertHeld() const ASSERT_CAPABILITY(this) {
#ifndef NDEBUG
    if (owner_.load(std::memory_order_relaxed) !=
        std::this_thread::get_id()) {
      internal::AssertionFailure(
          "Mutex::AssertHeld failed: calling thread does not hold the "
          "lock");
    }
#endif
  }

  /// The wrapped std::mutex, for CondVar's adopt/release dance only.
  std::mutex& native() { return mu_; }

 private:
  friend class CondVar;

#ifndef NDEBUG
  void SetOwner() {
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  }
  void ClearOwner() {
    owner_.store(std::thread::id(), std::memory_order_relaxed);
  }
#else
  void SetOwner() {}
  void ClearOwner() {}
#endif

  std::mutex mu_;
#ifndef NDEBUG
  /// Written only by the holder (under the lock), read by AssertHeld;
  /// relaxed is enough — the lock itself orders the handoff.
  std::atomic<std::thread::id> owner_{};
#endif
};

/// std::shared_mutex wrapper. Exclusive holds are owner-tracked in
/// debug builds (AssertHeld); shared holds are not (any number of
/// threads may hold them, so there is no single owner to record).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() {
    mu_.lock();
    SetOwner();
  }

  void Unlock() RELEASE() {
    ClearOwner();
    mu_.unlock();
  }

  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    SetOwner();
    return true;
  }

  void ReaderLock() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() RELEASE_SHARED() { mu_.unlock_shared(); }

  bool ReaderTryLock() TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

  /// Debug builds: aborts unless the calling thread holds the lock
  /// EXCLUSIVELY.
  void AssertHeld() const ASSERT_CAPABILITY(this) {
#ifndef NDEBUG
    if (owner_.load(std::memory_order_relaxed) !=
        std::this_thread::get_id()) {
      internal::AssertionFailure(
          "SharedMutex::AssertHeld failed: calling thread does not hold "
          "the lock exclusively");
    }
#endif
  }

 private:
#ifndef NDEBUG
  void SetOwner() {
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  }
  void ClearOwner() {
    owner_.store(std::thread::id(), std::memory_order_relaxed);
  }
#else
  void SetOwner() {}
  void ClearOwner() {}
#endif

  std::shared_mutex mu_;
#ifndef NDEBUG
  std::atomic<std::thread::id> owner_{};
#endif
};

/// Scoped exclusive hold of a Mutex (the default way to lock).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Scoped exclusive hold of a SharedMutex (the writer side).
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterLock() RELEASE() { mu_->Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Scoped shared (reader) hold of a SharedMutex.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->ReaderLock();
  }
  ~ReaderLock() RELEASE() { mu_->ReaderUnlock(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Condition variable bound to sync::Mutex. Waits re-enter the wrapped
/// std::mutex via adopt/release so the underlying primitive is the
/// plain std::condition_variable (no condition_variable_any overhead);
/// debug owner tracking is handed off across the wait exactly like an
/// unlock/relock pair.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    mu.ClearOwner();
    std::unique_lock<std::mutex> native(mu.native(), std::adopt_lock);
    cv_.wait(native);
    native.release();
    mu.SetOwner();
  }

  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  /// Returns false on timeout (like std::condition_variable).
  template <typename Clock, typename Duration, typename Predicate>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline,
                 Predicate pred) REQUIRES(mu) {
    while (!pred()) {
      mu.ClearOwner();
      std::unique_lock<std::mutex> native(mu.native(), std::adopt_lock);
      const std::cv_status status = cv_.wait_until(native, deadline);
      native.release();
      mu.SetOwner();
      if (status == std::cv_status::timeout) return pred();
    }
    return true;
  }

  template <typename Rep, typename Period, typename Predicate>
  bool WaitFor(Mutex& mu,
               const std::chrono::duration<Rep, Period>& timeout,
               Predicate pred) REQUIRES(mu) {
    return WaitUntil(mu, std::chrono::steady_clock::now() + timeout,
                     std::move(pred));
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace sync
}  // namespace dpcube

#endif  // DPCUBE_COMMON_SYNC_H_
