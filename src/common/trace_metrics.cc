// Copyright 2026 The dpcube Authors.

#include "common/trace_metrics.h"

namespace dpcube {
namespace trace {

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

ServingTraceMetrics::ServingTraceMetrics(metrics::Registry* registry,
                                         std::size_t max_releases)
    : registry_(registry), max_releases_(max_releases) {
  for (int i = 0; i < kNumSpans; ++i) {
    const Span span = static_cast<Span>(i);
    spans_[static_cast<std::size_t>(i)] = registry_->GetHistogram(
        "dpcube_span_microseconds",
        std::string("span=\"") + SpanName(span) + "\"",
        "Request time by pipeline span: decode, admit, queue, compute, "
        "encode, flush.");
  }
}

void ServingTraceMetrics::RecordSpans(const RequestTrace& trace) const {
  for (int i = 0; i < kNumSpans; ++i) {
    const std::uint64_t micros = trace.span_micros[static_cast<std::size_t>(i)];
    if (micros == 0) continue;
    spans_[static_cast<std::size_t>(i)]->Record(
        static_cast<double>(micros) * 1e-6);
  }
}

ServingTraceMetrics::PerRelease ServingTraceMetrics::ResolveLocked(
    const std::string& release) const {
  PerRelease series;
  const std::string labels =
      "release=\"" + EscapeLabelValue(release) + "\"";
  series.queries = registry_->GetCounter(
      "dpcube_release_queries_total", labels,
      "Queries answered, by release (capped cardinality; overflow lands "
      "on release=\"__other__\").");
  series.latency = registry_->GetHistogram(
      "dpcube_release_query_latency_microseconds", labels,
      "Per-query (and per batch-group) compute latency, by release.");
  return series;
}

ServingTraceMetrics::PerRelease ServingTraceMetrics::Release(
    const std::string& release) const {
  {
    // Fast path: every query after the first for a release takes a
    // shared lock only — pool workers resolving the same hot release
    // never serialise on the map.
    sync::ReaderLock lock(&mu_);
    auto it = releases_.find(release);
    if (it != releases_.end()) return it->second;
  }
  sync::WriterLock lock(&mu_);
  auto it = releases_.find(release);
  if (it != releases_.end()) return it->second;
  if (releases_.size() >= max_releases_) {
    auto other = releases_.find("__other__");
    if (other != releases_.end()) return other->second;
    return releases_.emplace("__other__", ResolveLocked("__other__"))
        .first->second;
  }
  return releases_.emplace(release, ResolveLocked(release)).first->second;
}

}  // namespace trace
}  // namespace dpcube
