// Copyright 2026 The dpcube Authors.

#include "common/signal.h"

#include <errno.h>
#include <signal.h>
#include <string.h>

#include <atomic>

#include "common/fd.h"
#include "common/sync.h"

namespace dpcube {
namespace {

// The pipe outlives every caller (fds intentionally leaked at exit);
// only the write end is touched from the handler, via an atomic int.
std::atomic<int> g_signal_write_fd{-1};
std::atomic<int> g_signal_number{0};
sync::Mutex g_install_mu;
int g_signal_read_fd GUARDED_BY(g_install_mu) = -1;

void OnShutdownSignal(int signum) {
  // A handler must leave errno untouched: it may interrupt code between
  // a failing syscall and its errno check (poll/recv in the server's
  // event loop), and WriteWakeByte's write() clobbers errno.
  const int saved_errno = errno;
  g_signal_number.store(signum, std::memory_order_relaxed);
  const int fd = g_signal_write_fd.load(std::memory_order_acquire);
  if (fd >= 0) WriteWakeByte(fd);
  errno = saved_errno;
}

}  // namespace

Result<int> InstallShutdownSignalFd() {
  sync::MutexLock lock(&g_install_mu);
  if (g_signal_read_fd >= 0) return g_signal_read_fd;

  auto pipe = MakePipe();
  if (!pipe.ok()) return pipe.status();
  // Publish the write end before installing handlers so a signal landing
  // mid-install still finds a valid fd.
  g_signal_write_fd.store(pipe.value().write_end.release(),
                          std::memory_order_release);
  g_signal_read_fd = pipe.value().read_end.release();

  struct sigaction action;
  ::memset(&action, 0, sizeof(action));
  action.sa_handler = OnShutdownSignal;
  ::sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  for (const int signum : {SIGINT, SIGTERM}) {
    if (::sigaction(signum, &action, nullptr) != 0) {
      return Status::Internal(std::string("sigaction: ") +
                              ::strerror(errno));
    }
  }
  return g_signal_read_fd;
}

bool ShutdownRequested() {
  return g_signal_number.load(std::memory_order_relaxed) != 0;
}

int ShutdownSignalNumber() {
  return g_signal_number.load(std::memory_order_relaxed);
}

}  // namespace dpcube
