// Copyright 2026 The dpcube Authors.

#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace dpcube {
namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

inline std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
  // Guard against the (astronomically unlikely) all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDoubleOpen() {
  double u;
  do {
    u = NextDouble();
  } while (u == 0.0);
  return u;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method with rejection.
  std::uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller.
  const double u1 = NextDoubleOpen();
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextGaussian(double mean, double sigma) {
  assert(sigma >= 0.0);
  return mean + sigma * NextGaussian();
}

double Rng::NextLaplace(double scale) {
  assert(scale >= 0.0);
  // Inverse CDF: u uniform in (-1/2, 1/2), x = -b * sgn(u) * ln(1 - 2|u|).
  const double u = NextDouble() - 0.5;
  const double sign = (u < 0.0) ? -1.0 : 1.0;
  double mag = 2.0 * std::fabs(u);
  if (mag >= 1.0) mag = std::nextafter(1.0, 0.0);  // Avoid log(0).
  return -scale * sign * std::log1p(-mag);
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

int Rng::NextCategorical(const double* weights, int n) {
  assert(n > 0);
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    assert(weights[i] >= 0.0);
    total += weights[i];
  }
  if (total <= 0.0) return n - 1;
  double target = NextDouble() * total;
  for (int i = 0; i < n; ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return n - 1;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

Rng Rng::Stream(std::uint64_t base, std::uint64_t index) {
  // One extra SplitMix64 round over (base, index) so children of adjacent
  // indices land in unrelated regions of the seed space; the constructor
  // then expands the result into the four state words.
  std::uint64_t s = base ^ (index + 1) * 0x9e3779b97f4a7c15ULL;
  return Rng(SplitMix64(&s));
}

}  // namespace dpcube
