// Copyright 2026 The dpcube Authors.

#include "common/fd.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <unistd.h>

#include <string>

namespace dpcube {

void UniqueFd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Result<Pipe> MakePipe() {
  int fds[2] = {-1, -1};
#if defined(__linux__)
  if (::pipe2(fds, O_CLOEXEC) != 0) {
    return Status::Internal(std::string("pipe2: ") + ::strerror(errno));
  }
#else
  if (::pipe(fds) != 0) {
    return Status::Internal(std::string("pipe: ") + ::strerror(errno));
  }
  ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(fds[1], F_SETFD, FD_CLOEXEC);
#endif
  Pipe pipe;
  pipe.read_end.reset(fds[0]);
  pipe.write_end.reset(fds[1]);
  DPCUBE_RETURN_NOT_OK(SetNonBlocking(pipe.read_end.get()));
  // The write end is non-blocking too so a signal handler or worker
  // thread can never block on a full pipe (a full pipe is already a
  // pending wakeup).
  DPCUBE_RETURN_NOT_OK(SetNonBlocking(pipe.write_end.get()));
  return pipe;
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Status::Internal(std::string("fcntl O_NONBLOCK: ") +
                            ::strerror(errno));
  }
  return Status::OK();
}

bool WriteWakeByte(int fd) {
  for (;;) {
    const char byte = 1;
    const ssize_t n = ::write(fd, &byte, 1);
    if (n == 1) return true;
    if (n < 0 && errno == EINTR) continue;
    // EAGAIN: the pipe already holds a wakeup; that is success.
    return n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK);
  }
}

void DrainWakeBytes(int fd) {
  char buf[256];
  while (::read(fd, buf, sizeof(buf)) > 0) {
  }
}

}  // namespace dpcube
