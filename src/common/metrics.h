// Copyright 2026 The dpcube Authors.
//
// Always-on serving metrics: a process-local registry of named counters,
// callback-backed gauges, and log2-bucketed latency histograms, rendered
// on demand as Prometheus text exposition (the /metrics endpoint) and
// snapshotted by the in-band STATS verb — one source of truth for both.
//
// Design constraints, in order:
//   * the hot path (one request) must cost at most a few relaxed atomic
//     adds — registration resolves names to stable pointers ONCE, so no
//     map lookup or lock is ever taken per sample;
//   * rendering may lock (it walks the registry under a mutex), because
//     a scrape happens a few times a minute, not a million times a
//     second;
//   * collaborators that already own their counters (ServerStats,
//     AdmissionController, MarginalCache, ThreadPool) register
//     callback-backed views instead of duplicating state, so the
//     exported numbers can never drift from the STATS verb's.
//
// The registry is deliberately NOT a process-wide singleton: the serving
// stack creates one per SocketListener and threads it through, so tests
// can run many servers in one process without metric cross-talk.

#ifndef DPCUBE_COMMON_METRICS_H_
#define DPCUBE_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"

namespace dpcube {
namespace metrics {

/// Monotonic event counter. One relaxed atomic add per Increment.
class Counter {
 public:
  void Increment(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Thread-safe log2-bucketed latency histogram. Bucket i counts samples
/// in [2^i, 2^(i+1)) microseconds (bucket 0 also absorbs sub-microsecond
/// samples; the last bucket absorbs everything above 2^30 us ~ 18 min).
/// One relaxed add per Record; quantiles are reconstructed from bucket
/// counts at read time.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 31;

  void Record(double seconds);

  std::uint64_t count() const;

  /// Total of all recorded samples in microseconds (each sample rounded
  /// to the nearest microsecond), for the exposition's `_sum` series.
  std::uint64_t sum_micros() const {
    return sum_micros_.load(std::memory_order_relaxed);
  }

  /// Approximate p-quantile (p clamped to [0, 1]) in microseconds,
  /// reconstructed from the bucket counts. 0 when empty. Edge behavior
  /// is pinned (and regression-tested):
  ///   * p == 0 returns the LOWER edge of the first occupied bucket
  ///     (0 for bucket 0, which absorbs sub-microsecond samples);
  ///   * p == 1 returns the UPPER edge of the last occupied bucket —
  ///     an upper bound on the true maximum, never an interpolation;
  ///   * a quantile landing in the saturated top bucket returns that
  ///     bucket's LOWER edge (2^30 us): the bucket is unbounded above,
  ///     so its value is a certain lower bound, not a made-up midpoint
  ///     that would silently misreport multi-hour outliers;
  ///   * interior quantiles return the geometric midpoint of their
  ///     bucket, the standard log-bucket estimator.
  double QuantileMicros(double p) const;

  /// Relaxed snapshot of the raw bucket counts (index i covers
  /// [BucketLowerEdgeMicros(i), BucketUpperEdgeMicros(i))).
  std::array<std::uint64_t, kBuckets> SnapshotBuckets() const;

  /// Bucket edges in microseconds. Bucket 0's lower edge is 0 (it
  /// absorbs sub-microsecond samples); the top bucket's upper edge is
  /// reported as 2^31 but the bucket is unbounded in practice.
  static double BucketLowerEdgeMicros(int i);
  static double BucketUpperEdgeMicros(int i);

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_micros_{0};
};

/// Samples process resource usage from /proc/self (Linux). On platforms
/// or sandboxes where /proc is unreadable every field reports 0 — the
/// gauges still exist, they just flatline, which a monitor can alert on.
class ResourceTracker {
 public:
  struct Sample {
    double rss_bytes = 0.0;        ///< Resident set size.
    double vsize_bytes = 0.0;      ///< Virtual memory size.
    double open_fds = 0.0;         ///< Open descriptors in /proc/self/fd.
    double cpu_seconds = 0.0;      ///< utime + stime since process start.
    double uptime_seconds = 0.0;   ///< Since this tracker's construction.
  };

  ResourceTracker();

  Sample TakeSample() const;

 private:
  std::chrono::steady_clock::time_point start_;
  double ticks_per_second_ = 100.0;
  long page_bytes_ = 4096;
};

/// Named metric registry. Families are created on first touch; a second
/// registration of the same (family, labels) pair returns the SAME
/// object, so many sessions can share per-verb counters without
/// coordination. A family's type is fixed by its first registration;
/// a mismatched re-registration returns a detached sink object that is
/// never rendered (callers cannot crash the server with a name clash,
/// but the clash is visible in tests via RenderPrometheus validity).
///
/// `labels` is the raw Prometheus label body without braces, e.g.
/// `verb="query"` — empty for an unlabelled series.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Registry-owned counter for (family, labels); help is recorded on
  /// first touch.
  Counter* GetCounter(const std::string& family, const std::string& labels,
                      const std::string& help);

  /// Registry-owned histogram for (family, labels).
  LatencyHistogram* GetHistogram(const std::string& family,
                                 const std::string& labels,
                                 const std::string& help);

  /// Callback-backed gauge: `read` runs at render time on the rendering
  /// thread, so it must be thread-safe and cheap. The callback (and
  /// anything it captures, e.g. shared_ptrs to collaborators) lives as
  /// long as the registry.
  void RegisterGauge(const std::string& family, const std::string& labels,
                     const std::string& help, std::function<double()> read);

  /// Callback-backed counter for collaborators that already own a
  /// monotonic count (cache hits, shed requests): same mechanics as a
  /// gauge but rendered with `# TYPE ... counter`.
  void RegisterCallbackCounter(const std::string& family,
                               const std::string& labels,
                               const std::string& help,
                               std::function<double()> read);

  /// Externally-owned histogram (e.g. ServerStats' members). `keepalive`
  /// guards the histogram's lifetime: pass an aliasing shared_ptr to the
  /// owning object.
  void RegisterExternalHistogram(
      const std::string& family, const std::string& labels,
      const std::string& help,
      std::shared_ptr<const LatencyHistogram> histogram);

  /// Prometheus text exposition (format 0.0.4): every family gets one
  /// # HELP and one # TYPE line, families render in name order, children
  /// in registration order. Histograms render cumulative `_bucket{le=}`
  /// series plus `_sum` and `_count`.
  std::string RenderPrometheus() const;

  /// Number of distinct metric families registered so far.
  std::size_t family_count() const;

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Child {
    std::string labels;
    std::unique_ptr<Counter> counter;                 // owned counter
    std::unique_ptr<LatencyHistogram> histogram;      // owned histogram
    std::shared_ptr<const LatencyHistogram> external; // external histogram
    std::function<double()> read;                     // gauge / cb counter
  };
  struct Family {
    Type type = Type::kCounter;
    std::string help;
    std::vector<std::unique_ptr<Child>> children;
  };

  /// Returns the family, creating it with `type` if new; nullptr on a
  /// type mismatch.
  Family* FamilyLocked(const std::string& name, Type type,
                       const std::string& help) REQUIRES(mu_);
  /// Returns the child for `labels`, creating it if new.
  Child* ChildLocked(Family* family, const std::string& labels)
      REQUIRES(mu_);

  mutable sync::Mutex mu_;
  std::map<std::string, Family> families_ GUARDED_BY(mu_);
  // Sinks handed out on type mismatches; never rendered.
  std::vector<std::unique_ptr<Counter>> sink_counters_ GUARDED_BY(mu_);
  std::vector<std::unique_ptr<LatencyHistogram>> sink_histograms_
      GUARDED_BY(mu_);
};

/// Registers the ResourceTracker's gauges (RSS, vsize, fd count, CPU
/// seconds, uptime) into `registry` under dpcube_process_*. The tracker
/// is owned by the returned shared_ptr, which the registered callbacks
/// keep alive.
std::shared_ptr<ResourceTracker> RegisterResourceTracker(Registry* registry);

}  // namespace metrics
}  // namespace dpcube

#endif  // DPCUBE_COMMON_METRICS_H_
