// Copyright 2026 The dpcube Authors.

#include "common/wal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

namespace dpcube {
namespace wal {

namespace {

std::string ErrnoText(const char* op, const std::string& path) {
  return std::string(op) + " '" + path + "': " + std::strerror(errno);
}

void PutU32(std::string* out, std::uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

void PutU64(std::string* out, std::uint64_t v) {
  PutU32(out, static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t GetU32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t GetU64(const unsigned char* p) {
  return static_cast<std::uint64_t>(GetU32(p)) |
         (static_cast<std::uint64_t>(GetU32(p + 4)) << 32);
}

const std::uint32_t* Crc32Table() {
  static const std::uint32_t* table = [] {
    static std::uint32_t t[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

/// CRC input is the LSN (little-endian) concatenated with the payload,
/// so a record copied byte-for-byte to a different log position still
/// fails verification.
std::uint32_t RecordCrc(std::uint64_t lsn, std::string_view payload) {
  std::string seed;
  seed.reserve(8);
  PutU64(&seed, lsn);
  std::uint32_t crc = ~Crc32(seed.data(), seed.size());
  // Continue the running CRC over the payload without re-finalizing —
  // equivalent to Crc32(seed || payload) without copying the payload.
  const std::uint32_t* table = Crc32Table();
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(payload.data());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

bool WriteAll(int fd, const char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size) {
  const std::uint32_t* table = Crc32Table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

std::string EncodeRecord(std::uint64_t lsn, std::string_view payload) {
  std::string out;
  out.reserve(kRecordHeaderBytes + payload.size());
  PutU32(&out, kRecordMagic);
  PutU32(&out, static_cast<std::uint32_t>(payload.size()));
  PutU64(&out, lsn);
  PutU32(&out, RecordCrc(lsn, payload));
  out.append(payload.data(), payload.size());
  return out;
}

Result<ReplayResult> ReplayChangelog(
    const std::string& path,
    const std::function<void(std::uint64_t lsn, std::string_view payload)>&
        apply) {
  auto contents = ReadFile(path);
  if (!contents.ok()) return contents.status();
  const std::string& data = *contents;
  const unsigned char* base =
      reinterpret_cast<const unsigned char*>(data.data());

  ReplayResult result;
  result.file_bytes = data.size();
  std::size_t offset = 0;
  while (data.size() - offset >= kRecordHeaderBytes) {
    const unsigned char* h = base + offset;
    if (GetU32(h) != kRecordMagic) break;
    const std::uint32_t payload_len = GetU32(h + 4);
    if (payload_len > kMaxRecordPayload) break;
    if (data.size() - offset - kRecordHeaderBytes < payload_len) break;
    const std::uint64_t lsn = GetU64(h + 8);
    const std::uint32_t crc = GetU32(h + 16);
    std::string_view payload(data.data() + offset + kRecordHeaderBytes,
                             payload_len);
    if (RecordCrc(lsn, payload) != crc) break;
    apply(lsn, payload);
    result.records += 1;
    result.last_lsn = lsn;
    offset += kRecordHeaderBytes + payload_len;
  }
  result.valid_bytes = offset;
  return result;
}

Result<std::shared_ptr<Changelog>> Changelog::Open(
    std::string path, std::uint64_t next_lsn,
    std::shared_ptr<metrics::LatencyHistogram> fsync_hist) {
  int raw = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                   0644);
  if (raw < 0) return Status::Internal(ErrnoText("open", path));
  UniqueFd fd(raw);
  return std::shared_ptr<Changelog>(new Changelog(
      std::move(path), std::move(fd), next_lsn, std::move(fsync_hist)));
}

Result<std::uint64_t> Changelog::Append(std::string_view payload) {
  if (payload.size() > kMaxRecordPayload) {
    return Status::InvalidArgument("wal record payload too large");
  }
  sync::MutexLock lock(&append_mu_);
  const std::uint64_t lsn = next_lsn_.load(std::memory_order_relaxed);
  const std::string record = EncodeRecord(lsn, payload);
  if (!WriteAll(fd_.get(), record.data(), record.size())) {
    return Status::Internal(ErrnoText("write", path_));
  }
  next_lsn_.store(lsn + 1, std::memory_order_release);
  last_appended_.store(lsn, std::memory_order_release);
  return lsn;
}

Status Changelog::Sync(std::uint64_t lsn) {
  // Hand-over-hand locking (the group-commit leader drops sync_mu_
  // around the fdatasync) is written as explicit Lock()/Unlock() pairs
  // so the thread-safety analysis checks every path's pairing instead
  // of being escaped around.
  sync_mu_.Lock();
  for (;;) {
    if (last_synced_ >= lsn) {
      sync_mu_.Unlock();
      return Status::OK();
    }
    if (!sync_in_progress_) break;
    sync_cv_.Wait(sync_mu_);
  }
  // This thread becomes the group-commit leader: fsync everything
  // appended so far, covering every waiter whose LSN predates the call.
  sync_in_progress_ = true;
  const std::uint64_t covered = last_appended_.load(std::memory_order_acquire);
  sync_mu_.Unlock();

  const auto start = std::chrono::steady_clock::now();
  int rc;
  do {
    rc = ::fdatasync(fd_.get());
  } while (rc < 0 && errno == EINTR);
  const int saved_errno = errno;
  if (fsync_hist_) {
    fsync_hist_->Record(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
  }

  sync_mu_.Lock();
  sync_in_progress_ = false;
  if (rc == 0 && covered > last_synced_) last_synced_ = covered;
  sync_cv_.SignalAll();
  if (rc != 0) {
    sync_mu_.Unlock();
    errno = saved_errno;
    return Status::Internal(ErrnoText("fdatasync", path_));
  }
  // A failed leader leaves last_synced_ untouched; waiters loop and one
  // of them retries the fsync.
  const bool covered_caller = last_synced_ >= lsn;
  sync_mu_.Unlock();
  if (!covered_caller) return Sync(lsn);
  return Status::OK();
}

Status MakeDirs(const std::string& dir) {
  if (dir.empty()) return Status::InvalidArgument("empty directory path");
  std::string partial;
  partial.reserve(dir.size());
  std::size_t i = 0;
  while (i < dir.size()) {
    std::size_t next = dir.find('/', i + 1);
    if (next == std::string::npos) next = dir.size();
    partial.assign(dir, 0, next);
    if (!partial.empty() && partial != "/") {
      if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
        return Status::Internal(ErrnoText("mkdir", partial));
      }
    }
    i = next;
  }
  struct stat st;
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::Internal("'" + dir + "' exists but is not a directory");
  }
  return Status::OK();
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Status::Internal(ErrnoText("opendir", dir));
  std::vector<std::string> names;
  for (;;) {
    errno = 0;
    struct dirent* entry = ::readdir(d);
    if (entry == nullptr) break;
    const char* name = entry->d_name;
    if (std::strcmp(name, ".") == 0 || std::strcmp(name, "..") == 0) continue;
    names.emplace_back(name);
  }
  ::closedir(d);
  return names;
}

Result<std::string> ReadFile(const std::string& path) {
  int raw = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (raw < 0) {
    if (errno == ENOENT) return Status::NotFound("'" + path + "' not found");
    return Status::Internal(ErrnoText("open", path));
  }
  UniqueFd fd(raw);
  std::string data;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd.get(), buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(ErrnoText("read", path));
    }
    if (n == 0) break;
    data.append(buf, static_cast<std::size_t>(n));
  }
  return data;
}

Status AtomicWriteFile(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  int raw =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (raw < 0) return Status::Internal(ErrnoText("open", tmp));
  {
    UniqueFd fd(raw);
    if (!WriteAll(fd.get(), data.data(), data.size())) {
      Status st = Status::Internal(ErrnoText("write", tmp));
      ::unlink(tmp.c_str());
      return st;
    }
    int rc;
    do {
      rc = ::fsync(fd.get());
    } while (rc < 0 && errno == EINTR);
    if (rc != 0) {
      Status st = Status::Internal(ErrnoText("fsync", tmp));
      ::unlink(tmp.c_str());
      return st;
    }
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status st = Status::Internal(ErrnoText("rename", tmp));
    ::unlink(tmp.c_str());
    return st;
  }
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  return FsyncDir(dir);
}

Status FsyncDir(const std::string& dir) {
  int raw = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (raw < 0) return Status::Internal(ErrnoText("open", dir));
  UniqueFd fd(raw);
  int rc;
  do {
    rc = ::fsync(fd.get());
  } while (rc < 0 && errno == EINTR);
  if (rc != 0) return Status::Internal(ErrnoText("fsync", dir));
  return Status::OK();
}

Status TruncateFile(const std::string& path, std::uint64_t size) {
  int rc;
  do {
    rc = ::truncate(path.c_str(), static_cast<off_t>(size));
  } while (rc < 0 && errno == EINTR);
  if (rc != 0) return Status::Internal(ErrnoText("truncate", path));
  return Status::OK();
}

}  // namespace wal
}  // namespace dpcube
