// Copyright 2026 The dpcube Authors.
//
// The registry-facing half of request tracing: per-span duration
// histograms (dpcube_span_microseconds{span=...}) resolved once at
// server startup, and per-release query telemetry
// (dpcube_release_queries_total{release=...} and
// dpcube_release_query_latency_microseconds{release=...}) resolved
// lazily as releases are first queried — with a hard cardinality cap,
// because release names arrive on the wire and a hostile client must
// not be able to mint unbounded label sets. Past the cap, every new
// name lands on release="__other__".

#ifndef DPCUBE_COMMON_TRACE_METRICS_H_
#define DPCUBE_COMMON_TRACE_METRICS_H_

#include <array>
#include <cstddef>
#include <map>
#include <string>

#include "common/metrics.h"
#include "common/sync.h"
#include "common/trace.h"

namespace dpcube {
namespace trace {

/// Escapes a value for use inside a Prometheus label ("a\"b" etc.).
std::string EscapeLabelValue(const std::string& value);

class ServingTraceMetrics {
 public:
  /// Resolves the span histograms against `registry` (which must
  /// outlive this object; the serving stack pins it via shared_ptr).
  explicit ServingTraceMetrics(metrics::Registry* registry,
                               std::size_t max_releases = 64);

  ServingTraceMetrics(const ServingTraceMetrics&) = delete;
  ServingTraceMetrics& operator=(const ServingTraceMetrics&) = delete;

  metrics::LatencyHistogram* span_histogram(Span span) const {
    return spans_[static_cast<std::size_t>(span)];
  }

  /// Records every non-zero span of a completed trace into the span
  /// histograms.
  void RecordSpans(const RequestTrace& trace) const;

  struct PerRelease {
    metrics::Counter* queries = nullptr;
    metrics::LatencyHistogram* latency = nullptr;
  };
  /// The per-release series for `release`, creating them on first use.
  /// Thread-safe; past `max_releases` distinct names, returns the
  /// shared "__other__" series.
  PerRelease Release(const std::string& release) const;

  std::size_t max_releases() const { return max_releases_; }

 private:
  /// Mints the registry series for one release label. Only touches
  /// registry_ (which locks itself), but is called exclusively from the
  /// insert path, so it inherits the writer hold.
  PerRelease ResolveLocked(const std::string& release) const REQUIRES(mu_);

  metrics::Registry* const registry_;
  std::array<metrics::LatencyHistogram*, kNumSpans> spans_{};
  const std::size_t max_releases_;
  mutable sync::SharedMutex mu_;
  mutable std::map<std::string, PerRelease> releases_ GUARDED_BY(mu_);
};

}  // namespace trace
}  // namespace dpcube

#endif  // DPCUBE_COMMON_TRACE_METRICS_H_
