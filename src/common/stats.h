// Copyright 2026 The dpcube Authors.
//
// Small statistics helpers used by tests and the benchmark harness.

#ifndef DPCUBE_COMMON_STATS_H_
#define DPCUBE_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace dpcube {
namespace stats {

/// Arithmetic mean; 0 for an empty range.
double Mean(const std::vector<double>& xs);

/// Unbiased sample variance (divides by n-1); 0 for fewer than 2 samples.
double Variance(const std::vector<double>& xs);

/// Standard deviation (sqrt of Variance).
double StdDev(const std::vector<double>& xs);

/// Mean of absolute values.
double MeanAbs(const std::vector<double>& xs);

/// p-th quantile (0 <= p <= 1) with linear interpolation; input not required
/// to be sorted. Returns 0 for an empty range.
double Quantile(std::vector<double> xs, double p);

/// Sum of squared differences against a reference vector (same length).
double SumSquaredError(const std::vector<double>& got,
                       const std::vector<double>& want);

/// Mean absolute difference against a reference vector (same length).
double MeanAbsoluteError(const std::vector<double>& got,
                         const std::vector<double>& want);

/// Online accumulator of mean/variance (Welford).
class RunningStats {
 public:
  void Add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace stats
}  // namespace dpcube

#endif  // DPCUBE_COMMON_STATS_H_
