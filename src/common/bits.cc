// Copyright 2026 The dpcube Authors.

#include "common/bits.h"

#include <algorithm>
#include <cassert>

namespace dpcube {
namespace bits {

std::vector<Mask> AllSubmasks(Mask alpha) {
  std::vector<Mask> out;
  out.reserve(std::size_t{1} << Popcount(alpha));
  for (SubmaskIterator it(alpha); !it.done(); it.Next()) {
    out.push_back(it.mask());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Mask> MasksOfWeight(int d, int k) {
  assert(d >= 0 && d < 64);
  assert(k >= 0);
  std::vector<Mask> out;
  if (k > d) return out;
  if (k == 0) {
    out.push_back(0);
    return out;
  }
  Mask limit = Mask{1} << d;
  Mask v = (Mask{1} << k) - 1;  // Smallest mask of weight k.
  while (v < limit) {
    out.push_back(v);
    // Gosper's hack: next integer with the same popcount.
    Mask t = v | (v - 1);
    v = (t + 1) | (((~t & (t + 1)) - 1) >> (std::countr_zero(v) + 1));
  }
  return out;
}

std::vector<Mask> MasksOfWeightAtMost(int d, int k) {
  std::vector<Mask> out;
  for (int w = 0; w <= k && w <= d; ++w) {
    std::vector<Mask> layer = MasksOfWeight(d, w);
    out.insert(out.end(), layer.begin(), layer.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

Mask ExpandIntoMask(std::uint64_t local, Mask alpha) {
  Mask out = 0;
  Mask remaining = alpha;
  while (remaining != 0) {
    int pos = std::countr_zero(remaining);
    if (local & 1) out |= Mask{1} << pos;
    local >>= 1;
    remaining &= remaining - 1;  // Clear lowest set bit.
  }
  return out;
}

std::uint64_t CompressFromMask(Mask global, Mask alpha) {
  std::uint64_t out = 0;
  int idx = 0;
  Mask remaining = alpha;
  while (remaining != 0) {
    int pos = std::countr_zero(remaining);
    if (global & (Mask{1} << pos)) out |= std::uint64_t{1} << idx;
    ++idx;
    remaining &= remaining - 1;
  }
  return out;
}

double Binomial(int n, int k) {
  if (k < 0 || k > n) return 0.0;
  k = std::min(k, n - k);
  double result = 1.0;
  for (int i = 1; i <= k; ++i) {
    result = result * static_cast<double>(n - k + i) / static_cast<double>(i);
  }
  return result;
}

}  // namespace bits
}  // namespace dpcube
