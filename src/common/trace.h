// Copyright 2026 The dpcube Authors.
//
// The request-tracing spine of the serving path. Every request frame
// that enters the TCP front end carries a RequestTrace through its
// lifetime — decode, admission, pool queue, compute, encode, flush —
// and, once the last response byte reaches the socket, the completed
// trace is recorded into a fixed-capacity ring (every request), a
// keep-slowest reservoir (the worst offenders survive ring wrap), the
// per-span latency histograms of the metrics registry, and optionally a
// structured access log. The /tracez page renders the ring.
//
// Concurrency contract (this is what the TSan matrix holds us to):
//   * one trace is only ever written by one thread at a time — the
//     network thread fills decode/admit/flush, the pool worker fills
//     queue/compute/encode, and the hand-offs ride the connection's
//     existing slot mutex, so the struct itself needs no atomics;
//   * TraceRing::Record is called concurrently from every poller
//     thread. Slots are claimed by an atomic ticket and the payload
//     copy is guarded by a per-slot mutex (traces carry strings, so a
//     lock-free seqlock over the payload would be bytes-racy under
//     TSan; the ticket keeps claiming lock-free, the per-slot lock is
//     only contended when the ring wraps onto an in-progress reader);
//   * readers (the /tracez handler) snapshot newest-first under the
//     same per-slot locks and use the stored ticket to discard slots
//     that were overwritten mid-walk.
//
// TraceContext is the forward-looking seam: it is the minimal identity
// a sharding coordinator (ROADMAP item 3) must propagate across the
// wire so one user request can be stitched together from per-shard
// traces.

#ifndef DPCUBE_COMMON_TRACE_H_
#define DPCUBE_COMMON_TRACE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/sync.h"

namespace dpcube {
namespace trace {

/// The span timeline of one request frame, in pipeline order.
enum class Span : std::uint8_t {
  kDecode = 0,  ///< Socket readable to frame decoded.
  kAdmit,       ///< Admission-control decision.
  kQueue,       ///< Admitted to first worker instruction.
  kCompute,     ///< Verb execution (per-verb work, batch fan-out).
  kEncode,      ///< Response encoding under the negotiated codec.
  kFlush,       ///< Response enqueued to last byte written.
};
inline constexpr int kNumSpans = 6;

/// Stable lowercase span label ("decode", ..., "flush") — the
/// Prometheus `span` label and the /tracez column names.
const char* SpanName(Span span);

/// The identity a request trace carries across component (and, later,
/// shard) boundaries. Deliberately tiny and trivially serialisable:
/// ROADMAP item 3's coordinator forwards exactly this to the owning
/// shards so per-shard traces can be joined into one timeline.
struct TraceContext {
  std::uint64_t trace_id = 0;       ///< Process-unique, never 0 once set.
  std::uint64_t connection_id = 0;  ///< Originating connection.
};

/// One completed request frame's timeline, as recorded into the ring.
struct RequestTrace {
  TraceContext context;

  std::string verb;     ///< First verb of the frame ("query", "batch");
                        ///< empty for frames shed before parsing.
  std::string release;  ///< First release touched; empty if none.
  std::string codec;    ///< Response codec at completion ("text", ...).
  std::string outcome;  ///< "Ok" or the first error code's name.

  std::uint64_t request_bytes = 0;   ///< Decoded frame payload bytes.
  std::uint64_t response_bytes = 0;  ///< Encoded response payload bytes.

  std::array<std::uint64_t, kNumSpans> span_micros{};
  std::uint64_t total_micros = 0;  ///< Decode start to flush complete.

  std::uint32_t batch_queries = 0;  ///< Sub-queries (batch frames).
  std::uint64_t batch_max_group_micros = 0;  ///< Slowest batch group.

  bool slow = false;  ///< total_micros crossed --slow-query-ms.

  std::uint64_t span(Span s) const {
    return span_micros[static_cast<std::size_t>(s)];
  }
  void set_span(Span s, std::uint64_t micros) {
    span_micros[static_cast<std::size_t>(s)] = micros;
  }
};

/// Process-unique trace id (monotonic, starts at 1; never returns 0 so
/// "0" can mean "untraced" everywhere).
std::uint64_t NextTraceId();

/// Fixed-capacity ring of completed traces plus a keep-slowest
/// reservoir. Thread-safe; see the header comment for the contract.
class TraceRing {
 public:
  /// `capacity` slots of recent traces (>= 1) and `slowest_capacity`
  /// reservoir entries (0 disables the reservoir).
  explicit TraceRing(std::size_t capacity, std::size_t slowest_capacity = 16);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Records one completed trace (any thread).
  void Record(const RequestTrace& trace);

  /// Newest-first snapshot of up to `max` recent traces. Slots
  /// overwritten while the walk runs are skipped, so the result is
  /// always a set of internally-consistent traces (possibly fewer than
  /// the ring holds under heavy concurrent writes).
  std::vector<RequestTrace> Recent(std::size_t max) const;

  /// Slowest-first snapshot of the keep-slowest reservoir.
  std::vector<RequestTrace> Slowest() const;

  std::size_t capacity() const { return slots_.size(); }
  std::size_t slowest_capacity() const { return slowest_capacity_; }
  /// Traces ever recorded (monotonic).
  std::uint64_t recorded_total() const {
    return next_ticket_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    mutable sync::Mutex mu;
    std::uint64_t ticket GUARDED_BY(mu) = 0;  ///< 1-based ticket held.
    RequestTrace trace GUARDED_BY(mu);
  };

  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> next_ticket_{0};

  // Keep-slowest reservoir: a relaxed threshold read rejects the common
  // fast request without touching the mutex; candidates at or above the
  // current minimum take the lock and re-check.
  const std::size_t slowest_capacity_;
  std::atomic<std::uint64_t> slow_threshold_{0};
  mutable sync::Mutex slow_mu_;
  /// Sorted slowest-first.
  std::vector<RequestTrace> slowest_ GUARDED_BY(slow_mu_);
};

}  // namespace trace
}  // namespace dpcube

#endif  // DPCUBE_COMMON_TRACE_H_
