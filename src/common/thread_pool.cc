// Copyright 2026 The dpcube Authors.

#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <utility>

namespace dpcube {

ThreadPool::ThreadPool(int parallelism) {
  const int workers = std::max(1, parallelism) - 1;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    sync::MutexLock lock(&mu_);
    shutting_down_ = true;
  }
  work_available_.SignalAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      sync::MutexLock lock(&mu_);
      work_available_.Wait(mu_, [this]() REQUIRES(mu_) {
        return shutting_down_ || !tasks_.empty();
      });
      if (tasks_.empty()) return;  // Shutting down and drained.
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    busy_workers_.fetch_add(1, std::memory_order_relaxed);
    task();
    busy_workers_.fetch_sub(1, std::memory_order_relaxed);
  }
}

std::size_t ThreadPool::queue_depth() const {
  sync::MutexLock lock(&mu_);
  return tasks_.size();
}

int ThreadPool::busy_workers() const {
  return busy_workers_.load(std::memory_order_relaxed);
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    // No workers to hand off to; run inline rather than queue forever.
    task();
    return;
  }
  {
    sync::MutexLock lock(&mu_);
    tasks_.push_back(std::move(task));
  }
  work_available_.Signal();
}

namespace {

// Join state shared between the caller and its helper tasks. Helpers may
// outlive the ParallelForBlocks call (a queued helper can run after every
// chunk is done), so the state is reference-counted; `body` is only
// dereferenced while a chunk is held, which the join guarantees cannot
// outlast the caller.
struct LoopState {
  std::atomic<std::size_t> next_chunk{0};
  std::atomic<std::size_t> chunks_done{0};
  std::size_t num_chunks = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t grain = 0;
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  sync::Mutex mu;
  sync::CondVar all_done;
  std::exception_ptr first_exception GUARDED_BY(mu);
};

// Claims and runs chunks until none remain. Returns after contributing.
// A throwing body must not unwind a worker (std::terminate) or let the
// caller skip the join while helpers still hold `body` (use-after-free):
// the first exception is captured here and rethrown by the caller after
// the join; every claimed chunk counts as done either way.
void RunChunks(const std::shared_ptr<LoopState>& state) {
  for (;;) {
    const std::size_t chunk = state->next_chunk.fetch_add(1);
    if (chunk >= state->num_chunks) return;
    const std::size_t lo = state->begin + chunk * state->grain;
    const std::size_t hi = std::min(state->end, lo + state->grain);
    try {
      (*state->body)(lo, hi);
    } catch (...) {
      sync::MutexLock lock(&state->mu);
      if (!state->first_exception) {
        state->first_exception = std::current_exception();
      }
    }
    if (state->chunks_done.fetch_add(1) + 1 == state->num_chunks) {
      sync::MutexLock lock(&state->mu);
      state->all_done.SignalAll();
    }
  }
}

// State for one work-stealing loop. The chunk partition is identical to
// the FIFO path's; only the order participants reach chunks differs, and
// bodies write disjoint state, so the two schedules are observationally
// equivalent. Reference-counted for the same reason as LoopState: a
// queued helper may run after every chunk is done.
struct StealState {
  struct Chunk {
    std::size_t lo = 0;
    std::size_t hi = 0;
  };
  // One deque per participant (slot 0 is the caller). A plain mutex per
  // deque keeps the invariant simple — at most one deque lock is ever
  // held at a time — and steals are rare enough that contention is not
  // the bottleneck the lock-free literature optimises for.
  struct alignas(64) Deque {
    sync::Mutex mu;
    std::deque<Chunk> chunks GUARDED_BY(mu);
  };
  explicit StealState(std::size_t participants) : deques(participants) {}

  std::vector<Deque> deques;
  std::atomic<std::size_t> chunks_done{0};
  std::size_t num_chunks = 0;
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  sync::Mutex mu;
  sync::CondVar all_done;
  std::exception_ptr first_exception GUARDED_BY(mu);
};

void RunOneChunk(const std::shared_ptr<StealState>& state,
                 const StealState::Chunk& chunk) {
  try {
    (*state->body)(chunk.lo, chunk.hi);
  } catch (...) {
    sync::MutexLock lock(&state->mu);
    if (!state->first_exception) {
      state->first_exception = std::current_exception();
    }
  }
  if (state->chunks_done.fetch_add(1) + 1 == state->num_chunks) {
    sync::MutexLock lock(&state->mu);
    state->all_done.SignalAll();
  }
}

// Participant `slot`: drain the own deque front-to-back; when empty, scan
// the other deques round-robin and steal the back half of the first
// non-empty victim (the chunks the victim would reach last, which also
// preserves front-of-deque locality for the victim). Returns when no
// deque holds work. A chunk is only ever in exactly one deque or claimed
// by exactly one participant, so every chunk runs exactly once.
void RunStealingChunks(const std::shared_ptr<StealState>& state,
                       std::size_t slot) {
  const std::size_t participants = state->deques.size();
  StealState::Deque& own = state->deques[slot];
  for (;;) {
    bool got = false;
    StealState::Chunk chunk;
    {
      sync::MutexLock lock(&own.mu);
      if (!own.chunks.empty()) {
        chunk = own.chunks.front();
        own.chunks.pop_front();
        got = true;
      }
    }
    if (!got) {
      for (std::size_t k = 1; k < participants && !got; ++k) {
        StealState::Deque& victim =
            state->deques[(slot + k) % participants];
        std::vector<StealState::Chunk> stolen;
        {
          sync::MutexLock lock(&victim.mu);
          const std::size_t n = victim.chunks.size();
          if (n == 0) continue;
          const std::size_t take = (n + 1) / 2;  // Steal half, rounded up.
          stolen.assign(victim.chunks.end() - static_cast<std::ptrdiff_t>(take),
                        victim.chunks.end());
          victim.chunks.erase(
              victim.chunks.end() - static_cast<std::ptrdiff_t>(take),
              victim.chunks.end());
        }
        chunk = stolen.front();
        got = true;
        if (stolen.size() > 1) {
          sync::MutexLock lock(&own.mu);
          own.chunks.insert(own.chunks.end(), stolen.begin() + 1,
                            stolen.end());
        }
      }
    }
    if (!got) return;  // Every visible chunk is claimed or done.
    RunOneChunk(state, chunk);
  }
}

}  // namespace

void ThreadPool::RunFifo(
    std::size_t begin, std::size_t end, std::size_t grain,
    std::size_t num_chunks,
    const std::function<void(std::size_t, std::size_t)>& body) {
  auto state = std::make_shared<LoopState>();
  state->num_chunks = num_chunks;
  state->begin = begin;
  state->end = end;
  state->grain = grain;
  state->body = &body;

  const std::size_t helpers =
      std::min(num_chunks - 1, workers_.size());
  for (std::size_t h = 0; h < helpers; ++h) {
    Submit([state] { RunChunks(state); });
  }
  RunChunks(state);  // The caller is one of the compute threads.

  sync::MutexLock lock(&state->mu);
  state->all_done.Wait(state->mu, [&] {
    return state->chunks_done.load() == state->num_chunks;
  });
  if (state->first_exception) std::rethrow_exception(state->first_exception);
}

void ThreadPool::RunStealing(
    std::size_t begin, std::size_t end, std::size_t grain,
    std::size_t num_chunks,
    const std::function<void(std::size_t, std::size_t)>& body) {
  const std::size_t participants =
      std::min(num_chunks, workers_.size() + 1);
  auto state = std::make_shared<StealState>(participants);
  state->num_chunks = num_chunks;
  state->body = &body;

  // Seed each participant's deque with a contiguous run of chunks (good
  // initial locality; stealing rebalances from there). The partition is
  // a pure function of the loop geometry and helpers only see the deques
  // after the Submit fence below, but each uncontended per-deque lock is
  // cheap enough to keep the seeding inside the lock discipline.
  const std::size_t per =
      (num_chunks + participants - 1) / participants;
  for (std::size_t p = 0; p < participants; ++p) {
    const std::size_t first = p * per;
    const std::size_t last = std::min(num_chunks, first + per);
    sync::MutexLock seed_lock(&state->deques[p].mu);
    for (std::size_t c = first; c < last; ++c) {
      const std::size_t lo = begin + c * grain;
      const std::size_t hi = std::min(end, lo + grain);
      state->deques[p].chunks.push_back(StealState::Chunk{lo, hi});
    }
  }

  for (std::size_t h = 1; h < participants; ++h) {
    Submit([state, h] { RunStealingChunks(state, h); });
  }
  RunStealingChunks(state, 0);  // The caller is participant 0.

  sync::MutexLock lock(&state->mu);
  state->all_done.Wait(state->mu, [&] {
    return state->chunks_done.load() == state->num_chunks;
  });
  if (state->first_exception) std::rethrow_exception(state->first_exception);
}

void ThreadPool::ParallelForBlocks(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body,
    Schedule schedule) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(1, grain);
  // Cap the chunk count at ~8 per thread: `grain` is the caller's lower
  // bound (below which forking is wasteful), but for huge ranges a fixed
  // grain would mean thousands of queue handoffs per loop. Chunking does
  // not affect results (bodies write disjoint state), only sync cost.
  // The cap is schedule-independent so both schedules see one partition.
  const std::size_t max_chunks = 8 * static_cast<std::size_t>(parallelism());
  grain = std::max(grain, (end - begin + max_chunks - 1) / max_chunks);
  const std::size_t num_chunks = (end - begin + grain - 1) / grain;
  if (num_chunks == 1 || workers_.empty()) {
    body(begin, end);  // Inline: an exception propagates directly.
    return;
  }
  if (schedule == Schedule::kAuto) schedule = default_schedule();
  if (schedule == Schedule::kWorkStealing) {
    RunStealing(begin, end, grain, num_chunks, body);
  } else {
    RunFifo(begin, end, grain, num_chunks, body);
  }
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             std::size_t grain,
                             const std::function<void(std::size_t)>& body,
                             Schedule schedule) {
  ParallelForBlocks(begin, end, grain,
                    [&body](std::size_t lo, std::size_t hi) {
                      for (std::size_t i = lo; i < hi; ++i) body(i);
                    },
                    schedule);
}

double ThreadPool::ParallelSumBlocks(
    std::size_t begin, std::size_t end, std::size_t block,
    const std::function<double(std::size_t, std::size_t)>& body) {
  if (begin >= end) return 0.0;
  block = std::max<std::size_t>(1, block);
  const std::size_t num_blocks = (end - begin + block - 1) / block;
  std::vector<double> partial(num_blocks, 0.0);
  // Grain 1 in block space: each work unit is one fixed block, writing
  // its own slot.
  ParallelFor(0, num_blocks, 1, [&](std::size_t k) {
    const std::size_t lo = begin + k * block;
    partial[k] = body(lo, std::min(end, lo + block));
  });
  double sum = 0.0;
  for (const double p : partial) sum += p;
  return sum;
}

void ThreadPool::set_default_schedule(Schedule schedule) {
  if (schedule == Schedule::kAuto) return;  // kAuto cannot be the default.
  default_schedule_.store(schedule == Schedule::kWorkStealing ? 1 : 0,
                          std::memory_order_relaxed);
}

ThreadPool::Schedule ThreadPool::default_schedule() const {
  return default_schedule_.load(std::memory_order_relaxed) == 1
             ? Schedule::kWorkStealing
             : Schedule::kFifo;
}

namespace {

sync::Mutex shared_pool_mu;
std::unique_ptr<ThreadPool>& SharedPoolSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

ThreadPool& ThreadPool::Shared() {
  sync::MutexLock lock(&shared_pool_mu);
  auto& pool = SharedPoolSlot();
  if (!pool) {
    const unsigned hw = std::thread::hardware_concurrency();
    pool = std::make_unique<ThreadPool>(hw == 0 ? 1 : static_cast<int>(hw));
  }
  return *pool;
}

Status ThreadPool::SetSharedParallelism(int parallelism) {
  const int wanted = std::max(1, parallelism);
  sync::MutexLock lock(&shared_pool_mu);
  auto& pool = SharedPoolSlot();
  if (!pool) {
    pool = std::make_unique<ThreadPool>(wanted);
    return Status::OK();
  }
  if (pool->parallelism() == wanted) return Status::OK();
  return Status::FailedPrecondition(
      "shared thread pool already sized to " +
      std::to_string(pool->parallelism()) + " threads; cannot resize to " +
      std::to_string(wanted) +
      " (the size is sticky once the pool exists — set --threads before "
      "any parallel work runs)");
}

void ThreadPool::ResetSharedPoolForTests(int parallelism) {
  sync::MutexLock lock(&shared_pool_mu);
  auto& pool = SharedPoolSlot();
  if (pool && pool->parallelism() == std::max(1, parallelism)) return;
  pool.reset();  // Join the old workers before replacing them.
  pool = std::make_unique<ThreadPool>(parallelism);
}

}  // namespace dpcube
