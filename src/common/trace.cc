// Copyright 2026 The dpcube Authors.

#include "common/trace.h"

#include <algorithm>

namespace dpcube {
namespace trace {

const char* SpanName(Span span) {
  switch (span) {
    case Span::kDecode:
      return "decode";
    case Span::kAdmit:
      return "admit";
    case Span::kQueue:
      return "queue";
    case Span::kCompute:
      return "compute";
    case Span::kEncode:
      return "encode";
    case Span::kFlush:
      return "flush";
  }
  return "unknown";
}

std::uint64_t NextTraceId() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

TraceRing::TraceRing(std::size_t capacity, std::size_t slowest_capacity)
    : slots_(capacity == 0 ? 1 : capacity),
      slowest_capacity_(slowest_capacity) {}

void TraceRing::Record(const RequestTrace& trace) {
  const std::uint64_t ticket =
      next_ticket_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& slot = slots_[(ticket - 1) % slots_.size()];
  {
    sync::MutexLock lock(&slot.mu);
    slot.trace = trace;
    slot.ticket = ticket;
  }

  if (slowest_capacity_ == 0) return;
  // Fast reject: once the reservoir is full, anything quicker than its
  // current minimum cannot enter; a relaxed read keeps the common case
  // lock-free. The threshold only ever rises, so a stale read can at
  // worst admit a candidate that loses the locked re-check below.
  if (trace.total_micros < slow_threshold_.load(std::memory_order_relaxed)) {
    return;
  }
  sync::MutexLock lock(&slow_mu_);
  if (slowest_.size() >= slowest_capacity_ &&
      trace.total_micros <= slowest_.back().total_micros) {
    return;
  }
  const auto insert_at = std::upper_bound(
      slowest_.begin(), slowest_.end(), trace,
      [](const RequestTrace& a, const RequestTrace& b) {
        return a.total_micros > b.total_micros;
      });
  slowest_.insert(insert_at, trace);
  if (slowest_.size() > slowest_capacity_) slowest_.pop_back();
  if (slowest_.size() >= slowest_capacity_) {
    slow_threshold_.store(slowest_.back().total_micros,
                          std::memory_order_relaxed);
  }
}

std::vector<RequestTrace> TraceRing::Recent(std::size_t max) const {
  std::vector<RequestTrace> out;
  const std::uint64_t newest = next_ticket_.load(std::memory_order_relaxed);
  if (newest == 0 || max == 0) return out;
  const std::uint64_t span =
      std::min<std::uint64_t>({newest, slots_.size(), max});
  out.reserve(static_cast<std::size_t>(span));
  for (std::uint64_t t = newest; t + span > newest && t >= 1; --t) {
    const Slot& slot = slots_[(t - 1) % slots_.size()];
    sync::MutexLock lock(&slot.mu);
    // A concurrent writer may have lapped this slot (newer ticket) or
    // not written it yet (older ticket from a previous incarnation was
    // expected but a racing claim is still copying). Either way the
    // ticket mismatch identifies the slot as unusable for ticket `t`.
    if (slot.ticket == t) out.push_back(slot.trace);
  }
  return out;
}

std::vector<RequestTrace> TraceRing::Slowest() const {
  sync::MutexLock lock(&slow_mu_);
  return slowest_;
}

}  // namespace trace
}  // namespace dpcube
