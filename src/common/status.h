// Copyright 2026 The dpcube Authors.
//
// Minimal Status / Result error-propagation types, in the style used by
// database engines (Arrow, RocksDB, LevelDB): no exceptions on library
// paths; fallible operations return Status or Result<T>.

#ifndef DPCUBE_COMMON_STATUS_H_
#define DPCUBE_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace dpcube {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotFound = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kNumericalError = 7,  ///< Singular matrix, non-convergence, infeasible LP...
  kUnavailable = 8,     ///< Shed/busy/overloaded; the caller may retry.
  kResourceExhausted = 9,  ///< A quota or budget is spent; retrying won't help.
};

/// Returns a human-readable name for a StatusCode.
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kUnimplemented: return "Unimplemented";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kNumericalError: return "NumericalError";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
  }
  return "Unknown";
}

/// Lightweight success/error indicator carrying a code and message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    std::string out = StatusCodeName(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A value-or-error holder. `ok()` implies the value is present.
///
/// Usage:
///   Result<Matrix> r = Cholesky(a);
///   if (!r.ok()) return r.status();
///   Matrix l = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status (error).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or aborts with the status message (for tests/tools).
  T ValueOrDie() && {
    if (!ok()) {
      assert(false && "Result::ValueOrDie on error");
    }
    return *std::move(value_);
  }

 private:
  Status status_;  // OK iff value_ present.
  std::optional<T> value_;
};

/// Propagates a non-OK Status from an expression.
#define DPCUBE_RETURN_NOT_OK(expr)                  \
  do {                                              \
    ::dpcube::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                      \
  } while (0)

/// Assigns the value of a Result expression or propagates its Status.
#define DPCUBE_ASSIGN_OR_RETURN(lhs, rexpr)         \
  auto DPCUBE_CONCAT_(_res_, __LINE__) = (rexpr);   \
  if (!DPCUBE_CONCAT_(_res_, __LINE__).ok())        \
    return DPCUBE_CONCAT_(_res_, __LINE__).status();\
  lhs = std::move(DPCUBE_CONCAT_(_res_, __LINE__)).value()

#define DPCUBE_CONCAT_INNER_(a, b) a##b
#define DPCUBE_CONCAT_(a, b) DPCUBE_CONCAT_INNER_(a, b)

}  // namespace dpcube

#endif  // DPCUBE_COMMON_STATUS_H_
