// Copyright 2026 The dpcube Authors.

#include "common/log.h"

#include <errno.h>
#include <sys/time.h>
#include <time.h>

#include <cstring>

namespace dpcube {
namespace logging {

namespace {

// Appends "2026-08-07T12:00:00.123Z" — UTC wall time with millisecond
// resolution, enough to correlate an access-log record with external
// monitoring without pretending to microsecond clock sync. The
// second-resolution prefix is cached per thread: gmtime_r + strftime
// cost ~1us, and a busy access log emits thousands of records per
// second that share the same prefix.
void AppendIso8601Now(std::string* out) {
  struct timeval tv;
  ::gettimeofday(&tv, nullptr);
  thread_local time_t cached_sec = 0;
  thread_local char cached_prefix[24] = {0};
  thread_local std::size_t cached_len = 0;
  if (tv.tv_sec != cached_sec || cached_len == 0) {
    struct tm utc;
    ::gmtime_r(&tv.tv_sec, &utc);
    cached_len = ::strftime(cached_prefix, sizeof(cached_prefix),
                            "%Y-%m-%dT%H:%M:%S", &utc);
    cached_sec = tv.tv_sec;
  }
  out->append(cached_prefix, cached_len);
  char millis[8];
  std::snprintf(millis, sizeof(millis), ".%03dZ",
                static_cast<int>(tv.tv_usec / 1000));
  out->append(millis);
}

// Escapes `text` straight into `out` — the fast path (no byte needs
// escaping, the overwhelmingly common case for access-log fields)
// is a single append with no temporary string.
void AppendJsonEscaped(std::string* out, const std::string& text) {
  std::size_t clean = 0;
  while (clean < text.size()) {
    const unsigned char c = static_cast<unsigned char>(text[clean]);
    if (c == '"' || c == '\\' || c < 0x20) break;
    ++clean;
  }
  if (clean == text.size()) {
    out->append(text);
    return;
  }
  out->append(text, 0, clean);
  *out += JsonEscape(text.substr(clean));
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO";
    case Level::kWarn:
      return "WARN";
    case Level::kError:
      return "ERROR";
  }
  return "UNKNOWN";
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof(esc), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += esc;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Logger::Logger(std::FILE* stream, Format format, Level min_level)
    : Logger(stream, format, min_level, /*owns=*/false) {}

Logger::Logger(std::FILE* stream, Format format, Level min_level, bool owns)
    : stream_(stream),
      format_(format),
      min_level_(min_level),
      owns_stream_(owns),
      flush_through_(!owns) {}

Result<std::shared_ptr<Logger>> Logger::Open(const std::string& path,
                                             Format format, Level min_level) {
  std::FILE* stream = std::fopen(path.c_str(), "a");
  if (stream == nullptr) {
    return Status::NotFound("cannot open log file '" + path +
                            "': " + std::strerror(errno));
  }
  return std::shared_ptr<Logger>(
      new Logger(stream, format, min_level, /*owns=*/true));
}

Logger::~Logger() {
  if (owns_stream_ && stream_ != nullptr) std::fclose(stream_);
}

std::string Logger::FormatRecord(Level level, const std::string& event,
                                 const Field* fields, std::size_t n) const {
  std::string line;
  line.reserve(96 + 24 * n);
  if (format_ == Format::kJson) {
    line += "{\"ts\":\"";
    AppendIso8601Now(&line);
    line += "\",\"level\":\"";
    line += LevelName(level);
    line += "\",\"event\":\"";
    AppendJsonEscaped(&line, event);
    line += '"';
    for (std::size_t i = 0; i < n; ++i) {
      const Field& field = fields[i];
      line += ",\"";
      AppendJsonEscaped(&line, field.key);
      line += "\":";
      if (field.raw) {
        line += field.value;
      } else {
        line += '"';
        AppendJsonEscaped(&line, field.value);
        line += '"';
      }
    }
    line += "}\n";
    return line;
  }
  AppendIso8601Now(&line);
  line += ' ';
  line += LevelName(level);
  line += ' ';
  line += event;
  for (std::size_t i = 0; i < n; ++i) {
    const Field& field = fields[i];
    line += ' ';
    line += field.key;
    line += '=';
    line += field.value;
  }
  line += '\n';
  return line;
}

void Logger::Emit(Level level, const std::string& event, const Field* fields,
                  std::size_t n) {
  const std::string line = FormatRecord(level, event, fields, n);
  sync::MutexLock lock(&mu_);
  std::fwrite(line.data(), 1, line.size(), stream_);
  // Owned file streams ride stdio's buffer for routine records — a
  // per-request fflush is a serialised write syscall on the poller
  // thread and shows up directly in the tcp_cell/traced bench row.
  // WARN and above (slow queries, errors) still write through so a
  // tail -f sees them immediately; the rest lands when the buffer
  // fills or the logger closes.
  if (flush_through_ ||
      static_cast<int>(level) >= static_cast<int>(Level::kWarn)) {
    std::fflush(stream_);
  }
}

void Logger::Log(Level level, const std::string& event,
                 const std::vector<Field>& fields) {
  if (static_cast<int>(level) < static_cast<int>(min_level_)) return;
  Emit(level, event, fields.data(), fields.size());
}

}  // namespace logging
}  // namespace dpcube
