// Copyright 2026 The dpcube Authors.
//
// Self-pipe shutdown signalling for the serving CLI: SIGINT/SIGTERM
// handlers that do the only async-signal-safe thing — write one byte to
// a pipe — so the server's poll loop observes the request as a readable
// fd and can drain in-flight work before exiting, instead of dying
// mid-response.

#ifndef DPCUBE_COMMON_SIGNAL_H_
#define DPCUBE_COMMON_SIGNAL_H_

#include "common/status.h"

namespace dpcube {

/// Installs SIGINT and SIGTERM handlers that write to an internal
/// self-pipe, and returns the pipe's read end (poll it for POLLIN; do
/// not close it — the process owns it for its lifetime). Idempotent:
/// repeated calls return the same fd. The handlers replace any previous
/// disposition for those two signals.
Result<int> InstallShutdownSignalFd();

/// True once a handled shutdown signal has been delivered.
bool ShutdownRequested();

/// Which signal triggered the shutdown (0 if none yet).
int ShutdownSignalNumber();

}  // namespace dpcube

#endif  // DPCUBE_COMMON_SIGNAL_H_
