// Copyright 2026 The dpcube Authors.
//
// A small leveled, structured logger with two output formats:
//
//   kHuman — "2026-08-07T12:00:00.123Z INFO serve: listening addr=..."
//            for stderr (the serve banner and diagnostics migrate here
//            from ad-hoc fprintf sites);
//   kJson  — one JSON object per line (JSONL) for machine-read logs,
//            in particular the request/slow-query access log
//            (`serve --access-log PATH`).
//
// Fields are explicit key/value pairs; values marked as raw render
// unquoted in JSON (numbers, booleans) and bare in the human format.
// Writes are mutex-serialised and each record is a single write-through
// line, so concurrent pollers never interleave partial records.
//
// The logger deliberately owns no background thread and performs no
// buffering beyond stdio's: a request trace costs one formatted line
// and one flocked fwrite. Borrowed streams (stderr/stdout banners)
// flush every record; owned log files flush write-through only at
// WARN and above — routine INFO access records ride stdio's buffer
// and land when it fills or the logger closes, so the hot path never
// pays a per-request write syscall.

#ifndef DPCUBE_COMMON_LOG_H_
#define DPCUBE_COMMON_LOG_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/sync.h"

namespace dpcube {
namespace logging {

enum class Level : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};
const char* LevelName(Level level);  ///< "DEBUG", "INFO", ...

/// One structured field. `raw` values are emitted without quotes in
/// JSON — the caller vouches they are valid JSON scalars (numbers,
/// true/false); quoted values are escaped.
struct Field {
  std::string key;
  std::string value;
  bool raw = false;

  Field(std::string k, std::string v)
      : key(std::move(k)), value(std::move(v)) {}
  static Field Num(std::string k, std::uint64_t v) {
    return Field(std::move(k), std::to_string(v), true);
  }
  static Field Bool(std::string k, bool v) {
    return Field(std::move(k), v ? "true" : "false", true);
  }
  static Field Raw(std::string k, std::string v) {
    return Field(std::move(k), std::move(v), true);
  }

 private:
  Field(std::string k, std::string v, bool is_raw)
      : key(std::move(k)), value(std::move(v)), raw(is_raw) {}
};

/// Escapes `text` for inclusion inside a JSON string literal (quotes,
/// backslashes, control bytes). Exposed for tests.
std::string JsonEscape(const std::string& text);

class Logger {
 public:
  enum class Format { kHuman, kJson };

  /// Logger over a borrowed stream (not closed on destruction) —
  /// stderr diagnostics.
  Logger(std::FILE* stream, Format format, Level min_level = Level::kInfo);

  /// Opens (appends to) `path`. The returned logger owns the FILE;
  /// WARN/ERROR records flush write-through, INFO/DEBUG are buffered
  /// until the buffer fills or the logger is destroyed.
  static Result<std::shared_ptr<Logger>> Open(const std::string& path,
                                              Format format,
                                              Level min_level = Level::kInfo);

  ~Logger();

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  /// Emits one record: a short event name ("listening", "request") plus
  /// structured fields. Below min_level, a no-op.
  void Log(Level level, const std::string& event,
           const std::vector<Field>& fields = {});

  /// Hot-path overload: a braced field list binds here and is formatted
  /// straight off the stack — no vector allocation, no Field copies.
  /// The per-request access-log record goes through this.
  void Log(Level level, const std::string& event,
           std::initializer_list<Field> fields) {
    if (static_cast<int>(level) < static_cast<int>(min_level_)) return;
    Emit(level, event, fields.begin(), fields.size());
  }

  void Debug(const std::string& event, const std::vector<Field>& fields = {}) {
    Log(Level::kDebug, event, fields);
  }
  void Info(const std::string& event, const std::vector<Field>& fields = {}) {
    Log(Level::kInfo, event, fields);
  }
  void Warn(const std::string& event, const std::vector<Field>& fields = {}) {
    Log(Level::kWarn, event, fields);
  }
  void Error(const std::string& event, const std::vector<Field>& fields = {}) {
    Log(Level::kError, event, fields);
  }

  Level min_level() const { return min_level_; }
  Format format() const { return format_; }

 private:
  Logger(std::FILE* stream, Format format, Level min_level, bool owns);

  std::string FormatRecord(Level level, const std::string& event,
                           const Field* fields, std::size_t n) const;
  void Emit(Level level, const std::string& event, const Field* fields,
            std::size_t n);

  /// Set in the constructor, closed in the destructor; mu_ serialises
  /// the stream I/O in between (never the pointer itself).
  std::FILE* stream_;
  const Format format_;
  const Level min_level_;
  const bool owns_stream_;
  const bool flush_through_;
  sync::Mutex mu_;
};

}  // namespace logging
}  // namespace dpcube

#endif  // DPCUBE_COMMON_LOG_H_
