// Copyright 2026 The dpcube Authors.

#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dpcube {
namespace stats {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = Mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - mu) * (x - mu);
  return ss / static_cast<double>(xs.size() - 1);
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double MeanAbs(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += std::fabs(x);
  return sum / static_cast<double>(xs.size());
}

double Quantile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  assert(p >= 0.0 && p <= 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = p * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double SumSquaredError(const std::vector<double>& got,
                       const std::vector<double>& want) {
  assert(got.size() == want.size());
  double ss = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double diff = got[i] - want[i];
    ss += diff * diff;
  }
  return ss;
}

double MeanAbsoluteError(const std::vector<double>& got,
                         const std::vector<double>& want) {
  assert(got.size() == want.size());
  if (got.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    sum += std::fabs(got[i] - want[i]);
  }
  return sum / static_cast<double>(got.size());
}

void RunningStats::Add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace stats
}  // namespace dpcube
