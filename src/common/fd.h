// Copyright 2026 The dpcube Authors.
//
// RAII ownership of POSIX file descriptors, shared by the network
// subsystem (sockets, self-pipes) and the CLI's signal plumbing. A
// UniqueFd is to `int fd` what unique_ptr is to a raw pointer: move-only,
// closes on destruction, and makes every ownership transfer explicit —
// the historical fd bugs (double close, leak on early return, close of a
// still-polled descriptor) become type errors instead of code review
// findings.

#ifndef DPCUBE_COMMON_FD_H_
#define DPCUBE_COMMON_FD_H_

#include <utility>

#include "common/status.h"

namespace dpcube {

class UniqueFd {
 public:
  UniqueFd() = default;
  /// Takes ownership of `fd` (-1 means empty).
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) reset(other.release());
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Relinquishes ownership without closing.
  int release() { return std::exchange(fd_, -1); }

  /// Closes the held descriptor (if any) and adopts `fd`.
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// A pipe with both ends owned, O_CLOEXEC, and the read end non-blocking
/// — the shape every self-pipe wakeup in the server needs. Holding both
/// ends in one object means a late writer (a worker finishing after the
/// event loop exited) can never hit EPIPE: the read end lives as long as
/// the write end does.
struct Pipe {
  UniqueFd read_end;
  UniqueFd write_end;
};

/// Creates a Pipe as above. Failure carries errno text.
Result<Pipe> MakePipe();

/// Sets O_NONBLOCK on `fd`.
Status SetNonBlocking(int fd);

/// Writes one byte to `fd`, ignoring EAGAIN (a full pipe is already a
/// pending wakeup). Async-signal-safe. Returns false only on a real
/// error.
bool WriteWakeByte(int fd);

/// Reads and discards everything buffered in a non-blocking `fd`
/// (drains coalesced wakeups).
void DrainWakeBytes(int fd);

}  // namespace dpcube

#endif  // DPCUBE_COMMON_FD_H_
