// Copyright 2026 The dpcube Authors.
//
// A minimal write-ahead-log layer for the durable serving state: CRC-
// guarded self-delimiting records appended to a changelog file, group-
// committed fsyncs, torn-tail-tolerant replay, and the atomic-write /
// directory-fsync primitives snapshots are built from. The layer knows
// nothing about what the payloads mean — the service layer's typed
// Mutation codec (service/mutation.h) sits on top.
//
// On-disk record layout (all multi-byte fields little-endian):
//
//   +-----------+-------------+---------+-----------------+---------+
//   | u32 magic | u32 pay_len | u64 lsn | u32 crc32(lsn ||| payload |
//   |           |             |         |     payload)    | bytes   |
//   +-----------+-------------+---------+-----------------+---------+
//
// Records carry monotonically increasing LSNs assigned at append time.
// Replay walks records front to back and stops at the first byte
// sequence that is not a complete, CRC-valid record; the caller decides
// whether that tail is a torn final append (legal on the newest
// changelog — truncate and continue) or mid-chain corruption (fatal).
//
// Durability contract: Append() writes the record into the OS page
// cache and returns its LSN; Sync(lsn) returns once every record up to
// `lsn` is fdatasync'd. Concurrent Sync callers coalesce: one becomes
// the leader and issues a single fsync covering every record appended
// before it started (group commit), the rest wait on the watermark —
// so N threads charging quota concurrently cost ~1 fsync, not N.

#ifndef DPCUBE_COMMON_WAL_H_
#define DPCUBE_COMMON_WAL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/fd.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/sync.h"

namespace dpcube {
namespace wal {

inline constexpr std::uint32_t kRecordMagic = 0xD75A11ADu;
inline constexpr std::size_t kRecordHeaderBytes = 20;
/// Hard cap on one record's payload — a hostile or corrupt length field
/// can never trigger a giant allocation during replay.
inline constexpr std::size_t kMaxRecordPayload = std::size_t{1} << 24;

/// IEEE 802.3 CRC-32 (the zlib polynomial), table-driven.
std::uint32_t Crc32(const void* data, std::size_t size);
inline std::uint32_t Crc32(std::string_view data) {
  return Crc32(data.data(), data.size());
}

/// Serializes one record (header + payload) — exposed for tests and for
/// crafting torn/corrupt tails.
std::string EncodeRecord(std::uint64_t lsn, std::string_view payload);

/// What ReplayChangelog saw. `valid_bytes < file_bytes` means the file
/// ends in bytes that do not form a complete CRC-valid record.
struct ReplayResult {
  std::uint64_t records = 0;     ///< Complete records delivered.
  std::uint64_t last_lsn = 0;    ///< LSN of the last delivered record.
  std::uint64_t valid_bytes = 0; ///< Offset of the first invalid byte.
  std::uint64_t file_bytes = 0;  ///< Total file size.
};

/// Walks `path` front to back, calling `apply(lsn, payload)` for every
/// complete CRC-valid record, stopping at the first invalid byte.
/// An invalid tail is NOT an error here — the caller compares
/// valid_bytes to file_bytes and decides (torn final append vs fatal
/// mid-chain corruption). NotFound when the file does not exist.
Result<ReplayResult> ReplayChangelog(
    const std::string& path,
    const std::function<void(std::uint64_t lsn, std::string_view payload)>&
        apply);

/// An append-only changelog file. Append() is thread-safe (internally
/// serialized); Sync() group-commits as documented above.
class Changelog {
 public:
  /// Opens (creates if absent) `path` for appending. `next_lsn` seeds
  /// the LSN counter — the caller derives it from replay. `fsync_hist`,
  /// when non-null, records each fsync's wall-clock (seconds).
  static Result<std::shared_ptr<Changelog>> Open(
      std::string path, std::uint64_t next_lsn,
      std::shared_ptr<metrics::LatencyHistogram> fsync_hist = nullptr);

  /// Appends one record, returning its LSN. The record is in the page
  /// cache only — call Sync(lsn) before acting on its durability.
  Result<std::uint64_t> Append(std::string_view payload);

  /// Returns once every record with LSN <= `lsn` is fdatasync'd (group
  /// commit: concurrent callers coalesce onto one leader fsync).
  Status Sync(std::uint64_t lsn);

  const std::string& path() const { return path_; }
  std::uint64_t next_lsn() const {
    return next_lsn_.load(std::memory_order_acquire);
  }
  /// Highest LSN known durable (watermark published by Sync leaders).
  std::uint64_t last_synced() const {
    sync::MutexLock lock(&sync_mu_);
    return last_synced_;
  }

 private:
  Changelog(std::string path, UniqueFd fd, std::uint64_t next_lsn,
            std::shared_ptr<metrics::LatencyHistogram> fsync_hist)
      : path_(std::move(path)),
        fd_(std::move(fd)),
        next_lsn_(next_lsn),
        last_appended_(next_lsn > 0 ? next_lsn - 1 : 0),
        fsync_hist_(std::move(fsync_hist)) {}

  const std::string path_;
  /// Written under append_mu_; fdatasync'd by Sync leaders off-lock
  /// (fdatasync needs no serialisation against concurrent writes).
  UniqueFd fd_;
  sync::Mutex append_mu_;
  std::atomic<std::uint64_t> next_lsn_;
  /// Highest LSN whose bytes are fully written (readable by a Sync
  /// leader without holding append_mu_).
  std::atomic<std::uint64_t> last_appended_;
  mutable sync::Mutex sync_mu_;
  sync::CondVar sync_cv_;
  bool sync_in_progress_ GUARDED_BY(sync_mu_) = false;
  std::uint64_t last_synced_ GUARDED_BY(sync_mu_) = 0;
  std::shared_ptr<metrics::LatencyHistogram> fsync_hist_;
};

// ------------------------------------------------------- fs primitives

/// mkdir -p: creates `dir` and any missing parents (0755).
Status MakeDirs(const std::string& dir);

/// Entry names (not paths) in `dir`, unsorted, "." and ".." excluded.
Result<std::vector<std::string>> ListDir(const std::string& dir);

/// Whole-file read (snapshot loads are small).
Result<std::string> ReadFile(const std::string& path);

/// Crash-atomic publish: writes `data` to `path + ".tmp"`, fsyncs the
/// file, renames over `path`, then fsyncs the directory so the rename
/// itself is durable. Readers see either the old file or the complete
/// new one, never a partial write.
Status AtomicWriteFile(const std::string& path, std::string_view data);

/// fsync on the directory fd — makes creations/renames/unlinks durable.
Status FsyncDir(const std::string& dir);

/// truncate(2) — used to drop a torn tail before reopening for append.
Status TruncateFile(const std::string& path, std::uint64_t size);

}  // namespace wal
}  // namespace dpcube

#endif  // DPCUBE_COMMON_WAL_H_
