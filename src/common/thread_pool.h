// Copyright 2026 The dpcube Authors.
//
// Fixed-size shared thread pool with structured fork/join parallel loops.
// One process-wide pool (ThreadPool::Shared) is threaded through every hot
// path of the release pipeline — contingency-table construction, per-cuboid
// measurement, the WHT/tensor-Haar butterflies, consistency sweeps — and
// the query-serving BatchExecutor, so the CLI's --threads flag governs all
// of them at once.
//
// Determinism contract: ParallelFor partitions work into chunks and runs
// them on the calling thread plus the pool's workers. Scheduling is NOT
// deterministic, so loop bodies must write only to per-index (or per-chunk)
// disjoint state; reductions are done by the caller merging per-index
// partial results in index order. Under that discipline a loop's output is
// bit-identical for every pool size, which is what the parallel
// determinism suite (tests/engine/parallel_determinism_test.cc) locks down.
//
// A ParallelFor issued from inside a pool task (nested parallelism) is
// safe: the nested caller can always finish its own chunks without help,
// so there is no circular wait even when every worker is busy.

#ifndef DPCUBE_COMMON_THREAD_POOL_H_
#define DPCUBE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace dpcube {

class ThreadPool {
 public:
  /// A pool of total `parallelism` compute threads: `parallelism - 1`
  /// workers are spawned, and the thread calling ParallelFor contributes
  /// the remaining one. `parallelism` is clamped to >= 1; a 1-thread pool
  /// spawns no workers and runs every loop inline, sequentially.
  explicit ThreadPool(int parallelism);

  /// Drains queued tasks and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total compute threads a ParallelFor can engage (workers + caller).
  int parallelism() const { return static_cast<int>(workers_.size()) + 1; }

  /// Enqueues a fire-and-forget task. Thread-safe.
  void Submit(std::function<void()> task);

  /// Runs body(lo, hi) over a partition of [begin, end) into contiguous
  /// chunks. `grain` is a lower bound on chunk size (the smallest range
  /// worth forking for); the pool may enlarge chunks to bound scheduling
  /// overhead on huge ranges, so bodies must size any per-chunk scratch
  /// from (hi - lo), not from `grain`. Blocks until every chunk has
  /// finished (structured join). The calling thread participates, so the
  /// loop makes progress even when all workers are busy. Thread-safe and
  /// reentrant. If a body throws, the loop still joins every chunk and
  /// rethrows the first exception on the calling thread.
  void ParallelForBlocks(std::size_t begin, std::size_t end,
                         std::size_t grain,
                         const std::function<void(std::size_t, std::size_t)>&
                             body);

  /// Element-wise convenience wrapper: body(i) for i in [begin, end).
  void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                   const std::function<void(std::size_t)>& body);

  /// The process-wide pool shared by the release pipeline and the query
  /// service. First use creates it with hardware_concurrency threads.
  static ThreadPool& Shared();

  /// Sizes the shared pool (the CLI's --threads flag). The size is
  /// sticky: the first sizing — whether by this call or by a plain
  /// Shared() defaulting to hardware concurrency — wins for the life of
  /// the process, because long-lived components (BatchExecutor, the
  /// network server) hold references into the pool and a silent rebuild
  /// would dangle them. A second call with the same size is a no-op; a
  /// second call with a DIFFERENT size fails loudly with
  /// FailedPrecondition and leaves the existing pool untouched.
  static Status SetSharedParallelism(int parallelism);

  /// Unconditionally rebuilds the shared pool at `parallelism`,
  /// bypassing the sticky-size check. STRICTLY for tests and benchmarks
  /// that sweep thread counts: the caller must guarantee no other thread
  /// is running on — and no live object holds a reference to — the
  /// current shared pool.
  static void ResetSharedPoolForTests(int parallelism);

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> tasks_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dpcube

#endif  // DPCUBE_COMMON_THREAD_POOL_H_
