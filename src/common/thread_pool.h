// Copyright 2026 The dpcube Authors.
//
// Fixed-size shared thread pool with structured fork/join parallel loops.
// One process-wide pool (ThreadPool::Shared) is threaded through every hot
// path of the release pipeline — contingency-table construction, per-cuboid
// measurement, the WHT/tensor-Haar butterflies, consistency sweeps — and
// the query-serving BatchExecutor, so the CLI's --threads flag governs all
// of them at once.
//
// Determinism contract: ParallelFor partitions work into chunks and runs
// them on the calling thread plus the pool's workers. Scheduling is NOT
// deterministic, so loop bodies must write only to per-index (or per-chunk)
// disjoint state; reductions are done by the caller merging per-index
// partial results in index order. Under that discipline a loop's output is
// bit-identical for every pool size AND every schedule, which is what the
// parallel determinism suite (tests/engine/parallel_determinism_test.cc)
// locks down.
//
// Two schedules are available per loop. kFifo (the default) hands chunks
// out of one shared claim counter — cheapest when per-chunk costs are
// roughly uniform (butterflies, blocked scans). kWorkStealing
// pre-distributes chunks across per-participant deques; a participant
// drains its own deque front-to-back and, when empty, steals the back
// half of a victim's deque. Heterogeneous task costs (the cluster
// strategy's candidate-merge evaluations, mixed-width cuboids) then stop
// serializing behind whichever participant drew the expensive chunks.
// The schedule affects only which thread runs a chunk, never the chunk
// partition or the caller-side reduction order, so it cannot change
// results.
//
// A ParallelFor issued from inside a pool task (nested parallelism) is
// safe: the nested caller can always finish its own chunks without help,
// so there is no circular wait even when every worker is busy.

#ifndef DPCUBE_COMMON_THREAD_POOL_H_
#define DPCUBE_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/sync.h"

namespace dpcube {

class ThreadPool {
 public:
  /// How a parallel loop distributes its chunks across participants.
  enum class Schedule {
    /// Resolve to the pool's default (set_default_schedule; kFifo unless
    /// changed). Call sites with no cost profile of their own use this so
    /// tests can sweep every loop through both concrete schedules.
    kAuto,
    /// One shared claim counter; participants grab the next unclaimed
    /// chunk. Lowest overhead for uniform per-chunk costs.
    kFifo,
    /// Per-participant deques seeded with contiguous chunk runs; idle
    /// participants steal the back half of a victim's deque. Use when
    /// per-chunk costs are wildly uneven.
    kWorkStealing,
  };

  /// A pool of total `parallelism` compute threads: `parallelism - 1`
  /// workers are spawned, and the thread calling ParallelFor contributes
  /// the remaining one. `parallelism` is clamped to >= 1; a 1-thread pool
  /// spawns no workers and runs every loop inline, sequentially.
  explicit ThreadPool(int parallelism);

  /// Drains queued tasks and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total compute threads a ParallelFor can engage (workers + caller).
  int parallelism() const { return static_cast<int>(workers_.size()) + 1; }

  /// Enqueues a fire-and-forget task. Thread-safe.
  void Submit(std::function<void()> task);

  /// Tasks queued but not yet claimed by a worker. Thread-safe; a point
  /// sample for gauges, already stale by the time the caller reads it.
  std::size_t queue_depth() const;

  /// Workers currently inside a task body (excludes caller threads
  /// participating in a ParallelFor). Thread-safe point sample.
  int busy_workers() const;

  /// Runs body(lo, hi) over a partition of [begin, end) into contiguous
  /// chunks. `grain` is a lower bound on chunk size (the smallest range
  /// worth forking for); the pool may enlarge chunks to bound scheduling
  /// overhead on huge ranges, so bodies must size any per-chunk scratch
  /// from (hi - lo), not from `grain`. Blocks until every chunk has
  /// finished (structured join). The calling thread participates, so the
  /// loop makes progress even when all workers are busy. Thread-safe and
  /// reentrant. If a body throws, the loop still joins every chunk and
  /// rethrows the first exception on the calling thread. The chunk
  /// partition depends only on (begin, end, grain, parallelism()), never
  /// on `schedule`.
  void ParallelForBlocks(std::size_t begin, std::size_t end,
                         std::size_t grain,
                         const std::function<void(std::size_t, std::size_t)>&
                             body,
                         Schedule schedule = Schedule::kAuto);

  /// Element-wise convenience wrapper: body(i) for i in [begin, end).
  void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                   const std::function<void(std::size_t)>& body,
                   Schedule schedule = Schedule::kAuto);

  /// Deterministic parallel sum. `body(lo, hi)` returns the partial sum
  /// of a block; blocks are the fixed ranges [begin + k*block, begin +
  /// (k+1)*block) — a pure function of (begin, end, block), never of the
  /// pool size or schedule — and the partials are merged in ascending
  /// block order on the calling thread. The result is therefore
  /// bit-identical for every pool configuration, though NOT to a plain
  /// left-to-right sum (the association differs): callers that must
  /// preserve historical bytes keep their sequential path below a size
  /// cutoff and switch to this above it.
  double ParallelSumBlocks(std::size_t begin, std::size_t end,
                           std::size_t block,
                           const std::function<double(std::size_t,
                                                      std::size_t)>& body);

  /// The schedule Schedule::kAuto resolves to (kFifo on construction).
  /// Passing kAuto here is invalid and ignored. Thread-safe; loops
  /// already in flight keep the schedule they resolved at entry.
  void set_default_schedule(Schedule schedule);
  Schedule default_schedule() const;

  /// The process-wide pool shared by the release pipeline and the query
  /// service. First use creates it with hardware_concurrency threads.
  static ThreadPool& Shared();

  /// Sizes the shared pool (the CLI's --threads flag). The size is
  /// sticky: the first sizing — whether by this call or by a plain
  /// Shared() defaulting to hardware concurrency — wins for the life of
  /// the process, because long-lived components (BatchExecutor, the
  /// network server) hold references into the pool and a silent rebuild
  /// would dangle them. A second call with the same size is a no-op; a
  /// second call with a DIFFERENT size fails loudly with
  /// FailedPrecondition and leaves the existing pool untouched.
  static Status SetSharedParallelism(int parallelism);

  /// Unconditionally rebuilds the shared pool at `parallelism`,
  /// bypassing the sticky-size check. STRICTLY for tests and benchmarks
  /// that sweep thread counts: the caller must guarantee no other thread
  /// is running on — and no live object holds a reference to — the
  /// current shared pool.
  static void ResetSharedPoolForTests(int parallelism);

 private:
  void WorkerLoop();
  void RunFifo(std::size_t begin, std::size_t end, std::size_t grain,
               std::size_t num_chunks,
               const std::function<void(std::size_t, std::size_t)>& body);
  void RunStealing(std::size_t begin, std::size_t end, std::size_t grain,
                   std::size_t num_chunks,
                   const std::function<void(std::size_t, std::size_t)>& body);

  mutable sync::Mutex mu_;
  sync::CondVar work_available_;
  std::deque<std::function<void()>> tasks_ GUARDED_BY(mu_);
  bool shutting_down_ GUARDED_BY(mu_) = false;
  std::atomic<int> busy_workers_{0};
  std::atomic<int> default_schedule_{0};  // 0 = kFifo, 1 = kWorkStealing.
  std::vector<std::thread> workers_;
};

}  // namespace dpcube

#endif  // DPCUBE_COMMON_THREAD_POOL_H_
