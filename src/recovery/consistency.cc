// Copyright 2026 The dpcube Authors.

#include "recovery/consistency.h"

#include <cmath>

#include "common/thread_pool.h"
#include "opt/simplex.h"
#include "transform/walsh_hadamard.h"

namespace dpcube {
namespace recovery {
namespace {

Status ValidateInputs(const marginal::Workload& workload,
                      const std::vector<marginal::MarginalTable>& noisy,
                      const linalg::Vector& cell_variances) {
  if (noisy.size() != workload.num_marginals()) {
    return Status::InvalidArgument("marginal count does not match workload");
  }
  if (cell_variances.size() != noisy.size()) {
    return Status::InvalidArgument("one cell variance per marginal required");
  }
  for (std::size_t i = 0; i < noisy.size(); ++i) {
    if (noisy[i].alpha() != workload.mask(i)) {
      return Status::InvalidArgument("marginal masks out of workload order");
    }
    if (!(cell_variances[i] > 0.0)) {
      return Status::InvalidArgument("cell variances must be positive");
    }
  }
  return Status::OK();
}

}  // namespace

Result<linalg::Vector> FitFourierCoefficients(
    const marginal::Workload& workload, const marginal::FourierIndex& index,
    const std::vector<marginal::MarginalTable>& noisy,
    const linalg::Vector& cell_variances) {
  DPCUBE_RETURN_NOT_OK(ValidateInputs(workload, noisy, cell_variances));
  const int d = workload.d();
  linalg::Vector numerator(index.size(), 0.0);
  linalg::Vector denominator(index.size(), 0.0);

  // Per-marginal sweep, two deterministic stages: the local WHTs are
  // independent and fan out over the shared pool; the shared-coefficient
  // accumulation then merges the per-marginal contributions sequentially
  // in marginal-index order, so the fitted coefficients are bit-identical
  // to the single-threaded sweep for every thread count.
  std::vector<std::vector<double>> locals(noisy.size());
  ThreadPool::Shared().ParallelFor(0, noisy.size(), 1, [&](std::size_t i) {
    // Local WHT of the marginal gives, per coefficient beta ⪯ alpha,
    // 2^{-k/2} sum_gamma (-1)^{<beta,gamma>} y_gamma; the implied
    // coefficient estimate is 2^{(k-d)/2} times that.
    locals[i] = noisy[i].values();
    transform::WalshHadamard(&locals[i]);
  });
  for (std::size_t i = 0; i < noisy.size(); ++i) {
    const marginal::MarginalTable& table = noisy[i];
    const int k = table.k();
    const std::vector<double>& local = locals[i];
    const double estimate_scale = std::pow(2.0, 0.5 * (k - d));
    const double weight = std::pow(2.0, d - k) / cell_variances[i];
    const bits::Mask alpha = table.alpha();
    for (std::size_t l = 0; l < local.size(); ++l) {
      const std::size_t coef = index.IndexOf(bits::ExpandIntoMask(l, alpha));
      numerator[coef] += weight * estimate_scale * local[l];
      denominator[coef] += weight;
    }
  }
  for (std::size_t c = 0; c < numerator.size(); ++c) {
    // Every coefficient in F is dominated by at least one marginal, so the
    // denominator is positive by construction.
    numerator[c] /= denominator[c];
  }
  return numerator;
}

Result<std::vector<marginal::MarginalTable>> ProjectConsistentL2(
    const marginal::Workload& workload,
    const std::vector<marginal::MarginalTable>& noisy,
    const linalg::Vector& cell_variances) {
  marginal::FourierIndex index(workload);
  DPCUBE_ASSIGN_OR_RETURN(
      linalg::Vector coeffs,
      FitFourierCoefficients(workload, index, noisy, cell_variances));
  // Reconstruction touches each output marginal independently. The
  // 1-cell placeholders are move-assigned by their workers before the
  // join returns.
  std::vector<marginal::MarginalTable> out(workload.num_marginals(),
                                           marginal::MarginalTable(0, 0));
  ThreadPool::Shared().ParallelFor(
      0, workload.num_marginals(), 1, [&](std::size_t i) {
        out[i] = marginal::MarginalFromFourier(
            workload.mask(i), workload.d(),
            [&](bits::Mask beta) { return coeffs[index.IndexOf(beta)]; });
      });
  return out;
}

Result<std::vector<marginal::MarginalTable>> ProjectConsistentLp(
    const marginal::Workload& workload,
    const std::vector<marginal::MarginalTable>& noisy, LpNorm norm) {
  DPCUBE_RETURN_NOT_OK(ValidateInputs(
      workload, noisy, linalg::Vector(noisy.size(), 1.0)));
  marginal::FourierIndex index(workload);
  const linalg::Matrix r = marginal::BuildFourierRecoveryMatrix(workload,
                                                                index);
  const linalg::Vector target = marginal::StackMarginals(noisy);

  // Variables: coefficients (free) + residual bounds t (one per row for L1,
  // a single t for L-infinity).
  opt::LpBuilder builder;
  std::vector<int> coef_vars(index.size());
  for (std::size_t c = 0; c < index.size(); ++c) {
    coef_vars[c] = builder.AddFreeVariable(0.0);
  }
  std::vector<int> bound_vars;
  if (norm == LpNorm::kL1) {
    bound_vars.resize(r.rows());
    for (std::size_t row = 0; row < r.rows(); ++row) {
      bound_vars[row] = builder.AddVariable(1.0);
    }
  } else {
    bound_vars.assign(r.rows(), builder.AddVariable(1.0));
  }

  for (std::size_t row = 0; row < r.rows(); ++row) {
    std::vector<int> handles;
    std::vector<double> coeffs;
    for (std::size_t c = 0; c < index.size(); ++c) {
      const double v = r(row, c);
      if (v == 0.0) continue;
      handles.push_back(coef_vars[c]);
      coeffs.push_back(v);
    }
    // (R f)_row - t <= y_row   and   (R f)_row + t >= y_row.
    handles.push_back(bound_vars[row]);
    coeffs.push_back(-1.0);
    builder.AddConstraint(handles, coeffs, opt::ConstraintSense::kLessEqual,
                          target[row]);
    coeffs.back() = 1.0;
    builder.AddConstraint(handles, coeffs, opt::ConstraintSense::kGreaterEqual,
                          target[row]);
  }
  DPCUBE_ASSIGN_OR_RETURN(linalg::Vector solution, builder.Solve());

  std::vector<marginal::MarginalTable> out;
  out.reserve(workload.num_marginals());
  for (std::size_t i = 0; i < workload.num_marginals(); ++i) {
    out.push_back(marginal::MarginalFromFourier(
        workload.mask(i), workload.d(), [&](bits::Mask beta) {
          return solution[coef_vars[index.IndexOf(beta)]];
        }));
  }
  return out;
}

Result<std::vector<double>> ConsistentWitness(
    const marginal::Workload& workload,
    const std::vector<marginal::MarginalTable>& noisy,
    const linalg::Vector& cell_variances, bool clamp_nonnegative,
    bool round_to_integer) {
  if (workload.d() > 20) {
    return Status::InvalidArgument("domain too large for an explicit witness");
  }
  marginal::FourierIndex index(workload);
  DPCUBE_ASSIGN_OR_RETURN(
      linalg::Vector coeffs,
      FitFourierCoefficients(workload, index, noisy, cell_variances));
  std::vector<double> full(std::size_t{1} << workload.d(), 0.0);
  for (std::size_t c = 0; c < index.size(); ++c) {
    full[index.mask(c)] = coeffs[c];
  }
  // The WHT is an involution, so applying it to the coefficient vector
  // reconstructs the witness table.
  transform::WalshHadamard(&full);
  if (clamp_nonnegative) {
    for (double& v : full) v = std::max(0.0, v);
  }
  if (round_to_integer) {
    for (double& v : full) v = std::nearbyint(v);
  }
  return full;
}

}  // namespace recovery
}  // namespace dpcube
