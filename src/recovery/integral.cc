// Copyright 2026 The dpcube Authors.

#include "recovery/integral.h"

#include <cmath>

#include "common/bits.h"
#include "dp/geometric.h"

namespace dpcube {
namespace recovery {

Result<IntegralRelease> IntegralBaseCountRelease(
    const marginal::Workload& workload, const data::SparseCounts& data,
    const dp::PrivacyParams& params, Rng* rng,
    const IntegralReleaseOptions& options) {
  DPCUBE_RETURN_NOT_OK(params.Validate());
  if (!params.IsPureDp()) {
    return Status::InvalidArgument(
        "integral release: the geometric mechanism is pure eps-DP only");
  }
  const int d = workload.d();
  if (data.d() != d) {
    return Status::InvalidArgument(
        "integral release: workload and data dimensionality differ");
  }
  if (d > 20) {
    return Status::InvalidArgument(
        "integral release materialises 2^d cells; requires d <= 20");
  }
  // Base counts form a single budget group with column norm 1, so the
  // whole (neighbour-model-adjusted) budget goes to the per-cell draws.
  const double eps_cell = params.epsilon / params.SensitivityFactor();

  const std::uint64_t n = std::uint64_t{1} << d;
  IntegralRelease out;
  out.per_cell_variance = dp::GeometricVariance(eps_cell);
  out.table.assign(n, 0);
  for (const auto& entry : data.entries()) {
    // True counts are tuple multiplicities: integral by construction.
    out.table[entry.cell] = static_cast<std::int64_t>(
        std::llround(entry.count));
  }
  for (std::uint64_t c = 0; c < n; ++c) {
    out.table[c] += dp::SampleGeometricNoise(eps_cell, rng);
    if (options.clamp_nonnegative && out.table[c] < 0) out.table[c] = 0;
  }
  // Aggregate the one fitted table into every workload marginal: the
  // answers are consistent because they share the witness `table`.
  out.marginals.reserve(workload.num_marginals());
  for (std::size_t i = 0; i < workload.num_marginals(); ++i) {
    const bits::Mask alpha = workload.mask(i);
    marginal::MarginalTable m(alpha, d);
    for (std::uint64_t c = 0; c < n; ++c) {
      m.value(bits::CompressFromMask(c, alpha)) +=
          static_cast<double>(out.table[c]);
    }
    out.marginals.push_back(std::move(m));
  }
  return out;
}

}  // namespace recovery
}  // namespace dpcube
