// Copyright 2026 The dpcube Authors.

#include "recovery/nonnegative.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "recovery/consistency.h"

namespace dpcube {
namespace recovery {
namespace {

// Aggregates x to the marginal over alpha (dense-domain version of
// marginal::ComputeMarginal, reused in the inner loop without
// re-allocating tables).
void Aggregate(const std::vector<double>& x, bits::Mask alpha,
               std::vector<double>* out) {
  std::fill(out->begin(), out->end(), 0.0);
  for (std::size_t cell = 0; cell < x.size(); ++cell) {
    (*out)[bits::CompressFromMask(cell, alpha)] += x[cell];
  }
}

}  // namespace

Result<NonNegativeResult> FitNonNegativeTable(
    const marginal::Workload& workload,
    const std::vector<marginal::MarginalTable>& noisy,
    const linalg::Vector& cell_variances, const NonNegativeOptions& options) {
  if (workload.d() > 20) {
    return Status::InvalidArgument(
        "FitNonNegativeTable: domain too large to materialise");
  }
  if (noisy.size() != workload.num_marginals() ||
      cell_variances.size() != noisy.size()) {
    return Status::InvalidArgument("FitNonNegativeTable: size mismatch");
  }
  for (double v : cell_variances) {
    if (!(v > 0.0)) {
      return Status::InvalidArgument("cell variances must be positive");
    }
  }

  const std::size_t n = std::size_t{1} << workload.d();
  // Warm start from the (unconstrained) consistent witness, clamped.
  DPCUBE_ASSIGN_OR_RETURN(
      std::vector<double> x,
      ConsistentWitness(workload, noisy, cell_variances,
                        /*clamp_nonnegative=*/true,
                        /*round_to_integer=*/false));

  // Lipschitz constant of the gradient: L = 2 sum_i w_i 2^{d - k_i}.
  double lipschitz = 0.0;
  for (std::size_t i = 0; i < noisy.size(); ++i) {
    lipschitz += 2.0 / cell_variances[i] *
                 std::pow(2.0, workload.d() - noisy[i].k());
  }
  const double step = 1.0 / lipschitz;

  std::vector<std::vector<double>> residuals(noisy.size());
  std::vector<double> gradient(n);
  double objective = 0.0;
  double previous = std::numeric_limits<double>::infinity();
  int iterations = 0;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Residuals r_i = C^{alpha_i} x - y~_i and the objective.
    objective = 0.0;
    for (std::size_t i = 0; i < noisy.size(); ++i) {
      residuals[i].resize(noisy[i].num_cells());
      Aggregate(x, noisy[i].alpha(), &residuals[i]);
      const double w = 1.0 / cell_variances[i];
      for (std::size_t g = 0; g < residuals[i].size(); ++g) {
        residuals[i][g] -= noisy[i].value(g);
        objective += w * residuals[i][g] * residuals[i][g];
      }
    }
    ++iterations;
    if (previous - objective <= options.tolerance * std::max(1.0, previous)) {
      break;
    }
    previous = objective;

    // Gradient: 2 sum_i w_i Q_i^T r_i — scatter each residual cell back
    // to its base cells.
    std::fill(gradient.begin(), gradient.end(), 0.0);
    for (std::size_t i = 0; i < noisy.size(); ++i) {
      const double w2 = 2.0 / cell_variances[i];
      const bits::Mask alpha = noisy[i].alpha();
      for (std::size_t cell = 0; cell < n; ++cell) {
        gradient[cell] +=
            w2 * residuals[i][bits::CompressFromMask(cell, alpha)];
      }
    }
    // Projected gradient step.
    for (std::size_t cell = 0; cell < n; ++cell) {
      x[cell] = std::max(0.0, x[cell] - step * gradient[cell]);
    }
  }

  if (options.round_to_integer) {
    for (double& v : x) v = std::nearbyint(v);
  }

  NonNegativeResult result;
  result.objective = objective;
  result.iterations = iterations;
  result.marginals.reserve(workload.num_marginals());
  std::vector<double> cells;
  for (std::size_t i = 0; i < workload.num_marginals(); ++i) {
    marginal::MarginalTable table(workload.mask(i), workload.d());
    cells.resize(table.num_cells());
    Aggregate(x, workload.mask(i), &cells);
    for (std::size_t g = 0; g < cells.size(); ++g) table.value(g) = cells[g];
    result.marginals.push_back(std::move(table));
  }
  result.table = std::move(x);
  return result;
}

}  // namespace recovery
}  // namespace dpcube
