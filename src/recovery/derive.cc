// Copyright 2026 The dpcube Authors.

#include "recovery/derive.h"

#include <cmath>
#include <utility>

#include "recovery/consistency.h"

namespace dpcube {
namespace recovery {

Result<DerivedCube> DerivedCube::Fit(
    const marginal::Workload& workload,
    const std::vector<marginal::MarginalTable>& noisy,
    const linalg::Vector& cell_variances) {
  if (noisy.size() != workload.num_marginals() ||
      cell_variances.size() != workload.num_marginals()) {
    return Status::InvalidArgument(
        "DerivedCube: one table and one variance per workload marginal");
  }
  marginal::FourierIndex index(workload);
  DPCUBE_ASSIGN_OR_RETURN(
      linalg::Vector coefficients,
      FitFourierCoefficients(workload, index, noisy, cell_variances));

  // GLS variance of each coefficient: the inverse-variance-weighted
  // average over the containing marginals has
  //   Var(theta_hat_beta) = 1 / sum_{i: beta ⪯ alpha_i} 2^{d-k_i}/var_i.
  const int d = workload.d();
  linalg::Vector variances(index.size(), 0.0);
  for (std::size_t j = 0; j < index.size(); ++j) {
    const bits::Mask beta = index.mask(j);
    double precision = 0.0;
    for (std::size_t i = 0; i < workload.num_marginals(); ++i) {
      const bits::Mask alpha = workload.mask(i);
      if (!bits::IsSubset(beta, alpha)) continue;
      if (!(cell_variances[i] > 0.0)) {
        return Status::InvalidArgument(
            "DerivedCube: cell variances must be positive");
      }
      const int k_i = bits::Popcount(alpha);
      precision += std::ldexp(1.0, d - k_i) / cell_variances[i];
    }
    variances[j] = 1.0 / precision;
  }
  return DerivedCube(std::move(index), std::move(coefficients),
                     std::move(variances));
}

bool DerivedCube::CanDerive(bits::Mask beta) const {
  // F is downward closed (it is a union of downward-closed sets), so
  // membership of beta itself implies membership of all its submasks.
  return index_.Contains(beta);
}

Result<marginal::MarginalTable> DerivedCube::Derive(bits::Mask beta) const {
  if (!CanDerive(beta)) {
    return Status::FailedPrecondition(
        "DerivedCube: marginal not covered by the released workload");
  }
  return marginal::MarginalFromFourier(
      beta, index_.d(),
      [this](bits::Mask eta) { return coefficients_[index_.IndexOf(eta)]; });
}

Result<double> DerivedCube::DerivedCellVariance(bits::Mask beta) const {
  if (!CanDerive(beta)) {
    return Status::FailedPrecondition(
        "DerivedCube: marginal not covered by the released workload");
  }
  const int k = bits::Popcount(beta);
  double sum = 0.0;
  for (bits::SubmaskIterator it(beta); !it.done(); it.Next()) {
    sum += variances_[index_.IndexOf(it.mask())];
  }
  return std::ldexp(sum, index_.d() - 2 * k);
}

Result<double> DerivedCube::Coefficient(bits::Mask beta) const {
  if (!index_.Contains(beta)) {
    return Status::FailedPrecondition("DerivedCube: coefficient not fitted");
  }
  return coefficients_[index_.IndexOf(beta)];
}

Result<double> DerivedCube::CoefficientVariance(bits::Mask beta) const {
  if (!index_.Contains(beta)) {
    return Status::FailedPrecondition("DerivedCube: coefficient not fitted");
  }
  return variances_[index_.IndexOf(beta)];
}

}  // namespace recovery
}  // namespace dpcube
