// Copyright 2026 The dpcube Authors.
//
// Dense optimal recovery (equation (7), Section 3.2): given the query
// matrix Q, a strategy S with rank N, and the per-row noise variances of
// the measurements z = S x + nu, the generalized-least-squares recovery
//   R = Q (S^T Sigma^{-1} S)^{-1} S^T Sigma^{-1}
// minimises every query's variance among linear unbiased recoveries and
// produces consistent answers (y = Q x_hat). This is the exact
// small-domain path used by tests, the worked example, and the ablation
// benches; recovery/consistency.h is the scalable equivalent for marginal
// workloads.

#ifndef DPCUBE_RECOVERY_GLS_RECOVERY_H_
#define DPCUBE_RECOVERY_GLS_RECOVERY_H_

#include "common/status.h"
#include "linalg/matrix.h"

namespace dpcube {
namespace recovery {

/// The optimal recovery matrix R of equation (7). `variances` holds
/// Var(nu_i) per strategy row (strictly positive). Requires rank(S) = N.
Result<linalg::Matrix> OptimalRecoveryMatrix(const linalg::Matrix& q,
                                             const linalg::Matrix& s,
                                             const linalg::Vector& variances);

/// Equation (7) without the rank(S) = N requirement, via the Jacobi-SVD
/// pseudo-inverse (the rank(S) < N treatment Section 3.2 inherits from
/// Li et al.). An unbiased recovery exists iff every row of Q lies in the
/// row space of S; when it does not, the call fails with
/// FailedPrecondition and names the worst-covered query row. Costs an SVD
/// of an m x N matrix, so this is a small-domain (tests / worked example /
/// matrix-mechanism search) path like OptimalRecoveryMatrix.
Result<linalg::Matrix> OptimalRecoveryMatrixAnyRank(
    const linalg::Matrix& q, const linalg::Matrix& s,
    const linalg::Vector& variances, double tol = 1e-8);

/// Per-query output variances Var(y_j) = sum_i R_ji^2 Var(nu_i).
linalg::Vector RecoveryVariances(const linalg::Matrix& r,
                                 const linalg::Vector& variances);

/// Total weighted variance a^T Var(y); pass empty `a` for all-ones.
double TotalRecoveryVariance(const linalg::Matrix& r,
                             const linalg::Vector& variances,
                             const linalg::Vector& a = {});

/// Verifies Q = R S within tolerance (a recovery must satisfy this
/// exactly for unbiasedness).
Status VerifyRecoveryFactorisation(const linalg::Matrix& q,
                                   const linalg::Matrix& r,
                                   const linalg::Matrix& s,
                                   double tol = 1e-6);

}  // namespace recovery
}  // namespace dpcube

#endif  // DPCUBE_RECOVERY_GLS_RECOVERY_H_
