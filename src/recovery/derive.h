// Copyright 2026 The dpcube Authors.
//
// Derived cuboids at zero extra privacy cost. Differential privacy is
// closed under post-processing, and the Fourier coefficients fitted by
// the consistency step (Section 4.3) determine every marginal whose
// coefficient support they cover — so releasing, say, the k-way cuboids
// makes the ENTIRE lower datacube queryable, consistently, for free.
// This realises the paper's framing that "the set of all possible
// marginals for a relation is captured by the data cube": one budgeted
// release of a generating workload, then arbitrary derived slices.
//
// DerivedCube fits the coefficients (and their GLS variances) once from
// a noisy release; Derive(beta) reconstructs any covered marginal via
// Theorem 4.1(2) in O(k 2^k), and DerivedCellVariance predicts its
// accuracy analytically.

#ifndef DPCUBE_RECOVERY_DERIVE_H_
#define DPCUBE_RECOVERY_DERIVE_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"
#include "marginal/fourier_index.h"
#include "marginal/marginal_table.h"
#include "marginal/workload.h"

namespace dpcube {
namespace recovery {

class DerivedCube {
 public:
  /// Fits the Fourier coefficients of the released workload by the
  /// weighted-L2 consistency projection. `cell_variances`: one strictly
  /// positive entry per marginal (as in ProjectConsistentL2).
  ///
  /// The derived VALUES are valid post-processing of any release. The
  /// variance PREDICTIONS additionally assume the noise is independent
  /// across released marginals — true for the strategies that measure
  /// each marginal separately (I, Q/Q+, C/C+), but not for the Fourier
  /// strategy, whose marginals share noisy coefficients; there the GLS
  /// fit recovers those coefficients without pooling gain, and the true
  /// derived variance is larger by the number of marginals containing
  /// each coefficient (use the strategy's own coefficient variances for
  /// exact numbers in that case).
  static Result<DerivedCube> Fit(
      const marginal::Workload& workload,
      const std::vector<marginal::MarginalTable>& noisy,
      const linalg::Vector& cell_variances);

  /// True iff every coefficient of C^beta is covered by the release,
  /// i.e. beta is dominated by some released marginal.
  bool CanDerive(bits::Mask beta) const;

  /// Reconstructs the marginal over `beta` from the fitted coefficients.
  /// Fails with FailedPrecondition if beta is not derivable.
  Result<marginal::MarginalTable> Derive(bits::Mask beta) const;

  /// Predicted noise variance of every cell of the derived marginal:
  /// 2^{d-2k} * sum_{eta ⪯ beta} Var(theta_eta).
  Result<double> DerivedCellVariance(bits::Mask beta) const;

  int d() const { return index_.d(); }

  /// The fitted coefficient for a covered mask (exposed for diagnostics).
  Result<double> Coefficient(bits::Mask beta) const;

  /// Var(theta_hat_beta) for a covered mask. Lets callers propagate the
  /// coefficient-level uncertainty into linear functionals of derived
  /// cells (e.g. range sums), where the cells' shared coefficients make
  /// the per-cell variances alone insufficient.
  Result<double> CoefficientVariance(bits::Mask beta) const;

 private:
  DerivedCube(marginal::FourierIndex index, linalg::Vector coefficients,
              linalg::Vector variances)
      : index_(std::move(index)),
        coefficients_(std::move(coefficients)),
        variances_(std::move(variances)) {}

  marginal::FourierIndex index_;
  linalg::Vector coefficients_;  ///< Fitted theta_hat, index order.
  linalg::Vector variances_;     ///< Var(theta_hat), index order.
};

}  // namespace recovery
}  // namespace dpcube

#endif  // DPCUBE_RECOVERY_DERIVE_H_
