// Copyright 2026 The dpcube Authors.
//
// Non-negative consistent recovery — the paper's Section 6 remark: it is
// "sometimes required that the query answers correspond to a data set in
// which all counts are integral and non-negative", which the paper shows
// for materialised base counts and leaves open otherwise. This module
// closes that gap for moderate domains with a projected-gradient solver:
//
//   minimize_x  sum_i w_i || C^{alpha_i} x - y~_i ||_2^2   s.t.  x >= 0,
//
// where w_i = 1 / cell variance of marginal i. The objective's gradient
// is assembled from marginal aggregation/scatter operations, never a
// dense Q, and the Lipschitz constant L = 2 sum_i w_i 2^{d - k_i} gives a
// safe 1/L step size. The fitted table is returned along with the
// workload answers it induces (consistent and non-negative by
// construction; optionally rounded to integers).

#ifndef DPCUBE_RECOVERY_NONNEGATIVE_H_
#define DPCUBE_RECOVERY_NONNEGATIVE_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"
#include "marginal/marginal_table.h"
#include "marginal/workload.h"

namespace dpcube {
namespace recovery {

struct NonNegativeOptions {
  int max_iterations = 500;
  double tolerance = 1e-7;     ///< Relative objective-decrease stop.
  bool round_to_integer = false;
};

struct NonNegativeResult {
  /// The fitted non-negative table x (size 2^d).
  std::vector<double> table;
  /// Workload answers C^{alpha_i} x, in workload order.
  std::vector<marginal::MarginalTable> marginals;
  /// Final weighted least-squares objective.
  double objective = 0.0;
  int iterations = 0;
};

/// Projected-gradient non-negative recovery. Requires d <= 20 (the table
/// is materialised). `cell_variances`: one positive entry per marginal.
Result<NonNegativeResult> FitNonNegativeTable(
    const marginal::Workload& workload,
    const std::vector<marginal::MarginalTable>& noisy,
    const linalg::Vector& cell_variances,
    const NonNegativeOptions& options = {});

}  // namespace recovery
}  // namespace dpcube

#endif  // DPCUBE_RECOVERY_NONNEGATIVE_H_
