// Copyright 2026 The dpcube Authors.
//
// Consistency and optimal recovery for marginal releases via Fourier
// coefficients (Sections 3.2, 3.3 and 4.3).
//
// Given noisy marginals y~ with per-cell variances, the weighted
// least-squares projection onto the consistent set
//   { y : y = R f for some coefficient vector f }
// decomposes coefficient-by-coefficient, because the Fourier rows within
// a marginal are orthogonal: RtWR is diagonal and the optimal coefficient
// is the inverse-variance-weighted average of each containing marginal's
// implied estimate
//   theta_hat(beta | marginal i) = 2^{-d/2} sum_gamma (-1)^{<beta,gamma>}
//                                  y~_{i,gamma},
// with weight w_i 2^{d-k_i} (w_i = 1 / cell variance of marginal i).
// Reconstructing the marginals from theta_hat yields simultaneously
//  * a consistent release (witness x_c = inverse WHT of the padded
//    coefficients), and
//  * the minimum-variance (GLS) recovery of Step 3 for marginal
//    strategies, computed in O(sum_i k_i 2^{k_i}) instead of an
//    N-variable least squares — the paper's main efficiency point.
//
// For p = 1 / p = infinity, ProjectConsistentLp solves the corresponding
// LP over the coefficients (small: |F| variables), as in Section 4.3.

#ifndef DPCUBE_RECOVERY_CONSISTENCY_H_
#define DPCUBE_RECOVERY_CONSISTENCY_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"
#include "marginal/fourier_index.h"
#include "marginal/marginal_table.h"
#include "marginal/workload.h"

namespace dpcube {
namespace recovery {

/// Weighted-L2 consistency projection / GLS recovery. `cell_variances`
/// has one strictly positive entry per marginal (every cell of marginal i
/// carries variance cell_variances[i]); pass all-ones for the unweighted
/// projection. Returns the consistent marginals in workload order.
Result<std::vector<marginal::MarginalTable>> ProjectConsistentL2(
    const marginal::Workload& workload,
    const std::vector<marginal::MarginalTable>& noisy,
    const linalg::Vector& cell_variances);

/// The fitted Fourier coefficients of the projection (same computation as
/// ProjectConsistentL2, exposed for callers that want the coefficient
/// vector, e.g. to materialise a synthetic consistent table).
Result<linalg::Vector> FitFourierCoefficients(
    const marginal::Workload& workload, const marginal::FourierIndex& index,
    const std::vector<marginal::MarginalTable>& noisy,
    const linalg::Vector& cell_variances);

/// Lp-norm consistency for p = 1 or p = infinity via LP over the Fourier
/// coefficients (Section 4.3). Exact but slower than the L2 projection;
/// intended for small workloads.
enum class LpNorm { kL1, kLInf };
Result<std::vector<marginal::MarginalTable>> ProjectConsistentLp(
    const marginal::Workload& workload,
    const std::vector<marginal::MarginalTable>& noisy, LpNorm norm);

/// Materialises the consistent witness x_c (inverse WHT of the fitted
/// coefficients, zero-padded) over a small domain. Optionally clamps
/// negatives to zero and rounds to integers (the paper's Section 6
/// remarks on integral non-negative outputs).
Result<std::vector<double>> ConsistentWitness(
    const marginal::Workload& workload,
    const std::vector<marginal::MarginalTable>& noisy,
    const linalg::Vector& cell_variances, bool clamp_nonnegative = false,
    bool round_to_integer = false);

}  // namespace recovery
}  // namespace dpcube

#endif  // DPCUBE_RECOVERY_CONSISTENCY_H_
