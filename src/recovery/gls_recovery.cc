// Copyright 2026 The dpcube Authors.

#include "recovery/gls_recovery.h"

#include <cmath>

#include "linalg/least_squares.h"

namespace dpcube {
namespace recovery {

Result<linalg::Matrix> OptimalRecoveryMatrix(const linalg::Matrix& q,
                                             const linalg::Matrix& s,
                                             const linalg::Vector& variances) {
  if (q.cols() != s.cols()) {
    return Status::InvalidArgument("Q and S must share the domain dimension");
  }
  if (variances.size() != s.rows()) {
    return Status::InvalidArgument("one variance per strategy row required");
  }
  // G = (S^T Sigma^{-1} S)^{-1} S^T Sigma^{-1}; R = Q G.
  DPCUBE_ASSIGN_OR_RETURN(linalg::Matrix g,
                          linalg::GlsEstimatorMatrix(s, variances));
  return q.Multiply(g);
}

Result<linalg::Matrix> OptimalRecoveryMatrixAnyRank(
    const linalg::Matrix& q, const linalg::Matrix& s,
    const linalg::Vector& variances, double tol) {
  if (q.cols() != s.cols()) {
    return Status::InvalidArgument("Q and S must share the domain dimension");
  }
  if (variances.size() != s.rows()) {
    return Status::InvalidArgument("one variance per strategy row required");
  }
  DPCUBE_ASSIGN_OR_RETURN(
      linalg::Matrix g, linalg::GlsEstimatorMatrixAnyRank(s, variances, tol));
  linalg::Matrix r = q.Multiply(g);
  // R S = Q * Proj_rowspace(S); unbiasedness requires this to reproduce Q,
  // i.e. every query row must lie in S's row space.
  const linalg::Matrix rs = r.Multiply(s);
  double worst = 0.0;
  std::size_t worst_row = 0;
  for (std::size_t i = 0; i < q.rows(); ++i) {
    double err = 0.0;
    double mag = 0.0;
    for (std::size_t j = 0; j < q.cols(); ++j) {
      err = std::max(err, std::fabs(rs(i, j) - q(i, j)));
      mag = std::max(mag, std::fabs(q(i, j)));
    }
    const double rel = err / std::max(mag, 1.0);
    if (rel > worst) {
      worst = rel;
      worst_row = i;
    }
  }
  if (worst > 1e-6) {
    return Status::FailedPrecondition(
        "query row " + std::to_string(worst_row) +
        " is outside the strategy's row space (relative residual " +
        std::to_string(worst) + "); no unbiased recovery exists");
  }
  return r;
}

linalg::Vector RecoveryVariances(const linalg::Matrix& r,
                                 const linalg::Vector& variances) {
  linalg::Vector out(r.rows(), 0.0);
  for (std::size_t j = 0; j < r.rows(); ++j) {
    const double* row = r.RowData(j);
    double sum = 0.0;
    for (std::size_t i = 0; i < r.cols(); ++i) {
      sum += row[i] * row[i] * variances[i];
    }
    out[j] = sum;
  }
  return out;
}

double TotalRecoveryVariance(const linalg::Matrix& r,
                             const linalg::Vector& variances,
                             const linalg::Vector& a) {
  const linalg::Vector per_query = RecoveryVariances(r, variances);
  double total = 0.0;
  for (std::size_t j = 0; j < per_query.size(); ++j) {
    total += (a.empty() ? 1.0 : a[j]) * per_query[j];
  }
  return total;
}

Status VerifyRecoveryFactorisation(const linalg::Matrix& q,
                                   const linalg::Matrix& r,
                                   const linalg::Matrix& s, double tol) {
  const linalg::Matrix rs = r.Multiply(s);
  if (!rs.ApproxEquals(q, tol)) {
    return Status::FailedPrecondition("R * S does not reproduce Q");
  }
  return Status::OK();
}

}  // namespace recovery
}  // namespace dpcube
