// Copyright 2026 The dpcube Authors.
//
// Exactly integral, non-negative, consistent datacube release — the
// Section 6 remark made concrete. The base-count strategy (S = I)
// materialises a noisy table; using the geometric mechanism instead of
// Laplace noise keeps every cell integral, clamping at zero keeps it
// non-negative, and aggregating the one fitted table makes every released
// marginal consistent by construction (Definition 2.3 with x_c = the
// clamped table). No post-hoc rounding or projection is needed, which is
// precisely the property the paper notes holds "when the method actually
// materializes a noisy set of base counts".
//
// The table is materialised densely, so this path requires d <= 20 (the
// same limit as recovery/nonnegative.h); the Laplace-based strategies in
// strategy/ remain the scalable route when integrality is not required.

#ifndef DPCUBE_RECOVERY_INTEGRAL_H_
#define DPCUBE_RECOVERY_INTEGRAL_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/contingency_table.h"
#include "dp/privacy.h"
#include "marginal/marginal_table.h"
#include "marginal/workload.h"

namespace dpcube {
namespace recovery {

struct IntegralReleaseOptions {
  /// Clamp negative noisy cells to zero. The price of validity is a
  /// positive bias of E[max(Z,0)] = alpha/(1-alpha^2) per empty cell —
  /// negligible on dense tables, but on a sparse table it accumulates
  /// over all ~2^d empty cells and can dominate marginal totals (e.g.
  /// 2^16 cells at eps_cell = 0.5 add ~60k spurious tuples). For wide
  /// sparse domains prefer clamp_nonnegative = false (unbiased, integral,
  /// consistent, but possibly negative) or the real-valued
  /// FitNonNegativeTable, whose least-squares objective re-balances mass
  /// instead of truncating it.
  bool clamp_nonnegative = true;
};

struct IntegralRelease {
  /// The noisy (clamped) base-count table, size 2^d. A valid dataset:
  /// integral and (if clamping) non-negative.
  std::vector<std::int64_t> table;
  /// Workload marginals aggregated from `table`, in workload order —
  /// integral, consistent, and non-negative under clamping.
  std::vector<marginal::MarginalTable> marginals;
  /// Pre-clamp noise variance of one base cell (the geometric variance at
  /// the per-cell budget); a marginal cell of order k aggregates
  /// 2^{d-k} base cells, so its pre-clamp variance is 2^{d-k} times this.
  double per_cell_variance = 0.0;
};

/// Releases the workload via geometric-noised base counts. Pure eps-DP
/// only (the geometric mechanism has no (eps, delta) analogue here);
/// fails with InvalidArgument if params.delta != 0 or d > 20.
Result<IntegralRelease> IntegralBaseCountRelease(
    const marginal::Workload& workload, const data::SparseCounts& data,
    const dp::PrivacyParams& params, Rng* rng,
    const IntegralReleaseOptions& options = {});

}  // namespace recovery
}  // namespace dpcube

#endif  // DPCUBE_RECOVERY_INTEGRAL_H_
