// Copyright 2026 The dpcube Authors.
//
// Algebra and analysis over marginal tables: aggregation to sub-marginals,
// elementwise arithmetic, distances, and probability-estimation helpers
// used by downstream consumers of a private release (the paper motivates
// low-order marginals precisely for "building efficient classifiers" and
// visualising dependencies).

#ifndef DPCUBE_MARGINAL_MARGINAL_OPS_H_
#define DPCUBE_MARGINAL_MARGINAL_OPS_H_

#include "common/status.h"
#include "marginal/marginal_table.h"

namespace dpcube {
namespace marginal {

/// Aggregates a marginal down to a sub-marginal: beta must be dominated by
/// table.alpha(). Each output cell sums the input cells agreeing on beta.
Result<MarginalTable> AggregateTo(const MarginalTable& table,
                                  bits::Mask beta);

/// Elementwise a + scale * b; the tables must share alpha and d.
Result<MarginalTable> AddScaled(const MarginalTable& a,
                                const MarginalTable& b, double scale);

/// L1 distance between two aligned marginals.
Result<double> L1Distance(const MarginalTable& a, const MarginalTable& b);

/// Total variation distance between the normalised distributions of two
/// aligned marginals (0 if either has non-positive total mass).
Result<double> TotalVariationDistance(const MarginalTable& a,
                                      const MarginalTable& b);

/// Converts a (possibly noisy) marginal into a probability distribution:
/// clamps negatives to zero, then normalises; adds `smoothing` pseudo-count
/// per cell first (Laplace smoothing). Returns uniform if all mass
/// vanishes.
MarginalTable ToDistribution(const MarginalTable& table,
                             double smoothing = 0.0);

/// Conditional probability P(target-bits = t | given-bits = g) estimated
/// from a marginal whose alpha covers both masks. `target` and `given`
/// must be disjoint submasks of table.alpha(); `t` ⪯ target, `g` ⪯ given.
/// Uses clamped counts with `smoothing` pseudo-counts.
Result<double> ConditionalProbability(const MarginalTable& table,
                                      bits::Mask target, bits::Mask t,
                                      bits::Mask given, bits::Mask g,
                                      double smoothing = 0.5);

/// G-test style mutual information (in nats) between two disjoint
/// attribute groups within one marginal: I(X; Y) over the normalised
/// table. Useful for dependency exploration on private releases.
Result<double> MutualInformation(const MarginalTable& table, bits::Mask x,
                                 bits::Mask y);

}  // namespace marginal
}  // namespace dpcube

#endif  // DPCUBE_MARGINAL_MARGINAL_OPS_H_
