// Copyright 2026 The dpcube Authors.
//
// Marginal tables C^alpha (Section 4.1). A marginal over the attribute-bit
// mask alpha has 2^||alpha|| cells; cell gamma (gamma ⪯ alpha) holds
//   (C^alpha x)_gamma = sum_{cell : cell AND alpha == gamma} x_cell .
// Cells are stored in "local index" order: local index g in [0, 2^k)
// corresponds to the global mask ExpandIntoMask(g, alpha).

#ifndef DPCUBE_MARGINAL_MARGINAL_TABLE_H_
#define DPCUBE_MARGINAL_MARGINAL_TABLE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/bits.h"
#include "common/status.h"
#include "data/contingency_table.h"

namespace dpcube {
namespace marginal {

/// One marginal table: the mask, the ambient dimensionality d, and the
/// 2^||alpha|| cell values in local-index order.
class MarginalTable {
 public:
  MarginalTable(bits::Mask alpha, int d)
      : alpha_(alpha), d_(d),
        values_(std::size_t{1} << bits::Popcount(alpha), 0.0) {}

  bits::Mask alpha() const { return alpha_; }
  int d() const { return d_; }
  int k() const { return bits::Popcount(alpha_); }
  std::size_t num_cells() const { return values_.size(); }

  double value(std::size_t local) const { return values_[local]; }
  double& value(std::size_t local) { return values_[local]; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }

  /// Global cell mask of local index `local`.
  bits::Mask GlobalCell(std::size_t local) const {
    return bits::ExpandIntoMask(local, alpha_);
  }

  /// Sum of all cells (equals the dataset size for a true marginal).
  double Total() const;

  /// Mean cell value — the denominator of the paper's relative-error metric.
  double MeanCellValue() const;

 private:
  bits::Mask alpha_;
  int d_;
  std::vector<double> values_;
};

/// Exact marginal from a dense contingency table, O(N).
MarginalTable ComputeMarginal(const data::DenseTable& table, bits::Mask alpha);

/// Exact marginal from sparse counts, O(num_occupied).
MarginalTable ComputeMarginal(const data::SparseCounts& counts,
                              bits::Mask alpha);

/// Reconstructs C^alpha x from the Fourier coefficients {f_hat(beta)}
/// for beta ⪯ alpha, via Theorem 4.1(2):
///   (C^alpha x)_gamma = 2^{(d-k)/2} * WHT_k(local coefficients)_gamma ,
/// where WHT_k is the orthonormal 2^k-point Walsh-Hadamard transform.
/// `coefficient(beta)` must return f_hat(beta) for every beta ⪯ alpha.
MarginalTable MarginalFromFourier(
    bits::Mask alpha, int d,
    const std::function<double(bits::Mask)>& coefficient);

}  // namespace marginal
}  // namespace dpcube

#endif  // DPCUBE_MARGINAL_MARGINAL_TABLE_H_
