// Copyright 2026 The dpcube Authors.

#include "marginal/marginal_table.h"

#include <cmath>

#include "transform/walsh_hadamard.h"

namespace dpcube {
namespace marginal {

double MarginalTable::Total() const {
  double total = 0.0;
  for (double v : values_) total += v;
  return total;
}

double MarginalTable::MeanCellValue() const {
  if (values_.empty()) return 0.0;
  return Total() / static_cast<double>(values_.size());
}

MarginalTable ComputeMarginal(const data::DenseTable& table, bits::Mask alpha) {
  MarginalTable out(alpha, table.d());
  for (std::uint64_t cell = 0; cell < table.domain_size(); ++cell) {
    const double v = table.cell(cell);
    if (v == 0.0) continue;
    out.value(bits::CompressFromMask(cell, alpha)) += v;
  }
  return out;
}

MarginalTable ComputeMarginal(const data::SparseCounts& counts,
                              bits::Mask alpha) {
  MarginalTable out(alpha, counts.d());
  for (const auto& entry : counts.entries()) {
    out.value(bits::CompressFromMask(entry.cell, alpha)) += entry.count;
  }
  return out;
}

MarginalTable MarginalFromFourier(
    bits::Mask alpha, int d,
    const std::function<double(bits::Mask)>& coefficient) {
  MarginalTable out(alpha, d);
  const int k = out.k();
  // Collect the 2^k coefficients in local-index order. Local index l of a
  // coefficient mask beta ⪯ alpha is CompressFromMask(beta, alpha); the
  // local WHT sign (-1)^{<local(beta), local(gamma)>} equals the global
  // (-1)^{<beta, gamma>} because both masks live inside alpha.
  std::vector<double> local(out.num_cells());
  for (std::size_t l = 0; l < local.size(); ++l) {
    local[l] = coefficient(bits::ExpandIntoMask(l, alpha));
  }
  transform::WalshHadamard(&local);
  const double scale = std::pow(2.0, 0.5 * (d - k));
  for (std::size_t g = 0; g < local.size(); ++g) {
    out.value(g) = scale * local[g];
  }
  return out;
}

}  // namespace marginal
}  // namespace dpcube
