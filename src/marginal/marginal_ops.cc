// Copyright 2026 The dpcube Authors.

#include "marginal/marginal_ops.h"

#include <algorithm>
#include <cmath>

namespace dpcube {
namespace marginal {
namespace {

Status CheckAligned(const MarginalTable& a, const MarginalTable& b) {
  if (a.alpha() != b.alpha() || a.d() != b.d()) {
    return Status::InvalidArgument("marginals are not aligned");
  }
  return Status::OK();
}

}  // namespace

Result<MarginalTable> AggregateTo(const MarginalTable& table,
                                  bits::Mask beta) {
  if (!bits::IsSubset(beta, table.alpha())) {
    return Status::InvalidArgument(
        "target mask is not dominated by the marginal");
  }
  MarginalTable out(beta, table.d());
  for (std::size_t g = 0; g < table.num_cells(); ++g) {
    out.value(bits::CompressFromMask(table.GlobalCell(g), beta)) +=
        table.value(g);
  }
  return out;
}

Result<MarginalTable> AddScaled(const MarginalTable& a,
                                const MarginalTable& b, double scale) {
  DPCUBE_RETURN_NOT_OK(CheckAligned(a, b));
  MarginalTable out = a;
  for (std::size_t g = 0; g < out.num_cells(); ++g) {
    out.value(g) += scale * b.value(g);
  }
  return out;
}

Result<double> L1Distance(const MarginalTable& a, const MarginalTable& b) {
  DPCUBE_RETURN_NOT_OK(CheckAligned(a, b));
  double total = 0.0;
  for (std::size_t g = 0; g < a.num_cells(); ++g) {
    total += std::fabs(a.value(g) - b.value(g));
  }
  return total;
}

Result<double> TotalVariationDistance(const MarginalTable& a,
                                      const MarginalTable& b) {
  DPCUBE_RETURN_NOT_OK(CheckAligned(a, b));
  const MarginalTable pa = ToDistribution(a);
  const MarginalTable pb = ToDistribution(b);
  double total = 0.0;
  for (std::size_t g = 0; g < pa.num_cells(); ++g) {
    total += std::fabs(pa.value(g) - pb.value(g));
  }
  return 0.5 * total;
}

MarginalTable ToDistribution(const MarginalTable& table, double smoothing) {
  MarginalTable out = table;
  double total = 0.0;
  for (std::size_t g = 0; g < out.num_cells(); ++g) {
    out.value(g) = std::max(0.0, out.value(g)) + smoothing;
    total += out.value(g);
  }
  if (total <= 0.0) {
    const double uniform = 1.0 / static_cast<double>(out.num_cells());
    for (std::size_t g = 0; g < out.num_cells(); ++g) out.value(g) = uniform;
    return out;
  }
  for (std::size_t g = 0; g < out.num_cells(); ++g) out.value(g) /= total;
  return out;
}

Result<double> ConditionalProbability(const MarginalTable& table,
                                      bits::Mask target, bits::Mask t,
                                      bits::Mask given, bits::Mask g,
                                      double smoothing) {
  if (!bits::IsSubset(target | given, table.alpha()) ||
      (target & given) != 0) {
    return Status::InvalidArgument(
        "target/given must be disjoint submasks of the marginal");
  }
  if (!bits::IsSubset(t, target) || !bits::IsSubset(g, given)) {
    return Status::InvalidArgument("values must lie within their masks");
  }
  // Sum clamped counts matching (t, g) and matching g alone.
  double joint = 0.0;
  double conditioning = 0.0;
  for (std::size_t cell = 0; cell < table.num_cells(); ++cell) {
    const bits::Mask global = table.GlobalCell(cell);
    if ((global & given) != g) continue;
    const double count = std::max(0.0, table.value(cell));
    conditioning += count;
    if ((global & target) == t) joint += count;
  }
  const double target_cells = std::pow(2.0, bits::Popcount(target));
  return (joint + smoothing) / (conditioning + smoothing * target_cells);
}

Result<double> MutualInformation(const MarginalTable& table, bits::Mask x,
                                 bits::Mask y) {
  if (!bits::IsSubset(x | y, table.alpha()) || (x & y) != 0) {
    return Status::InvalidArgument(
        "x/y must be disjoint submasks of the marginal");
  }
  // Work from the normalised joint over (x, y).
  DPCUBE_ASSIGN_OR_RETURN(MarginalTable joint_counts,
                          AggregateTo(table, x | y));
  const MarginalTable joint = ToDistribution(joint_counts);
  DPCUBE_ASSIGN_OR_RETURN(MarginalTable px_counts, AggregateTo(joint, x));
  DPCUBE_ASSIGN_OR_RETURN(MarginalTable py_counts, AggregateTo(joint, y));
  double mi = 0.0;
  for (std::size_t cell = 0; cell < joint.num_cells(); ++cell) {
    const double pxy = joint.value(cell);
    if (pxy <= 0.0) continue;
    const bits::Mask global = joint.GlobalCell(cell);
    const double px =
        px_counts.value(bits::CompressFromMask(global, x));
    const double py =
        py_counts.value(bits::CompressFromMask(global, y));
    mi += pxy * std::log(pxy / (px * py));
  }
  return std::max(0.0, mi);
}

}  // namespace marginal
}  // namespace dpcube
