// Copyright 2026 The dpcube Authors.
//
// Indexing of the Fourier coefficients F = union_i {beta ⪯ alpha_i} needed
// by a marginal workload, plus the Fourier recovery matrix R of Section 4.3
// with entries R_{(i,gamma), beta} = (C^{alpha_i} f^beta)_gamma =
// (-1)^{<beta, gamma>} 2^{d/2 - ||alpha_i||} for beta ⪯ alpha_i (else 0).

#ifndef DPCUBE_MARGINAL_FOURIER_INDEX_H_
#define DPCUBE_MARGINAL_FOURIER_INDEX_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/bits.h"
#include "linalg/matrix.h"
#include "marginal/query_matrix.h"
#include "marginal/workload.h"

namespace dpcube {
namespace marginal {

/// Bidirectional map between coefficient masks in F and dense indices.
class FourierIndex {
 public:
  explicit FourierIndex(const Workload& workload);

  std::size_t size() const { return masks_.size(); }
  bits::Mask mask(std::size_t index) const { return masks_[index]; }
  const std::vector<bits::Mask>& masks() const { return masks_; }

  /// Dense index of a coefficient mask; asserts membership.
  std::size_t IndexOf(bits::Mask beta) const;

  /// True iff beta is in F.
  bool Contains(bits::Mask beta) const;

  int d() const { return d_; }

 private:
  int d_;
  std::vector<bits::Mask> masks_;
  std::unordered_map<bits::Mask, std::size_t> index_;
};

/// Dense K x |F| Fourier recovery matrix for the workload (K = total cells).
/// Satisfies: stacked marginal answers = R * (coefficients in F order).
linalg::Matrix BuildFourierRecoveryMatrix(const Workload& workload,
                                          const FourierIndex& index);

/// The per-coefficient weights b_beta = 2 * sum_{i : beta ⪯ alpha_i}
/// a_i * 2^{d - ||alpha_i||} of the budgeting objective (Section 3.1) for
/// the Fourier strategy under per-marginal query weights a (empty =
/// all ones). Computed analytically in O(|F| * #marginals) without
/// materialising R.
linalg::Vector FourierBudgetWeights(const Workload& workload,
                                    const FourierIndex& index,
                                    const linalg::Vector& query_weights = {});

}  // namespace marginal
}  // namespace dpcube

#endif  // DPCUBE_MARGINAL_FOURIER_INDEX_H_
