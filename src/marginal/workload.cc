// Copyright 2026 The dpcube Authors.

#include "marginal/workload.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace dpcube {
namespace marginal {
namespace {

// All k-subsets of attribute indices [0, a), lexicographic, mapped to masks.
std::vector<bits::Mask> AttributeCombinationMasks(const data::Schema& schema,
                                                  int k) {
  const int a = static_cast<int>(schema.num_attributes());
  std::vector<bits::Mask> out;
  if (k < 0 || k > a) return out;
  std::vector<std::size_t> idx(k);
  for (int i = 0; i < k; ++i) idx[i] = i;
  while (true) {
    out.push_back(schema.MarginalMask(idx));
    // Next combination.
    int i = k - 1;
    while (i >= 0 && idx[i] == static_cast<std::size_t>(a - k + i)) --i;
    if (i < 0) break;
    ++idx[i];
    for (int j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
  }
  if (k == 0) out.assign(1, 0);
  return out;
}

}  // namespace

std::uint64_t Workload::TotalCells() const {
  std::uint64_t total = 0;
  for (bits::Mask alpha : masks_) {
    total += std::uint64_t{1} << bits::Popcount(alpha);
  }
  return total;
}

std::vector<bits::Mask> Workload::FourierSupport() const {
  std::set<bits::Mask> support;
  for (bits::Mask alpha : masks_) {
    for (bits::SubmaskIterator it(alpha); !it.done(); it.Next()) {
      support.insert(it.mask());
    }
  }
  return std::vector<bits::Mask>(support.begin(), support.end());
}

int Workload::MaxOrder() const {
  int best = 0;
  for (bits::Mask alpha : masks_) {
    best = std::max(best, bits::Popcount(alpha));
  }
  return best;
}

bool Workload::Covers(bits::Mask beta) const {
  for (bits::Mask alpha : masks_) {
    if (bits::IsSubset(beta, alpha)) return true;
  }
  return false;
}

Workload AllKWayAttributes(const data::Schema& schema, int k) {
  return Workload(schema.TotalBits(), AttributeCombinationMasks(schema, k));
}

Workload WorkloadQk(const data::Schema& schema, int k) {
  return AllKWayAttributes(schema, k);
}

Workload WorkloadQkStar(const data::Schema& schema, int k) {
  std::vector<bits::Mask> masks = AttributeCombinationMasks(schema, k);
  const std::vector<bits::Mask> next = AttributeCombinationMasks(schema, k + 1);
  for (std::size_t i = 0; i < next.size(); i += 2) masks.push_back(next[i]);
  return Workload(schema.TotalBits(), std::move(masks));
}

Workload WorkloadQkA(const data::Schema& schema, int k,
                     std::size_t fixed_attribute) {
  std::vector<bits::Mask> masks = AttributeCombinationMasks(schema, k);
  const bits::Mask fixed = schema.AttributeMask(fixed_attribute);
  for (bits::Mask m : AttributeCombinationMasks(schema, k + 1)) {
    if ((m & fixed) == fixed) masks.push_back(m);
  }
  return Workload(schema.TotalBits(), std::move(masks));
}

Workload AllKWayBits(int d, int k) {
  return Workload(d, bits::MasksOfWeight(d, k));
}

Result<Workload> WorkloadByName(const data::Schema& schema,
                                const std::string& name) {
  if (name.size() < 2 || name[0] != 'Q') {
    return Status::InvalidArgument("unknown workload name '" + name + "'");
  }
  std::size_t digits_end = 1;
  while (digits_end < name.size() &&
         std::isdigit(static_cast<unsigned char>(name[digits_end]))) {
    ++digits_end;
  }
  if (digits_end == 1) {
    return Status::InvalidArgument("workload name '" + name +
                                   "' missing an order");
  }
  const int k = std::stoi(name.substr(1, digits_end - 1));
  const std::string suffix = name.substr(digits_end);
  if (suffix.empty()) return WorkloadQk(schema, k);
  if (suffix == "*") return WorkloadQkStar(schema, k);
  if (suffix == "a") return WorkloadQkA(schema, k);
  return Status::InvalidArgument("unknown workload suffix '" + suffix + "'");
}

}  // namespace marginal
}  // namespace dpcube
