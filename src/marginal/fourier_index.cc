// Copyright 2026 The dpcube Authors.

#include "marginal/fourier_index.h"

#include <cassert>
#include <cmath>
#include <cstdint>

#include "common/thread_pool.h"

namespace dpcube {
namespace marginal {

FourierIndex::FourierIndex(const Workload& workload) : d_(workload.d()) {
  masks_ = workload.FourierSupport();
  index_.reserve(masks_.size());
  for (std::size_t i = 0; i < masks_.size(); ++i) index_[masks_[i]] = i;
}

std::size_t FourierIndex::IndexOf(bits::Mask beta) const {
  auto it = index_.find(beta);
  assert(it != index_.end() && "coefficient not in the workload support");
  return it->second;
}

bool FourierIndex::Contains(bits::Mask beta) const {
  return index_.find(beta) != index_.end();
}

linalg::Matrix BuildFourierRecoveryMatrix(const Workload& workload,
                                          const FourierIndex& index) {
  RowLayout layout(workload);
  linalg::Matrix r(layout.total_rows(), index.size());
  for (std::size_t i = 0; i < workload.num_marginals(); ++i) {
    const bits::Mask alpha = workload.mask(i);
    const int k = bits::Popcount(alpha);
    const double magnitude = std::pow(2.0, 0.5 * workload.d() - k);
    const std::size_t base = layout.offset(i);
    const std::size_t cells = std::size_t{1} << k;
    for (bits::SubmaskIterator it(alpha); !it.done(); it.Next()) {
      const bits::Mask beta = it.mask();
      const std::size_t col = index.IndexOf(beta);
      for (std::size_t g = 0; g < cells; ++g) {
        const bits::Mask gamma = bits::ExpandIntoMask(g, alpha);
        r(base + g, col) = bits::FourierSign(beta, gamma) * magnitude;
      }
    }
  }
  return r;
}

linalg::Vector FourierBudgetWeights(const Workload& workload,
                                    const FourierIndex& index,
                                    const linalg::Vector& query_weights) {
  assert(query_weights.empty() ||
         query_weights.size() == workload.num_marginals());
  // b_beta = 2 sum_{i: beta ⪯ alpha_i} a_i (2^k_i cells) (2^{d/2-k_i})^2
  //        = 2 sum_{i: beta ⪯ alpha_i} a_i 2^{d - k_i}.
  const std::size_t num_marginals = workload.num_marginals();
  std::vector<double> contribution(num_marginals, 0.0);
  for (std::size_t i = 0; i < num_marginals; ++i) {
    const double a = query_weights.empty() ? 1.0 : query_weights[i];
    contribution[i] =
        2.0 * a *
        std::pow(2.0, workload.d() - bits::Popcount(workload.mask(i)));
  }
  // Invert the scatter once: slot beta's contributor list holds the
  // marginals covering it in increasing-i order (the outer loop order),
  // so the parallel per-slot sums below add the exact values the
  // sequential scatter added, in the same order — bit-identical output,
  // O(sum_i 2^{k_i}) total work, and each slot written by exactly one
  // work unit (thread-count-invariant). The index build itself stays
  // serial (it costs about what the old scatter cost), so only the
  // summation phase scales with threads; bit-compatibility with the
  // committed golden snapshots is what rules out a repartitioned sum.
  std::vector<std::vector<std::uint32_t>> contributors(index.size());
  for (std::size_t i = 0; i < num_marginals; ++i) {
    for (bits::SubmaskIterator it(workload.mask(i)); !it.done(); it.Next()) {
      contributors[index.IndexOf(it.mask())].push_back(
          static_cast<std::uint32_t>(i));
    }
  }
  linalg::Vector b(index.size(), 0.0);
  ThreadPool::Shared().ParallelFor(0, index.size(), 16, [&](std::size_t c) {
    double sum = 0.0;
    for (const std::uint32_t i : contributors[c]) sum += contribution[i];
    b[c] = sum;
  });
  return b;
}

}  // namespace marginal
}  // namespace dpcube
