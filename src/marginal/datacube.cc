// Copyright 2026 The dpcube Authors.

#include "marginal/datacube.h"

#include <algorithm>
#include <cassert>

namespace dpcube {
namespace marginal {

DataCube::DataCube(data::Schema schema) : schema_(std::move(schema)) {
  assert(schema_.num_attributes() < 64);
}

bits::Mask DataCube::MarginalMaskOf(CuboidId cuboid) const {
  bits::Mask mask = 0;
  for (std::size_t a = 0; a < schema_.num_attributes(); ++a) {
    if (cuboid & (CuboidId{1} << a)) mask |= schema_.AttributeMask(a);
  }
  return mask;
}

std::uint64_t DataCube::CellsOf(CuboidId cuboid) const {
  return std::uint64_t{1} << bits::Popcount(MarginalMaskOf(cuboid));
}

std::vector<DataCube::CuboidId> DataCube::ParentsOf(CuboidId cuboid) const {
  std::vector<CuboidId> out;
  for (std::size_t a = 0; a < schema_.num_attributes(); ++a) {
    const CuboidId bit = CuboidId{1} << a;
    if (!(cuboid & bit)) out.push_back(cuboid | bit);
  }
  return out;
}

std::vector<DataCube::CuboidId> DataCube::ChildrenOf(CuboidId cuboid) const {
  std::vector<CuboidId> out;
  for (std::size_t a = 0; a < schema_.num_attributes(); ++a) {
    const CuboidId bit = CuboidId{1} << a;
    if (cuboid & bit) out.push_back(cuboid & ~bit);
  }
  return out;
}

std::vector<DataCube::CuboidId> DataCube::CuboidsOfOrder(int order) const {
  return bits::MasksOfWeight(static_cast<int>(schema_.num_attributes()),
                             order);
}

std::string DataCube::NameOf(CuboidId cuboid) const {
  if (cuboid == 0) return "<apex>";
  std::string name;
  for (std::size_t a = 0; a < schema_.num_attributes(); ++a) {
    if (cuboid & (CuboidId{1} << a)) {
      if (!name.empty()) name += " x ";
      name += schema_.attribute(a).name;
    }
  }
  return name;
}

Workload DataCube::WorkloadUpToOrder(int max_order) const {
  const int a = static_cast<int>(schema_.num_attributes());
  const int limit = max_order < 0 ? a : std::min(max_order, a);
  std::vector<bits::Mask> masks;
  for (int order = 0; order <= limit; ++order) {
    for (CuboidId cuboid : CuboidsOfOrder(order)) {
      masks.push_back(MarginalMaskOf(cuboid));
    }
  }
  return Workload(schema_.TotalBits(), std::move(masks));
}

Workload DataCube::WorkloadOf(const std::vector<CuboidId>& cuboids) const {
  std::vector<bits::Mask> masks;
  masks.reserve(cuboids.size());
  for (CuboidId cuboid : cuboids) masks.push_back(MarginalMaskOf(cuboid));
  return Workload(schema_.TotalBits(), std::move(masks));
}

std::uint64_t DataCube::TotalCellsUpToOrder(int max_order) const {
  const int a = static_cast<int>(schema_.num_attributes());
  const int limit = max_order < 0 ? a : std::min(max_order, a);
  std::uint64_t total = 0;
  for (int order = 0; order <= limit; ++order) {
    for (CuboidId cuboid : CuboidsOfOrder(order)) {
      total += CellsOf(cuboid);
    }
  }
  return total;
}

}  // namespace marginal
}  // namespace dpcube
