// Copyright 2026 The dpcube Authors.
//
// Dense materialisations of marginal workloads as linear-query matrices,
// for the exact small-domain path and for tests: Q in R^{K x N} with
// Q_{(i,gamma), cell} = 1 iff cell AND alpha_i == gamma (row blocks in
// workload order, local-index order inside each block).

#ifndef DPCUBE_MARGINAL_QUERY_MATRIX_H_
#define DPCUBE_MARGINAL_QUERY_MATRIX_H_

#include <cstddef>
#include <vector>

#include <utility>

#include "linalg/matrix.h"
#include "marginal/marginal_table.h"
#include "marginal/workload.h"

namespace dpcube {
namespace marginal {

/// Row layout of a stacked marginal-workload answer vector: marginal i's
/// cells occupy rows [offset(i), offset(i) + 2^{k_i}).
class RowLayout {
 public:
  explicit RowLayout(const Workload& workload);

  std::size_t total_rows() const { return total_rows_; }
  std::size_t offset(std::size_t marginal_index) const {
    return offsets_[marginal_index];
  }
  std::size_t num_marginals() const { return offsets_.size(); }

  /// Maps a flat row back to (marginal index, local cell index).
  std::pair<std::size_t, std::size_t> Locate(std::size_t row) const;

 private:
  std::vector<std::size_t> offsets_;
  std::size_t total_rows_ = 0;
};

/// Dense query matrix for the workload over the full 2^d-cell domain.
/// Only practical for small d (asserts d <= 20; intended for tests and
/// the worked example).
linalg::Matrix BuildQueryMatrix(const Workload& workload);

/// Stacks per-marginal tables into the flat answer vector matching
/// BuildQueryMatrix's row order.
linalg::Vector StackMarginals(const std::vector<MarginalTable>& tables);

/// Splits a flat answer vector back into per-marginal tables.
std::vector<MarginalTable> UnstackMarginals(const Workload& workload,
                                            const linalg::Vector& flat);

}  // namespace marginal
}  // namespace dpcube

#endif  // DPCUBE_MARGINAL_QUERY_MATRIX_H_
