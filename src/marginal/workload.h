// Copyright 2026 The dpcube Authors.
//
// Marginal query workloads. A workload is an ordered list of marginal masks
// over a schema's encoded bit domain. The builders reproduce the three
// workload families of the paper's experimental study (Section 5):
//   Q_k  — all k-way marginals (over attributes),
//   Q*_k — all k-way marginals plus half of the (k+1)-way marginals,
//   Q^a_k — all k-way marginals plus every (k+1)-way marginal that
//           includes a fixed attribute.

#ifndef DPCUBE_MARGINAL_WORKLOAD_H_
#define DPCUBE_MARGINAL_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bits.h"
#include "common/status.h"
#include "data/schema.h"

namespace dpcube {
namespace marginal {

/// An ordered collection of marginal masks over a d-bit domain.
class Workload {
 public:
  Workload(int d, std::vector<bits::Mask> masks)
      : d_(d), masks_(std::move(masks)) {}

  int d() const { return d_; }
  std::size_t num_marginals() const { return masks_.size(); }
  bits::Mask mask(std::size_t i) const { return masks_[i]; }
  const std::vector<bits::Mask>& masks() const { return masks_; }

  /// Total number of released cells K = sum_i 2^{||alpha_i||}.
  std::uint64_t TotalCells() const;

  /// The Fourier support F = union_i { beta : beta ⪯ alpha_i }, sorted
  /// ascending. |F| is the strategy size of the Fourier approach.
  std::vector<bits::Mask> FourierSupport() const;

  /// Largest marginal dimensionality max_i ||alpha_i||.
  int MaxOrder() const;

  /// True if some workload marginal dominates `beta`.
  bool Covers(bits::Mask beta) const;

 private:
  int d_;
  std::vector<bits::Mask> masks_;
};

/// All C(a, k) k-way marginals over the schema's attributes (masks are
/// unions of whole attribute bit-fields). k = 0 gives the grand total.
Workload AllKWayAttributes(const data::Schema& schema, int k);

/// Q_k of the paper (alias of AllKWayAttributes).
Workload WorkloadQk(const data::Schema& schema, int k);

/// Q*_k: all k-way marginals plus every second (k+1)-way marginal in
/// enumeration order (the paper says "half of all (k+1)-way marginals";
/// we take a deterministic half for reproducibility).
Workload WorkloadQkStar(const data::Schema& schema, int k);

/// Q^a_k: all k-way marginals plus all (k+1)-way marginals that include
/// attribute `fixed_attribute`.
Workload WorkloadQkA(const data::Schema& schema, int k,
                     std::size_t fixed_attribute = 0);

/// All k-way marginals over raw bits of a d-bit binary domain (used by the
/// theory benches where attributes are individual bits).
Workload AllKWayBits(int d, int k);

/// Parses names "Q1", "Q1*", "Q1a", "Q2", ... into workloads; errors on
/// unknown syntax. Used by benches and examples.
Result<Workload> WorkloadByName(const data::Schema& schema,
                                const std::string& name);

}  // namespace marginal
}  // namespace dpcube

#endif  // DPCUBE_MARGINAL_WORKLOAD_H_
