// Copyright 2026 The dpcube Authors.

#include "marginal/query_matrix.h"

#include <cassert>

namespace dpcube {
namespace marginal {

RowLayout::RowLayout(const Workload& workload) {
  offsets_.reserve(workload.num_marginals());
  for (std::size_t i = 0; i < workload.num_marginals(); ++i) {
    offsets_.push_back(total_rows_);
    total_rows_ += std::size_t{1} << bits::Popcount(workload.mask(i));
  }
}

std::pair<std::size_t, std::size_t> RowLayout::Locate(std::size_t row) const {
  assert(row < total_rows_);
  // Linear scan is fine: workloads have at most a few hundred marginals.
  std::size_t i = offsets_.size() - 1;
  while (offsets_[i] > row) --i;
  return {i, row - offsets_[i]};
}

linalg::Matrix BuildQueryMatrix(const Workload& workload) {
  assert(workload.d() <= 20 && "dense query matrix only for small domains");
  const std::uint64_t n = std::uint64_t{1} << workload.d();
  RowLayout layout(workload);
  linalg::Matrix q(layout.total_rows(), n);
  for (std::size_t i = 0; i < workload.num_marginals(); ++i) {
    const bits::Mask alpha = workload.mask(i);
    const std::size_t base = layout.offset(i);
    for (std::uint64_t cell = 0; cell < n; ++cell) {
      q(base + bits::CompressFromMask(cell, alpha), cell) = 1.0;
    }
  }
  return q;
}

linalg::Vector StackMarginals(const std::vector<MarginalTable>& tables) {
  linalg::Vector flat;
  for (const MarginalTable& t : tables) {
    flat.insert(flat.end(), t.values().begin(), t.values().end());
  }
  return flat;
}

std::vector<MarginalTable> UnstackMarginals(const Workload& workload,
                                            const linalg::Vector& flat) {
  std::vector<MarginalTable> tables;
  tables.reserve(workload.num_marginals());
  std::size_t pos = 0;
  for (std::size_t i = 0; i < workload.num_marginals(); ++i) {
    MarginalTable t(workload.mask(i), workload.d());
    for (std::size_t g = 0; g < t.num_cells(); ++g) t.value(g) = flat[pos++];
    tables.push_back(std::move(t));
  }
  assert(pos == flat.size());
  return tables;
}

}  // namespace marginal
}  // namespace dpcube
