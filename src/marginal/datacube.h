// Copyright 2026 The dpcube Authors.
//
// The datacube: the lattice of all 2^a cuboids (marginals) of a schema,
// ordered by attribute-set inclusion — the paper's titular object ("the
// set of all possible marginals for a relation is captured by the data
// cube"). Provides lattice navigation (parents / children / descendants),
// cuboid workload construction, and helpers for releasing an entire cube
// or a slice of it through the strategy/budget/recovery pipeline.

#ifndef DPCUBE_MARGINAL_DATACUBE_H_
#define DPCUBE_MARGINAL_DATACUBE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bits.h"
#include "common/status.h"
#include "data/schema.h"
#include "marginal/workload.h"

namespace dpcube {
namespace marginal {

/// The cuboid lattice of a schema. A cuboid is identified by the set of
/// attribute indices it retains; the apex (empty set) is the grand total
/// and the base cuboid retains every attribute.
class DataCube {
 public:
  explicit DataCube(data::Schema schema);

  const data::Schema& schema() const { return schema_; }
  std::size_t num_attributes() const { return schema_.num_attributes(); }

  /// Number of cuboids in the lattice: 2^num_attributes.
  std::uint64_t num_cuboids() const {
    return std::uint64_t{1} << schema_.num_attributes();
  }

  /// A cuboid id is a bitmask over ATTRIBUTE indices (not domain bits).
  using CuboidId = std::uint64_t;

  /// The encoded-domain marginal mask of a cuboid.
  bits::Mask MarginalMaskOf(CuboidId cuboid) const;

  /// Number of attributes a cuboid retains.
  int OrderOf(CuboidId cuboid) const { return bits::Popcount(cuboid); }

  /// Number of cells in a cuboid's marginal table.
  std::uint64_t CellsOf(CuboidId cuboid) const;

  /// Direct parents: cuboids with exactly one more attribute.
  std::vector<CuboidId> ParentsOf(CuboidId cuboid) const;

  /// Direct children: cuboids with exactly one attribute removed.
  std::vector<CuboidId> ChildrenOf(CuboidId cuboid) const;

  /// True iff `coarse` can be computed from `fine` by aggregation.
  bool IsDerivable(CuboidId coarse, CuboidId fine) const {
    return bits::IsSubset(coarse, fine);
  }

  /// All cuboids of the given order, ascending id order.
  std::vector<CuboidId> CuboidsOfOrder(int order) const;

  /// Human-readable name: attribute names joined by 'x' ("age x region"),
  /// "<apex>" for the empty cuboid.
  std::string NameOf(CuboidId cuboid) const;

  /// Workload of the cuboids up to (and including) `max_order` — the
  /// standard "release the bottom of the cube" task. max_order < 0 means
  /// the whole lattice.
  Workload WorkloadUpToOrder(int max_order) const;

  /// Workload for an explicit cuboid list, in the given order.
  Workload WorkloadOf(const std::vector<CuboidId>& cuboids) const;

  /// Total number of released cells for the cube up to max_order — the
  /// quantity that drives the release's noise budget.
  std::uint64_t TotalCellsUpToOrder(int max_order) const;

 private:
  data::Schema schema_;
};

}  // namespace marginal
}  // namespace dpcube

#endif  // DPCUBE_MARGINAL_DATACUBE_H_
