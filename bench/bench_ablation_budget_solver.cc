// Copyright 2026 The dpcube Authors.
//
// Ablation A1: the grouped closed-form budgets (Section 3.1's Lagrange
// solution) against the generic interior-point convex solver on the same
// budgeting program. Validates that (a) the objectives agree, and (b) the
// closed form is orders of magnitude faster — the paper's efficiency
// argument against solving the general program (or the matrix
// mechanism's SDP) directly.

#include <cstdio>

#include "bench/bench_common.h"
#include "budget/grouped_budget.h"
#include "data/synthetic.h"
#include "opt/convex_budget_solver.h"
#include "strategy/range_strategies.h"
#include "transform/hierarchy.h"

namespace {

using namespace dpcube;

void RunCase(const char* label, const linalg::Matrix& s,
             const linalg::Vector& b,
             const std::vector<budget::GroupSummary>& groups) {
  dp::PrivacyParams params;
  params.epsilon = 1.0;
  params.neighbour = dp::NeighbourModel::kAddRemove;

  double closed_obj = 0.0, convex_obj = 0.0;
  const double closed_seconds = bench::TimeSeconds([&] {
    for (int i = 0; i < 1000; ++i) {
      auto result = budget::OptimalGroupBudgets(groups, params);
      if (result.ok()) closed_obj = result.value().variance_objective;
    }
  }) / 1000.0;
  const double convex_seconds = bench::TimeSeconds([&] {
    auto result = opt::SolveConvexBudget(s, b, params.epsilon);
    if (result.ok()) convex_obj = result.value().objective;
  });
  std::printf("a1 case=%-16s rows=%-5zu groups=%-4zu closed_obj=%-12.5g "
              "convex_obj=%-12.5g ratio=%.4f closed_us=%.2f convex_ms=%.2f\n",
              label, s.rows(), groups.size(), closed_obj, convex_obj,
              convex_obj / closed_obj, closed_seconds * 1e6,
              convex_seconds * 1e3);
}

}  // namespace

int main() {
  using namespace dpcube;
  std::printf("# A1: grouped closed-form vs generic convex solver\n");

  // Case 1: marginal workloads of growing size (Q strategy over d bits).
  for (int d : {4, 6, 8}) {
    const data::Schema schema = data::BinarySchema(d);
    const marginal::Workload w = marginal::WorkloadQkStar(schema, 1);
    strategy::QueryStrategy strat(w);
    auto s = strat.DenseStrategyMatrix();
    if (!s.ok()) return 1;
    // Per-row b: 2 per row (R = I).
    const linalg::Vector b(s.value().rows(), 2.0);
    char label[32];
    std::snprintf(label, sizeof(label), "Q1*_d%d", d);
    RunCase(label, s.value(), b, strat.groups());
  }

  // Case 2: Fourier strategy (singleton groups, dense rows).
  {
    const data::Schema schema = data::BinarySchema(6);
    const marginal::Workload w = marginal::WorkloadQk(schema, 2);
    strategy::FourierStrategy strat(w);
    auto s = strat.DenseStrategyMatrix();
    if (!s.ok()) return 1;
    linalg::Vector b;
    for (const auto& g : strat.groups()) b.push_back(g.weight_sum);
    RunCase("Fourier_d6_k2", s.value(), b, strat.groups());
  }

  // Case 3: hierarchical strategy over a range workload.
  {
    Rng rng(3);
    const std::size_t n = 256;
    const auto queries = strategy::RandomRanges(n, 100, &rng);
    strategy::HierarchyRangeStrategy strat(n, queries);
    auto s = strat.DenseStrategyMatrix();
    if (!s.ok()) return 1;
    // Reconstruct per-row b from the group summaries is not possible
    // (weights differ per node); recompute directly.
    transform::DyadicHierarchy tree(n);
    linalg::Vector b(tree.num_nodes(), 0.0);
    for (const auto& q : queries) {
      for (std::size_t node : tree.DecomposeRange(q.lo, q.hi)) {
        b[node] += 2.0;
      }
    }
    // NOTE: per-node weights are not constant within a level, so the
    // grouped solution is the optimum of the *grouped* relaxation; the
    // convex solver can do slightly better. The printed ratio quantifies
    // that gap (Definition 3.2's consistency condition at work).
    RunCase("Hier_n256", s.value(), b, strat.groups());
  }
  return 0;
}
