// Copyright 2026 The dpcube Authors.
//
// Ablation A2: the paper's fast consistency (Section 4.3 — least squares
// over the |F| Fourier coefficients) against the prior-work formulation
// (least squares over all N = 2^d table cells, as in Barak et al. /
// Ding et al.). Both produce the same projection; the point is the
// running-time gap, which grows with the domain size while |F| stays
// fixed by the workload. This reproduces the paper's claim that the
// consistency step takes "essentially no time at all".

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "data/synthetic.h"
#include "linalg/least_squares.h"
#include "marginal/query_matrix.h"
#include "recovery/consistency.h"

namespace {

using namespace dpcube;

// Prior-work route: solve min_x ||Q x - y||_2 over all N cells, then
// answer the workload from the fitted table.
linalg::Vector DenseDomainProjection(const marginal::Workload& workload,
                                     const linalg::Vector& noisy_stacked) {
  const linalg::Matrix q = marginal::BuildQueryMatrix(workload);
  auto fitted = linalg::OrdinaryLeastSquares(q, noisy_stacked);
  if (!fitted.ok()) return {};
  return q.MultiplyVec(fitted.value());
}

}  // namespace

int main() {
  using namespace dpcube;
  std::printf("# A2: consistency via |F| Fourier coefficients vs N-cell "
              "least squares\n");
  std::printf("# (identical projections; the fast path is the paper's "
              "Section 4.3)\n");
  Rng rng(11);
  for (int d : {6, 8, 10}) {
    const data::Dataset ds = data::MakeProductBernoulli(d, 0.3, 2000, &rng);
    const data::SparseCounts counts = data::SparseCounts::FromDataset(ds);
    const data::Schema schema = data::BinarySchema(d);
    const marginal::Workload w = marginal::WorkloadQkStar(schema, 1);

    // Noisy input from the Q strategy.
    std::vector<marginal::MarginalTable> noisy;
    for (std::size_t i = 0; i < w.num_marginals(); ++i) {
      marginal::MarginalTable t = marginal::ComputeMarginal(counts,
                                                            w.mask(i));
      for (std::size_t g = 0; g < t.num_cells(); ++g) {
        t.value(g) += rng.NextGaussian(0.0, 4.0);
      }
      noisy.push_back(std::move(t));
    }
    const linalg::Vector variances(noisy.size(), 16.0);

    std::vector<marginal::MarginalTable> fast_result;
    const double fast_seconds = bench::TimeSeconds([&] {
      for (int i = 0; i < 50; ++i) {
        auto projected = recovery::ProjectConsistentL2(w, noisy, variances);
        if (projected.ok()) fast_result = std::move(projected).value();
      }
    }) / 50.0;

    linalg::Vector dense_result;
    const double dense_seconds = bench::TimeSeconds([&] {
      dense_result =
          DenseDomainProjection(w, marginal::StackMarginals(noisy));
    });

    // Agreement check (unweighted LS == our projection with equal
    // variances).
    const linalg::Vector fast_stacked =
        marginal::StackMarginals(fast_result);
    double max_diff = 0.0;
    for (std::size_t i = 0; i < fast_stacked.size(); ++i) {
      max_diff = std::max(max_diff,
                          std::fabs(fast_stacked[i] - dense_result[i]));
    }
    std::printf("a2 d=%-3d N=%-6llu F=%-5zu fast_ms=%-10.3f dense_ms=%-10.1f "
                "speedup=%-8.0f max_diff=%.2e\n",
                d, static_cast<unsigned long long>(1ull << d),
                w.FourierSupport().size(), fast_seconds * 1e3,
                dense_seconds * 1e3, dense_seconds / fast_seconds, max_diff);
  }
  return 0;
}
