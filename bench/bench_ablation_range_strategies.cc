// Copyright 2026 The dpcube Authors.
//
// Ablation A3: the "larger class of strategies" of Section 3.1 — optimal
// non-uniform budgets applied to the wavelet and hierarchical strategies
// on 1-D range workloads, across domain sizes. For each (strategy,
// workload, N) we print predicted total variance under uniform vs optimal
// budgets and the measured mean absolute error, demonstrating that the
// budgeting framework transfers beyond marginals.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "budget/grouped_budget.h"
#include "common/stats.h"
#include "strategy/quadtree_strategy.h"
#include "strategy/range_strategies.h"
#include "strategy/tensor_wavelet_strategy.h"

namespace {

using namespace dpcube;

double MeasureError(const strategy::RangeStrategy& strat,
                    const std::vector<strategy::RangeQuery>& queries,
                    const std::vector<double>& x,
                    const linalg::Vector& budgets,
                    const dp::PrivacyParams& params, Rng* rng) {
  stats::RunningStats err;
  for (int rep = 0; rep < 5; ++rep) {
    auto release = strat.Run(x, budgets, params, rng);
    if (!release.ok()) return -1.0;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      double truth = 0.0;
      for (std::size_t j = queries[q].lo; j < queries[q].hi; ++j) {
        truth += x[j];
      }
      err.Add(std::fabs(release.value().answers[q] - truth));
    }
  }
  return err.mean();
}

}  // namespace

int main() {
  using namespace dpcube;
  std::printf("# A3: optimal budgets on range strategies "
              "(hierarchy / wavelet / base counts)\n");
  dp::PrivacyParams params;
  params.epsilon = 0.5;
  params.neighbour = dp::NeighbourModel::kAddRemove;
  Rng rng(21);

  for (std::size_t n : {256u, 1024u, 4096u}) {
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = 50.0 + 40.0 * std::sin(0.05 * static_cast<double>(i));
    }
    struct NamedWorkload {
      const char* name;
      std::vector<strategy::RangeQuery> queries;
    };
    std::vector<NamedWorkload> workloads;
    workloads.push_back({"prefix", strategy::AllPrefixRanges(n)});
    workloads.push_back({"random", strategy::RandomRanges(n, 200, &rng)});

    for (const auto& wl : workloads) {
      const strategy::HierarchyRangeStrategy hier(n, wl.queries);
      const strategy::WaveletRangeStrategy wave(n, wl.queries);
      const strategy::BaseCountRangeStrategy base(n, wl.queries);
      for (const strategy::RangeStrategy* strat :
           {static_cast<const strategy::RangeStrategy*>(&hier),
            static_cast<const strategy::RangeStrategy*>(&wave),
            static_cast<const strategy::RangeStrategy*>(&base)}) {
        auto uni = budget::UniformGroupBudgets(strat->groups(), params);
        auto opt = budget::OptimalGroupBudgets(strat->groups(), params);
        if (!uni.ok() || !opt.ok()) return 1;
        const double err_uni = MeasureError(*strat, wl.queries, x,
                                            uni.value().eta, params, &rng);
        const double err_opt = MeasureError(*strat, wl.queries, x,
                                            opt.value().eta, params, &rng);
        std::printf(
            "a3 n=%-5zu workload=%-6s strategy=%-5s pred_uni=%-12.4g "
            "pred_opt=%-12.4g gain=%5.1f%% err_uni=%-9.2f err_opt=%-9.2f\n",
            n, wl.name, strat->name().c_str(),
            uni.value().variance_objective, opt.value().variance_objective,
            100.0 * (1.0 - opt.value().variance_objective /
                               uni.value().variance_objective),
            err_uni, err_opt);
      }
    }
  }
  // 2-D: the quadtree of Cormode et al. (ICDE'12) with optimal instead of
  // heuristic per-level budgets (the case the paper says its framework
  // subsumes).
  for (std::size_t side : {32u, 64u, 128u}) {
    std::vector<double> grid(side * side);
    for (std::size_t i = 0; i < grid.size(); ++i) {
      grid[i] = 20.0 + 15.0 * std::sin(0.1 * static_cast<double>(i % side)) *
                           std::cos(0.07 * static_cast<double>(i / side));
    }
    const auto rects = strategy::RandomRectangles(side, 150, &rng);
    strategy::QuadtreeStrategy quad(side, rects);
    strategy::TensorWaveletStrategy twave(side, rects);

    // Both 2-D strategies share the QuadtreeRelease signature; run each
    // under uniform and optimal budgets.
    auto run_2d = [&](const char* name, const auto& strat) -> int {
      auto uni = budget::UniformGroupBudgets(strat.groups(), params);
      auto opt = budget::OptimalGroupBudgets(strat.groups(), params);
      if (!uni.ok() || !opt.ok()) return 1;
      stats::RunningStats err_uni, err_opt;
      for (int rep = 0; rep < 5; ++rep) {
        for (bool optimal : {false, true}) {
          auto release = strat.Run(
              grid, optimal ? opt.value().eta : uni.value().eta, params, &rng);
          if (!release.ok()) return 1;
          for (std::size_t q = 0; q < rects.size(); ++q) {
            double truth = 0.0;
            for (std::size_t r = rects[q].row_lo; r < rects[q].row_hi; ++r) {
              for (std::size_t c = rects[q].col_lo; c < rects[q].col_hi; ++c) {
                truth += grid[r * side + c];
              }
            }
            (optimal ? err_opt : err_uni)
                .Add(std::fabs(release.value().answers[q] - truth));
          }
        }
      }
      std::printf(
          "a3 n=%-5zu workload=rect2d strategy=%-5s pred_uni=%-12.4g "
          "pred_opt=%-12.4g gain=%5.1f%% err_uni=%-9.2f err_opt=%-9.2f\n",
          side * side, name, uni.value().variance_objective,
          opt.value().variance_objective,
          100.0 * (1.0 - opt.value().variance_objective /
                             uni.value().variance_objective),
          err_uni.mean(), err_opt.mean());
      return 0;
    };
    if (run_2d("Quad", quad) != 0) return 1;
    if (run_2d("TWave", twave) != 0) return 1;
  }
  return 0;
}
