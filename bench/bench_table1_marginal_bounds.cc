// Copyright 2026 The dpcube Authors.
//
// Experiment T1 (paper Table 1): expected L1 noise per marginal when
// releasing all k-way marginals, for the strategy rows of the table:
// base counts (I), direct marginals (Q), Fourier with uniform noise (F)
// and Fourier with the paper's optimal non-uniform noise (F+), under both
// eps-DP and (eps, delta)-DP. For each point we print the measured noise
// and the corresponding asymptotic bound (constants dropped), so the
// shapes can be compared: measured / bound should stay roughly flat
// across d and k for each row, and F+ should improve on F with the
// ratio growing in k.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "data/synthetic.h"
#include "engine/theory_bounds.h"

namespace {

using namespace dpcube;

// Mean L1 noise per marginal (sum over cells of |err|, averaged over
// marginals and repetitions), raw strategy output (no consistency step:
// Table 1 rates the strategies themselves).
double MeasureL1PerMarginal(const strategy::MarginalStrategy& strat,
                            const marginal::Workload& workload,
                            const data::SparseCounts& counts,
                            const dp::PrivacyParams& params,
                            engine::BudgetMode mode, int reps, Rng* rng) {
  engine::ReleaseOptions options;
  options.params = params;
  options.budget_mode = mode;
  options.enforce_consistency = false;
  std::vector<marginal::MarginalTable> truth;
  for (std::size_t i = 0; i < workload.num_marginals(); ++i) {
    truth.push_back(marginal::ComputeMarginal(counts, workload.mask(i)));
  }
  double total = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    auto outcome = engine::ReleaseWorkload(strat, counts, options, rng);
    if (!outcome.ok()) {
      std::fprintf(stderr, "failed: %s\n",
                   outcome.status().ToString().c_str());
      return -1.0;
    }
    for (std::size_t i = 0; i < workload.num_marginals(); ++i) {
      for (std::size_t g = 0; g < truth[i].num_cells(); ++g) {
        total += std::fabs(outcome.value().marginals[i].value(g) -
                           truth[i].value(g));
      }
    }
  }
  return total / (reps * static_cast<double>(workload.num_marginals()));
}

void RunRegime(bool pure, double eps, double delta) {
  Rng rng(7);
  std::printf("# ---- %s ----\n",
              pure ? "eps-DP (Laplace)" : "(eps,delta)-DP (Gaussian)");
  std::printf(
      "%-3s %-2s | %12s %12s | %12s %12s | %12s %12s | %12s %12s | %12s\n",
      "d", "k", "I.meas", "I.bound", "Q.meas", "Q.bound", "F.meas", "F.bound",
      "F+.meas", "F+.bound", "lower");
  for (int d : {8, 10, 12}) {
    Rng data_rng(100 + d);
    const data::Dataset ds =
        data::MakeProductBernoulli(d, 0.3, 2000, &data_rng);
    const data::SparseCounts counts = data::SparseCounts::FromDataset(ds);
    for (int k : {1, 2, 3}) {
      const marginal::Workload workload = marginal::AllKWayBits(d, k);
      const strategy::IdentityStrategy identity(workload);
      const strategy::QueryStrategy query(workload);
      const strategy::FourierStrategy fourier(workload);
      dp::PrivacyParams params;
      params.epsilon = eps;
      params.delta = pure ? 0.0 : delta;
      const int reps = 3;
      const double i_meas =
          MeasureL1PerMarginal(identity, workload, counts, params,
                               engine::BudgetMode::kUniform, reps, &rng);
      const double q_meas =
          MeasureL1PerMarginal(query, workload, counts, params,
                               engine::BudgetMode::kUniform, reps, &rng);
      const double f_meas =
          MeasureL1PerMarginal(fourier, workload, counts, params,
                               engine::BudgetMode::kUniform, reps, &rng);
      const double fp_meas =
          MeasureL1PerMarginal(fourier, workload, counts, params,
                               engine::BudgetMode::kOptimal, reps, &rng);
      double i_bound, q_bound, f_bound, fp_bound;
      if (pure) {
        i_bound = engine::BoundBaseCountsPure(d, k, eps);
        q_bound = engine::BoundMarginalsPure(d, k, eps);
        f_bound = engine::BoundFourierUniformPure(d, k, eps);
        fp_bound = engine::BoundFourierNonUniformPure(d, k, eps);
      } else {
        i_bound = engine::BoundBaseCountsApprox(d, k, eps, delta);
        q_bound = engine::BoundMarginalsApprox(d, k, eps, delta);
        f_bound = engine::BoundFourierUniformApprox(d, k, eps, delta);
        fp_bound = engine::BoundFourierNonUniformApprox(d, k, eps, delta);
      }
      // Table 1's last row: the unconditional lower bound of
      // Kasiviswanathan et al., the same (up to the delta term) in both
      // regimes. No mechanism's measured noise may sit below its shape.
      const double lower = engine::BoundLower(d, k, eps);
      std::printf(
          "%-3d %-2d | %12.1f %12.1f | %12.1f %12.1f | %12.1f %12.1f | "
          "%12.1f %12.1f | %12.1f\n",
          d, k, i_meas, i_bound, q_meas, q_bound, f_meas, f_bound, fp_meas,
          fp_bound, lower);
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("# T1: expected L1 noise per marginal, all k-way workloads\n");
  std::printf("# (bounds are asymptotic shapes; compare growth across "
              "d/k and the F -> F+ improvement)\n\n");
  RunRegime(/*pure=*/true, /*eps=*/1.0, /*delta=*/0.0);
  RunRegime(/*pure=*/false, /*eps=*/1.0, /*delta=*/1e-6);
  return 0;
}
