// Copyright 2026 The dpcube Authors.
//
// Ablation A6: the Section 6 remark quantified. Three ways to obtain a
// release usable as a dataset (non-negative and/or integral), across
// domain widths that sweep the table from dense to sparse:
//   * geometric base counts, clamped   (integral, non-negative, consistent)
//   * geometric base counts, unclamped (integral, consistent, unbiased)
//   * Fourier + optimal budgets + non-negative LS fit (real-valued)
// Reported per configuration: relative error and the total-count bias.
// Expected shape: clamping is free on dense tables and increasingly
// biased as 2^d outgrows the row count (bias ~ #empty cells * alpha /
// (1 - alpha^2)); the Fourier path is immune to d but pays the noise of
// its strategy; unclamped base counts are unbiased everywhere but can go
// negative.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "common/stats.h"
#include "data/contingency_table.h"
#include "data/synthetic.h"
#include "dp/geometric.h"
#include "engine/metrics.h"
#include "engine/release_engine.h"
#include "recovery/integral.h"
#include "recovery/nonnegative.h"
#include "strategy/fourier_strategy.h"

namespace {

using namespace dpcube;

struct Outcome {
  double rel_err = -1.0;
  double total_bias = 0.0;
};

Outcome Evaluate(const marginal::Workload& workload,
                 const data::SparseCounts& counts,
                 const std::vector<marginal::MarginalTable>& released) {
  Outcome out;
  auto report = engine::EvaluateRelease(workload, counts, released);
  if (!report.ok()) return out;
  out.rel_err = report.value().relative_error;
  // Bias of the grand total, averaged over the released marginals.
  double bias = 0.0;
  for (const auto& m : released) bias += m.Total() - counts.Total();
  out.total_bias = bias / double(released.size());
  return out;
}

}  // namespace

int main() {
  std::printf("# A6: Section-6 integral/non-negative release trade-offs\n");
  std::printf("# rows fixed at 4096; d sweeps density (rows per cell = "
              "4096 / 2^d)\n");
  dp::PrivacyParams params;
  params.epsilon = 0.5;
  params.neighbour = dp::NeighbourModel::kAddRemove;
  Rng rng(77);

  for (int d : {8, 12, 16}) {
    const data::Dataset ds = data::MakeProductBernoulli(d, 0.35, 4096, &rng);
    const data::SparseCounts counts = data::SparseCounts::FromDataset(ds);
    const marginal::Workload workload = marginal::AllKWayBits(d, 2);

    // (a) clamped geometric base counts.
    Outcome clamped;
    {
      auto rel =
          recovery::IntegralBaseCountRelease(workload, counts, params, &rng);
      if (rel.ok()) clamped = Evaluate(workload, counts, rel->marginals);
    }
    // (b) unclamped geometric base counts.
    Outcome unclamped;
    std::size_t negative_cells = 0;
    {
      recovery::IntegralReleaseOptions options;
      options.clamp_nonnegative = false;
      auto rel = recovery::IntegralBaseCountRelease(workload, counts, params,
                                                    &rng, options);
      if (rel.ok()) {
        unclamped = Evaluate(workload, counts, rel->marginals);
        for (const auto& m : rel->marginals) {
          for (double v : m.values()) {
            if (v < 0.0) ++negative_cells;
          }
        }
      }
    }
    // (c) Fourier + optimal budgets, then the non-negative LS fit.
    Outcome fitted;
    {
      strategy::FourierStrategy fourier(workload);
      engine::ReleaseOptions options;
      options.params = params;
      options.budget_mode = engine::BudgetMode::kOptimal;
      auto out = engine::ReleaseWorkload(fourier, counts, options, &rng);
      if (out.ok()) {
        auto cell_vars = fourier.PredictCellVariances(
            out.value().group_budgets, params);
        if (cell_vars.ok()) {
          auto fit = recovery::FitNonNegativeTable(
              workload, out.value().marginals, cell_vars.value());
          if (fit.ok()) fitted = Evaluate(workload, counts, fit->marginals);
        }
      }
    }
    const double expected_bias_per_marginal =
        [&] {
          const double eps_cell = params.epsilon / params.SensitivityFactor();
          const double alpha = dp::GeometricAlpha(eps_cell);
          // Empty cells alone contribute the clamp mean — a floor on the
          // realised bias (low-count occupied cells also clamp).
          const double empty =
              double((std::uint64_t{1} << d) - counts.num_occupied());
          return empty * alpha / (1.0 - alpha * alpha);
        }();
    std::printf(
        "a6 d=%-3d occupied=%-6zu | clamped: err=%-8.4f bias=%-9.1f "
        "(floor ~%-9.1f) | unclamped: err=%-8.4f bias=%-8.1f "
        "neg_cells=%-5zu | nonneg-LS: err=%-8.4f bias=%.1f\n",
        d, counts.num_occupied(), clamped.rel_err, clamped.total_bias,
        expected_bias_per_marginal, unclamped.rel_err, unclamped.total_bias,
        negative_cells, fitted.rel_err, fitted.total_bias);
  }
  return 0;
}
