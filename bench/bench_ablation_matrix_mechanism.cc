// Copyright 2026 The dpcube Authors.
//
// Ablation A5: the paper's framework (fixed strategy + optimal non-uniform
// budgets + GLS recovery) against the matrix-mechanism strategy search of
// Li et al. (PODS 2010), on small domains where the search runs at all.
// The paper's efficiency argument (Section 1) is that the search "is
// impractical even for moderate size problems"; this bench quantifies the
// trade on both axes:
//   * accuracy — predicted total variance of each approach, and
//   * time — milliseconds to produce the strategy + budgets.
// Expected shape: the searched strategy narrows or closes the variance gap
// at tiny N but its cost grows steeply with N, while the framework's
// budgeting runs in microseconds at every size.

#include <cstdio>

#include "bench/bench_common.h"
#include "budget/grouped_budget.h"
#include "dp/privacy.h"
#include "linalg/matrix.h"
#include "marginal/query_matrix.h"
#include "marginal/workload.h"
#include "opt/matrix_mechanism.h"
#include "recovery/gls_recovery.h"
#include "strategy/fourier_strategy.h"
#include "strategy/query_strategy.h"

namespace {

using namespace dpcube;

// Framework path: strategy's grouped optimal budgets -> per-row variances
// -> GLS recovery -> exact total output variance.
double FrameworkVariance(const strategy::MarginalStrategy& strat,
                         const linalg::Matrix& q,
                         const dp::PrivacyParams& params) {
  auto budgets = budget::OptimalGroupBudgets(strat.groups(), params);
  if (!budgets.ok()) return -1.0;
  auto s = strat.DenseStrategyMatrix();
  if (!s.ok()) return -1.0;
  linalg::Vector row_vars(s->rows());
  for (std::size_t r = 0; r < s->rows(); ++r) {
    auto group = strat.RowGroupOfDenseRow(r);
    if (!group.ok()) return -1.0;
    row_vars[r] =
        dp::MeasurementVariance(budgets->eta[group.value()], params);
  }
  auto rec = recovery::OptimalRecoveryMatrixAnyRank(q, s.value(), row_vars);
  if (!rec.ok()) return -1.0;
  return recovery::TotalRecoveryVariance(rec.value(), row_vars);
}

void RunCase(int d, int k, const dp::PrivacyParams& params) {
  const marginal::Workload load = marginal::AllKWayBits(d, k);
  const linalg::Matrix q = marginal::BuildQueryMatrix(load);

  double var_f = 0.0, var_q = 0.0;
  const double framework_seconds = bench::TimeSeconds([&] {
    strategy::FourierStrategy fourier(load);
    var_f = FrameworkVariance(fourier, q, params);
    strategy::QueryStrategy query(load);
    var_q = FrameworkVariance(query, q, params);
  });

  double var_mm = 0.0;
  int iterations = 0;
  const double search_seconds = bench::TimeSeconds([&] {
    opt::MatrixMechanismOptions options;
    options.l2_sensitivity = !params.IsPureDp();
    // Budget the search: 120 iterations reaches within ~1% of its
    // convergence value on every case here, and keeps the bench quick.
    options.max_iterations = 120;
    options.tolerance = 1e-6;
    auto res = opt::OptimizeStrategy(q, opt::DefaultInitialStrategy(q),
                                     options);
    if (!res.ok()) return;
    iterations = res->iterations;
    auto var = opt::MatrixMechanismTotalVariance(res->strategy, q, params);
    if (var.ok()) var_mm = var.value();
  });

  std::printf(
      "a5 d=%d k=%d N=%-5d q=%-5zu | F+_var=%-10.4g Q+_var=%-10.4g "
      "mm_var=%-10.4g | framework_ms=%-8.3f mm_ms=%-9.2f mm_iters=%d\n",
      d, k, 1 << d, q.rows(), var_f, var_q, var_mm, framework_seconds * 1e3,
      search_seconds * 1e3, iterations);
}

}  // namespace

int main() {
  std::printf(
      "# A5: framework (fixed strategy + optimal budgets) vs "
      "matrix-mechanism search\n");
  dp::PrivacyParams pure;
  pure.epsilon = 1.0;
  pure.neighbour = dp::NeighbourModel::kAddRemove;

  dp::PrivacyParams approx = pure;
  approx.delta = 1e-6;

  std::printf("# ---- eps-DP (Laplace, L1 sensitivity) ----\n");
  for (int d : {4, 6, 8}) {
    for (int k : {1, 2}) RunCase(d, k, pure);
  }
  std::printf("# ---- (eps,delta)-DP (Gaussian, L2 sensitivity) ----\n");
  for (int d : {4, 6, 8}) {
    for (int k : {1, 2}) RunCase(d, k, approx);
  }
  return 0;
}
