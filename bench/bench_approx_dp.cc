// Copyright 2026 The dpcube Authors.
//
// The paper presents epsilon-DP results and states "Results for
// (eps, delta)-differential privacy are similar, and are omitted". This
// bench substantiates that claim on our reproduction: same methods, same
// NLTCS workload, pure Laplace vs Gaussian at delta = 1e-6. The method
// ranking and the uniform-vs-optimal gaps should mirror each other, with
// the Gaussian regime slightly more accurate at small epsilon on large
// strategy sets (sqrt composition of the L2 sensitivity).

#include <cstdio>

#include "bench/bench_common.h"
#include "data/synthetic.h"

int main() {
  using namespace dpcube;
  Rng data_rng(55);
  const data::Dataset dataset = data::MakeNltcsLike(21'576, &data_rng);
  const data::SparseCounts counts = data::SparseCounts::FromDataset(dataset);
  const marginal::Workload workload =
      marginal::WorkloadQkStar(dataset.schema(), 1);
  std::printf("# approx-dp: NLTCS Q1*, Laplace (delta=0) vs Gaussian "
              "(delta=1e-6)\n");
  std::printf("%-8s %-6s %14s %14s\n", "method", "eps", "relerr_pure",
              "relerr_approx");

  bench::MethodSuite suite(workload, /*include_cluster=*/true);
  Rng rng(3);
  for (const bench::Method& method : suite.methods()) {
    for (double eps : {0.1, 0.5, 1.0}) {
      engine::ReleaseOptions options;
      options.params.epsilon = eps;
      options.budget_mode = method.mode;
      double pure_err = 0.0, approx_err = 0.0;
      const int reps = 5;
      for (int rep = 0; rep < reps; ++rep) {
        options.params.delta = 0.0;
        auto pure = engine::ReleaseWorkload(*method.strategy, counts,
                                            options, &rng);
        options.params.delta = 1e-6;
        auto approx = engine::ReleaseWorkload(*method.strategy, counts,
                                              options, &rng);
        if (!pure.ok() || !approx.ok()) return 1;
        auto pure_report = engine::EvaluateRelease(workload, counts,
                                                   pure.value().marginals);
        auto approx_report = engine::EvaluateRelease(
            workload, counts, approx.value().marginals);
        if (!pure_report.ok() || !approx_report.ok()) return 1;
        pure_err += pure_report.value().relative_error / reps;
        approx_err += approx_report.value().relative_error / reps;
      }
      std::printf("%-8s %-6.2f %14.5f %14.5f\n", method.label.c_str(), eps,
                  pure_err, approx_err);
    }
  }
  return 0;
}
