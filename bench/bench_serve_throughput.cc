// Copyright 2026 The dpcube Authors.
//
// Serving-layer throughput: queries/sec against a stored release with a
// cold vs warm derived-marginal cache, and batch-executor scaling across
// thread counts. The release is the k-way cuboid cube (the paper's
// serving story: one budgeted k-way release makes the entire lower
// datacube derivable) and the query mix sweeps every derivable marginal,
// re-requested each sweep — the repeated-query regime the MarginalCache
// targets.
//
// Usage: bench_serve_throughput [d] [sweeps] [order]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "service/batch_executor.h"
#include "service/marginal_cache.h"
#include "service/query_service.h"
#include "service/release_store.h"

namespace {

using namespace dpcube;

// One pass over every query; clearing the cache first makes every
// derivation run, keeping it warm makes every repeat a hash lookup.
double RunSweeps(const service::QueryService& svc,
                 const std::vector<service::Query>& queries, int sweeps,
                 service::MarginalCache* clear_between, double* seconds) {
  std::size_t answered = 0;
  *seconds = bench::TimeSeconds([&] {
    for (int sweep = 0; sweep < sweeps; ++sweep) {
      if (clear_between != nullptr) clear_between->Clear();
      for (const service::Query& q : queries) {
        const service::QueryResponse response = svc.Answer(q);
        if (!response.status.ok()) {
          std::fprintf(stderr, "query failed: %s\n",
                       response.status.ToString().c_str());
          std::exit(1);
        }
        ++answered;
      }
    }
  });
  return static_cast<double>(answered) / *seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const int d = argc > 1 ? std::atoi(argv[1]) : 12;
  const int sweeps = argc > 2 ? std::atoi(argv[2]) : 40;
  const int order = argc > 3 ? std::atoi(argv[3]) : 4;

  Rng rng(99);
  const data::SparseCounts counts = data::SparseCounts::FromDataset(
      data::MakeProductBernoulli(d, 0.35, 20000, &rng));
  const marginal::Workload workload = marginal::AllKWayBits(d, order);
  std::vector<marginal::MarginalTable> noisy;
  for (std::size_t i = 0; i < workload.num_marginals(); ++i) {
    noisy.push_back(marginal::ComputeMarginal(counts, workload.mask(i)));
    for (auto& v : noisy.back().mutable_values()) {
      v += rng.NextLaplace(2.0);
    }
  }

  auto store = std::make_shared<service::ReleaseStore>();
  auto cache = std::make_shared<service::MarginalCache>();
  const double fit_seconds = bench::TimeSeconds([&] {
    if (!store->Add("bench", workload, std::move(noisy)).ok()) {
      std::exit(1);
    }
  });
  auto svc = std::make_shared<const service::QueryService>(store, cache);

  // The repeated-query workload: every derivable marginal (orders 0..order).
  std::vector<service::Query> queries;
  for (const bits::Mask beta : bits::MasksOfWeightAtMost(d, order)) {
    queries.push_back({"bench", service::QueryKind::kMarginal, beta, 0, 0});
  }
  std::printf(
      "serve throughput: d=%d, %zu marginals released, %zu distinct "
      "queries, %d sweeps (release fit: %.3fs)\n",
      d, workload.num_marginals(), queries.size(), sweeps, fit_seconds);

  double cold_seconds = 0.0;
  const double cold_qps =
      RunSweeps(*svc, queries, sweeps, cache.get(), &cold_seconds);
  double warm_seconds = 0.0;
  const double warm_qps =
      RunSweeps(*svc, queries, sweeps, nullptr, &warm_seconds);
  const service::CacheStats stats = cache->stats();
  std::printf("  cold cache: %10.0f q/s  (%.3fs)\n", cold_qps, cold_seconds);
  std::printf("  warm cache: %10.0f q/s  (%.3fs)  speedup %.1fx\n", warm_qps,
              warm_seconds, warm_qps / cold_qps);
  std::printf(
      "  cache: hits=%llu misses=%llu evictions=%llu entries=%zu\n",
      static_cast<unsigned long long>(stats.hits),
      static_cast<unsigned long long>(stats.misses),
      static_cast<unsigned long long>(stats.evictions), stats.entries);

  // Batch-executor scaling (cold cache each run so the work is real).
  // Speedup beyond 1 thread requires actual cores; on a 1-core host the
  // pool only adds coordination overhead.
  std::printf("batch executor scaling (%zu-query batches, %u hw threads):\n",
              queries.size(), std::thread::hardware_concurrency());
  for (const int threads : {1, 2, 4, 8}) {
    service::BatchExecutor executor(svc, threads);
    cache->Clear();
    std::size_t answered = 0;
    const double seconds = bench::TimeSeconds([&] {
      for (int sweep = 0; sweep < sweeps; ++sweep) {
        cache->Clear();
        const auto responses = executor.ExecuteBatch(queries);
        answered += responses.size();
      }
    });
    std::printf("  threads=%d: %10.0f q/s\n", threads,
                static_cast<double>(answered) / seconds);
  }
  return 0;
}
