// Copyright 2026 The dpcube Authors.
//
// Serving-layer throughput: queries/sec against a stored release with a
// cold vs warm derived-marginal cache, batch-executor scaling across
// thread counts, and the same workload pushed through the real TCP
// serving subsystem on a loopback socket (N client threads × M
// connections each), with client-observed p50/p99 latency next to the
// in-process numbers. The release is the k-way cuboid cube (the paper's
// serving story: one budgeted k-way release makes the entire lower
// datacube derivable) and the query mix sweeps every derivable marginal,
// re-requested each sweep — the repeated-query regime the MarginalCache
// targets.
//
// Usage: bench_serve_throughput [d] [sweeps] [order]
//                               [--benchmark_out=FILE]
//
// --benchmark_out=FILE additionally writes the measurements as a
// google-benchmark-compatible JSON document ({"context": ..,
// "benchmarks": [{name, real_time, time_unit, <counters>}, ..]}) so the
// CI bench-regression gate (tools/bench_compare.py) can track this bench
// next to bench_fig6_runtime's native --benchmark_out. real_time is
// seconds-per-operation scaled to `time_unit` (lower is better);
// throughput lands in the `qps` counter.

#include <sys/resource.h>
#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "data/synthetic.h"
#include "net/address.h"
#include "net/client.h"
#include "net/socket_listener.h"
#include "service/batch_executor.h"
#include "service/marginal_cache.h"
#include "service/query_service.h"
#include "service/release_store.h"

namespace {

using namespace dpcube;

// One pass over every query; clearing the cache first makes every
// derivation run, keeping it warm makes every repeat a hash lookup.
double RunSweeps(const service::QueryService& svc,
                 const std::vector<service::Query>& queries, int sweeps,
                 service::MarginalCache* clear_between, double* seconds) {
  std::size_t answered = 0;
  *seconds = bench::TimeSeconds([&] {
    for (int sweep = 0; sweep < sweeps; ++sweep) {
      if (clear_between != nullptr) clear_between->Clear();
      for (const service::Query& q : queries) {
        const service::QueryResponse response = svc.Answer(q);
        if (!response.status.ok()) {
          std::fprintf(stderr, "query failed: %s\n",
                       response.status.ToString().c_str());
          std::exit(1);
        }
        ++answered;
      }
    }
  });
  return static_cast<double>(answered) / *seconds;
}

// Accumulates rows for --benchmark_out. The schema mirrors what
// google-benchmark emits so one comparison script handles both benches.
class JsonReport {
 public:
  void Add(const std::string& name, double seconds_per_op,
           std::vector<std::pair<std::string, double>> counters) {
    Row row;
    row.name = name;
    row.real_time_us = seconds_per_op * 1e6;
    row.counters = std::move(counters);
    rows_.push_back(std::move(row));
  }

  bool WriteTo(const std::string& path) const {
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) return false;
    std::fprintf(out,
                 "{\n  \"context\": {\"executable\": "
                 "\"bench_serve_throughput\"},\n  \"benchmarks\": [\n");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& row = rows_[i];
      std::fprintf(out,
                   "    {\"name\": \"%s\", \"run_type\": \"iteration\", "
                   "\"iterations\": 1, \"real_time\": %.17g, "
                   "\"cpu_time\": %.17g, \"time_unit\": \"us\"",
                   row.name.c_str(), row.real_time_us, row.real_time_us);
      for (const auto& [key, value] : row.counters) {
        std::fprintf(out, ", \"%s\": %.17g", key.c_str(), value);
      }
      std::fprintf(out, "}%s\n", i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    return true;
  }

 private:
  struct Row {
    std::string name;
    double real_time_us = 0.0;
    std::vector<std::pair<std::string, double>> counters;
  };
  std::vector<Row> rows_;
};

}  // namespace

int main(int argc, char** argv) {
  // Positional args first, flags (--benchmark_out=FILE) anywhere.
  std::vector<const char*> positional;
  std::string benchmark_out;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg.rfind("--benchmark_out=", 0) == 0) {
      benchmark_out = arg.substr(std::string("--benchmark_out=").size());
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    } else {
      positional.push_back(argv[a]);
    }
  }
  const int d = positional.size() > 0 ? std::atoi(positional[0]) : 12;
  const int sweeps = positional.size() > 1 ? std::atoi(positional[1]) : 40;
  const int order = positional.size() > 2 ? std::atoi(positional[2]) : 4;
  JsonReport report;

  Rng rng(99);
  const data::SparseCounts counts = data::SparseCounts::FromDataset(
      data::MakeProductBernoulli(d, 0.35, 20000, &rng));
  const marginal::Workload workload = marginal::AllKWayBits(d, order);
  std::vector<marginal::MarginalTable> noisy;
  for (std::size_t i = 0; i < workload.num_marginals(); ++i) {
    noisy.push_back(marginal::ComputeMarginal(counts, workload.mask(i)));
    for (auto& v : noisy.back().mutable_values()) {
      v += rng.NextLaplace(2.0);
    }
  }

  auto store = std::make_shared<service::ReleaseStore>();
  auto cache = std::make_shared<service::MarginalCache>();
  const double fit_seconds = bench::TimeSeconds([&] {
    if (!store->Add("bench", workload, std::move(noisy)).ok()) {
      std::exit(1);
    }
  });
  auto svc = std::make_shared<const service::QueryService>(store, cache);

  // A second release holding the single full-order marginal (2^d
  // cells): the payload shape the v2 binary codec targets, used by the
  // text-vs-binary comparison below.
  const bits::Mask full_mask = (bits::Mask{1} << d) - 1;
  {
    marginal::MarginalTable wide = marginal::ComputeMarginal(counts,
                                                             full_mask);
    for (auto& v : wide.mutable_values()) v += rng.NextLaplace(2.0);
    if (!store
             ->Add("wide", marginal::Workload(d, {full_mask}),
                   {std::move(wide)})
             .ok()) {
      std::exit(1);
    }
  }

  // The repeated-query workload: every derivable marginal (orders 0..order).
  std::vector<service::Query> queries;
  for (const bits::Mask beta : bits::MasksOfWeightAtMost(d, order)) {
    queries.push_back({"bench", service::QueryKind::kMarginal, beta, 0, 0});
  }
  std::printf(
      "serve throughput: d=%d, %zu marginals released, %zu distinct "
      "queries, %d sweeps (release fit: %.3fs)\n",
      d, workload.num_marginals(), queries.size(), sweeps, fit_seconds);

  double cold_seconds = 0.0;
  const double cold_qps =
      RunSweeps(*svc, queries, sweeps, cache.get(), &cold_seconds);
  double warm_seconds = 0.0;
  const double warm_qps =
      RunSweeps(*svc, queries, sweeps, nullptr, &warm_seconds);
  const service::CacheStats stats = cache->stats();
  std::printf("  cold cache: %10.0f q/s  (%.3fs)\n", cold_qps, cold_seconds);
  std::printf("  warm cache: %10.0f q/s  (%.3fs)  speedup %.1fx\n", warm_qps,
              warm_seconds, warm_qps / cold_qps);
  report.Add("serve/cold", 1.0 / cold_qps, {{"qps", cold_qps}});
  report.Add("serve/warm", 1.0 / warm_qps,
             {{"qps", warm_qps}, {"warm_speedup", warm_qps / cold_qps}});
  std::printf(
      "  cache: hits=%llu misses=%llu evictions=%llu entries=%zu\n",
      static_cast<unsigned long long>(stats.hits),
      static_cast<unsigned long long>(stats.misses),
      static_cast<unsigned long long>(stats.evictions), stats.entries);

  // Batch-executor scaling (cold cache each run so the work is real).
  // Speedup beyond 1 thread requires actual cores; on a 1-core host the
  // pool only adds coordination overhead.
  std::printf("batch executor scaling (%zu-query batches, %u hw threads):\n",
              queries.size(), std::thread::hardware_concurrency());
  for (const int threads : {1, 2, 4, 8}) {
    service::BatchExecutor executor(svc, threads);
    cache->Clear();
    std::size_t answered = 0;
    const double seconds = bench::TimeSeconds([&] {
      for (int sweep = 0; sweep < sweeps; ++sweep) {
        cache->Clear();
        const auto responses = executor.ExecuteBatch(queries);
        answered += responses.size();
      }
    });
    const double qps = static_cast<double>(answered) / seconds;
    std::printf("  threads=%d: %10.0f q/s\n", threads, qps);
    report.Add("batch/threads:" + std::to_string(threads), 1.0 / qps,
               {{"qps", qps}});
  }

  // The same service behind the real network stack: a loopback
  // SocketListener, N client threads × M connections each, one-shot cell
  // queries against the warm cache, latency observed from the client
  // side (so it includes framing, the socket round-trip, admission, and
  // the pool handoff).
  {
    ThreadPool pool(4);
    auto tcp_executor =
        std::make_shared<const service::BatchExecutor>(svc, &pool);
    net::ServerOptions options;
    options.admission.max_connections = 256;
    options.admission.max_queue_depth = 4096;
    options.http_listen_address = "127.0.0.1:0";
    net::SocketListener listener(
        options,
        net::ServeContext{store, cache, svc, tcp_executor, &pool});
    if (!listener.Start().ok()) {
      std::fprintf(stderr, "tcp bench: listen failed\n");
      return 1;
    }
    std::thread serve_thread([&listener] { listener.Serve().ok(); });
    const std::string address =
        "127.0.0.1:" + std::to_string(listener.bound_port());

    // Warm the cache once so the TCP numbers isolate serving overhead,
    // matching the in-process "warm cache" row.
    {
      auto warm = net::Client::Connect(address);
      if (warm.ok()) {
        for (const auto& q : queries) {
          warm.value().CallLines("query bench marginal " +
                                 std::to_string(q.beta));
        }
      }
    }

    std::printf("tcp loopback serving (cell queries, warm cache):\n");
    const struct {
      int threads;
      int conns;
    } configs[] = {{1, 1}, {2, 2}, {4, 2}};
    for (const auto& config : configs) {
      const int requests_per_thread = 2000;
      std::vector<double> latencies;
      sync::Mutex latencies_mu;
      std::atomic<int> errors{0};
      double seconds = bench::TimeSeconds([&] {
        std::vector<std::thread> workers;
        for (int t = 0; t < config.threads; ++t) {
          workers.emplace_back([&, t] {
            std::vector<net::Client> conns;
            for (int c = 0; c < config.conns; ++c) {
              auto client = net::Client::Connect(address);
              if (client.ok()) conns.push_back(std::move(client).value());
            }
            if (conns.empty()) {
              errors.fetch_add(requests_per_thread);
              return;
            }
            std::vector<double> local;
            local.reserve(static_cast<std::size_t>(requests_per_thread));
            for (int i = 0; i < requests_per_thread; ++i) {
              const auto& q = queries[static_cast<std::size_t>(
                  (t + i) % static_cast<int>(queries.size()))];
              const std::string request =
                  "query bench cell " + std::to_string(q.beta) + " 0";
              auto& conn = conns[static_cast<std::size_t>(
                  i % static_cast<int>(conns.size()))];
              std::string payload;
              const double rtt = bench::TimeSeconds([&] {
                if (!conn.Call(request, &payload).ok()) errors.fetch_add(1);
              });
              local.push_back(rtt * 1e6);
            }
            sync::MutexLock lock(&latencies_mu);
            latencies.insert(latencies.end(), local.begin(), local.end());
          });
        }
        for (auto& w : workers) w.join();
      });
      const double total =
          static_cast<double>(config.threads) * requests_per_thread;
      const double p50 = stats::Quantile(latencies, 0.5);
      const double p99 = stats::Quantile(latencies, 0.99);
      std::printf(
          "  clients=%dx%d: %10.0f q/s  p50=%.0fus p99=%.0fus"
          "  (errors=%d)\n",
          config.threads, config.conns, total / seconds, p50, p99,
          errors.load());
      report.Add("tcp/clients:" + std::to_string(config.threads) + "x" +
                     std::to_string(config.conns),
                 seconds / total,
                 {{"qps", total / seconds}, {"p50_us", p50}, {"p99_us", p99}});
    }
    // Protocol v2 payload comparison: the same full-marginal query over
    // one connection per codec. Text pays ~19-25 bytes per cell of
    // %.17g; binary pays exactly 8 — bytes/query and the client-side
    // latency quantiles make the trade measurable (and CI-gated once
    // merged into the baseline).
    std::printf(
        "full-marginal payloads, text vs binary codec (2^%d cells):\n", d);
    const std::string wide_request =
        "query wide marginal " + std::to_string(full_mask);
    const int marginal_requests = 300;
    double text_bytes_per_query = 0.0;
    for (const bool binary : {false, true}) {
      auto client = net::Client::Connect(address);
      if (!client.ok()) {
        std::fprintf(stderr, "tcp bench: connect failed\n");
        return 1;
      }
      if (binary &&
          !client.value()
               .Negotiate(service::kProtocolVersionV2,
                          service::Codec::kBinary)
               .ok()) {
        std::fprintf(stderr, "tcp bench: HELLO v2 binary failed\n");
        return 1;
      }
      std::vector<double> latencies;
      latencies.reserve(marginal_requests);
      std::size_t payload_bytes = 0;
      int errors = 0;
      const double seconds = bench::TimeSeconds([&] {
        for (int i = 0; i < marginal_requests; ++i) {
          std::string payload;
          const double rtt = bench::TimeSeconds([&] {
            if (!client.value().Call(wide_request, &payload).ok()) {
              ++errors;
            }
          });
          payload_bytes += payload.size();
          latencies.push_back(rtt * 1e6);
        }
      });
      const double bytes_per_query =
          static_cast<double>(payload_bytes) / marginal_requests;
      if (!binary) text_bytes_per_query = bytes_per_query;
      const double qps = marginal_requests / seconds;
      const double p50 = stats::Quantile(latencies, 0.5);
      const double p99 = stats::Quantile(latencies, 0.99);
      const char* codec_name = binary ? "binary" : "text";
      std::printf(
          "  %-6s: %8.0f bytes/query  %8.0f q/s  p50=%.0fus p99=%.0fus"
          "  (errors=%d)\n",
          codec_name, bytes_per_query, qps, p50, p99, errors);
      std::vector<std::pair<std::string, double>> counters = {
          {"bytes_per_query", bytes_per_query},
          {"p50_us", p50},
          {"p99_us", p99}};
      if (binary) {
        counters.push_back(
            {"text_to_binary_ratio", text_bytes_per_query / bytes_per_query});
      }
      report.Add(std::string("tcp_marginal/") + codec_name,
                 seconds / marginal_requests, std::move(counters));
      if (binary) {
        std::printf("  binary payload is %.2fx smaller than text\n",
                    text_bytes_per_query / bytes_per_query);
      }
    }
    // Observability tax: full /metrics scrapes over the HTTP endpoint
    // that rides the same poll loop. Latency and exposition size are
    // CI-gated next to the serving rows — a scrape must stay cheap
    // enough to run on a tight interval without denting query traffic.
    {
      std::uint16_t http_port = 0;
      {
        const std::string http_address = listener.http_bound_address();
        const std::size_t colon = http_address.rfind(':');
        if (colon != std::string::npos) {
          http_port = static_cast<std::uint16_t>(
              std::atoi(http_address.c_str() + colon + 1));
        }
      }
      const int scrapes = 200;
      std::vector<double> latencies;
      latencies.reserve(scrapes);
      std::size_t body_bytes = 0;
      int errors = 0;
      const double seconds = bench::TimeSeconds([&] {
        for (int i = 0; i < scrapes; ++i) {
          const double rtt = bench::TimeSeconds([&] {
            auto fd = net::ConnectTcp("127.0.0.1", http_port);
            if (!fd.ok()) {
              ++errors;
              return;
            }
            static const char kScrape[] = "GET /metrics HTTP/1.0\r\n\r\n";
            if (::send(fd.value().get(), kScrape, sizeof(kScrape) - 1,
                       MSG_NOSIGNAL) != sizeof(kScrape) - 1) {
              ++errors;
              return;
            }
            std::string response;
            char buf[8192];
            for (;;) {
              const ssize_t n =
                  ::recv(fd.value().get(), buf, sizeof(buf), 0);
              if (n <= 0) break;
              response.append(buf, static_cast<std::size_t>(n));
            }
            if (response.rfind("HTTP/1.0 200", 0) != 0) {
              ++errors;
              return;
            }
            body_bytes += response.size();
          });
          latencies.push_back(rtt * 1e6);
        }
      });
      const double qps = scrapes / seconds;
      const double bytes_per_scrape =
          static_cast<double>(body_bytes) / scrapes;
      const double p50 = stats::Quantile(latencies, 0.5);
      const double p99 = stats::Quantile(latencies, 0.99);
      std::printf(
          "http /metrics scrape: %8.0f scrapes/s  %8.0f bytes/scrape  "
          "p50=%.0fus p99=%.0fus  (errors=%d)\n",
          qps, bytes_per_scrape, p50, p99, errors);
      report.Add("http/metrics_scrape", seconds / scrapes,
                 {{"qps", qps},
                  {"bytes_per_scrape", bytes_per_scrape},
                  {"p50_us", p50},
                  {"p99_us", p99}});
    }
    listener.Shutdown();
    serve_thread.join();
  }

  // Connection-scale serving: a thousand idle connections parked on the
  // poller fleet while two hot clients keep querying through the crowd.
  // Idle sockets are pure poll-set weight — this leg measures what that
  // weight costs the hot path (p50/p99) and how fast the acceptor can
  // fill the fleet (accept_per_s), with one poller vs four. On a
  // single-core host the poller counts differ only in coordination
  // overhead; the rows exist so a multi-core CI run shows the spread.
  {
    // The fd budget: 1000 idle conns (bench side + server side) plus
    // headroom. Raise the soft limit if the hard limit allows; scale
    // the crowd down honestly if it does not.
    std::size_t idle_target = 1000;
    struct rlimit nofile {};
    if (::getrlimit(RLIMIT_NOFILE, &nofile) == 0) {
      const rlim_t wanted =
          static_cast<rlim_t>(2 * idle_target + 256);
      if (nofile.rlim_cur < wanted) {
        struct rlimit raised = nofile;
        raised.rlim_cur = std::min(wanted, nofile.rlim_max);
        (void)::setrlimit(RLIMIT_NOFILE, &raised);
        (void)::getrlimit(RLIMIT_NOFILE, &nofile);
      }
      if (nofile.rlim_cur < wanted) {
        idle_target = static_cast<std::size_t>(
            nofile.rlim_cur > 512 ? (nofile.rlim_cur - 256) / 2 : 128);
        std::printf(
            "tcp many-conns: fd limit %llu, scaling idle crowd to %zu\n",
            static_cast<unsigned long long>(nofile.rlim_cur), idle_target);
      }
    }
    std::printf("tcp many-conns (%zu idle + 2 hot clients, warm cache):\n",
                idle_target);
    for (const int pollers : {1, 4}) {
      ThreadPool pool(4);
      auto mc_executor =
          std::make_shared<const service::BatchExecutor>(svc, &pool);
      net::ServerOptions options;
      options.net_threads = pollers;
      options.admission.max_connections =
          static_cast<int>(idle_target) + 64;
      net::SocketListener listener(
          options,
          net::ServeContext{store, cache, svc, mc_executor, &pool});
      if (!listener.Start().ok()) {
        std::fprintf(stderr, "tcp many-conns bench: listen failed\n");
        return 1;
      }
      std::thread serve_thread([&listener] { listener.Serve().ok(); });
      const std::string address =
          "127.0.0.1:" + std::to_string(listener.bound_port());

      // Accept phase, timed: fill the fleet in backlog-sized batches,
      // waiting for the pollers to adopt each batch before the next.
      std::vector<UniqueFd> idle;
      idle.reserve(idle_target);
      bool accept_failed = false;
      const double accept_seconds = bench::TimeSeconds([&] {
        while (idle.size() < idle_target && !accept_failed) {
          const std::size_t batch =
              std::min<std::size_t>(100, idle_target - idle.size());
          for (std::size_t i = 0; i < batch; ++i) {
            auto fd = net::ConnectTcp("127.0.0.1", listener.bound_port());
            if (!fd.ok()) {
              accept_failed = true;
              break;
            }
            idle.push_back(std::move(fd).value());
          }
          auto pinned = [&listener] {
            std::size_t total = 0;
            for (int p = 0; p < listener.net_threads(); ++p) {
              total += listener.poller_connections(p);
            }
            return total;
          };
          while (pinned() < idle.size()) {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
        }
      });
      if (accept_failed) {
        std::fprintf(stderr, "tcp many-conns bench: connect failed\n");
        return 1;
      }
      const double accept_per_s =
          static_cast<double>(idle.size()) / accept_seconds;

      // Hot phase: two clients doing one-shot cell queries through the
      // idle crowd.
      const int hot_threads = 2;
      const int requests_per_thread = 1000;
      std::vector<double> latencies;
      sync::Mutex latencies_mu;
      std::atomic<int> errors{0};
      const double seconds = bench::TimeSeconds([&] {
        std::vector<std::thread> workers;
        for (int t = 0; t < hot_threads; ++t) {
          workers.emplace_back([&, t] {
            auto client = net::Client::Connect(address);
            if (!client.ok()) {
              errors.fetch_add(requests_per_thread);
              return;
            }
            std::vector<double> local;
            local.reserve(static_cast<std::size_t>(requests_per_thread));
            for (int i = 0; i < requests_per_thread; ++i) {
              const auto& q = queries[static_cast<std::size_t>(
                  (t + i) % static_cast<int>(queries.size()))];
              const std::string request =
                  "query bench cell " + std::to_string(q.beta) + " 0";
              std::string payload;
              const double rtt = bench::TimeSeconds([&] {
                if (!client.value().Call(request, &payload).ok()) {
                  errors.fetch_add(1);
                }
              });
              local.push_back(rtt * 1e6);
            }
            sync::MutexLock lock(&latencies_mu);
            latencies.insert(latencies.end(), local.begin(), local.end());
          });
        }
        for (auto& w : workers) w.join();
      });
      const double total =
          static_cast<double>(hot_threads) * requests_per_thread;
      const double p50 = stats::Quantile(latencies, 0.5);
      const double p99 = stats::Quantile(latencies, 0.99);
      std::printf(
          "  pollers=%d: %10.0f q/s  p50=%.0fus p99=%.0fus  "
          "accepts=%.0f/s  (errors=%d)\n",
          pollers, total / seconds, p50, p99, accept_per_s, errors.load());
      report.Add("tcp_many_conns/" + std::to_string(pollers) + "p",
                 seconds / total,
                 {{"qps", total / seconds},
                  {"p50_us", p50},
                  {"p99_us", p99},
                  {"accept_per_s", accept_per_s}});

      // Close the crowd before shutdown so drain reaps EOFs instead of
      // waiting out a thousand linger deadlines.
      idle.clear();
      listener.Shutdown();
      serve_thread.join();
    }
  }
  // Tracing tax: the same one-shot cell workload against an untraced
  // listener (trace ring disabled) and a fully traced one (ring +
  // per-span histograms + JSONL access log to /dev/null), best of seven
  // interleaved repetitions each. The traced row is hard-gated in-bench
  // at <= 1.25x the untraced per-query time so a tracing-cost
  // regression fails this binary directly, before
  // tools/bench_compare.py ever sees a baseline for the new rows.
  {
    struct Leg {
      double seconds_per_query = 0.0;
      double p50 = 0.0;
      double p99 = 0.0;
    };
    struct Server {
      std::unique_ptr<ThreadPool> pool;
      std::shared_ptr<const service::BatchExecutor> executor;
      std::unique_ptr<net::SocketListener> listener;
      std::thread serve_thread;
      std::string address;
    };
    auto start_server = [&](bool traced, Server* server) -> bool {
      server->pool = std::make_unique<ThreadPool>(4);
      server->executor = std::make_shared<const service::BatchExecutor>(
          svc, server->pool.get());
      net::ServerOptions options;
      options.admission.max_connections = 64;
      options.admission.max_queue_depth = 4096;
      options.trace_ring_capacity = traced ? 256 : 0;
      if (traced) {
        // Everything the traced path can cost: span stamping, ring
        // publication, metric recording, and a formatted access-log
        // line per request (sunk into /dev/null so only the formatting
        // and buffered write are measured).
        options.access_log_path = "/dev/null";
        options.slow_query_ms = 1000;
      }
      server->listener = std::make_unique<net::SocketListener>(
          options, net::ServeContext{store, cache, svc, server->executor,
                                     server->pool.get()});
      if (!server->listener->Start().ok()) return false;
      server->serve_thread =
          std::thread([l = server->listener.get()] { l->Serve().ok(); });
      server->address =
          "127.0.0.1:" + std::to_string(server->listener->bound_port());
      return true;
    };
    const int leg_threads = 2;
    const int leg_conns = 2;
    const int requests_per_thread = 1500;
    auto run_rep = [&](const std::string& address, int rep, Leg* leg,
                       double* rep_seconds_per_query) -> bool {
      std::vector<double> latencies;
      sync::Mutex latencies_mu;
      std::atomic<int> errors{0};
      const double seconds = bench::TimeSeconds([&] {
        std::vector<std::thread> workers;
        for (int t = 0; t < leg_threads; ++t) {
          workers.emplace_back([&, t] {
            std::vector<net::Client> conns;
            for (int c = 0; c < leg_conns; ++c) {
              auto client = net::Client::Connect(address);
              if (client.ok()) conns.push_back(std::move(client).value());
            }
            if (conns.empty()) {
              errors.fetch_add(requests_per_thread);
              return;
            }
            std::vector<double> local;
            local.reserve(static_cast<std::size_t>(requests_per_thread));
            for (int i = 0; i < requests_per_thread; ++i) {
              const auto& q = queries[static_cast<std::size_t>(
                  (t + i) % static_cast<int>(queries.size()))];
              const std::string request =
                  "query bench cell " + std::to_string(q.beta) + " 0";
              auto& conn = conns[static_cast<std::size_t>(
                  i % static_cast<int>(conns.size()))];
              std::string payload;
              const double rtt = bench::TimeSeconds([&] {
                if (!conn.Call(request, &payload).ok()) {
                  errors.fetch_add(1);
                }
              });
              local.push_back(rtt * 1e6);
            }
            sync::MutexLock lock(&latencies_mu);
            latencies.insert(latencies.end(), local.begin(), local.end());
          });
        }
        for (auto& w : workers) w.join();
      });
      if (errors.load() > 0) return false;
      const double total =
          static_cast<double>(leg_threads) * requests_per_thread;
      const double per_query = seconds / total;
      *rep_seconds_per_query = per_query;
      if (rep == 0 || per_query < leg->seconds_per_query) {
        leg->seconds_per_query = per_query;
        leg->p50 = stats::Quantile(latencies, 0.5);
        leg->p99 = stats::Quantile(latencies, 0.99);
      }
      return true;
    };
    Server untraced_server, traced_server;
    bool ok = start_server(false, &untraced_server) &&
              start_server(true, &traced_server);
    Leg untraced, traced;
    // Interleave the legs rep by rep rather than running one leg to
    // completion before the other: shared machines drift by double-digit
    // percentages over the seconds a leg takes, and back-to-back leg
    // blocks turn that drift straight into a phantom overhead (or a
    // phantom speedup). Each rep pair runs under near-identical host
    // conditions, so its traced/untraced ratio isolates tracing; the
    // gate takes the median of the per-pair ratios, which a single
    // noisy rep cannot move. Within a pair the order alternates across
    // reps — a monotone host slowdown would otherwise bias every pair
    // the same way.
    std::vector<double> pair_ratios;
    for (int rep = 0; rep < 7 && ok; ++rep) {
      double untraced_rep = 0.0;
      double traced_rep = 0.0;
      if (rep % 2 == 0) {
        ok = run_rep(untraced_server.address, rep, &untraced, &untraced_rep) &&
             run_rep(traced_server.address, rep, &traced, &traced_rep);
      } else {
        ok = run_rep(traced_server.address, rep, &traced, &traced_rep) &&
             run_rep(untraced_server.address, rep, &untraced, &untraced_rep);
      }
      if (ok) pair_ratios.push_back(traced_rep / untraced_rep);
    }
    for (Server* server : {&untraced_server, &traced_server}) {
      if (server->listener) server->listener->Shutdown();
      if (server->serve_thread.joinable()) server->serve_thread.join();
    }
    if (!ok) {
      std::fprintf(stderr, "tcp_cell tracing bench: leg failed\n");
      return 1;
    }
    const double overhead = stats::Quantile(pair_ratios, 0.5);
    std::printf(
        "tcp cell queries, tracing off vs on (best of 7 interleaved "
        "reps; overhead = median per-rep ratio):\n");
    std::printf("  untraced: %10.0f q/s  p50=%.0fus p99=%.0fus\n",
                1.0 / untraced.seconds_per_query, untraced.p50,
                untraced.p99);
    std::printf(
        "  traced:   %10.0f q/s  p50=%.0fus p99=%.0fus  (%.2fx untraced)\n",
        1.0 / traced.seconds_per_query, traced.p50, traced.p99, overhead);
    report.Add("tcp_cell/untraced", untraced.seconds_per_query,
               {{"qps", 1.0 / untraced.seconds_per_query},
                {"p50_us", untraced.p50},
                {"p99_us", untraced.p99}});
    report.Add("tcp_cell/traced", traced.seconds_per_query,
               {{"qps", 1.0 / traced.seconds_per_query},
                {"p50_us", traced.p50},
                {"p99_us", traced.p99},
                {"traced_overhead", overhead}});
    if (overhead > 1.25) {
      std::fprintf(stderr,
                   "FAIL: tracing overhead %.2fx exceeds the 1.25x gate "
                   "(untraced %.1fus/query, traced %.1fus/query)\n",
                   overhead, untraced.seconds_per_query * 1e6,
                   traced.seconds_per_query * 1e6);
      return 1;
    }
  }
  if (!benchmark_out.empty() && !report.WriteTo(benchmark_out)) {
    std::fprintf(stderr, "cannot write %s\n", benchmark_out.c_str());
    return 1;
  }
  return 0;
}
