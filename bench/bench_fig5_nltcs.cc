// Copyright 2026 The dpcube Authors.
//
// Experiment F5 (paper Figure 5 a-f): relative error vs epsilon for the
// seven methods over the six workloads on the NLTCS-like dataset
// (21576 rows, 16 binary attributes, d = 16; see DESIGN.md for the
// synthetic substitution).
//
// Expected shapes (paper): optimal budgeting reliably beats uniform
// (30-35% on F for the mixed workloads); C most accurate on the 1-way
// family; I becomes competitive as the marginal order grows.

#include <cstdio>

#include "bench/bench_fig_marginals.h"
#include "data/synthetic.h"

int main() {
  using namespace dpcube;
  Rng data_rng(43);
  const data::Dataset dataset = data::MakeNltcsLike(21'576, &data_rng);
  const data::SparseCounts counts = data::SparseCounts::FromDataset(dataset);
  std::printf("# F5: NLTCS-like, %zu rows, d=%d, occupied=%zu\n",
              dataset.num_rows(), dataset.schema().TotalBits(),
              counts.num_occupied());

  bench::FigureConfig config;
  config.figure_id = "fig5";
  config.epsilons = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
  config.reps = 5;
  bench::RunMarginalFigure(config, dataset.schema(), counts, /*seed=*/2);
  return 0;
}
