// Copyright 2026 The dpcube Authors.
//
// Shared plumbing for the figure/table reproduction benches: the seven
// method configurations of the paper's Section 5 (I, Q, Q+, F, F+, C, C+)
// and a runner that measures relative error over repetitions.

#ifndef DPCUBE_BENCH_BENCH_COMMON_H_
#define DPCUBE_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/contingency_table.h"
#include "engine/metrics.h"
#include "engine/release_engine.h"
#include "strategy/cluster_strategy.h"
#include "strategy/fourier_strategy.h"
#include "strategy/identity_strategy.h"
#include "strategy/query_strategy.h"

namespace dpcube {
namespace bench {

/// One of the paper's evaluated methods: a strategy plus a budget mode.
struct Method {
  std::string label;                           // "F+", "C", ...
  const strategy::MarginalStrategy* strategy;  // Not owned.
  engine::BudgetMode mode;
};

/// Owns the four strategy instances for one workload and exposes the
/// paper's seven method configurations over them. Construction runs the
/// cluster search, which is deliberately part of the setup cost (the
/// paper's Figure 6 times it explicitly).
class MethodSuite {
 public:
  MethodSuite(const marginal::Workload& workload, bool include_cluster) {
    identity_ = std::make_unique<strategy::IdentityStrategy>(workload);
    query_ = std::make_unique<strategy::QueryStrategy>(workload);
    fourier_ = std::make_unique<strategy::FourierStrategy>(workload);
    methods_.push_back({"F", fourier_.get(), engine::BudgetMode::kUniform});
    methods_.push_back({"F+", fourier_.get(), engine::BudgetMode::kOptimal});
    if (include_cluster) {
      cluster_ = std::make_unique<strategy::ClusterStrategy>(workload);
      methods_.push_back({"C", cluster_.get(), engine::BudgetMode::kUniform});
      methods_.push_back(
          {"C+", cluster_.get(), engine::BudgetMode::kOptimal});
    }
    methods_.push_back({"Q", query_.get(), engine::BudgetMode::kUniform});
    methods_.push_back({"Q+", query_.get(), engine::BudgetMode::kOptimal});
    methods_.push_back({"I", identity_.get(), engine::BudgetMode::kUniform});
  }

  const std::vector<Method>& methods() const { return methods_; }

 private:
  std::unique_ptr<strategy::IdentityStrategy> identity_;
  std::unique_ptr<strategy::QueryStrategy> query_;
  std::unique_ptr<strategy::FourierStrategy> fourier_;
  std::unique_ptr<strategy::ClusterStrategy> cluster_;
  std::vector<Method> methods_;
};

/// Mean relative error of `method` over `reps` repetitions at epsilon.
inline double MeasureRelativeError(const Method& method,
                                   const marginal::Workload& workload,
                                   const data::SparseCounts& counts,
                                   double epsilon, int reps, Rng* rng) {
  engine::ReleaseOptions options;
  options.params.epsilon = epsilon;
  options.budget_mode = method.mode;
  double total = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    auto outcome =
        engine::ReleaseWorkload(*method.strategy, counts, options, rng);
    if (!outcome.ok()) {
      std::fprintf(stderr, "method %s failed: %s\n", method.label.c_str(),
                   outcome.status().ToString().c_str());
      return -1.0;
    }
    auto report =
        engine::EvaluateRelease(workload, counts, outcome.value().marginals);
    if (!report.ok()) return -1.0;
    total += report.value().relative_error;
  }
  return total / reps;
}

/// Wall-clock seconds of a callable.
template <typename Fn>
double TimeSeconds(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace bench
}  // namespace dpcube

#endif  // DPCUBE_BENCH_BENCH_COMMON_H_
