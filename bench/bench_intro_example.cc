// Copyright 2026 The dpcube Authors.
//
// Experiment E0: the paper's Section 1 worked example. Reproduces the
// variance ladder 48 -> 46.17 -> 34.6 (paper's manual recovery) and shows
// the full Step-3 GLS recovery landing below all three (~29.96/eps^2),
// then confirms the prediction empirically through the real pipeline.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "budget/grouped_budget.h"
#include "common/stats.h"
#include "recovery/consistency.h"

namespace {

using namespace dpcube;

data::SparseCounts Figure1Data() {
  data::Schema schema({{"C", 2}, {"B", 2}, {"A", 2}});
  data::Dataset ds(schema);
  (void)ds.AppendRow({1, 0, 0});
  (void)ds.AppendRow({1, 1, 0});
  (void)ds.AppendRow({0, 0, 0});
  (void)ds.AppendRow({1, 0, 0});
  (void)ds.AppendRow({1, 0, 1});
  return data::SparseCounts::FromDataset(ds);
}

}  // namespace

int main() {
  dp::PrivacyParams params;
  params.epsilon = 1.0;
  params.neighbour = dp::NeighbourModel::kAddRemove;

  const marginal::Workload workload(3,
                                    {bits::Mask{0b100}, bits::Mask{0b110}});
  strategy::QueryStrategy strat(workload);

  std::printf("# E0: Section 1 worked example (eps = 1, add/remove model)\n");
  auto uniform = budget::UniformGroupBudgets(strat.groups(), params);
  auto optimal = budget::OptimalGroupBudgets(strat.groups(), params);
  if (!uniform.ok() || !optimal.ok()) return 1;
  std::printf("uniform_budgets        total_variance=%.3f   (paper: 48)\n",
              uniform.value().variance_objective);
  const linalg::Vector paper_eta = {4.0 / 9.0, 5.0 / 9.0};
  std::printf("paper_nonuniform       total_variance=%.3f   (paper: 46.17)\n",
              budget::VarianceObjective(strat.groups(), paper_eta, params));
  std::printf("optimal_budgets        total_variance=%.3f\n",
              optimal.value().variance_objective);
  const double var1 = dp::LaplaceVariance(paper_eta[0]);
  const double var2 = dp::LaplaceVariance(paper_eta[1]);
  std::printf("paper_manual_recovery  total_variance=%.3f   (paper: 34.6)\n",
              6.0 * (0.25 * var1 + 0.5 * var2));

  // Empirical: full pipeline (optimal budgets + GLS recovery/consistency).
  const data::SparseCounts counts = Figure1Data();
  std::vector<marginal::MarginalTable> truth;
  for (std::size_t i = 0; i < workload.num_marginals(); ++i) {
    truth.push_back(marginal::ComputeMarginal(counts, workload.mask(i)));
  }
  engine::ReleaseOptions options;
  options.params = params;
  options.budget_mode = engine::BudgetMode::kOptimal;
  Rng rng(1);
  std::vector<stats::RunningStats> cells(6);
  for (int rep = 0; rep < 50'000; ++rep) {
    auto outcome = engine::ReleaseWorkload(strat, counts, options, &rng);
    if (!outcome.ok()) return 1;
    std::size_t idx = 0;
    for (std::size_t i = 0; i < workload.num_marginals(); ++i) {
      for (std::size_t g = 0; g < truth[i].num_cells(); ++g) {
        cells[idx++].Add(outcome.value().marginals[i].value(g) -
                         truth[i].value(g));
      }
    }
  }
  double total = 0.0;
  for (auto& s : cells) total += s.variance();
  std::printf("full_gls_recovery      total_variance=%.3f   (empirical, "
              "analytic ~29.96)\n",
              total);
  return 0;
}
