// Copyright 2026 The dpcube Authors.
//
// Experiment F6 (paper Figure 6): end-to-end running time of each method
// (F, C, Q, I) per workload on the NLTCS-like data, including strategy
// construction — which is the point of the figure: the clustering search
// behind C dominates everything else by orders of magnitude, while
// F/Q/I stay near-instant. Uses google-benchmark with one iteration per
// measurement (the cluster search is deterministic and expensive).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "data/synthetic.h"

namespace {

using namespace dpcube;

const char* const kWorkloads[] = {"Q1", "Q1a", "Q1*", "Q2", "Q2a", "Q2*"};

const data::SparseCounts& NltcsCounts() {
  static const data::SparseCounts* counts = [] {
    Rng rng(44);
    const data::Dataset ds = data::MakeNltcsLike(21'576, &rng);
    return new data::SparseCounts(data::SparseCounts::FromDataset(ds));
  }();
  return *counts;
}

marginal::Workload WorkloadFor(int index) {
  Rng rng(0);
  data::Schema schema = data::NltcsSchema();
  auto workload = marginal::WorkloadByName(schema, kWorkloads[index]);
  return workload.value();
}

template <typename StrategyT>
void RunEndToEnd(benchmark::State& state) {
  const marginal::Workload workload = WorkloadFor(state.range(0));
  const data::SparseCounts& counts = NltcsCounts();
  Rng rng(17);
  engine::ReleaseOptions options;
  options.params.epsilon = 0.5;
  options.budget_mode = engine::BudgetMode::kOptimal;
  for (auto _ : state) {
    // End to end: strategy construction + budgets + measure + recover.
    StrategyT strat(workload);
    auto outcome = engine::ReleaseWorkload(strat, counts, options, &rng);
    if (!outcome.ok()) state.SkipWithError("release failed");
    benchmark::DoNotOptimize(outcome);
  }
  state.SetLabel(kWorkloads[state.range(0)]);
}

void BM_Fourier(benchmark::State& state) {
  RunEndToEnd<strategy::FourierStrategy>(state);
}
void BM_Cluster(benchmark::State& state) {
  RunEndToEnd<strategy::ClusterStrategy>(state);
}
void BM_Query(benchmark::State& state) {
  RunEndToEnd<strategy::QueryStrategy>(state);
}
void BM_Identity(benchmark::State& state) {
  RunEndToEnd<strategy::IdentityStrategy>(state);
}

}  // namespace

BENCHMARK(BM_Fourier)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Cluster)
    ->DenseRange(0, 5)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Query)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Identity)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
