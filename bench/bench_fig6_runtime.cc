// Copyright 2026 The dpcube Authors.
//
// Experiment F6 (paper Figure 6): end-to-end running time of each method
// (F, C, Q, I) per workload on the NLTCS-like data, including strategy
// construction — which is the point of the figure: the clustering search
// behind C dominates everything else by orders of magnitude, while
// F/Q/I stay near-instant. Uses google-benchmark with one iteration per
// measurement (the cluster search is deterministic and expensive).
//
// The BM_*ThreadScaling families at the bottom measure the same pipeline
// under the shared ThreadPool at 1/2/4/8 threads on the largest cuboid
// workload and report "speedup_vs_1t" (per-iteration time at 1 thread
// divided by the current per-iteration time) plus the per-phase seconds
// from engine::PhaseTimings, so a regression in parallel scaling is
// attributable to a phase. BM_ClusterConstructionThreadScaling isolates
// strategy *construction* — the clustering search that dominates the
// figure — and reports its own construction-phase speedup_vs_1t. Run on
// a machine with >= 8 cores to see the full fan-out; the parallel
// determinism suite guarantees the released values are bit-identical at
// every point of the sweep.
//
// Set DPCUBE_BENCH_SMALL=1 to shrink every dataset/domain to a pinned
// small configuration: that is what the CI bench-regression job runs
// (with --benchmark_out) and what bench/baseline/BENCH_baseline.json was
// generated from, so local full-size numbers and the CI trend line don't
// get mixed up.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <map>
#include <string>

#include "bench/bench_common.h"
#include "common/thread_pool.h"
#include "data/synthetic.h"
#include "strategy/cluster_strategy.h"
#include "transform/walsh_hadamard.h"

namespace {

using namespace dpcube;

// Pinned small configuration for CI (see header comment).
bool SmallMode() {
  static const bool small = [] {
    const char* env = std::getenv("DPCUBE_BENCH_SMALL");
    return env != nullptr && env[0] != '\0' && std::string(env) != "0";
  }();
  return small;
}

const char* const kWorkloads[] = {"Q1", "Q1a", "Q1*", "Q2", "Q2a", "Q2*"};

const data::SparseCounts& NltcsCounts() {
  static const data::SparseCounts* counts = [] {
    Rng rng(44);
    const data::Dataset ds =
        data::MakeNltcsLike(SmallMode() ? 4'000 : 21'576, &rng);
    return new data::SparseCounts(data::SparseCounts::FromDataset(ds));
  }();
  return *counts;
}

marginal::Workload WorkloadFor(int index) {
  Rng rng(0);
  data::Schema schema = data::NltcsSchema();
  auto workload = marginal::WorkloadByName(schema, kWorkloads[index]);
  return workload.value();
}

template <typename StrategyT>
void RunEndToEnd(benchmark::State& state) {
  const marginal::Workload workload = WorkloadFor(state.range(0));
  const data::SparseCounts& counts = NltcsCounts();
  Rng rng(17);
  engine::ReleaseOptions options;
  options.params.epsilon = 0.5;
  options.budget_mode = engine::BudgetMode::kOptimal;
  for (auto _ : state) {
    // End to end: strategy construction + budgets + measure + recover.
    StrategyT strat(workload);
    auto outcome = engine::ReleaseWorkload(strat, counts, options, &rng);
    if (!outcome.ok()) state.SkipWithError("release failed");
    benchmark::DoNotOptimize(outcome);
  }
  state.SetLabel(kWorkloads[state.range(0)]);
}

void BM_Fourier(benchmark::State& state) {
  RunEndToEnd<strategy::FourierStrategy>(state);
}
void BM_Cluster(benchmark::State& state) {
  RunEndToEnd<strategy::ClusterStrategy>(state);
}
void BM_Query(benchmark::State& state) {
  RunEndToEnd<strategy::QueryStrategy>(state);
}
void BM_Identity(benchmark::State& state) {
  RunEndToEnd<strategy::IdentityStrategy>(state);
}

// Per-iteration 1-thread baselines, recorded when the Arg(1) member of a
// family runs (registration order puts it first) and used by the wider
// members to report their speedup.
std::map<std::string, double>& BaselineSeconds() {
  static std::map<std::string, double> baselines;
  return baselines;
}

void ReportScaling(benchmark::State& state, const std::string& family,
                   double total_seconds) {
  const double per_iter =
      total_seconds / static_cast<double>(state.iterations());
  if (state.range(0) == 1) BaselineSeconds()[family] = per_iter;
  const auto base = BaselineSeconds().find(family);
  if (base != BaselineSeconds().end() && per_iter > 0.0) {
    state.counters["speedup_vs_1t"] = base->second / per_iter;
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}

// Largest cuboid workload the NLTCS benches use: all marginals of up to
// three attributes (697 cuboids; ~50k occupied cells at 200k rows), heavy
// enough that the measurement fan-out dominates the budget solve.
const data::SparseCounts& BigNltcsCounts() {
  static const data::SparseCounts* counts = [] {
    Rng rng(45);
    const data::Dataset ds =
        data::MakeNltcsLike(SmallMode() ? 30'000 : 200'000, &rng);
    return new data::SparseCounts(data::SparseCounts::FromDataset(ds));
  }();
  return *counts;
}

// End-to-end private release (budgets + parallel per-cuboid measurement +
// recovery) at state.range(0) threads.
void BM_ReleaseThreadScaling(benchmark::State& state) {
  ThreadPool::ResetSharedPoolForTests(static_cast<int>(state.range(0)));
  static const strategy::FourierStrategy* strat = [] {
    return new strategy::FourierStrategy(
        marginal::WorkloadQk(data::NltcsSchema(), 3));
  }();
  const data::SparseCounts& counts = BigNltcsCounts();
  engine::ReleaseOptions options;
  options.params.epsilon = 0.5;
  options.budget_mode = engine::BudgetMode::kOptimal;
  Rng rng(17);
  double pipeline = 0.0, measure = 0.0, budget = 0.0;
  for (auto _ : state) {
    auto outcome = engine::ReleaseWorkload(*strat, counts, options, &rng);
    if (!outcome.ok()) {
      state.SkipWithError("release failed");
      break;
    }
    benchmark::DoNotOptimize(outcome);
    pipeline += outcome.value().timings.total_seconds;
    measure += outcome.value().timings.measure_seconds;
    budget += outcome.value().timings.budget_seconds;
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["measure_s"] = measure / iters;
  state.counters["budget_s"] = budget / iters;
  ReportScaling(state, "release", pipeline);
  state.SetLabel("Q3 (largest cuboid fan-out)");
}

// Strategy construction in isolation: the clustering search behind C is
// the phase Figure 6 is really about, and since this PR it fans its
// candidate-merge evaluations out on the shared pool under the
// work-stealing schedule. construction_s is the per-iteration wall time
// of the ClusterStrategy constructor alone; speedup_vs_1t is the
// construction-phase speedup the acceptance gate watches.
void BM_ClusterConstructionThreadScaling(benchmark::State& state) {
  ThreadPool::ResetSharedPoolForTests(static_cast<int>(state.range(0)));
  static const marginal::Workload* workload = [] {
    if (SmallMode()) {
      // First 10 NLTCS attributes: the search keeps the same shape with
      // ~1/6 the pair-evaluation cost, small enough for the CI gate.
      std::vector<data::Attribute> attrs;
      for (std::size_t i = 0; i < 10; ++i) {
        attrs.push_back(data::NltcsSchema().attribute(i));
      }
      return new marginal::Workload(
          marginal::WorkloadQk(data::Schema(std::move(attrs)), 2));
    }
    return new marginal::Workload(
        marginal::WorkloadQk(data::NltcsSchema(), 2));
  }();
  double construction = 0.0;
  for (auto _ : state) {
    strategy::ClusterStrategy strat(*workload);
    benchmark::DoNotOptimize(strat.materialized().data());
    construction += strat.construction_seconds();
  }
  state.counters["construction_s"] =
      construction / static_cast<double>(state.iterations());
  ReportScaling(state, "construction_C", construction);
  state.SetLabel(SmallMode() ? "Q2 (10 attrs, clustering search)"
                             : "Q2 (clustering search)");
}

// Full-domain 2^22 Walsh–Hadamard butterflies (the transform kernel under
// consistency recovery and witness materialisation).
void BM_WalshHadamardThreadScaling(benchmark::State& state) {
  ThreadPool::ResetSharedPoolForTests(static_cast<int>(state.range(0)));
  std::vector<double> x(std::size_t{1} << (SmallMode() ? 18 : 22));
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<double>(i % 97);
  }
  double total = 0.0;
  for (auto _ : state) {
    total += bench::TimeSeconds([&] { transform::WalshHadamard(&x); });
    benchmark::DoNotOptimize(x.data());
  }
  ReportScaling(state, "wht", total);
}

}  // namespace

BENCHMARK(BM_Fourier)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Cluster)
    ->DenseRange(0, 5)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Query)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Identity)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

// Thread-scaling sweeps (registered last so the figure's single-thread
// numbers above are unaffected by pool resizing).
// MinTime (not a single iteration) because the 1/2-thread points are
// gated by the CI bench-regression job: one-shot ms-scale wall times on
// shared runners are too noisy to hold a 25% tolerance.
BENCHMARK(BM_ClusterConstructionThreadScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MinTime(0.5);
BENCHMARK(BM_ReleaseThreadScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MinTime(0.5);
BENCHMARK(BM_WalshHadamardThreadScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MinTime(0.5);

BENCHMARK_MAIN();
