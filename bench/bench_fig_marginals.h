// Copyright 2026 The dpcube Authors.
//
// Shared driver for the Figure 4 / Figure 5 reproductions: for each of
// the paper's six workloads (Q1, Q1*, Q1a, Q2, Q2*, Q2a) and each of the
// seven methods (F, F+, C, C+, Q, Q+, I), sweep epsilon and print one
// CSV-ish series row per point:
//   fig=<id> workload=<name> method=<label> eps=<e> relerr=<r>
// These are exactly the series the paper plots.

#ifndef DPCUBE_BENCH_BENCH_FIG_MARGINALS_H_
#define DPCUBE_BENCH_BENCH_FIG_MARGINALS_H_

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "marginal/workload.h"

namespace dpcube {
namespace bench {

struct FigureConfig {
  std::string figure_id;          // "fig4" / "fig5".
  std::vector<double> epsilons;   // The x axis.
  int reps = 3;                   // Repetitions per point.
  bool include_cluster = true;    // C/C+ can be disabled for speed.
};

inline void RunMarginalFigure(const FigureConfig& config,
                              const data::Schema& schema,
                              const data::SparseCounts& counts,
                              std::uint64_t seed) {
  const char* workload_names[] = {"Q1", "Q1a", "Q1*", "Q2", "Q2a", "Q2*"};
  Rng rng(seed);
  for (const char* name : workload_names) {
    auto workload = marginal::WorkloadByName(schema, name);
    if (!workload.ok()) {
      std::fprintf(stderr, "bad workload %s\n", name);
      return;
    }
    const double suite_seconds = TimeSeconds([&] {
      MethodSuite suite(workload.value(), config.include_cluster);
      for (const Method& method : suite.methods()) {
        for (double eps : config.epsilons) {
          const double err = MeasureRelativeError(
              method, workload.value(), counts, eps, config.reps, &rng);
          std::printf("%s workload=%s method=%s eps=%.2f relerr=%.6f\n",
                      config.figure_id.c_str(), name, method.label.c_str(),
                      eps, err);
          std::fflush(stdout);
        }
      }
    });
    std::printf("%s workload=%s total_seconds=%.1f\n",
                config.figure_id.c_str(), name, suite_seconds);
  }
}

}  // namespace bench
}  // namespace dpcube

#endif  // DPCUBE_BENCH_BENCH_FIG_MARGINALS_H_
