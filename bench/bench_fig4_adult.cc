// Copyright 2026 The dpcube Authors.
//
// Experiment F4 (paper Figure 4 a-f): relative error vs epsilon for the
// seven methods over the six workloads on the Adult-like dataset
// (32561 rows, 8 attributes, encoded d = 23; see DESIGN.md for the
// synthetic substitution of the UCI extract). The epsilon grid is thinned
// to 6 points to keep single-core runtime reasonable; the series shapes
// are unaffected.
//
// Expected shapes (paper): I never competitive; Q/Q+ generally best;
// S+ <= S for every strategy; relative error ~ 1/eps; accuracy degrades
// from Q1-family to Q2-family workloads.

#include <cstdio>

#include "bench/bench_fig_marginals.h"
#include "data/synthetic.h"

int main() {
  using namespace dpcube;
  Rng data_rng(42);
  const data::Dataset dataset = data::MakeAdultLike(32'561, &data_rng);
  const data::SparseCounts counts = data::SparseCounts::FromDataset(dataset);
  std::printf("# F4: Adult-like, %zu rows, d=%d, occupied=%zu\n",
              dataset.num_rows(), dataset.schema().TotalBits(),
              counts.num_occupied());

  bench::FigureConfig config;
  config.figure_id = "fig4";
  config.epsilons = {0.1, 0.2, 0.4, 0.6, 0.8, 1.0};
  config.reps = 3;
  bench::RunMarginalFigure(config, dataset.schema(), counts, /*seed=*/1);
  return 0;
}
