// Copyright 2026 The dpcube Authors.
//
// Durable-log throughput: append+fsync cost of the WAL that backs
// `serve --state-dir`, measured three ways —
//
//   * solo        — one thread, one Sync per Append (the worst case a
//                   lone quota charge pays on the query path);
//   * group[N]    — N threads appending concurrently, so the changelog's
//                   group commit coalesces their fsyncs (the serving
//                   regime: concurrent charges share a flush);
//   * replay      — cold-boot replay rate over the records the other
//                   legs wrote (bounds recovery time per record).
//
// Usage: bench_wal_append [records_per_leg]

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/wal.h"
#include "service/mutation.h"

namespace {

using namespace dpcube;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// One thread's share of a leg: append+sync `count` quota-charge records
// (the mutation the serving hot path logs).
void AppendLoop(wal::Changelog* log, int count, std::atomic<int>* failures) {
  const std::string payload = service::EncodeMutation(
      service::Mutation::QuotaCharge("bench", 1, 0, 0));
  for (int i = 0; i < count; ++i) {
    auto lsn = log->Append(payload);
    if (!lsn.ok() || !log->Sync(lsn.value()).ok()) {
      failures->fetch_add(1);
      return;
    }
  }
}

double RunLeg(const std::string& path, std::uint64_t next_lsn, int threads,
              int records) {
  auto opened = wal::Changelog::Open(path, next_lsn);
  if (!opened.ok()) {
    std::fprintf(stderr, "open %s: %s\n", path.c_str(),
                 opened.status().ToString().c_str());
    std::exit(1);
  }
  std::atomic<int> failures{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back(AppendLoop, opened->get(), records / threads,
                         &failures);
  }
  for (auto& worker : workers) worker.join();
  const double seconds = SecondsSince(start);
  if (failures.load() != 0) {
    std::fprintf(stderr, "append failures: %d\n", failures.load());
    std::exit(1);
  }
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  int records = 2000;
  if (argc > 1) records = std::atoi(argv[1]);
  if (records < 8) records = 8;

  const char* tmpdir = std::getenv("TMPDIR");
  const std::string dir =
      std::string(tmpdir != nullptr ? tmpdir : "/tmp") + "/dpcube_wal_bench";
  if (!wal::MakeDirs(dir).ok()) {
    std::fprintf(stderr, "cannot create %s\n", dir.c_str());
    return 1;
  }

  std::printf("%-10s %10s %12s %12s\n", "leg", "records", "seconds",
              "records/s");
  const int thread_counts[] = {1, 2, 8};
  for (const int threads : thread_counts) {
    const std::string path =
        dir + "/changelog.t" + std::to_string(threads);
    std::remove(path.c_str());
    const double seconds = RunLeg(path, 1, threads, records);
    std::printf("%s[%d] %9d %12.4f %12.0f\n", threads == 1 ? "solo" : "group",
                threads, records, seconds, records / seconds);
    // Replay the leg's records to measure cold-boot recovery rate.
    std::uint64_t replayed = 0;
    const auto start = std::chrono::steady_clock::now();
    auto result = wal::ReplayChangelog(
        path, [&replayed](std::uint64_t, std::string_view payload) {
          service::Mutation mutation;
          if (service::DecodeMutation(payload, &mutation).ok()) replayed += 1;
        });
    const double replay_seconds = SecondsSince(start);
    if (!result.ok() || replayed == 0) {
      std::fprintf(stderr, "replay failed\n");
      return 1;
    }
    std::printf("%-10s %9llu %12.4f %12.0f\n", "  replay",
                static_cast<unsigned long long>(replayed), replay_seconds,
                replayed / replay_seconds);
    std::remove(path.c_str());
  }
  return 0;
}
