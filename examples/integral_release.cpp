// Copyright 2026 The dpcube Authors.
//
// Integral, non-negative, consistent release (the paper's Section 6
// remark): a census-style publication where every released count must be
// a whole number, no count may be negative, and every marginal must
// aggregate from one underlying (synthetic) population. Uses the
// geometric mechanism over base counts and contrasts the result with the
// standard Laplace + Fourier release, which returns fractional (and
// occasionally negative) values.
//
// Build & run:  ./build/examples/integral_release

#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "data/contingency_table.h"
#include "data/microdata.h"
#include "data/synthetic.h"
#include "engine/metrics.h"
#include "engine/release_engine.h"
#include "recovery/integral.h"
#include "strategy/fourier_strategy.h"

int main() {
  using namespace dpcube;

  // A small municipal census: district(8) x household-size-band(4) x
  // owns-home(2). 12 bits total.
  data::Schema schema({{"district", 8}, {"hh_size", 4}, {"owns_home", 2}});
  Rng rng(2026);
  data::Dataset dataset = data::MakeUniform(schema, 40'000, &rng);
  const data::SparseCounts counts = data::SparseCounts::FromDataset(dataset);

  const marginal::Workload workload =
      marginal::WorkloadQk(schema, /*k=*/2);
  dp::PrivacyParams params;
  params.epsilon = 0.5;

  // Publication-grade path: geometric noise on base counts, clamped.
  auto integral =
      recovery::IntegralBaseCountRelease(workload, counts, params, &rng);
  if (!integral.ok()) {
    std::fprintf(stderr, "integral release failed: %s\n",
                 integral.status().ToString().c_str());
    return 1;
  }

  // Reference path: Fourier strategy + optimal budgets (real-valued).
  strategy::FourierStrategy fourier(workload);
  engine::ReleaseOptions options;
  options.params = params;
  options.budget_mode = engine::BudgetMode::kOptimal;
  auto real_valued = engine::ReleaseWorkload(fourier, counts, options, &rng);
  if (!real_valued.ok()) return 1;

  // Show the first marginal side by side.
  const marginal::MarginalTable truth =
      marginal::ComputeMarginal(counts, workload.mask(0));
  std::printf("district x hh_size marginal, first 8 cells "
              "(true / integral / Laplace+Fourier):\n");
  for (std::size_t c = 0; c < 8; ++c) {
    std::printf("  cell %zu: %6.0f  /  %6.0f  /  %9.2f\n", c, truth.value(c),
                integral->marginals[0].value(c),
                real_valued.value().marginals[0].value(c));
  }

  // Validity properties of the integral release.
  bool any_fractional = false, any_negative = false;
  for (const auto& m : integral->marginals) {
    for (double v : m.values()) {
      if (v != std::floor(v)) any_fractional = true;
      if (v < 0.0) any_negative = true;
    }
  }
  std::printf("\nintegral release: fractional cells: %s, negative cells: %s\n",
              any_fractional ? "YES (bug!)" : "none",
              any_negative ? "YES (bug!)" : "none");

  // Accuracy comparison.
  auto err_int =
      engine::EvaluateRelease(workload, counts, integral->marginals);
  auto err_real =
      engine::EvaluateRelease(workload, counts, real_valued.value().marginals);
  if (!err_int.ok() || !err_real.ok()) return 1;
  std::printf("relative error: integral base counts %.4f vs "
              "Fourier+optimal %.4f\n",
              err_int.value().relative_error, err_real.value().relative_error);
  std::printf(
      "(a marginal cell aggregates 2^{d-k} noisy base cells, so on this\n"
      " small 6-bit domain the integral path is also the more accurate\n"
      " one — matching the paper's finding that base counts win for\n"
      " high-order workloads; on wide domains like Adult's 2^23 cells the\n"
      " base-count noise blows up and the Fourier path dominates)\n");

  // Finally, materialise the release as microdata: an actual tuple file
  // whose marginals equal the published ones exactly (Section 6's "data
  // set" made literal).
  const std::vector<double> cells(integral->table.begin(),
                                  integral->table.end());
  auto microdata =
      data::GenerateMicrodata(schema, cells, data::MicrodataOptions{}, &rng);
  if (!microdata.ok()) return 1;
  std::printf("\nmicrodata file: %zu synthetic tuples (skipped mass on "
              "padding cells: %.0f)\n",
              microdata->dataset.num_rows(), microdata->skipped_mass);
  return 0;
}
