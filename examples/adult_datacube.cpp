// Copyright 2026 The dpcube Authors.
//
// Datacube release on the Adult-like census dataset (the paper's Section 5
// setting): releases the Q1* workload — all 1-way marginals plus half the
// 2-way marginals — with every strategy/budget combination and prints the
// error of each, illustrating the paper's headline comparison between
// uniform ("S") and optimal non-uniform ("S+") budgeting.
//
// Build & run:  ./build/examples/adult_datacube  (takes ~1 minute)

#include <cstdio>
#include <memory>

#include "common/rng.h"
#include "data/contingency_table.h"
#include "data/synthetic.h"
#include "engine/metrics.h"
#include "engine/release_engine.h"
#include "recovery/derive.h"
#include "strategy/cluster_strategy.h"
#include "strategy/fourier_strategy.h"
#include "strategy/identity_strategy.h"
#include "strategy/query_strategy.h"

int main() {
  using namespace dpcube;

  Rng rng(2026);
  const data::Dataset dataset = data::MakeAdultLike(32'561, &rng);
  const data::SparseCounts counts = data::SparseCounts::FromDataset(dataset);
  std::printf("Adult-like: %zu rows over d = %d encoded bits, "
              "%zu occupied cells\n",
              dataset.num_rows(), dataset.schema().TotalBits(),
              counts.num_occupied());

  const marginal::Workload workload =
      marginal::WorkloadQkStar(dataset.schema(), 1);
  std::printf("workload Q1*: %zu marginals\n\n", workload.num_marginals());

  const strategy::IdentityStrategy identity(workload);
  const strategy::QueryStrategy query(workload);
  const strategy::FourierStrategy fourier(workload);
  const strategy::ClusterStrategy cluster(workload);

  struct Method {
    const char* label;
    const strategy::MarginalStrategy* strat;
    engine::BudgetMode mode;
  };
  const Method methods[] = {
      {"I  (base counts)", &identity, engine::BudgetMode::kUniform},
      {"Q  (uniform)", &query, engine::BudgetMode::kUniform},
      {"Q+ (optimal)", &query, engine::BudgetMode::kOptimal},
      {"F  (uniform)", &fourier, engine::BudgetMode::kUniform},
      {"F+ (optimal)", &fourier, engine::BudgetMode::kOptimal},
      {"C  (uniform)", &cluster, engine::BudgetMode::kUniform},
      {"C+ (optimal)", &cluster, engine::BudgetMode::kOptimal},
  };

  std::printf("%-18s %12s %12s\n", "method", "rel.err", "pred.var");
  for (const Method& m : methods) {
    engine::ReleaseOptions options;
    options.params.epsilon = 0.5;
    options.budget_mode = m.mode;
    double rel = 0.0;
    const int reps = 3;
    double predicted = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      auto outcome =
          engine::ReleaseWorkload(*m.strat, counts, options, &rng);
      if (!outcome.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", m.label,
                     outcome.status().ToString().c_str());
        return 1;
      }
      auto report = engine::EvaluateRelease(workload, counts,
                                            outcome.value().marginals);
      if (!report.ok()) return 1;
      rel += report.value().relative_error / reps;
      predicted = outcome.value().predicted_variance;
    }
    std::printf("%-18s %12.4f %12.3g\n", m.label, rel, predicted);
  }
  std::printf(
      "\nExpected shape (paper Fig. 4): S+ <= S for each strategy; "
      "I not competitive.\n");

  // Post-processing bonus: the released Q1* answers determine every
  // cuboid they dominate. Derive the apex (the private row count) and a
  // 1-way marginal from one Q+ release, at zero extra budget.
  engine::ReleaseOptions options;
  options.params.epsilon = 0.5;
  options.budget_mode = engine::BudgetMode::kOptimal;
  options.enforce_consistency = false;
  auto outcome = engine::ReleaseWorkload(query, counts, options, &rng);
  if (!outcome.ok()) return 1;
  auto cell_vars =
      query.PredictCellVariances(outcome.value().group_budgets,
                                 options.params);
  if (!cell_vars.ok()) return 1;
  auto cube = recovery::DerivedCube::Fit(workload, outcome.value().marginals,
                                         cell_vars.value());
  if (!cube.ok()) return 1;
  auto apex = cube.value().Derive(0);
  if (!apex.ok()) return 1;
  std::printf("\nderived apex (private row count): %.0f  [true: %zu]\n",
              apex->value(0), dataset.num_rows());
  return 0;
}
