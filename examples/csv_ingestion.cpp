// Copyright 2026 The dpcube Authors.
//
// End-to-end ingestion of a raw CSV extract, UCI-Adult style: quoted
// fields, padded whitespace, "?" for missing values, and a numeric column
// that must be discretised before the Section 4.1 binary encoding. The
// example writes a small extract to /tmp, runs the full pipeline — parse,
// bin, dictionary-encode, release under eps-DP — and prints the released
// marginal with its original category labels.
//
// Build & run:  ./build/examples/csv_ingestion

#include <cstdio>
#include <fstream>

#include "common/rng.h"
#include "data/contingency_table.h"
#include "data/csv.h"
#include "data/discretize.h"
#include "data/string_table.h"
#include "engine/release_engine.h"
#include "strategy/query_strategy.h"

int main() {
  using namespace dpcube;

  // 1. A raw extract the way real exports look (note the padding, the
  //    quoted comma, and the missing workclass).
  const char* path = "/tmp/dpcube_example_extract.csv";
  {
    std::ofstream out(path);
    out << "age, workclass, occupation\n";
    out << "39, State-gov, Adm-clerical\n";
    out << "50, Self-emp, \"Exec, managerial\"\n";
    out << "38, Private, Handlers-cleaners\n";
    out << "53, ?, Handlers-cleaners\n";
    out << "28, Private, Adm-clerical\n";
    out << "37, Private, \"Exec, managerial\"\n";
    out << "49, Self-emp, Adm-clerical\n";
    out << "52, State-gov, \"Exec, managerial\"\n";
  }

  // 2. Parse; route missing fields to an explicit category.
  data::CsvOptions csv_options;
  csv_options.missing_policy = data::CsvOptions::MissingPolicy::kSentinel;
  auto table = data::ReadCsvFile(path, csv_options);
  if (!table.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }
  std::printf("parsed %zu rows x %zu columns\n", table->rows.size(),
              table->header.size());

  // 3. Discretise the numeric age column with a-priori edges (the edges
  //    must not depend on the data for the DP guarantee to be end-to-end).
  std::vector<std::string> age_strings;
  for (const auto& row : table->rows) age_strings.push_back(row[0]);
  auto ages = data::ParseNumericColumn(age_strings);
  auto edges = data::EqualWidthEdges(15.0, 95.0, 4);
  if (!ages.ok() || !edges.ok()) return 1;
  auto binned = data::DiscretizeWithEdges(ages.value(), edges.value());
  if (!binned.ok()) return 1;

  // 4. Swap the raw ages for their bin labels and dictionary-encode.
  std::vector<std::vector<std::string>> rows = table->rows;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    rows[r][0] = binned->labels[binned->codes[r]];
  }
  auto encoded = data::EncodeStringRows(table->header, rows);
  if (!encoded.ok()) return 1;
  const data::Schema& schema = encoded->dataset.schema();
  std::printf("encoded domain: 2^%d cells (age bins %u, workclass %u, "
              "occupation %u)\n",
              schema.TotalBits(), binned->num_bins(),
              encoded->dictionaries[1].size(),
              encoded->dictionaries[2].size());

  // 5. Release the workclass x occupation marginal under eps = 1.
  const data::SparseCounts counts =
      data::SparseCounts::FromDataset(encoded->dataset);
  const marginal::Workload workload = marginal::WorkloadQk(schema, 2);
  strategy::QueryStrategy strat(workload);
  engine::ReleaseOptions options;
  options.params.epsilon = 1.0;
  options.budget_mode = engine::BudgetMode::kOptimal;
  Rng rng(11);
  auto outcome = engine::ReleaseWorkload(strat, counts, options, &rng);
  if (!outcome.ok()) return 1;

  // 6. Print the released cells with their original labels. The marginal
  //    over attributes {1, 2} is the last of the three 2-way marginals.
  const auto& released = outcome.value().marginals.back();
  std::printf("\nnoisy workclass x occupation marginal (eps = 1):\n");
  for (std::size_t local = 0; local < released.num_cells(); ++local) {
    const auto values =
        data::DecodeCell(schema, released.GlobalCell(local));
    if (values[1] >= encoded->dictionaries[1].size() ||
        values[2] >= encoded->dictionaries[2].size()) {
      continue;  // Structurally empty code combination.
    }
    std::printf("  %-12s x %-18s : %7.2f\n",
                encoded->dictionaries[1].LabelOf(values[1]).c_str(),
                encoded->dictionaries[2].LabelOf(values[2]).c_str(),
                released.value(local));
  }
  std::remove(path);
  return 0;
}
