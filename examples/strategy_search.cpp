// Copyright 2026 The dpcube Authors.
//
// Fixed strategies with optimal budgets vs the matrix-mechanism strategy
// search (Li et al., PODS 2010) on a small domain — the trade-off the
// paper's introduction frames: search is accurate but "impractical even
// for moderate size problems", while the framework's budgeting step costs
// microseconds on any strategy. This example runs both on the same
// workload and prints the variance and wall-clock of each.
//
// Build & run:  ./build/examples/strategy_search

#include <chrono>
#include <memory>
#include <cstdio>

#include "budget/grouped_budget.h"
#include "marginal/query_matrix.h"
#include "marginal/workload.h"
#include "opt/matrix_mechanism.h"
#include "recovery/gls_recovery.h"
#include "strategy/fourier_strategy.h"
#include "strategy/query_strategy.h"

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  using namespace dpcube;

  // Workload: all 1-way and 2-way marginals over 6 binary attributes
  // (N = 64 — small enough that the search still runs).
  const int d = 6;
  marginal::Workload w1 = marginal::AllKWayBits(d, 1);
  marginal::Workload w2 = marginal::AllKWayBits(d, 2);
  std::vector<bits::Mask> masks = w1.masks();
  masks.insert(masks.end(), w2.masks().begin(), w2.masks().end());
  const marginal::Workload workload(d, masks);
  const linalg::Matrix q = marginal::BuildQueryMatrix(workload);
  std::printf("workload: %zu marginal queries over N = %zu cells\n",
              q.rows(), q.cols());

  dp::PrivacyParams params;
  params.epsilon = 1.0;
  params.delta = 1e-6;  // Gaussian noise: the search's smooth setting.
  params.neighbour = dp::NeighbourModel::kAddRemove;

  // --- The paper's framework on two fixed strategies. -----------------
  for (const char* which : {"Fourier", "Query"}) {
    const auto start = std::chrono::steady_clock::now();
    std::unique_ptr<strategy::MarginalStrategy> strat;
    if (which[0] == 'F') {
      strat = std::make_unique<strategy::FourierStrategy>(workload);
    } else {
      strat = std::make_unique<strategy::QueryStrategy>(workload);
    }
    auto budgets = budget::OptimalGroupBudgets(strat->groups(), params);
    if (!budgets.ok()) return 1;
    std::printf("%-18s + optimal budgets: variance %10.1f   (%.3f ms)\n",
                which, budgets.value().variance_objective,
                1e3 * SecondsSince(start));
  }

  // --- The matrix-mechanism search. ------------------------------------
  const auto start = std::chrono::steady_clock::now();
  opt::MatrixMechanismOptions options;
  options.max_iterations = 200;
  auto searched =
      opt::OptimizeStrategy(q, opt::DefaultInitialStrategy(q), options);
  if (!searched.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 searched.status().ToString().c_str());
    return 1;
  }
  auto var = opt::MatrixMechanismTotalVariance(searched->strategy, q, params);
  if (!var.ok()) return 1;
  std::printf("matrix mechanism  (%3d iterations):  variance %10.1f   "
              "(%.1f ms)\n",
              searched->iterations, var.value(), 1e3 * SecondsSince(start));

  std::printf(
      "\ntakeaway: the searched strategy roughly matches the best fixed\n"
      "strategy here, at orders of magnitude more compute — and the gap\n"
      "in time grows exponentially with d (see "
      "bench_ablation_matrix_mechanism).\n");
  return 0;
}
