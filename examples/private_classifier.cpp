// Copyright 2026 The dpcube Authors.
//
// Model fitting from private marginals — the use case the paper's
// introduction motivates ("to build efficient classifiers from the
// data"). A naive-Bayes classifier predicting salary on the Adult-like
// census data needs exactly the 2-way marginals (feature, salary) plus
// the salary 1-way marginal. We release those privately (F+ with optimal
// budgets + consistency), train one classifier from the private
// marginals and one from the exact marginals, and compare accuracy on
// held-out data.
//
// Build & run:  ./build/examples/private_classifier

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "data/contingency_table.h"
#include "data/synthetic.h"
#include "engine/release_engine.h"
#include "marginal/marginal_ops.h"
#include "strategy/fourier_strategy.h"

namespace {

using namespace dpcube;

// Predicts the salary bit for one row via naive Bayes over the given
// per-feature joint marginals P(feature, salary).
std::uint32_t Predict(const data::Dataset& ds, std::size_t row,
                      const data::Schema& schema,
                      const std::vector<marginal::MarginalTable>& joints,
                      const marginal::MarginalTable& salary_prior,
                      const std::vector<std::size_t>& features,
                      std::size_t salary_attr) {
  const bits::Mask salary_mask = schema.AttributeMask(salary_attr);
  double best_score = -1e300;
  std::uint32_t best_label = 0;
  for (std::uint32_t label = 0; label < 2; ++label) {
    const bits::Mask label_bits =
        static_cast<bits::Mask>(label) << schema.BitOffset(salary_attr);
    const marginal::MarginalTable prior_dist =
        marginal::ToDistribution(salary_prior, 1.0);
    double score = std::log(std::max(
        1e-12,
        prior_dist.value(bits::CompressFromMask(label_bits, salary_mask))));
    for (std::size_t f = 0; f < features.size(); ++f) {
      const bits::Mask feature_mask = schema.AttributeMask(features[f]);
      const bits::Mask feature_bits =
          static_cast<bits::Mask>(ds.At(row, features[f]))
          << schema.BitOffset(features[f]);
      auto p = marginal::ConditionalProbability(
          joints[f], feature_mask, feature_bits, salary_mask, label_bits,
          /*smoothing=*/1.0);
      if (p.ok()) score += std::log(std::max(1e-12, p.value()));
    }
    if (score > best_score) {
      best_score = score;
      best_label = label;
    }
  }
  return best_label;
}

double Accuracy(const data::Dataset& test, const data::Schema& schema,
                const std::vector<marginal::MarginalTable>& joints,
                const marginal::MarginalTable& prior,
                const std::vector<std::size_t>& features,
                std::size_t salary_attr) {
  std::size_t correct = 0;
  for (std::size_t row = 0; row < test.num_rows(); ++row) {
    if (Predict(test, row, schema, joints, prior, features, salary_attr) ==
        test.At(row, salary_attr)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / test.num_rows();
}

}  // namespace

int main() {
  Rng rng(77);
  const data::Dataset train = data::MakeAdultLike(30'000, &rng);
  const data::Dataset test = data::MakeAdultLike(5'000, &rng);
  const data::Schema& schema = train.schema();
  const data::SparseCounts counts = data::SparseCounts::FromDataset(train);

  // Features: everything but salary (attribute 7).
  const std::size_t salary_attr = 7;
  std::vector<std::size_t> features = {0, 1, 2, 3, 4, 5, 6};

  // Workload: P(salary) plus P(feature, salary) for every feature.
  std::vector<bits::Mask> masks = {schema.AttributeMask(salary_attr)};
  for (std::size_t f : features) {
    masks.push_back(schema.MarginalMask({f, salary_attr}));
  }
  const marginal::Workload workload(schema.TotalBits(), masks);

  // Exact marginals (the non-private upper bound).
  std::vector<marginal::MarginalTable> exact;
  for (bits::Mask m : workload.masks()) {
    exact.push_back(marginal::ComputeMarginal(counts, m));
  }
  std::vector<marginal::MarginalTable> exact_joints(exact.begin() + 1,
                                                    exact.end());
  const double exact_acc = Accuracy(test, schema, exact_joints, exact[0],
                                    features, salary_attr);

  std::printf("naive Bayes on Adult-like salary prediction "
              "(%zu train / %zu test rows)\n",
              train.num_rows(), test.num_rows());
  std::printf("%-26s %s\n", "marginal source", "test accuracy");
  std::printf("%-26s %.4f\n", "exact (non-private)", exact_acc);

  strategy::FourierStrategy strategy(workload);
  for (double eps : {0.05, 0.1, 0.5, 1.0}) {
    engine::ReleaseOptions options;
    options.params.epsilon = eps;
    options.budget_mode = engine::BudgetMode::kOptimal;
    auto outcome = engine::ReleaseWorkload(strategy, counts, options, &rng);
    if (!outcome.ok()) {
      std::fprintf(stderr, "release failed: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
    std::vector<marginal::MarginalTable> joints(
        outcome.value().marginals.begin() + 1,
        outcome.value().marginals.end());
    const double acc =
        Accuracy(test, schema, joints, outcome.value().marginals[0],
                 features, salary_attr);
    std::printf("private F+ at eps=%-8.2f %.4f\n", eps, acc);
  }
  std::printf("\nExpected: private accuracy approaches the exact model as "
              "epsilon grows;\neven small budgets retain most of the "
              "signal because naive Bayes only\nneeds low-order marginals "
              "— the paper's motivating scenario.\n");
  return 0;
}
