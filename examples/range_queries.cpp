// Copyright 2026 The dpcube Authors.
//
// Range queries over a linearised 1-D domain: the other strategy family
// covered by the paper's budgeting framework (Section 3.1 applies to any
// groupable strategy). Compares noisy base counts, the dyadic hierarchy
// of Hay et al. and the Haar wavelet of Xiao et al., each with uniform
// and with optimal non-uniform budgets.
//
// Build & run:  ./build/examples/range_queries

#include <cmath>
#include <cstdio>

#include "budget/grouped_budget.h"
#include "common/rng.h"
#include "common/stats.h"
#include "strategy/range_strategies.h"

int main() {
  using namespace dpcube;

  const std::size_t n = 1024;
  Rng rng(5);
  // A bursty histogram: mixture of two populations.
  std::vector<double> x(n, 0.0);
  for (int i = 0; i < 50'000; ++i) {
    const double z = rng.NextGaussian(n / 4.0, n / 32.0);
    const double w = rng.NextGaussian(3.0 * n / 4.0, n / 16.0);
    const std::size_t cell = static_cast<std::size_t>(
        std::min(n - 1.0, std::max(0.0, rng.NextBernoulli(0.5) ? z : w)));
    x[cell] += 1.0;
  }

  const auto queries = strategy::RandomRanges(n, 200, &rng);
  dp::PrivacyParams params;
  params.epsilon = 0.5;

  const strategy::BaseCountRangeStrategy base(n, queries);
  const strategy::HierarchyRangeStrategy hier(n, queries);
  const strategy::WaveletRangeStrategy wave(n, queries);

  std::printf("%zu random range queries over %zu cells, eps = %.2f\n\n",
              queries.size(), n, params.epsilon);
  std::printf("%-10s %-8s %14s %14s\n", "strategy", "budget", "pred.var",
              "mean |err|");
  for (const strategy::RangeStrategy* strat :
       {static_cast<const strategy::RangeStrategy*>(&base),
        static_cast<const strategy::RangeStrategy*>(&hier),
        static_cast<const strategy::RangeStrategy*>(&wave)}) {
    for (bool optimal : {false, true}) {
      auto budgets =
          optimal ? budget::OptimalGroupBudgets(strat->groups(), params)
                  : budget::UniformGroupBudgets(strat->groups(), params);
      if (!budgets.ok()) return 1;
      stats::RunningStats err;
      for (int rep = 0; rep < 5; ++rep) {
        auto release = strat->Run(x, budgets.value().eta, params, &rng);
        if (!release.ok()) {
          std::fprintf(stderr, "%s failed: %s\n", strat->name().c_str(),
                       release.status().ToString().c_str());
          return 1;
        }
        for (std::size_t q = 0; q < queries.size(); ++q) {
          double truth = 0.0;
          for (std::size_t j = queries[q].lo; j < queries[q].hi; ++j) {
            truth += x[j];
          }
          err.Add(std::fabs(release.value().answers[q] - truth));
        }
      }
      std::printf("%-10s %-8s %14.4g %14.2f\n", strat->name().c_str(),
                  optimal ? "optimal" : "uniform",
                  budgets.value().variance_objective, err.mean());
    }
  }
  std::printf("\nExpected: hierarchy/wavelet beat base counts on long "
              "ranges; optimal <= uniform everywhere.\n");
  return 0;
}
