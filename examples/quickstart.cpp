// Copyright 2026 The dpcube Authors.
//
// Quickstart: release all 1-way and 2-way marginals of a small categorical
// table under 1.0-differential privacy with the Fourier strategy and the
// paper's optimal non-uniform noise budgets, then compare against truth.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "common/rng.h"
#include "data/contingency_table.h"
#include "data/synthetic.h"
#include "engine/metrics.h"
#include "engine/release_engine.h"
#include "strategy/fourier_strategy.h"

int main() {
  using namespace dpcube;

  // 1. A toy people table: age-band(4) x smoker(2) x region(8).
  data::Schema schema({{"age_band", 4}, {"smoker", 2}, {"region", 8}});
  Rng rng(7);
  data::Dataset dataset = data::MakeUniform(schema, 10'000, &rng);
  const data::SparseCounts counts = data::SparseCounts::FromDataset(dataset);
  std::printf("dataset: %zu rows, encoded domain 2^%d cells (%zu occupied)\n",
              dataset.num_rows(), schema.TotalBits(),
              counts.num_occupied());

  // 2. The workload: every 1-way and 2-way marginal (a datacube slice).
  const marginal::Workload w1 = marginal::WorkloadQk(schema, 1);
  const marginal::Workload w2 = marginal::WorkloadQk(schema, 2);
  std::vector<bits::Mask> masks = w1.masks();
  masks.insert(masks.end(), w2.masks().begin(), w2.masks().end());
  marginal::Workload workload(schema.TotalBits(), masks);
  std::printf("workload: %zu marginals, %llu cells total\n",
              workload.num_marginals(),
              static_cast<unsigned long long>(workload.TotalCells()));

  // 3. Release privately: Fourier strategy + optimal budgets + consistency.
  strategy::FourierStrategy strategy(workload);
  engine::ReleaseOptions options;
  options.params.epsilon = 1.0;
  options.budget_mode = engine::BudgetMode::kOptimal;
  auto outcome = engine::ReleaseWorkload(strategy, counts, options, &rng);
  if (!outcome.ok()) {
    std::fprintf(stderr, "release failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  // 4. Inspect one released marginal next to the truth.
  const marginal::MarginalTable& smoker_by_age = outcome.value().marginals[3];
  const marginal::MarginalTable truth =
      marginal::ComputeMarginal(counts, smoker_by_age.alpha());
  std::printf("\nage_band x smoker marginal (noisy vs true):\n");
  for (std::size_t g = 0; g < truth.num_cells(); ++g) {
    std::printf("  cell %2zu: %8.1f  vs %6.0f\n", g,
                smoker_by_age.value(g), truth.value(g));
  }

  // 5. Overall quality.
  auto report =
      engine::EvaluateRelease(workload, counts, outcome.value().marginals);
  if (!report.ok()) return 1;
  std::printf("\nrelative error (avg |noise| / avg true cell): %.4f\n",
              report.value().relative_error);
  std::printf("predicted total output variance: %.1f\n",
              outcome.value().predicted_variance);
  std::printf("released answers are %sconsistent with a real table\n",
              outcome.value().consistent ? "" : "NOT ");
  return 0;
}
