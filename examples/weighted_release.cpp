// Copyright 2026 The dpcube Authors.
//
// Weighted workloads and privacy accounting: a data owner who cares much
// more about some marginals than others (the paper's general objective
// a^T Var(y)) and who answers several workloads over time under one
// global privacy budget.
//
// Build & run:  ./build/examples/weighted_release

#include <cmath>
#include <cstdio>

#include "budget/grouped_budget.h"
#include "common/rng.h"
#include "data/contingency_table.h"
#include "data/synthetic.h"
#include "dp/accountant.h"
#include "engine/metrics.h"
#include "engine/release_engine.h"
#include "strategy/factory.h"

int main() {
  using namespace dpcube;

  Rng rng(31);
  const data::Dataset dataset = data::MakeNltcsLike(21'576, &rng);
  const data::SparseCounts counts = data::SparseCounts::FromDataset(dataset);
  const data::Schema& schema = dataset.schema();

  // The owner will answer two workloads over time and never exceed a
  // lifetime budget of epsilon = 1.0.
  dp::PrivacyAccountant accountant(/*epsilon_budget=*/1.0);

  // ---- Release 1: all 1-way marginals, epsilon 0.4, with the first
  // attribute considered 25x more important than the rest.
  const marginal::Workload w1 = marginal::WorkloadQk(schema, 1);
  linalg::Vector importance(w1.num_marginals(), 1.0);
  importance[0] = 25.0;
  auto method = strategy::MakeMethod("Q+", w1, importance);
  if (!method.ok()) return 1;

  engine::ReleaseOptions options;
  options.params.epsilon = 0.4;
  options.budget_mode = method.value().budget_mode;
  if (!accountant.Charge(options.params, "Q1 weighted").ok()) return 1;
  auto outcome = engine::ReleaseWorkload(*method.value().strategy, counts,
                                         options, &rng);
  if (!outcome.ok()) return 1;

  auto report = engine::EvaluateRelease(w1, counts,
                                        outcome.value().marginals);
  if (!report.ok()) return 1;
  std::printf("Release 1 (Q1, attribute 0 weighted 25x, eps=0.4):\n");
  std::printf("  rel.err of weighted marginal: %.4f\n",
              report.value().per_marginal_relative[0]);
  std::printf("  avg rel.err of the others:    %.4f\n",
              (report.value().relative_error * w1.num_marginals() -
               report.value().per_marginal_relative[0]) /
                  (w1.num_marginals() - 1));
  std::printf("  (the weighted marginal gets a larger budget slice)\n\n");

  // ---- Release 2: the 2-way datacube slice, epsilon 0.5.
  const marginal::Workload w2 = marginal::WorkloadQk(schema, 2);
  auto method2 = strategy::MakeMethod("F+", w2);
  if (!method2.ok()) return 1;
  options.params.epsilon = 0.5;
  options.budget_mode = method2.value().budget_mode;
  if (!accountant.Charge(options.params, "Q2 release").ok()) return 1;
  auto outcome2 = engine::ReleaseWorkload(*method2.value().strategy, counts,
                                          options, &rng);
  if (!outcome2.ok()) return 1;
  auto report2 = engine::EvaluateRelease(w2, counts,
                                         outcome2.value().marginals);
  if (!report2.ok()) return 1;
  std::printf("Release 2 (Q2 via F+, eps=0.5): rel.err %.4f\n\n",
              report2.value().relative_error);

  // ---- Accounting.
  std::printf("Privacy ledger:\n");
  for (const auto& charge : accountant.charges()) {
    std::printf("  %-14s eps=%.2f\n", charge.label.c_str(), charge.epsilon);
  }
  std::printf("  total (basic composition): eps=%.2f, remaining %.2f\n",
              accountant.TotalEpsilonBasic(),
              accountant.RemainingEpsilon());

  // A third large release must be refused.
  dp::PrivacyParams big;
  big.epsilon = 0.5;
  const Status refused = accountant.Charge(big, "over budget");
  std::printf("  attempting another eps=0.5 release: %s\n",
              refused.ok() ? "ALLOWED (bug!)" : refused.ToString().c_str());
  return refused.ok() ? 1 : 0;
}
