// Copyright 2026 The dpcube Authors.
//
// Consistency on the NLTCS-like survey: releases overlapping 2-way
// marginals with the direct Q strategy (whose raw answers are mutually
// inconsistent), demonstrates the inconsistency, repairs it with the
// Fourier-coefficient projection of Section 4.3, and finally materialises
// a non-negative integral synthetic table that realises the answers
// (the paper's Section 6 remark).
//
// Build & run:  ./build/examples/nltcs_consistency

#include <cmath>
#include <cstdio>

#include "budget/grouped_budget.h"
#include "common/rng.h"
#include "data/contingency_table.h"
#include "data/synthetic.h"
#include "recovery/consistency.h"
#include "strategy/query_strategy.h"

namespace {

// Sums a released marginal down to a single shared attribute bit.
double AggregateToBit(const dpcube::marginal::MarginalTable& m, int bit,
                      int value) {
  double total = 0.0;
  for (std::size_t g = 0; g < m.num_cells(); ++g) {
    if (((m.GlobalCell(g) >> bit) & 1) ==
        static_cast<dpcube::bits::Mask>(value)) {
      total += m.value(g);
    }
  }
  return total;
}

}  // namespace

int main() {
  using namespace dpcube;

  Rng rng(99);
  const data::Dataset dataset = data::MakeNltcsLike(21'576, &rng);
  const data::SparseCounts counts = data::SparseCounts::FromDataset(dataset);
  std::printf("NLTCS-like: %zu rows, d = 16, %zu occupied cells\n\n",
              dataset.num_rows(), counts.num_occupied());

  // Two overlapping marginals: (adl0, adl1) and (adl1, adl2). They share
  // attribute adl1 (bit 1).
  const marginal::Workload workload(
      16, {bits::Mask{0b011}, bits::Mask{0b110}});
  strategy::QueryStrategy strategy(workload);

  dp::PrivacyParams params;
  params.epsilon = 0.3;
  auto budgets = budget::OptimalGroupBudgets(strategy.groups(), params);
  if (!budgets.ok()) return 1;
  auto release = strategy.Run(counts, budgets.value().eta, params, &rng);
  if (!release.ok()) return 1;

  const auto& noisy = release.value().marginals;
  std::printf("Shared adl1 totals implied by each noisy marginal:\n");
  std::printf("  from (adl0,adl1): adl1=1 count %.2f\n",
              AggregateToBit(noisy[0], 1, 1));
  std::printf("  from (adl1,adl2): adl1=1 count %.2f\n",
              AggregateToBit(noisy[1], 1, 1));
  std::printf("  -> raw answers are mutually INCONSISTENT\n\n");

  auto projected = recovery::ProjectConsistentL2(
      workload, noisy, release.value().cell_variances);
  if (!projected.ok()) return 1;
  std::printf("After the Fourier-space consistency projection:\n");
  std::printf("  from (adl0,adl1): adl1=1 count %.2f\n",
              AggregateToBit(projected.value()[0], 1, 1));
  std::printf("  from (adl1,adl2): adl1=1 count %.2f\n",
              AggregateToBit(projected.value()[1], 1, 1));
  std::printf("  -> identical: the answers describe one table\n\n");

  // Materialise the synthetic table realising the projected answers.
  // Clamping negatives keeps the table physical; we skip integer rounding
  // here because with only two 2-way marginals the witness spreads the
  // count thinly over 2^16 cells (~0.3 per cell) and rounding such a
  // near-uniform table to integers collapses it — rounding is only
  // meaningful when the workload pins down most of the table's mass.
  auto witness = recovery::ConsistentWitness(
      workload, noisy, release.value().cell_variances,
      /*clamp_nonnegative=*/true, /*round_to_integer=*/false);
  if (!witness.ok()) return 1;
  double total = 0.0, negatives = 0.0;
  for (double v : witness.value()) {
    total += v;
    if (v < 0.0) negatives += 1.0;
  }
  std::printf("Synthetic witness table: %zu cells, total count %.0f, "
              "%0.f negative cells\n",
              witness.value().size(), total, negatives);
  std::printf("(true table total: %.0f)\n", counts.Total());
  return 0;
}
